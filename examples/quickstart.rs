//! Quickstart: replay a small TPC-C log stream with AETS and query the
//! backup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aets_suite::common::{ColumnId, GroupId, Timestamp, Value};
use aets_suite::memtable::{Aggregate, CmpOp, MemDb, Scan};
use aets_suite::replay::{AetsConfig, AetsEngine, ReplayEngine, TableGrouping, VisibilityBoard};
use aets_suite::wal::{batch_into_epochs, encode_epoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};

fn main() {
    // 1. Play the primary node: run the TPC-C read-write mix and collect
    //    the committed value-log stream.
    let workload =
        tpcc::generate(&TpccConfig { num_txns: 5_000, warehouses: 4, ..Default::default() });
    println!(
        "primary committed {} transactions / {} log entries ({:.1}% on hot tables)",
        workload.txns.len(),
        workload.total_entries(),
        workload.hot_entry_ratio() * 100.0
    );

    // 2. Cut the stream into epochs (the paper's default: 2048
    //    transactions per epoch) and encode it as the replication wire
    //    format.
    let epochs: Vec<_> = batch_into_epochs(workload.txns.clone(), 2048)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    println!("replicating {} epochs to the backup", epochs.len());

    // 3. Build the backup: an MVCC Memtable, the paper's TPC-C table
    //    grouping (two hot groups + per-table cold groups), and the AETS
    //    engine.
    let db = MemDb::new(workload.num_tables());
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(workload.num_tables(), groups, rates, &workload.analytic_tables)
            .expect("valid grouping");
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 4, ..Default::default() })
        .build()
        .expect("valid config");

    // 4. Replay, publishing visibility per table group.
    let board = VisibilityBoard::builder(engine.board_groups()).build();
    let metrics = engine.replay(&epochs, &db, &board).expect("replay succeeds");
    println!(
        "replayed {} entries in {:?} ({:.0} entries/s)",
        metrics.entries,
        metrics.wall,
        metrics.entries_per_sec()
    );
    let (d, r, c) = metrics.breakdown();
    println!(
        "time breakdown: dispatch {:.1}% / replay {:.1}% / commit {:.1}%",
        d * 100.0,
        r * 100.0,
        c * 100.0
    );

    // 5. Ask an analytical question against a consistent snapshot: how
    //    many orders exist as of the final commit?
    let qts = workload.txns.last().expect("non-empty").commit_ts;
    let gids: Vec<GroupId> = engine.board_groups_for(&[tpcc::tables::ORDERS]);
    assert!(board.is_visible(&gids, qts), "data must be visible after replay");
    let orders = db.table(tpcc::tables::ORDERS).count_at(qts);
    let order_lines = db.table(tpcc::tables::ORDER_LINE).count_at(qts);
    println!("visible state at {qts}: {orders} orders, {order_lines} order lines");

    // An actual analytical query through the snapshot query layer:
    // SELECT COUNT(*), AVG(ol_amount) FROM order_line
    //  WHERE ol_quantity >= 5 AS OF qts
    let scan = Scan::at(qts).filter(ColumnId::new(1), CmpOp::Ge, Value::Int(5));
    let big_lines = scan.count(db.table(tpcc::tables::ORDER_LINE));
    let avg_amount = scan
        .aggregate(db.table(tpcc::tables::ORDER_LINE), ColumnId::new(2), Aggregate::Avg)
        .unwrap_or(0.0);
    println!(
        "analytical query: {big_lines} order lines with quantity >= 5, avg amount {avg_amount:.2}"
    );

    // 6. MVCC time travel: the same query halfway through history.
    let mid_ts = workload.txns[workload.txns.len() / 2].commit_ts;
    let orders_mid = db.table(tpcc::tables::ORDERS).count_at(mid_ts);
    println!(
        "time travel to {}: {} orders were visible then",
        Timestamp::from_micros(mid_ts.as_micros()),
        orders_mid
    );
    assert!(orders_mid <= orders);
}
