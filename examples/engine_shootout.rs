//! Engine shootout: run all four real threaded engines (AETS, TPLR, ATR,
//! C5) over the same CH-benCHmark log and verify they converge to exactly
//! the same MVCC state as a serial oracle.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use aets_suite::common::{FxHashSet, TableId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    run_realtime, AetsConfig, AetsEngine, AtrEngine, C5Engine, ReplayEngine, RunnerConfig,
    SerialEngine, TableGrouping, Workload,
};
use aets_suite::telemetry::{names, Telemetry};
use aets_suite::wal::{batch_into_epochs, encode_epoch, ReplicationTimeline};
use aets_suite::workloads::{chbench, tpcc::TpccConfig};
use std::sync::Arc;

fn main() {
    let workload =
        chbench::generate(&TpccConfig { num_txns: 8_000, warehouses: 4, ..Default::default() });
    let raw = batch_into_epochs(workload.txns.clone(), 2048).expect("positive epoch size");
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    let n = workload.num_tables();
    println!(
        "CH-benCHmark: {} txns, {} entries, {} epochs, {} tables\n",
        workload.txns.len(),
        workload.total_entries(),
        epochs.len(),
        n
    );

    // Ground truth.
    let oracle = MemDb::new(n);
    SerialEngine.replay_all(&epochs, &oracle).expect("serial replay");
    let want = oracle.digest_at(Timestamp::MAX);
    println!("serial oracle state digest: {want:#018x}\n");

    // Per-table grouping for AETS (the paper's CH-benCHmark setup).
    let hot = workload.analytic_tables.clone();
    let written: FxHashSet<TableId> = workload.written_tables();
    let grouping =
        TableGrouping::per_table(n, &hot, |t| if written.contains(&t) { 100.0 } else { 1.0 });

    let engines: Vec<(&str, Box<dyn ReplayEngine>)> = vec![
        (
            "AETS",
            Box::new(
                AetsEngine::builder(grouping)
                    .config(AetsConfig { threads: 4, ..Default::default() })
                    .build()
                    .expect("valid config"),
            ),
        ),
        ("TPLR", Box::new(AetsEngine::tplr_baseline(4, n, &hot).expect("valid config"))),
        ("ATR", Box::new(AtrEngine::new(4).expect("valid config"))),
        ("C5", Box::new(C5Engine::new(4).expect("valid config"))),
    ];

    println!("engine  wall        entries/s   breakdown (dispatch/replay/commit)  state");
    for (name, engine) in engines {
        let db = MemDb::new(n);
        let m = engine.replay_all(&epochs, &db).expect("replay succeeds");
        let (d, r, c) = m.breakdown();
        let got = db.digest_at(Timestamp::MAX);
        let ok = if got == want { "match" } else { "DIVERGED" };
        println!(
            "{name:<7} {:<11?} {:<11.0} {:>5.1}% / {:>5.1}% / {:>5.1}%            {ok}",
            m.wall,
            m.entries_per_sec(),
            d * 100.0,
            r * 100.0,
            c * 100.0
        );
        println!(
            "        ingest resync: {} retries ({} checksum failures, {} epoch gaps, {} stalls)",
            m.ingest_retries, m.checksum_failures, m.epoch_gaps, m.ingest_stalls
        );
        assert_eq!(got, want, "{name} must converge to the oracle state");
    }
    // ---- Live telemetry: the same AETS setup on a paced timeline. ------
    // A real-time run with an instrumented engine records per-group
    // visibility lag (freshness) on the primary clock and renders a
    // Prometheus-style exposition snapshot on cadence. Smaller epochs and
    // a half-speed timeline keep the feed inside this machine's replay
    // capacity, so the lag readings reflect steady-state freshness rather
    // than an overloaded backup.
    let tel = Arc::new(Telemetry::new());
    let grouping =
        TableGrouping::per_table(n, &hot, |t| if written.contains(&t) { 100.0 } else { 1.0 });
    let live = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 4, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("valid config");
    let raw_live = batch_into_epochs(workload.txns.clone(), 256).expect("positive epoch size");
    let arrivals_live = ReplicationTimeline::default().arrivals(&raw_live);
    let epochs_live: Vec<_> = raw_live.iter().map(encode_epoch).collect();
    let db = Arc::new(MemDb::new(n));
    let cfg =
        RunnerConfig { time_scale: 0.5, telemetry_every: epochs_live.len(), ..Default::default() };
    let outcome = run_realtime(
        Arc::new(live),
        db,
        &Workload { epochs: &epochs_live, arrivals: &arrivals_live, queries: &[] },
        &cfg,
    )
    .expect("realtime run");
    let snap = tel.snapshot();
    println!("\nlive telemetry (paced 0.5x real-time AETS run, {}-epoch feed):", epochs_live.len());
    if let Some(lag) = snap.histogram_summary_all(names::VISIBILITY_LAG_US) {
        println!(
            "  freshness: visibility lag p50 {}us / p95 {}us / p99 {}us / max {}us \
             over {} publishes",
            lag.p50_us, lag.p95_us, lag.p99_us, lag.max_us, lag.count
        );
    }
    println!(
        "  ingest resync: {} retries ({} checksum failures, {} epoch gaps, {} stalls)",
        outcome.metrics.ingest_retries,
        outcome.metrics.checksum_failures,
        outcome.metrics.epoch_gaps,
        outcome.metrics.ingest_stalls
    );
    if let Some(text) = outcome.telemetry_snapshots.last() {
        println!("  exposition snapshot excerpt:");
        for line in text
            .lines()
            .filter(|l| {
                l.starts_with(names::EPOCHS)
                    || l.starts_with(names::GLOBAL_CMT_TS_US)
                    || l.starts_with("aets_visibility_lag_us_count")
            })
            .take(6)
        {
            println!("    {line}");
        }
    }

    println!(
        "\nAll engines installed {} versions and agree bit-for-bit on every snapshot.",
        oracle.total_versions()
    );
    println!(
        "(Wall times here measure correctness runs on this machine's cores; the\n\
         paper-shape performance comparison lives in the virtual-clock harness:\n\
         `cargo run --release -p aets-bench --bin repro -- fig8`.)"
    );
}
