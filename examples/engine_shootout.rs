//! Engine shootout: run all four real threaded engines (AETS, TPLR, ATR,
//! C5) over the same CH-benCHmark log and verify they converge to exactly
//! the same MVCC state as a serial oracle.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use aets_suite::common::{FxHashSet, TableId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, AtrEngine, C5Engine, ReplayEngine, SerialEngine, TableGrouping,
};
use aets_suite::wal::{batch_into_epochs, encode_epoch};
use aets_suite::workloads::{chbench, tpcc::TpccConfig};

fn main() {
    let workload =
        chbench::generate(&TpccConfig { num_txns: 8_000, warehouses: 4, ..Default::default() });
    let epochs: Vec<_> = batch_into_epochs(workload.txns.clone(), 2048)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let n = workload.num_tables();
    println!(
        "CH-benCHmark: {} txns, {} entries, {} epochs, {} tables\n",
        workload.txns.len(),
        workload.total_entries(),
        epochs.len(),
        n
    );

    // Ground truth.
    let oracle = MemDb::new(n);
    SerialEngine.replay_all(&epochs, &oracle).expect("serial replay");
    let want = oracle.digest_at(Timestamp::MAX);
    println!("serial oracle state digest: {want:#018x}\n");

    // Per-table grouping for AETS (the paper's CH-benCHmark setup).
    let hot = workload.analytic_tables.clone();
    let written: FxHashSet<TableId> = workload.written_tables();
    let grouping =
        TableGrouping::per_table(n, &hot, |t| if written.contains(&t) { 100.0 } else { 1.0 });

    let engines: Vec<(&str, Box<dyn ReplayEngine>)> = vec![
        (
            "AETS",
            Box::new(
                AetsEngine::new(AetsConfig { threads: 4, ..Default::default() }, grouping)
                    .expect("valid config"),
            ),
        ),
        ("TPLR", Box::new(AetsEngine::tplr_baseline(4, n, &hot).expect("valid config"))),
        ("ATR", Box::new(AtrEngine::new(4).expect("valid config"))),
        ("C5", Box::new(C5Engine::new(4).expect("valid config"))),
    ];

    println!("engine  wall        entries/s   breakdown (dispatch/replay/commit)  state");
    for (name, engine) in engines {
        let db = MemDb::new(n);
        let m = engine.replay_all(&epochs, &db).expect("replay succeeds");
        let (d, r, c) = m.breakdown();
        let got = db.digest_at(Timestamp::MAX);
        let ok = if got == want { "match" } else { "DIVERGED" };
        println!(
            "{name:<7} {:<11?} {:<11.0} {:>5.1}% / {:>5.1}% / {:>5.1}%            {ok}",
            m.wall,
            m.entries_per_sec(),
            d * 100.0,
            r * 100.0,
            c * 100.0
        );
        assert_eq!(got, want, "{name} must converge to the oracle state");
    }
    println!(
        "\nAll engines installed {} versions and agree bit-for-bit on every snapshot.",
        oracle.total_versions()
    );
    println!(
        "(Wall times here measure correctness runs on this machine's cores; the\n\
         paper-shape performance comparison lives in the virtual-clock harness:\n\
         `cargo run --release -p aets-bench --bin repro -- fig8`.)"
    );
}
