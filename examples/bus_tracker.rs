//! BusTracker end-to-end: forecast table access rates with DTGM and let
//! the adaptive allocator follow the morning rush.
//!
//! ```sh
//! cargo run --release --example bus_tracker
//! ```

use aets_suite::forecast::{Dtgm, DtgmConfig, Forecaster, Ha, RateSeries};
use aets_suite::replay::{allocate_threads, UrgencyMode};
use aets_suite::workloads::bustracker;

fn main() {
    // Ground truth: two weeks of per-table access rates, then today.
    let days = 8usize;
    let train = RateSeries::bustracker_hot(days * bustracker::DAY_SLOTS, 0.1, 11);
    println!(
        "training DTGM on {} slots x {} hot tables of access-rate history...",
        train.len(),
        train.width()
    );
    let dtgm = Dtgm::fit(
        &train,
        &bustracker::access_graph(),
        DtgmConfig { epochs: 30, steps_per_epoch: 12, max_horizon: 1, ..Default::default() },
    )
    .expect("series long enough for DTGM");
    let ha = Ha { window: 60 };

    // Walk through "today", predicting each slot one step ahead and
    // allocating 32 replay threads over the three busiest tables + rest.
    println!("\nslot  table            truth  DTGM   HA     threads(DTGM)");
    let mut dtgm_err = 0.0f64;
    let mut ha_err = 0.0f64;
    let mut count = 0usize;
    for slot in 0..bustracker::DAY_SLOTS {
        let mut hist = train.values.clone();
        hist.extend((0..slot).map(|s| {
            (0..bustracker::NUM_HOT).map(|t| bustracker::access_rate(t, s)).collect::<Vec<_>>()
        }));
        let pred = &dtgm.forecast(&hist, 1)[0];
        let pred_ha = &ha.forecast(&hist, 1)[0];

        // Thread allocation across the 14 hot tables (equal pending logs
        // for illustration) driven by predicted rates.
        let pending = vec![1_000u64; bustracker::NUM_HOT];
        let alloc = allocate_threads(32, &pending, pred, UrgencyMode::Log)
            .expect("valid allocation inputs");

        // Report the regime-shift table (m.calendar, table 1): watch DTGM
        // anticipate the afternoon jump that a trailing average misses.
        let t = 1usize;
        let truth = bustracker::access_rate(t, slot);
        dtgm_err += ((pred[t] - truth) / truth).abs();
        ha_err += ((pred_ha[t] - truth) / truth).abs();
        count += 1;
        if slot % 3 == 0 {
            println!(
                "{slot:<5} {:<16} {truth:<6.1} {:<6.1} {:<6.1} {}",
                bustracker::HOT_NAMES[t],
                pred[t],
                pred_ha[t],
                alloc[t]
            );
        }
    }
    println!(
        "\nMAPE on m.calendar across the day: DTGM {:.1}% vs trailing-average {:.1}%",
        dtgm_err / count as f64 * 100.0,
        ha_err / count as f64 * 100.0
    );
    println!("lower error means threads land on the right table groups before the rush hits.");
}
