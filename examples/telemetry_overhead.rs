//! Telemetry overhead: the same bulk AETS replay with instrumentation on
//! and off.
//!
//! ```sh
//! cargo run --release --example telemetry_overhead
//! ```
//!
//! "Off" is the default engine (a disabled `Telemetry`: every record
//! operation is one relaxed atomic load) over a plain visibility board —
//! exactly what `run_realtime` wires when no telemetry is attached. "On"
//! is `AetsEngine::builder(..).telemetry(..)` plus an instrumented board,
//! so the run pays for sharded counter increments, histogram records on
//! every group publish, the freshness clock, per-epoch lifecycle events,
//! and the full causal span chain (dispatch, translate, commit, flip
//! spans into the bounded ring at the default sample-everything rate).
//!
//! Run-to-run throughput on a shared machine drifts by far more than the
//! true cost of a few hundred thousand relaxed atomics, so the comparison
//! is *paired*: each rep measures both modes back to back, alternating
//! which goes first to cancel drift, and the reported overhead is the
//! median of the per-rep ratios. Results land in
//! `results/BENCH_observability.json` when run from the repo root.
//! Target: < 3% throughput cost.

use aets_suite::memtable::MemDb;
use aets_suite::replay::{AetsConfig, AetsEngine, ReplayEngine, TableGrouping, VisibilityBoard};
use aets_suite::telemetry::Telemetry;
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 15;

fn grouping(workload: &aets_suite::workloads::Workload) -> TableGrouping {
    let (groups, rates) = tpcc::paper_grouping();
    TableGrouping::new(workload.num_tables(), groups, rates, &workload.analytic_tables)
        .expect("paper grouping is well-formed")
}

/// One full replay; returns entries/s.
fn run_once(epochs: &[EncodedEpoch], workload: &aets_suite::workloads::Workload, on: bool) -> f64 {
    let cfg = AetsConfig { threads: 4, ..Default::default() };
    let n = workload.num_tables();
    let (engine, board) = if on {
        let tel = Arc::new(Telemetry::new());
        let engine = AetsEngine::builder(grouping(workload))
            .config(cfg)
            .telemetry(tel.clone())
            .build()
            .expect("valid config");
        let start = Instant::now();
        let clock: aets_suite::telemetry::ClockFn =
            Arc::new(move || start.elapsed().as_micros() as u64);
        let board = VisibilityBoard::builder(engine.board_groups()).telemetry(&tel, clock).build();
        (engine, board)
    } else {
        let engine =
            AetsEngine::builder(grouping(workload)).config(cfg).build().expect("valid config");
        let board = VisibilityBoard::builder(engine.board_groups()).build();
        (engine, board)
    };
    let db = MemDb::new(n);
    let m = engine.replay(epochs, &db, &board).expect("replay succeeds");
    m.entries_per_sec()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let workload =
        tpcc::generate(&TpccConfig { num_txns: 30_000, warehouses: 4, ..Default::default() });
    let epochs: Vec<_> = batch_into_epochs(workload.txns.clone(), 256)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    println!(
        "workload: {} txns / {} entries / {} epochs; {} paired reps, order alternated",
        workload.txns.len(),
        workload.total_entries(),
        epochs.len(),
        REPS
    );

    // Warm-up (allocator, page cache, thermal ramp) discarded — two
    // full pairs, because the first measured pair otherwise still rides
    // the ramp and lands as an outlier the median must absorb.
    for _ in 0..2 {
        run_once(&epochs, &workload, false);
        run_once(&epochs, &workload, true);
    }

    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    let mut ratios = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        // Alternate which mode runs first so slow drift (frequency
        // scaling, noisy neighbours) cancels instead of biasing one mode.
        let (o, t) = if rep % 2 == 0 {
            let o = run_once(&epochs, &workload, false);
            let t = run_once(&epochs, &workload, true);
            (o, t)
        } else {
            let t = run_once(&epochs, &workload, true);
            let o = run_once(&epochs, &workload, false);
            (o, t)
        };
        let overhead = (o - t) / o * 100.0;
        println!("rep {rep}: off {o:.0} entries/s, on {t:.0} entries/s ({overhead:+.2}%)");
        off.push(o);
        on.push(t);
        ratios.push(overhead);
    }
    let off_med = median(&mut off);
    let on_med = median(&mut on);
    let overhead_pct = median(&mut ratios);
    println!(
        "\nmedian: off {off_med:.0} entries/s, on {on_med:.0} entries/s; \
         paired median overhead {overhead_pct:+.2}% (target < 3%)"
    );

    // `--gate` turns the target into a hard failure (the CI overhead
    // gate); the paired-median methodology keeps it stable on shared
    // runners where raw throughput drifts far more than 3%.
    if std::env::args().any(|a| a == "--gate") {
        assert!(overhead_pct < 3.0, "tracing overhead {overhead_pct:+.2}% breached the 3% budget");
        println!("overhead gate passed: {overhead_pct:+.2}% < 3%");
    }

    if std::path::Path::new("results").is_dir() {
        let json = format!(
            "{{\n  \"benchmark\": \"telemetry_overhead\",\n  \"workload\": \"tpcc\",\n  \
             \"txns\": {},\n  \"entries\": {},\n  \"epochs\": {},\n  \"threads\": 4,\n  \
             \"paired_reps\": {REPS},\n  \
             \"off_median_entries_per_sec\": {off_med:.0},\n  \
             \"on_median_entries_per_sec\": {on_med:.0},\n  \
             \"overhead_pct_paired_median\": {overhead_pct:.2},\n  \"target_pct\": 3.0\n}}\n",
            workload.txns.len(),
            workload.total_entries(),
            epochs.len(),
        );
        std::fs::write("results/BENCH_observability.json", json).expect("write results");
        println!("wrote results/BENCH_observability.json");
    }
}
