//! Shipping the primary's log over a faulty network, end to end.
//!
//! ```sh
//! cargo run --release --example net_ship_demo [seed]
//! ```
//!
//! Boots a loopback [`ShipReceiver`], puts a seeded fault-injecting
//! [`FaultProxy`] in front of it (disconnects, partitions, corrupted and
//! truncated frames, delays, duplicates, half-open stalls), and ships a
//! TPC-C epoch stream through the chaos with [`ship_epochs`]. The far
//! side is a [`DurableBackup`] pulling from the receiver's
//! [`EpochSource`] bridge; when the stream drains, its state is checked
//! against a fault-free serial oracle. A JSONL trace of the delivered
//! stream is captured along the way and replayed to prove the run is
//! reproducible offline.

use aets_suite::common::{TableId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    ingest_epoch, AetsConfig, AetsEngine, DurableBackup, DurableOptions, IngestStats, QuerySpec,
    ReplayEngine, RetryPolicy, SerialEngine, ServiceOptions, TableGrouping,
};
use aets_suite::telemetry::{http_get, names, parse_exposition, Telemetry};
use aets_suite::transport::{
    ship_epochs, EngineSink, FaultProxy, NetFaultPlan, ReceiverConfig, ReplayMode, ShipReceiver,
    ShipperConfig, TraceRecorder, TraceReplayer, TraceSink,
};
use aets_suite::wal::{batch_into_epochs, encode_epoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xA5EED1);

    // The primary's committed log stream and the fault-free oracle.
    let workload =
        tpcc::generate(&TpccConfig { num_txns: 4_000, warehouses: 2, ..Default::default() });
    let num_tables = workload.num_tables();
    let epochs: Vec<_> = batch_into_epochs(workload.txns.clone(), 64)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(num_tables, groups, rates, &workload.analytic_tables)
        .expect("paper grouping is well-formed");
    let oracle = MemDb::new(num_tables);
    SerialEngine.replay_all(&epochs, &oracle).expect("oracle replay");
    let total = epochs.len() as u64;
    println!("stream: {} txns in {} epochs, chaos seed {seed:#x}", workload.txns.len(), total);

    // Receiver, chaos proxy, and the shipper thread behind it.
    let tel_rx = Arc::new(Telemetry::new());
    let mut receiver = ShipReceiver::bind("127.0.0.1:0", ReceiverConfig::default(), tel_rx.clone())
        .expect("bind receiver");
    let mut proxy =
        FaultProxy::start(receiver.addr(), NetFaultPlan::new(seed, 0.03)).expect("start proxy");
    let proxy_addr = proxy.addr();
    let ship_stream = epochs.clone();
    let tel_tx = Arc::new(Telemetry::new());
    let ship_tel = tel_tx.clone();
    let shipper = std::thread::spawn(move || {
        ship_epochs(proxy_addr, &ship_stream, &ShipperConfig::default(), &ship_tel)
    });

    // The backup node pulls from the network source; a trace recorder
    // captures every delivered epoch plus periodic live query results.
    // The engine shares the receiver's telemetry so net, WAL, and replay
    // spans land in one ring — scrapeable live when `AETS_OBS_ADDR` asks
    // for the HTTP endpoint (e.g. `AETS_OBS_ADDR=127.0.0.1:0`).
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel_rx.clone())
        .build()
        .expect("positive thread count");
    let base = std::env::temp_dir().join(format!("aets-net-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");
    let mut node = DurableBackup::open(
        base.join("wal"),
        base.join("ckpt"),
        engine,
        num_tables,
        DurableOptions {
            checkpoint_every: 16,
            service: ServiceOptions {
                obs_addr: std::env::var("AETS_OBS_ADDR").ok(),
                ..Default::default()
            },
            ..Default::default()
        },
        None,
    )
    .expect("cold start");
    let trace_path = base.join("shipped.trace.jsonl");
    let mut recorder = TraceRecorder::create(&trace_path).expect("create trace");
    let mut probe = EngineSink::new(num_tables);

    let mut source = receiver.source();
    let retry = RetryPolicy { max_retries: 20, base_backoff_us: 200, max_backoff_us: 10_000 };
    let t0 = Instant::now();
    let mut seq = 0u64;
    while seq < total {
        let mut stats = IngestStats::default();
        // A stalled feed is the link mid-reconnect; keep pulling.
        if let Ok(epoch) = ingest_epoch(&mut source, seq, &retry, &mut stats) {
            node.ingest(&epoch).expect("durable ingest");
            probe.ingest(&epoch).expect("probe ingest");
            recorder.record_epoch(seq, &epoch).expect("record epoch");
            if seq % 8 == 7 {
                let qts = Timestamp::from_micros(probe.global_cmt_ts_us());
                let spec = QuerySpec::count(TableId::new((seq % num_tables as u64) as u32));
                let out =
                    probe.query(qts, spec.table, spec.key_range, &spec.output).expect("probe");
                recorder.record_query(seq, qts, &spec, &out).expect("record query");
            }
            seq += 1;
        }
    }
    let drain_wall = t0.elapsed();
    let recorded_wm = recorder.finish().expect("finish trace");
    let report = shipper.join().expect("shipper thread").expect("shipping failed");
    receiver.shutdown();
    proxy.shutdown();

    println!(
        "drained {total} epochs in {drain_wall:.2?}: {} connects ({} reconnects, {} resyncs), \
         {} frames for {} epochs ({} re-shipped), {} bytes on the wire",
        report.connects,
        report.reconnects,
        report.resyncs,
        report.frames_sent,
        report.epochs,
        report.frames_sent - report.epochs,
        report.bytes_sent,
    );
    let snap = tel_rx.snapshot();
    println!(
        "receiver: {} handshakes, {} bytes in, {} duplicate epochs deduped, {} frame errors",
        snap.counter_total(names::NET_HANDSHAKES),
        snap.counter_total(names::NET_BYTES_RECV),
        snap.counter_total(names::NET_EPOCHS_DEDUPED),
        snap.counter_total(names::NET_FRAME_ERRORS),
    );

    // The drained backup equals the fault-free oracle.
    let want = oracle.digest_at(Timestamp::MAX);
    assert_eq!(node.db().digest_at(Timestamp::MAX), want, "backup == oracle");
    println!("backup digest matches the fault-free serial oracle");

    // Self-scrape the live endpoint when one was requested: the metrics
    // page must parse as Prometheus exposition, the span page must hold
    // the last epoch's lifecycle, and the health probe must say 200.
    if let Some(addr) = node.obs_addr() {
        let (status, body) = http_get(addr, "/metrics").expect("GET /metrics");
        assert!(status.contains("200"), "metrics status {status}");
        let families = parse_exposition(&body).expect("exposition parses");
        assert!(!families.is_empty(), "metrics page must not be empty");
        let probe_epoch = total - 1;
        let (status, spans) =
            http_get(addr, &format!("/spans.json?epoch={probe_epoch}")).expect("GET /spans.json");
        assert!(status.contains("200"), "spans status {status}");
        for stage in ["net_recv", "wal_append", "dispatch", "flip_global"] {
            assert!(
                spans.contains(&format!("\"stage\": \"{stage}\"")),
                "epoch {probe_epoch} timeline is missing its {stage} span"
            );
        }
        let (status, _) = http_get(addr, "/healthz").expect("GET /healthz");
        assert!(status.contains("200"), "healthy node must probe 200, got {status}");
        println!(
            "obs endpoint ok: {} families parsed, epoch {probe_epoch} timeline live, healthz 200",
            families.len()
        );
    }

    // Offline reproducibility: replay the captured trace as fast as
    // possible and compare watermark + every recorded query result.
    let replayer = TraceReplayer::open(&trace_path).expect("open trace");
    let mut sink = EngineSink::new(num_tables);
    let rep = replayer.run(ReplayMode::AsFastAsPossible, &mut sink).expect("replay trace");
    assert!(rep.reproduced(), "trace replay diverged: {:?}", rep.mismatches.first());
    assert_eq!(rep.final_global_cmt_ts_us, recorded_wm);
    assert_eq!(sink.db().digest_at(Timestamp::MAX), want, "replayed trace == oracle");
    println!(
        "trace: {} epochs + {} queries replayed afap, {} results matched byte-for-byte, \
         final watermark {}us reproduced",
        rep.epochs, rep.queries, rep.queries_matched, rep.final_global_cmt_ts_us
    );
    let _ = std::fs::remove_dir_all(&base);
}
