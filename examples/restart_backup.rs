//! Restarting the backup node: durable ingest, a hard kill, and
//! suffix-only recovery.
//!
//! ```sh
//! cargo run --release --example restart_backup
//! ```
//!
//! Runs a TPC-C stream through a [`DurableBackup`] (WAL-first ingest +
//! epoch-aligned checkpoints), "kills" the node by dropping it, restarts
//! it from disk, and verifies the recovered state equals a fault-free
//! serial-oracle replay. When run from the repository root it also
//! refreshes `results/BENCH_recovery.json` with the measured recovery
//! wall time.

use aets_suite::common::Timestamp;
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, DurableBackup, DurableOptions, ReplayEngine, SerialEngine,
    TableGrouping,
};
use aets_suite::telemetry::{names, Telemetry};
use aets_suite::wal::{batch_into_epochs, encode_epoch, SegmentConfig};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::Arc;

fn engine(grouping: &TableGrouping) -> AetsEngine {
    AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .expect("positive thread count")
}

fn main() {
    // The primary's committed log stream.
    let workload =
        tpcc::generate(&TpccConfig { num_txns: 20_000, warehouses: 4, ..Default::default() });
    let epochs: Vec<_> = batch_into_epochs(workload.txns.clone(), 256)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let num_tables = workload.num_tables();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(num_tables, groups, rates, &workload.analytic_tables)
        .expect("paper grouping is well-formed");

    // Fault-free oracle for the final equality check.
    let oracle = MemDb::new(num_tables);
    SerialEngine.replay_all(&epochs, &oracle).expect("oracle replay");
    let want = oracle.digest_at(Timestamp::MAX);

    let base = std::env::temp_dir().join(format!("aets-restart-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir = base.join("wal");
    let ckpt_dir = base.join("ckpt");
    let opts = DurableOptions {
        checkpoint_every: 16,
        keep_checkpoints: 2,
        segment: SegmentConfig { epochs_per_segment: 8, ..Default::default() },
        gc_before_checkpoint: true,
        ..Default::default()
    };

    // ---- First life: ingest everything durably, then die. -------------
    let tel = Arc::new(Telemetry::new());
    let (ckpts, retired, ingest_wall) = {
        let live_engine = AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(tel.clone())
            .build()
            .expect("positive thread count");
        let mut node =
            DurableBackup::open(&wal_dir, &ckpt_dir, live_engine, num_tables, opts.clone(), None)
                .expect("cold start");
        let t0 = std::time::Instant::now();
        for e in &epochs {
            node.ingest(e).expect("durable ingest");
        }
        let m = node.metrics();
        println!(
            "ingest resync: {} retries ({} checksum failures, {} epoch gaps, {} stalls)",
            m.ingest_retries, m.checksum_failures, m.epoch_gaps, m.ingest_stalls
        );
        (m.checkpoints_written, m.wal_segments_retired, t0.elapsed())
        // `node` dropped here without any shutdown handshake: the "crash".
    };
    println!(
        "first life: {} epochs ingested in {:.2?}, {} checkpoints cut, {} WAL segments retired",
        epochs.len(),
        ingest_wall,
        ckpts,
        retired
    );
    if let Some(lag) = tel.snapshot().histogram_summary_all(names::VISIBILITY_LAG_US) {
        println!(
            "freshness: visibility lag p50 {}us / p95 {}us / p99 {}us / max {}us \
             over {} publishes (primary clock)",
            lag.p50_us, lag.p95_us, lag.p99_us, lag.max_us, lag.count
        );
    }

    // ---- Second life: restart from disk. ------------------------------
    let node = DurableBackup::open(&wal_dir, &ckpt_dir, engine(&grouping), num_tables, opts, None)
        .expect("restart recovery");
    let rec = node.recovery();
    println!(
        "restart: restored checkpoint at epoch {:?}, re-replayed a {}-epoch WAL suffix \
         in {:.2?} ({} manifest fallbacks)",
        rec.restored_seq, rec.suffix_epochs, rec.recovery_wall, rec.manifest_fallbacks
    );
    assert_eq!(node.db().digest_at(Timestamp::MAX), want, "recovered state == oracle");
    println!("recovered digest matches the fault-free serial oracle");

    // Refresh the benchmark artifact when run from the repo root.
    if std::path::Path::new("results").is_dir() {
        let json = format!(
            "{{\n  \"benchmark\": \"restart_recovery\",\n  \"workload\": \"tpcc\",\n  \
             \"txns\": {},\n  \"epochs\": {},\n  \"checkpoint_every_epochs\": 16,\n  \
             \"ingest_wall_s\": {:.4},\n  \"suffix_epochs_replayed\": {},\n  \
             \"full_history_epochs\": {},\n  \"recovery_wall_s\": {:.4},\n  \
             \"recovery_speedup_vs_full_replay\": {:.1},\n  \
             \"digest_matches_oracle\": true\n}}\n",
            workload.txns.len(),
            epochs.len(),
            ingest_wall.as_secs_f64(),
            rec.suffix_epochs,
            epochs.len(),
            rec.recovery_wall.as_secs_f64(),
            epochs.len() as f64 / rec.suffix_epochs.max(1) as f64,
        );
        std::fs::write("results/BENCH_recovery.json", json).expect("write results");
        println!("wrote results/BENCH_recovery.json");
    }
    let _ = std::fs::remove_dir_all(&base);
}
