//! Fleet demo: three supervised backup shards replay a partitioned TPC-C
//! epoch stream, lose a shard mid-run, fail over from shipped checkpoints
//! plus the WAL suffix, and still answer exactly like a single-node
//! serial oracle.
//!
//! ```sh
//! cargo run --release --example fleet_demo
//! ```
//!
//! The final line is grep-able by CI:
//! `fleet verified against single-node oracle`.

use aets_suite::common::TableId;
use aets_suite::fleet::{DegradedPolicy, Fleet, FleetOptions, RoutedPart, ShardPlan};
use aets_suite::memtable::{MemDb, Scan};
use aets_suite::replay::{QueryOutput, QuerySpec, ReplayEngine, SerialEngine, TableGrouping};
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};

fn main() {
    // ---- Fixture: TPC-C stream + single-node serial oracle. -----------
    let w = tpcc::generate(&TpccConfig { num_txns: 900, warehouses: 2, ..Default::default() });
    let num_tables = w.num_tables();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(num_tables, groups, rates, &w.analytic_tables)
        .expect("paper grouping over tpcc tables");
    let epochs = batch_into_epochs(w.txns.clone(), 16).expect("positive epoch size");
    let encoded: Vec<EncodedEpoch> = epochs.iter().map(encode_epoch).collect();
    let target = epochs.last().expect("nonempty stream").max_commit_ts();

    let oracle = MemDb::new(num_tables);
    SerialEngine.replay_all(&encoded, &oracle).expect("serial oracle replay");

    // ---- Fleet: 3 shards, LPT-balanced over the 6 paper groups. -------
    let plan = ShardPlan::balanced(grouping, 3).expect("balanced plan");
    for s in 0..plan.num_shards() {
        println!("shard {s}: groups {:?} ({} tables)", plan.groups_on(s), plan.tables_on(s).len());
    }
    let root = std::env::temp_dir().join(format!("aets-fleet-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let opts = FleetOptions { failover_after: 2, ..Default::default() };
    let mut fleet = Fleet::open(plan, &root, opts).expect("fleet open");

    // ---- Replay the first half, then kill a shard mid-stream. ---------
    let mid = epochs.len() / 2;
    for e in &epochs[..mid] {
        fleet.enqueue(e);
    }
    let mid_ts = epochs[mid - 1].max_commit_ts();
    fleet.run_until_fresh(mid_ts, 512).expect("first half replay");
    println!(
        "first half replayed: fleet global_cmt_ts = {} us across {} shards",
        fleet.global_cmt_ts().as_micros(),
        fleet.num_shards()
    );

    let victim = 1;
    fleet.kill_shard(victim);
    println!("killed shard {victim} (process death; WAL + checkpoint dirs survive)");

    for e in &epochs[mid..] {
        fleet.enqueue(e);
    }
    fleet.run_until_fresh(target, 512).expect("second half replay with failover");

    let m = fleet.metrics();
    println!(
        "supervisor: {} ticks, {} missed heartbeats, {} failover(s); \
         shard {victim} rebooted from shipped checkpoints + WAL suffix",
        m.ticks, m.heartbeats_missed, m.failovers
    );
    assert_eq!(m.failovers, 1, "exactly one induced failover");

    // ---- Route a fleet-wide query and check it against the oracle. ----
    let specs: Vec<QuerySpec> =
        (0..num_tables as u32).map(|t| QuerySpec::count(TableId::new(t))).collect();
    let ans = fleet.query(target, &specs, DegradedPolicy::Refuse).expect("routed query");
    assert!(ans.is_complete(), "all shards routable after failover");

    let mut total = 0usize;
    for (spec, part) in specs.iter().zip(&ans.parts) {
        let got = match part {
            RoutedPart::Output(QueryOutput::Count(n)) => *n,
            other => panic!("expected a count, got {other:?}"),
        };
        let want = {
            let scan = Scan::at(target);
            scan.count(oracle.table(spec.table))
        };
        assert_eq!(got, want, "table {:?} diverged from the oracle", spec.table);
        total += got;
    }
    println!(
        "routed {} per-table counts at qts={} us, {total} rows total",
        specs.len(),
        target.as_micros()
    );

    let _ = std::fs::remove_dir_all(&root);
    println!("fleet verified against single-node oracle");
}
