//! Fraud detection: the motivating real-time HTAP scenario from the
//! paper's introduction.
//!
//! A payment platform's primary node commits a firehose of transactions;
//! only a fraction touch the tables a fraud-scoring service reads
//! (`accounts`, `payments`). Bulk audit-logging tables dominate log
//! volume. The example compares how quickly a fraud query's data becomes
//! visible under AETS's two-stage replay versus a FIFO baseline (the
//! ungrouped TPLR), using the deterministic virtual-clock simulator so
//! the comparison is exact and machine-independent.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use aets_suite::common::{ColumnId, DmlOp, FxHashSet, RowKey, TableId, Value};
use aets_suite::replay::TableGrouping;
use aets_suite::simulator::{
    evaluate_queries, profile_epochs, simulate, CostModel, SimAetsConfig, SimConfig, SimEngineKind,
};
use aets_suite::workloads::{poisson_query_stream, TxnFactory};
use rand::Rng;

const ACCOUNTS: TableId = TableId::new(0);
const PAYMENTS: TableId = TableId::new(1);
const AUDIT_LOG: TableId = TableId::new(2);
const CLICKSTREAM: TableId = TableId::new(3);

fn main() {
    // ---- The primary: 80% of log volume is audit/clickstream noise. ----
    let mut rng = aets_suite::common::rng::seeded_rng(7);
    let mut factory = TxnFactory::new(8_000.0);
    let mut txns = Vec::new();
    let mut next_payment = 0u64;
    for _ in 0..30_000 {
        let rows = if rng.gen_bool(0.35) {
            // A real payment: update the account balance, insert the
            // payment row — the data fraud scoring needs *now*.
            let pid = next_payment;
            next_payment += 1;
            vec![
                (
                    ACCOUNTS,
                    DmlOp::Update,
                    RowKey::new(rng.gen_range(0..50_000)),
                    vec![(ColumnId::new(0), Value::Float(rng.gen_range(-500.0..500.0)))],
                ),
                (
                    PAYMENTS,
                    DmlOp::Insert,
                    RowKey::new(pid),
                    vec![
                        (ColumnId::new(0), Value::Float(rng.gen_range(1.0..9_000.0))),
                        (ColumnId::new(1), Value::Int(rng.gen_range(0..50_000))),
                    ],
                ),
            ]
        } else {
            // Telemetry burst: audit trail + clickstream events.
            (0..6)
                .map(|i| {
                    let table = if i % 2 == 0 { AUDIT_LOG } else { CLICKSTREAM };
                    (
                        table,
                        DmlOp::Insert,
                        RowKey::new(rng.gen::<u32>() as u64),
                        vec![(ColumnId::new(0), Value::Int(rng.gen()))],
                    )
                })
                .collect()
        };
        txns.push(factory.build(&mut rng, rows));
    }
    let horizon = factory.now();

    // ---- The fraud service: frequent small queries over fresh rows. ----
    let queries = {
        let classes = vec![(1u32, 1.0, vec![ACCOUNTS, PAYMENTS])];
        poisson_query_stream(&mut rng, 400.0, horizon, &classes)
    };
    println!(
        "workload: {} txns, {} fraud queries over {:.1}s of primary time",
        txns.len(),
        queries.len(),
        horizon.as_secs_f64()
    );

    // ---- Backup configurations. ----
    let hot: FxHashSet<TableId> = [ACCOUNTS, PAYMENTS].into_iter().collect();
    let aets_grouping = TableGrouping::new(
        4,
        vec![vec![ACCOUNTS, PAYMENTS], vec![AUDIT_LOG, CLICKSTREAM]],
        vec![400.0, 0.0],
        &hot,
    )
    .expect("valid grouping");
    let fifo_grouping = TableGrouping::single(4, &hot);

    // Position replay capacity realistically close to the offered load.
    let total_entries: usize = txns.iter().map(|t| t.entries.len()).sum();
    let offered = total_entries as f64 / horizon.as_micros() as f64;
    let threads = 8usize;
    let cost = CostModel::default().scaled(0.75 * threads as f64 / offered);

    for (label, grouping, two_stage) in
        [("AETS (two-stage)", &aets_grouping, true), ("FIFO (ungrouped)", &fifo_grouping, false)]
    {
        let profiles = profile_epochs(&txns, 1024, grouping, cost.replication_latency as u64, true);
        let outcome = simulate(
            &profiles,
            grouping,
            &SimConfig {
                kind: SimEngineKind::TwoPhase(SimAetsConfig {
                    two_stage,
                    adaptive: true,
                    ..Default::default()
                }),
                threads,
                cost: cost.clone(),
            },
            None,
        );
        let stats = evaluate_queries(&outcome, &queries, |tables| grouping.groups_of(tables));
        println!(
            "{label:<18} fraud-query visibility delay: mean {:6.2}ms, p95 {:6.2}ms",
            stats.mean() / 1000.0,
            stats.percentile(95.0) as f64 / 1000.0
        );
    }
    println!(
        "\nAETS hides the audit-log replay behind stage 2: the fraud service sees\n\
         fresh account/payment rows without waiting for the telemetry firehose."
    );
}
