//! Freshness benchmark for the adaptive control loop.
//!
//! ```sh
//! cargo run --release --example adaptive_bench
//! ```
//!
//! Two paced scenarios, each run twice over the identical epoch/query
//! schedule — once with the static thread split fitted to the *initial*
//! access distribution, once with the live forecast-driven controller —
//! so every query's visibility lag is paired across the runs:
//!
//! 1. **Rotating hotspot** (`rotating_tpcc`): the analytical hot set
//!    rotates away from the split it was fitted to (StockLevel →
//!    OrderStatus → an audit sweep over the normally-cold
//!    `warehouse`/`history` tables). Queries over rotated-in tables sit
//!    behind the cold stage-2 batch under the static plan; the controller
//!    promotes them into stage-1 groups as the forecast shifts. Claim:
//!    positive paired-median visibility-lag improvement.
//! 2. **No drift** (static TPC-C): the initial plan is already right, so
//!    the controller's sampling/forecasting must be close to free. Claim:
//!    adaptive median lag within 3% of the static run's.
//!
//! Results land in `results/BENCH_adaptive.json` when run from the repo
//! root.

use aets_suite::common::{FxHashSet, TableId, Timestamp};
use aets_suite::forecast::ForecastModel;
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, BackupNode, ControllerConfig, NodeOptions, ReplayEngine, ReplayMetrics,
    ServiceOptions, TableGrouping,
};
use aets_suite::telemetry::Telemetry;
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::drift::{rotating_tpcc, RotatingTpccConfig};
use aets_suite::workloads::tpcc::{self, tables, TpccConfig};
use aets_suite::workloads::{QueryInstance, Workload};
use std::sync::Arc;
use std::time::{Duration, Instant};

const EPOCH_SIZE: usize = 128;
const THREADS: usize = 3;
const MAX_MEASURED_QUERIES: usize = 256;

/// The bench's controller: a longer window and an HA forecast smooth the
/// sparse sampled-query signal so the no-drift run does not thrash.
fn controller() -> ControllerConfig {
    ControllerConfig {
        epoch_window: 8,
        min_history: 2,
        model: ForecastModel::Ha { window: 4 },
        threads: THREADS,
        hot_min_rate: 0.5,
        ..Default::default()
    }
}

fn encode(w: &Workload) -> Vec<EncodedEpoch> {
    batch_into_epochs(w.txns.clone(), EPOCH_SIZE)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect()
}

/// Evenly samples up to `MAX_MEASURED_QUERIES` queries, preserving the
/// stream's temporal coverage so every phase is measured.
fn sample_queries(queries: &[QueryInstance]) -> Vec<QueryInstance> {
    let step = queries.len().div_ceil(MAX_MEASURED_QUERIES).max(1);
    queries.iter().step_by(step).cloned().collect()
}

/// Mean unpaced replay cost per epoch, used to size the pacing gap.
fn epoch_cost(epochs: &[EncodedEpoch], n: usize, grouping: &TableGrouping) -> Duration {
    let eng = AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: THREADS, ..Default::default() })
        .build()
        .expect("engine config");
    let db = MemDb::new(n);
    let t0 = Instant::now();
    eng.replay_all(epochs, &db).expect("replay");
    t0.elapsed() / epochs.len() as u32
}

struct PacedRun {
    /// Wall-clock visibility lag per sampled query, in sample order.
    lags: Vec<Duration>,
    timed_out: usize,
    metrics: ReplayMetrics,
}

/// One paced run: epochs released one per `gap` while each sampled query
/// opens its read session at its own (scaled) arrival instant and blocks
/// on Algorithm 3 — sessions opened at arrival are also exactly the
/// access signal the controller forecasts from.
fn paced_run(
    epochs: &[EncodedEpoch],
    n: usize,
    grouping: &TableGrouping,
    adaptive: bool,
    queries: &[QueryInstance],
    gap: Duration,
) -> PacedRun {
    // The engine's telemetry instance is what the node registers the
    // per-table access counters into — the controller's only signal.
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: THREADS, ..Default::default() })
        .telemetry(tel)
        .build()
        .expect("engine config");
    let mut service = ServiceOptions::builder();
    if adaptive {
        service = service.controller(controller());
    }
    let node = BackupNode::builder()
        .engine(Arc::new(engine))
        .num_tables(n)
        .options(NodeOptions { query_workers: 2, service: service.build(), ..Default::default() })
        .build()
        .expect("node config");

    // Primary time maps onto the pacing schedule: the stream's horizon
    // takes `epochs.len() * gap` of wall time.
    let horizon = epochs.last().expect("nonempty stream").max_commit_ts.as_micros().max(1);
    let wall_span = gap * epochs.len() as u32;
    let to_wall = |ts: Timestamp| wall_span.mul_f64(ts.as_micros() as f64 / horizon as f64);
    let timeout = Duration::from_secs(30);

    let start = Instant::now();
    std::thread::scope(|scope| {
        let waiters: Vec<_> = queries
            .iter()
            .map(|q| {
                let (node, offset) = (&node, to_wall(q.arrival));
                scope.spawn(move || {
                    let target = start + offset;
                    if let Some(sleep) = target.checked_duration_since(Instant::now()) {
                        std::thread::sleep(sleep);
                    }
                    let session = node.open_session(q.arrival, &q.tables);
                    session.wait_admitted(timeout)
                })
            })
            .collect();

        // Replication timeline: an epoch can only ship once its last
        // transaction has committed on the primary, so a query inside an
        // epoch's commit span always arrives *before* the epoch does and
        // its lag measures the real visibility wait (epoch arrival +
        // replay + its groups' publish).
        let mut metrics = ReplayMetrics::default();
        for epoch in epochs {
            let target = start + to_wall(epoch.max_commit_ts);
            if let Some(sleep) = target.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            let m = node.replay(std::slice::from_ref(epoch)).expect("replay");
            metrics.absorb(&m);
        }

        let mut lags = Vec::with_capacity(waiters.len());
        let mut timed_out = 0usize;
        for w in waiters {
            match w.join().expect("query thread") {
                Ok(lag) => lags.push(lag),
                Err(_) => {
                    timed_out += 1;
                    lags.push(timeout);
                }
            }
        }
        PacedRun { lags, timed_out, metrics }
    })
}

fn median_us(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

struct Paired {
    static_median_us: f64,
    adaptive_median_us: f64,
    /// Median of the per-query (static − adaptive) lag differences.
    paired_median_improvement_us: f64,
}

fn pair(stat: &PacedRun, adap: &PacedRun, keep: impl Fn(usize) -> bool) -> Paired {
    let idx: Vec<usize> = (0..stat.lags.len()).filter(|&i| keep(i)).collect();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    Paired {
        static_median_us: median_us(idx.iter().map(|&i| us(stat.lags[i])).collect()),
        adaptive_median_us: median_us(idx.iter().map(|&i| us(adap.lags[i])).collect()),
        paired_median_improvement_us: median_us(
            idx.iter().map(|&i| us(stat.lags[i]) - us(adap.lags[i])).collect(),
        ),
    }
}

fn main() {
    // -- Scenario 1: rotating hotspot ------------------------------------
    let drift = rotating_tpcc(&RotatingTpccConfig {
        base: TpccConfig { num_txns: 24_000, warehouses: 4, olap_qps: 400.0, ..Default::default() },
        phases: 4,
        focus_share: 0.8,
    });
    let drift_epochs = encode(&drift);
    let n = drift.num_tables();

    // The static plan is fitted to the *initial* distribution: only the
    // phase-0 StockLevel tables are stage-1. Everything the later phases
    // rotate in (customer/orders, then warehouse/history) starts cold —
    // exactly what a non-adaptive deployment would be running.
    let initial_hot: FxHashSet<TableId> =
        [tables::DISTRICT, tables::ORDER_LINE, tables::STOCK].into_iter().collect();
    let initial = TableGrouping::new(
        n,
        vec![
            vec![tables::DISTRICT, tables::STOCK],
            vec![tables::ORDER_LINE],
            (0..n as u32).map(TableId::new).filter(|t| !initial_hot.contains(t)).collect(),
        ],
        vec![100.0, 200.0, 1.0],
        &initial_hot,
    )
    .expect("initial grouping");

    let cost = epoch_cost(&drift_epochs, n, &initial);
    let gap = (cost * 4).max(Duration::from_micros(500));
    let sampled = sample_queries(&drift.queries);
    println!(
        "rotating hotspot: {} txns, {} epochs @ {gap:?} (epoch cost {cost:?}), {} measured queries",
        drift.txns.len(),
        drift_epochs.len(),
        sampled.len()
    );

    let stat = paced_run(&drift_epochs, n, &initial, false, &sampled, gap);
    let adap = paced_run(&drift_epochs, n, &initial, true, &sampled, gap);
    let all = pair(&stat, &adap, |_| true);
    // Queries whose class the rotation carried away from the fitted plan.
    let rotated = pair(&stat, &adap, |i| sampled[i].class != 0);
    println!(
        "static median lag {:.0}us | adaptive median lag {:.0}us | paired median improvement {:.0}us",
        all.static_median_us, all.adaptive_median_us, all.paired_median_improvement_us
    );
    println!(
        "rotated-in classes only: {:.0}us vs {:.0}us, paired improvement {:.0}us",
        rotated.static_median_us, rotated.adaptive_median_us, rotated.paired_median_improvement_us
    );
    println!(
        "adaptation: {} regroups, {} resplits applied; timeouts static={} adaptive={}",
        adap.metrics.regroups_applied,
        adap.metrics.resplits_applied,
        stat.timed_out,
        adap.timed_out
    );

    // -- Scenario 2: no drift --------------------------------------------
    let flat = tpcc::generate(&TpccConfig {
        num_txns: 16_000,
        warehouses: 4,
        olap_qps: 400.0,
        ..Default::default()
    });
    let flat_epochs = encode(&flat);
    let (groups, rates) = tpcc::paper_grouping();
    let paper =
        TableGrouping::new(n, groups, rates, &flat.analytic_tables).expect("paper grouping");
    let flat_cost = epoch_cost(&flat_epochs, n, &paper);
    let flat_gap = (flat_cost * 4).max(Duration::from_micros(500));
    let flat_sampled = sample_queries(&flat.queries);
    println!(
        "\nno drift: {} txns, {} epochs @ {flat_gap:?}, {} measured queries",
        flat.txns.len(),
        flat_epochs.len(),
        flat_sampled.len()
    );

    // Two repetitions per configuration, interleaved; the overhead is the
    // paired per-query lag difference (pooled across reps), which cancels
    // the query-schedule component that dominates a difference of
    // unpaired medians.
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let mut static_lags = Vec::new();
    let mut adaptive_lags = Vec::new();
    let mut paired_diffs = Vec::new();
    for _ in 0..2 {
        let stat = paced_run(&flat_epochs, n, &paper, false, &flat_sampled, flat_gap);
        let adap = paced_run(&flat_epochs, n, &paper, true, &flat_sampled, flat_gap);
        for (s, a) in stat.lags.iter().zip(&adap.lags) {
            static_lags.push(us(*s));
            adaptive_lags.push(us(*a));
            paired_diffs.push(us(*a) - us(*s));
        }
    }
    let flat_static_median = median_us(static_lags);
    let flat_adaptive_median = median_us(adaptive_lags);
    let overhead_us = median_us(paired_diffs);
    let overhead_pct = overhead_us / flat_static_median * 100.0;
    println!(
        "static median lag {flat_static_median:.0}us | adaptive median lag \
         {flat_adaptive_median:.0}us | paired overhead {overhead_us:+.0}us = {overhead_pct:+.2}%",
    );

    let improved = all.paired_median_improvement_us > 0.0;
    let overhead_ok = overhead_pct <= 3.0;
    println!("\nacceptance: drift improvement {improved} / no-drift overhead <= 3% {overhead_ok}");

    if std::path::Path::new("results").is_dir() {
        let json = format!(
            "{{\n  \"benchmark\": \"adaptive\",\n  \
             \"drift_scenario\": {{\n    \
             \"workload\": \"tpcc-rotating\", \"txns\": {}, \"epochs\": {}, \
             \"epoch_gap_us\": {},\n    \
             \"queries_measured\": {}, \"timeouts_static\": {}, \"timeouts_adaptive\": {},\n    \
             \"static_median_lag_us\": {:.1}, \"adaptive_median_lag_us\": {:.1},\n    \
             \"paired_median_improvement_us\": {:.1},\n    \
             \"rotated_classes\": {{\n      \
             \"static_median_lag_us\": {:.1}, \"adaptive_median_lag_us\": {:.1},\n      \
             \"paired_median_improvement_us\": {:.1}\n    }},\n    \
             \"regroups_applied\": {}, \"resplits_applied\": {},\n    \
             \"target\": \"paired_median_improvement_us > 0\"\n  }},\n  \
             \"no_drift_scenario\": {{\n    \
             \"workload\": \"tpcc\", \"txns\": {}, \"epochs\": {}, \"epoch_gap_us\": {}, \
             \"repetitions\": 2,\n    \
             \"queries_measured\": {},\n    \
             \"static_median_lag_us\": {:.1}, \"adaptive_median_lag_us\": {:.1},\n    \
             \"paired_overhead_us\": {:.1}, \"overhead_pct\": {:.2}, \"target_pct\": 3.0\n  }},\n  \
             \"all_targets_met\": {}\n}}\n",
            drift.txns.len(),
            drift_epochs.len(),
            gap.as_micros(),
            sampled.len(),
            stat.timed_out,
            adap.timed_out,
            all.static_median_us,
            all.adaptive_median_us,
            all.paired_median_improvement_us,
            rotated.static_median_us,
            rotated.adaptive_median_us,
            rotated.paired_median_improvement_us,
            adap.metrics.regroups_applied,
            adap.metrics.resplits_applied,
            flat.txns.len(),
            flat_epochs.len(),
            flat_gap.as_micros(),
            flat_sampled.len(),
            flat_static_median,
            flat_adaptive_median,
            overhead_us,
            overhead_pct,
            improved && overhead_ok,
        );
        std::fs::write("results/BENCH_adaptive.json", json).expect("write results");
        println!("wrote results/BENCH_adaptive.json");
    }
}
