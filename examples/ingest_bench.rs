//! Ingest hot-path benchmark: paired before/after medians for the five
//! levers of the raw-speed ingest campaign.
//!
//! ```sh
//! cargo run --release --example ingest_bench            # full run
//! cargo run --release --example ingest_bench -- --smoke # CI smoke (seconds)
//! ```
//!
//! Every lever is measured as a *paired* comparison — each rep times the
//! "before" and "after" variant back to back, alternating which goes
//! first so machine drift cancels, and the report is the median across
//! reps (the methodology of `examples/telemetry_overhead.rs`):
//!
//! 1. **CRC kernel** — bytewise `crc32_scalar` vs slice-by-8 `crc32`
//!    (target: ≥ 4x on ≥ 1 KiB inputs).
//! 2. **Batched decode** — per-record `decode_record` loop with a fresh
//!    output vector per epoch vs one-pass `decode_batch_into` with a
//!    reused scratch vector.
//! 3. **SPSC commit queue** — the PR-5 mutexed slot protocol
//!    (re-implemented here as the baseline) vs the lock-free
//!    `CommitQueue` the engine now runs.
//! 4. **Group-commit WAL** — `FsyncPolicy::EveryEpoch` vs
//!    `FsyncPolicy::Coalesced` over the same epoch stream.
//! 5. **Chunked recovery reads** — monolithic whole-file reads (one
//!    file-sized allocation per segment, the PR-3 shape) vs fixed
//!    128 KiB chunks into a reused buffer; plus the absolute wall time
//!    of a real `SegmentStore::open` + `read_suffix` recovery.
//!
//! An end-to-end section reports the current `dispatch_epoch` and full
//! AETS replay medians so the numbers can be compared against the PR-5
//! baseline recorded in `results/BENCH_pipeline.json`.
//!
//! A full run writes `results/BENCH_ingest.json` when invoked from the
//! repo root; `--smoke` shrinks every workload to finish in seconds and
//! skips the file write so CI cannot clobber calibrated results.

use aets_suite::common::{EpochId, Result};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    dispatch_epoch, AetsConfig, AetsEngine, Cell, CommitQueue, ReplayEngine, TableGrouping,
    VisibilityBoard,
};
use aets_suite::wal::{
    batch_into_epochs, crc32, crc32_scalar, decode_record, encode_epoch, EncodedEpoch, FsyncPolicy,
    LogRecord, SegmentConfig, SegmentStore,
};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::hint::black_box;
use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shape {
    reps: usize,
    crc_buf: usize,
    crc_iters: usize,
    decode_txns: usize,
    spsc_items: usize,
    spsc_producers: usize,
    wal_epochs: usize,
    dispatch_txns: usize,
}

const FULL: Shape = Shape {
    reps: 7,
    crc_buf: 64 * 1024,
    crc_iters: 2_000,
    decode_txns: 20_000,
    spsc_items: 200_000,
    spsc_producers: 4,
    wal_epochs: 512,
    dispatch_txns: 20_000,
};

const SMOKE: Shape = Shape {
    reps: 3,
    crc_buf: 4 * 1024,
    crc_iters: 200,
    decode_txns: 2_000,
    spsc_items: 20_000,
    spsc_producers: 2,
    wal_epochs: 48,
    dispatch_txns: 2_000,
};

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Runs one paired lever: `reps` back-to-back measurements of both
/// variants with alternating order; returns `(before_med, after_med)`
/// in whatever unit the closures report (higher = faster).
fn paired(
    reps: usize,
    mut before: impl FnMut() -> f64,
    mut after: impl FnMut() -> f64,
) -> (f64, f64) {
    // Warm-up rep of each, discarded.
    before();
    after();
    let mut b = Vec::with_capacity(reps);
    let mut a = Vec::with_capacity(reps);
    for rep in 0..reps {
        if rep % 2 == 0 {
            b.push(before());
            a.push(after());
        } else {
            a.push(after());
            b.push(before());
        }
    }
    (median(&mut b), median(&mut a))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aets-ingest-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------- lever 1

/// Returns (before, after) CRC throughput in MiB/s.
fn bench_crc(sh: &Shape) -> (f64, f64) {
    let mut rng = 0xC12Cu64;
    let buf: Vec<u8> = (0..sh.crc_buf).map(|_| splitmix(&mut rng) as u8).collect();
    let mib = (sh.crc_buf * sh.crc_iters) as f64 / (1024.0 * 1024.0);
    paired(
        sh.reps,
        || {
            let t = Instant::now();
            for _ in 0..sh.crc_iters {
                black_box(crc32_scalar(black_box(&buf)));
            }
            mib / t.elapsed().as_secs_f64()
        },
        || {
            let t = Instant::now();
            for _ in 0..sh.crc_iters {
                black_box(crc32(black_box(&buf)));
            }
            mib / t.elapsed().as_secs_f64()
        },
    )
}

// ---------------------------------------------------------------- lever 2

/// Returns (before, after) decode throughput in records/s.
fn bench_decode(epochs: &[EncodedEpoch], sh: &Shape) -> (f64, f64) {
    // Count once for the rate denominator.
    let mut scratch: Vec<LogRecord> = Vec::new();
    let mut total = 0usize;
    for e in epochs {
        e.decode_records_into(&mut scratch).expect("valid epoch");
        total += scratch.len();
    }
    let records = total as f64;
    paired(
        sh.reps,
        || {
            // Before: per-record decode, fresh Vec per epoch — each
            // record re-snapshots the cursor to verify its CRC and the
            // allocation is repaid every epoch.
            let t = Instant::now();
            for e in epochs {
                let mut out: Vec<LogRecord> = Vec::new();
                let mut cursor = e.bytes.clone();
                while !cursor.is_empty() {
                    out.push(decode_record(&mut cursor).expect("valid record"));
                }
                black_box(&out);
            }
            records / t.elapsed().as_secs_f64()
        },
        || {
            // After: one-pass batched decode into a reused scratch Vec.
            let mut out: Vec<LogRecord> = Vec::new();
            let t = Instant::now();
            for e in epochs {
                e.decode_records_into(&mut out).expect("valid epoch");
                black_box(&out);
            }
            records / t.elapsed().as_secs_f64()
        },
    )
}

// ---------------------------------------------------------------- lever 3

/// The PR-5 slot protocol this campaign replaced: every publish and
/// every take goes through one mutex guarding the slot vector.
struct MutexQueue {
    tail: AtomicUsize,
    slots: Mutex<Vec<Option<Result<Vec<Cell>>>>>,
    cv: Condvar,
}

impl MutexQueue {
    fn new(n: usize) -> Self {
        Self {
            tail: AtomicUsize::new(0),
            slots: Mutex::new((0..n).map(|_| None).collect()),
            cv: Condvar::new(),
        }
    }

    fn claim(&self) -> Option<usize> {
        let i = self.tail.fetch_add(1, Ordering::Relaxed);
        (i < self.slots.lock().expect("poisoned").len()).then_some(i)
    }

    fn finish(&self, i: usize, cells: Result<Vec<Cell>>) {
        let mut g = self.slots.lock().expect("poisoned");
        g[i] = Some(cells);
        self.cv.notify_all();
    }

    fn wait_take(&self, i: usize) -> Result<Vec<Cell>> {
        let mut g = self.slots.lock().expect("poisoned");
        loop {
            if let Some(v) = g[i].take() {
                return v;
            }
            g = self.cv.wait(g).expect("poisoned");
        }
    }
}

/// Returns (before, after) hand-off throughput in items/s: `producers`
/// worker threads race to claim/publish, one consumer drains in order.
fn bench_spsc(sh: &Shape) -> (f64, f64) {
    let n = sh.spsc_items;
    let items = n as f64;
    paired(
        sh.reps,
        || {
            let q = MutexQueue::new(n);
            let t = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..sh.spsc_producers {
                    scope.spawn(|| {
                        while let Some(i) = q.claim() {
                            q.finish(i, Ok(Vec::new()));
                        }
                    });
                }
                for i in 0..n {
                    black_box(q.wait_take(i).expect("ok payload"));
                }
            });
            items / t.elapsed().as_secs_f64()
        },
        || {
            let q = CommitQueue::new(n);
            let t = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..sh.spsc_producers {
                    scope.spawn(|| {
                        while let Some(i) = q.claim() {
                            q.finish(i, Ok(Vec::new()));
                        }
                    });
                }
                for i in 0..n {
                    black_box(q.wait_take(i).expect("ok payload"));
                }
            });
            items / t.elapsed().as_secs_f64()
        },
    )
}

// ---------------------------------------------------------------- lever 4

/// Re-stamps a workload's epochs with sequential ids from 0 so they can
/// be appended to a fresh store.
fn restamped(epochs: &[EncodedEpoch], count: usize) -> Vec<EncodedEpoch> {
    (0..count)
        .map(|i| {
            let e = &epochs[i % epochs.len()];
            EncodedEpoch { id: EpochId::new(i as u64), ..e.clone() }
        })
        .collect()
}

/// Returns (before, after) durable-append throughput in epochs/s:
/// before syncs every epoch, after group-commits 32 frames / 2 ms.
fn bench_wal(epochs: &[EncodedEpoch], sh: &Shape) -> (f64, f64) {
    let stream = restamped(epochs, sh.wal_epochs);
    let count = stream.len() as f64;
    let run = |fsync: FsyncPolicy, tag: &str| -> f64 {
        let dir = scratch_dir(tag);
        let cfg = SegmentConfig { fsync, ..Default::default() };
        let mut store = SegmentStore::open(&dir, cfg, None).expect("open store");
        let t = Instant::now();
        for e in &stream {
            store.append(e).expect("append");
        }
        store.sync().expect("final sync");
        let rate = count / t.elapsed().as_secs_f64();
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        rate
    };
    paired(
        sh.reps,
        || run(FsyncPolicy::EveryEpoch, "wal-every"),
        || {
            run(
                FsyncPolicy::Coalesced { max_frames: 32, max_wait: Duration::from_millis(2) },
                "wal-coalesced",
            )
        },
    )
}

// ---------------------------------------------------------------- lever 5

/// Returns ((before, after) raw read throughput in MiB/s, recovery wall
/// in ms). Before reads each segment with one file-sized allocation
/// (the PR-3 shape); after streams fixed 128 KiB chunks into a reused
/// buffer. Recovery wall is a real `open` + `read_suffix` pass over the
/// same store with the current (chunked) implementation.
fn bench_recovery(epochs: &[EncodedEpoch], sh: &Shape) -> ((f64, f64), f64) {
    // One WAL on disk, written once, read many times.
    let dir = scratch_dir("recovery");
    let stream = restamped(epochs, sh.wal_epochs);
    let cfg = SegmentConfig { fsync: FsyncPolicy::Manual, ..Default::default() };
    {
        let mut store = SegmentStore::open(&dir, cfg, None).expect("open store");
        for e in &stream {
            store.append(e).expect("append");
        }
        store.sync().expect("final sync");
    }
    let files: Vec<PathBuf> = {
        let mut v: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        v.sort();
        v
    };
    let total_bytes: u64 = files.iter().map(|f| std::fs::metadata(f).expect("meta").len()).sum();
    let mib = total_bytes as f64 / (1024.0 * 1024.0);

    let raw = paired(
        sh.reps,
        || {
            let t = Instant::now();
            for f in &files {
                black_box(std::fs::read(f).expect("read file"));
            }
            mib / t.elapsed().as_secs_f64()
        },
        || {
            let mut buf = vec![0u8; 128 * 1024];
            let t = Instant::now();
            for f in &files {
                let mut file = std::fs::File::open(f).expect("open file");
                loop {
                    let n = file.read(&mut buf).expect("read chunk");
                    if n == 0 {
                        break;
                    }
                    black_box(&buf[..n]);
                }
            }
            mib / t.elapsed().as_secs_f64()
        },
    );

    let mut walls = Vec::with_capacity(sh.reps);
    for _ in 0..sh.reps {
        let t = Instant::now();
        let store = SegmentStore::open(&dir, cfg, None).expect("reopen store");
        let suffix = store.read_suffix(0).expect("read suffix");
        assert_eq!(suffix.len(), stream.len(), "recovery must see every epoch");
        black_box(&suffix);
        walls.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let _ = std::fs::remove_dir_all(&dir);
    (raw, median(&mut walls))
}

// ------------------------------------------------------------ end to end

/// Returns (dispatch_epoch median ms over the stream, full AETS replay
/// entries/s) on the current code — compare against the PR-5 numbers in
/// `results/BENCH_pipeline.json`.
fn bench_end_to_end(sh: &Shape) -> (f64, f64) {
    let w = tpcc::generate(&TpccConfig {
        num_txns: sh.dispatch_txns,
        warehouses: 4,
        ..Default::default()
    });
    let epochs: Vec<_> = batch_into_epochs(w.txns.clone(), 256)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");

    let mut dispatch_ms = Vec::with_capacity(sh.reps);
    for _ in 0..sh.reps {
        let t = Instant::now();
        for e in &epochs {
            black_box(dispatch_epoch(e, &grouping).expect("dispatch"));
        }
        dispatch_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }

    let mut entries_per_sec = Vec::with_capacity(sh.reps);
    for _ in 0..sh.reps {
        let engine = AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: 4, ..Default::default() })
            .build()
            .expect("valid config");
        let db = MemDb::new(w.num_tables());
        let board = VisibilityBoard::builder(engine.board_groups()).build();
        let m = engine.replay(&epochs, &db, &board).expect("replay");
        entries_per_sec.push(m.entries_per_sec());
    }
    (median(&mut dispatch_ms), median(&mut entries_per_sec))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sh = if smoke { SMOKE } else { FULL };
    println!(
        "ingest bench ({} mode): {} paired reps per lever, order alternated\n",
        if smoke { "smoke" } else { "full" },
        sh.reps
    );

    let w = tpcc::generate(&TpccConfig {
        num_txns: sh.decode_txns,
        warehouses: 4,
        ..Default::default()
    });
    let epochs: Vec<_> = batch_into_epochs(w.txns.clone(), 256)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();

    let (crc_b, crc_a) = bench_crc(&sh);
    let crc_x = crc_a / crc_b;
    println!(
        "1. crc ({} KiB buf):        scalar {crc_b:>9.0} MiB/s  slice8 {crc_a:>9.0} MiB/s  ({crc_x:.2}x, target >= 4x)",
        sh.crc_buf / 1024
    );

    let (dec_b, dec_a) = bench_decode(&epochs, &sh);
    println!(
        "2. decode:                  record {dec_b:>9.0} rec/s   batch  {dec_a:>9.0} rec/s   ({:.2}x)",
        dec_a / dec_b
    );

    let (spsc_b, spsc_a) = bench_spsc(&sh);
    println!(
        "3. commit queue ({}p/1c):    mutex {spsc_b:>10.0} it/s   spsc {spsc_a:>10.0} it/s   ({:.2}x)",
        sh.spsc_producers,
        spsc_a / spsc_b
    );

    let (wal_b, wal_a) = bench_wal(&epochs, &sh);
    println!(
        "4. wal fsync ({} epochs):  every {wal_b:>9.0} ep/s   coalesced {wal_a:>7.0} ep/s   ({:.2}x)",
        sh.wal_epochs,
        wal_a / wal_b
    );

    let ((read_b, read_a), recovery_ms) = bench_recovery(&epochs, &sh);
    println!(
        "5. recovery reads:          whole {read_b:>9.0} MiB/s  chunked {read_a:>7.0} MiB/s  ({:.2}x); open+read_suffix {recovery_ms:.1} ms",
        read_a / read_b
    );

    let (dispatch_ms, e2e) = bench_end_to_end(&sh);
    println!(
        "e2e: dispatch_epoch stream {dispatch_ms:.2} ms median; aets replay {e2e:.0} entries/s"
    );

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_ingest.json");
        assert!(crc_x >= 1.0, "slice-by-8 must not be slower than the bytewise kernel");
        return;
    }

    if std::path::Path::new("results").is_dir() {
        let json = format!(
            "{{\n  \"experiment\": \"raw-speed ingest campaign: crc slice-by-8 + batched decode + spsc commit queues + group-commit wal + chunked recovery reads\",\n  \
             \"method\": \"paired medians: each rep measures before and after back to back with alternating order so machine drift cancels; {} reps per lever (examples/ingest_bench.rs)\",\n  \
             \"crc_slice_by_8\": {{\n    \"buf_kib\": {}, \"before_scalar_mib_per_sec\": {crc_b:.0}, \"after_slice8_mib_per_sec\": {crc_a:.0},\n    \"speedup\": {crc_x:.2}, \"target_speedup\": 4.0\n  }},\n  \
             \"batched_decode\": {{\n    \"before_per_record_recs_per_sec\": {dec_b:.0}, \"after_batched_recs_per_sec\": {dec_a:.0},\n    \"speedup\": {:.2},\n    \"note\": \"before = fresh Vec per epoch + per-record cursor snapshot CRC; after = one-pass decode_batch_into with reused scratch\"\n  }},\n  \
             \"spsc_commit_queue\": {{\n    \"producers\": {}, \"items\": {},\n    \"before_mutexed_items_per_sec\": {spsc_b:.0}, \"after_spsc_items_per_sec\": {spsc_a:.0},\n    \"speedup\": {:.2},\n    \"note\": \"before re-implements the PR-5 mutexed slot protocol; after is the lock-free CommitQueue the engine runs\"\n  }},\n  \
             \"wal_group_commit\": {{\n    \"epochs\": {}, \"before_every_epoch_eps\": {wal_b:.0}, \"after_coalesced_eps\": {wal_a:.0},\n    \"speedup\": {:.2},\n    \"note\": \"coalesced = max_frames 32 / max_wait 2ms; ack is no longer durable, synced_seq bounds the loss window (DESIGN.md s11)\"\n  }},\n  \
             \"chunked_recovery_reads\": {{\n    \"before_whole_file_mib_per_sec\": {read_b:.0}, \"after_chunked_mib_per_sec\": {read_a:.0},\n    \"speedup\": {:.2},\n    \"open_read_suffix_ms\": {recovery_ms:.1},\n    \"note\": \"raw read strategies isolated (page-cache hot); open_read_suffix_ms is the real recovery pass with the chunked reader, target: no worse than the PR-3 monolithic reader\"\n  }},\n  \
             \"end_to_end\": {{\n    \"dispatch_epoch_stream_ms\": {dispatch_ms:.2}, \"aets_replay_entries_per_sec\": {e2e:.0},\n    \"note\": \"current code only; PR-5 baseline for dispatch_epoch is results/BENCH_pipeline.json (criterion replay/dispatch_epoch)\"\n  }}\n}}\n",
            sh.reps,
            sh.crc_buf / 1024,
            dec_a / dec_b,
            sh.spsc_producers,
            sh.spsc_items,
            spsc_a / spsc_b,
            sh.wal_epochs,
            wal_a / wal_b,
            read_a / read_b,
        );
        std::fs::write("results/BENCH_ingest.json", json).expect("write results");
        println!("\nwrote results/BENCH_ingest.json");
    }
}
