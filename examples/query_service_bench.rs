//! Concurrency benchmark for the query-serving `BackupNode`.
//!
//! ```sh
//! cargo run --release --example query_service_bench
//! ```
//!
//! A paced TPC-C stream replays into a live node (one epoch per fixed
//! gap, sized with headroom over the measured replay cost) while
//! closed-loop clients run a scan-heavy query mix whose snapshots sit
//! *ahead* of the global watermark — every query parks on Algorithm 3
//! until replay catches up, then scans. On one core the scans themselves
//! cannot parallelise, so any throughput scaling from extra workers is
//! exactly what the worker pool exists for: overlapping the admission
//! waits of concurrent sessions.
//!
//! Three claims are measured, and land in
//! `results/BENCH_query_service.json` when run from the repo root:
//!
//! 1. throughput scales ≥2× from 1 to 4 workers on the scan-heavy mix
//!    (freshness-margin policy: `qts = watermark + 1.5 epoch gaps`);
//! 2. mean replay visibility delay (publish lag + half the epoch gap of
//!    batching staleness) under full query load stays within 10% of a
//!    no-query baseline;
//! 3. event-driven admission waits less than the sleep-poll loop at equal
//!    load. Here every query targets the *next* unpublished watermark, so
//!    both modes face the identical wait structure and the measured gap
//!    is pure wake-up latency: parked waiters resume at the publish,
//!    pollers at their next tick (mean penalty ≈ half the poll interval).

use aets_suite::common::{TableId, Timestamp};
use aets_suite::memtable::{MemDb, Scan};
use aets_suite::replay::{
    AdmissionMode, AetsConfig, AetsEngine, BackupNode, NodeOptions, QuerySpec, QueryTarget,
    ReplayEngine, SerialEngine, TableGrouping,
};
use aets_suite::telemetry::{names, Telemetry};
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a client picks the snapshot timestamp of its next query.
#[derive(Clone, Copy)]
enum QtsPolicy {
    /// `watermark + margin` (µs), capped at the stream head: a reader
    /// demanding data fresher than what has replayed.
    Margin(u64),
    /// The first epoch watermark strictly above the current global
    /// watermark: a reader synchronised to the next publish.
    NextPublish,
}

struct RunStats {
    served: usize,
    window_s: f64,
    throughput_qps: f64,
    vis_delay_mean_us: f64,
    queue_wait_mean_us: f64,
    admission_wait_mean_us: f64,
    latency_mean_us: f64,
}

/// One paced run: a feeder thread replays one epoch per `gap` while
/// `clients` closed-loop readers query `table` at the policy's `qts`.
/// Returns throughput over the replay window plus wait/latency/freshness
/// means from the node's own telemetry.
#[allow(clippy::too_many_arguments)]
fn pace_and_serve(
    epochs: &[EncodedEpoch],
    num_tables: usize,
    grouping: &TableGrouping,
    gap: Duration,
    workers: usize,
    clients: usize,
    mode: AdmissionMode,
    policy: QtsPolicy,
    table: TableId,
) -> RunStats {
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("valid config");
    let node = BackupNode::builder()
        .engine(Arc::new(engine))
        .num_tables(num_tables)
        .options(NodeOptions {
            query_workers: workers,
            queue_depth: 64,
            admission: mode,
            ..Default::default()
        })
        .build()
        .expect("valid node");

    let last = epochs.last().expect("nonempty stream").max_commit_ts.as_micros();
    node.replay(&epochs[..1]).expect("seed epoch");

    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (vis_delay_mean_us, window, served) = std::thread::scope(|scope| {
        let feeder = scope.spawn(|| {
            let mut staleness_us = 0u64;
            for i in 1..epochs.len() {
                // Ship epoch i at its arrival instant and charge the mean
                // staleness of its commits: publish lag behind arrival
                // plus half a gap of epoch-batching delay.
                let arrive = gap * i as u32;
                let now = t0.elapsed();
                if arrive > now {
                    std::thread::sleep(arrive - now);
                }
                node.replay(&epochs[i..=i]).expect("replay");
                let lag = t0.elapsed().saturating_sub(arrive);
                staleness_us += lag.as_micros() as u64 + gap.as_micros() as u64 / 2;
            }
            stop.store(true, Ordering::Release);
            (staleness_us as f64 / (epochs.len() - 1) as f64, t0.elapsed())
        });

        let mut readers = Vec::new();
        for _ in 0..clients {
            let (node, stop) = (&node, &stop);
            readers.push(scope.spawn(move || {
                let mut done: Vec<Duration> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let wm = node.safe_ts().as_micros();
                    let qts = match policy {
                        QtsPolicy::Margin(margin) => (wm + margin).min(last),
                        QtsPolicy::NextPublish => epochs
                            .iter()
                            .map(|e| e.max_commit_ts.as_micros())
                            .find(|w| *w > wm)
                            .unwrap_or(last),
                    };
                    // The generic surface: one session over the spec's
                    // footprint, submitted through the admission queue.
                    node.query_one(Timestamp::from_micros(qts), QuerySpec::count(table))
                        .expect("query");
                    done.push(t0.elapsed());
                }
                done
            }));
        }
        let completions: Vec<Vec<Duration>> =
            readers.into_iter().map(|r| r.join().expect("reader")).collect();
        let (vis, window) = feeder.join().expect("feeder");
        let served = completions.iter().flatten().filter(|d| **d <= window).count();
        (vis, window, served)
    });

    let snap = tel.snapshot();
    let mean = |name: &str| snap.histogram_summary_all(name).map_or(0.0, |h| h.mean_us);
    RunStats {
        served,
        window_s: window.as_secs_f64(),
        throughput_qps: served as f64 / window.as_secs_f64(),
        vis_delay_mean_us,
        queue_wait_mean_us: mean(names::QUERY_QUEUE_WAIT_US),
        admission_wait_mean_us: mean(names::QUERY_ADMISSION_WAIT_US),
        latency_mean_us: mean(names::QUERY_LATENCY_US),
    }
}

/// Largest table whose full snapshot count stays under ~900us — heavy
/// enough to be scan-bound, light enough that four concurrent scans on
/// one core leave the replay path its CPU.
fn pick_scan_table(oracle: &MemDb, num_tables: usize) -> (TableId, Duration) {
    let mut best: Option<(TableId, usize, Duration)> = None;
    let mut cheapest: Option<(TableId, usize, Duration)> = None;
    for t in 0..num_tables as u32 {
        let table = TableId::new(t);
        let mut cost = Duration::MAX;
        let mut rows = 0;
        for _ in 0..3 {
            let start = Instant::now();
            rows = Scan::at(Timestamp::MAX).count(oracle.table(table));
            cost = cost.min(start.elapsed());
        }
        if cheapest.is_none_or(|(_, _, c)| cost < c) {
            cheapest = Some((table, rows, cost));
        }
        if cost <= Duration::from_micros(900) && best.is_none_or(|(_, r, _)| rows > r) {
            best = Some((table, rows, cost));
        }
    }
    let (table, rows, cost) = best.or(cheapest).expect("at least one table");
    println!("scan target: table {table} ({rows} rows, ~{cost:.2?} per snapshot count)");
    (table, cost)
}

fn main() {
    let workload =
        tpcc::generate(&TpccConfig { num_txns: 12_800, warehouses: 2, ..Default::default() });
    // Coarse epochs for the scaling / freshness phases, fine epochs for
    // the admission-mode phase (more publishes = more parked waits).
    let coarse: Vec<_> = batch_into_epochs(workload.txns.clone(), 128)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let fine: Vec<_> = batch_into_epochs(workload.txns.clone(), 64)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let n = workload.num_tables();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(n, groups, rates, &workload.analytic_tables)
        .expect("paper grouping is well-formed");

    let oracle = MemDb::new(n);
    SerialEngine.replay_all(&coarse, &oracle).expect("oracle replay");
    let (table, scan_cost) = pick_scan_table(&oracle, n);

    // Pacing with headroom over this machine's replay cost, and a
    // freshness margin of 1.5 gaps so margin-policy queries always park.
    let gap = Duration::from_millis(40);
    let fine_gap = Duration::from_millis(20);
    let margin = QtsPolicy::Margin(gap.as_micros() as u64 * 3 / 2);
    println!(
        "stream: {} txns; scaling phase {} epochs @ {gap:?}, admission phase {} epochs @ {fine_gap:?}",
        workload.txns.len(),
        coarse.len(),
        fine.len(),
    );

    let run = |epochs: &[EncodedEpoch], gap, workers, clients, mode, policy| {
        pace_and_serve(epochs, n, &grouping, gap, workers, clients, mode, policy, table)
    };
    println!("\n-- replay baseline (no queries) --");
    let base = run(&coarse, gap, 1, 0, AdmissionMode::EventDriven, margin);
    println!("visibility delay mean {:.0}us", base.vis_delay_mean_us);

    println!("\n-- worker scaling, event-driven admission --");
    let one = run(&coarse, gap, 1, 1, AdmissionMode::EventDriven, margin);
    let four = run(&coarse, gap, 4, 4, AdmissionMode::EventDriven, margin);
    let scaling = four.throughput_qps / one.throughput_qps;
    for (label, s) in [("1 worker", &one), ("4 workers", &four)] {
        println!(
            "{label}: {} queries in {:.2}s = {:.1} q/s (latency mean {:.1}ms, \
             admission wait mean {:.1}ms)",
            s.served,
            s.window_s,
            s.throughput_qps,
            s.latency_mean_us / 1e3,
            s.admission_wait_mean_us / 1e3,
        );
    }
    println!("scaling 1→4 workers: {scaling:.2}x (target >= 2x)");
    let vis_ratio = four.vis_delay_mean_us / base.vis_delay_mean_us;
    println!(
        "visibility delay under load: {:.0}us vs {:.0}us baseline = {:.3}x (target <= 1.10x)",
        four.vis_delay_mean_us, base.vis_delay_mean_us, vis_ratio
    );

    println!("\n-- admission modes at equal load (4 workers, 4 clients, next-publish queries) --");
    let poll_ms = NodeOptions::default().poll_interval.as_secs_f64() * 1e3;
    let event = run(&fine, fine_gap, 4, 4, AdmissionMode::EventDriven, QtsPolicy::NextPublish);
    let poll = run(&fine, fine_gap, 4, 4, AdmissionMode::SleepPoll, QtsPolicy::NextPublish);
    let event_wait = event.queue_wait_mean_us + event.admission_wait_mean_us;
    let poll_wait = poll.queue_wait_mean_us + poll.admission_wait_mean_us;
    for (label, s, w) in [("event-driven", &event, event_wait), ("sleep-poll", &poll, poll_wait)] {
        println!(
            "{label}: mean wait {:.2}ms (queue {:.2}ms + admission {:.2}ms) over {} queries",
            w / 1e3,
            s.queue_wait_mean_us / 1e3,
            s.admission_wait_mean_us / 1e3,
            s.served,
        );
    }
    println!(
        "event-driven saves {:.2}ms mean wait vs {poll_ms:.0}ms-interval polling",
        (poll_wait - event_wait) / 1e3
    );

    let scaling_ok = scaling >= 2.0;
    let vis_ok = vis_ratio <= 1.10;
    let wait_ok = event_wait < poll_wait;
    println!("\nacceptance: scaling {scaling_ok} / visibility {vis_ok} / event-vs-poll {wait_ok}");

    if std::path::Path::new("results").is_dir() {
        let json = format!(
            "{{\n  \"benchmark\": \"query_service\",\n  \"workload\": \"tpcc\",\n  \
             \"txns\": {},\n  \"scan_table\": {},\n  \"scan_cost_us\": {},\n  \
             \"scaling_phase\": {{\n    \"epochs\": {}, \"epoch_gap_ms\": {}, \
             \"freshness_margin_gaps\": 1.5,\n    \
             \"throughput_1_worker_qps\": {:.1}, \"throughput_4_workers_qps\": {:.1},\n    \
             \"scaling_1_to_4\": {:.2}, \"target\": 2.0\n  }},\n  \
             \"freshness_phase\": {{\n    \
             \"vis_delay_baseline_us\": {:.0}, \"vis_delay_under_load_us\": {:.0},\n    \
             \"ratio\": {:.3}, \"target\": 1.10\n  }},\n  \
             \"admission_phase\": {{\n    \"epochs\": {}, \"epoch_gap_ms\": {}, \
             \"poll_interval_ms\": {poll_ms:.1},\n    \
             \"event_driven_mean_wait_us\": {:.0}, \"sleep_poll_mean_wait_us\": {:.0},\n    \
             \"event_driven_queries\": {}, \"sleep_poll_queries\": {}\n  }},\n  \
             \"all_targets_met\": {}\n}}\n",
            workload.txns.len(),
            table.raw(),
            scan_cost.as_micros(),
            coarse.len(),
            gap.as_millis(),
            one.throughput_qps,
            four.throughput_qps,
            scaling,
            base.vis_delay_mean_us,
            four.vis_delay_mean_us,
            vis_ratio,
            fine.len(),
            fine_gap.as_millis(),
            event_wait,
            poll_wait,
            event.served,
            poll.served,
            scaling_ok && vis_ok && wait_ok,
        );
        std::fs::write("results/BENCH_query_service.json", json).expect("write results");
        println!("wrote results/BENCH_query_service.json");
    }
}
