//! Fault-tolerance integration tests: the checksummed WAL, the ingest
//! resync loop, and supervised replay with per-group quarantine, exercised
//! end to end through seeded deterministic fault injection.
//!
//! The contract under test: with fault injection enabled, replay either
//! fully recovers to the fault-free serial oracle's state (transient
//! delivery faults, healed by re-requesting) or quarantines the affected
//! groups with frozen visibility watermarks (persistent in-record
//! corruption) — and no replay-thread failure ever escapes as a panic.
//!
//! The `torn_tail` / `bit_flip` / `reorder` tests double as the CI
//! fault-matrix entries (see `.github/workflows/ci.yml`).

use aets_suite::common::{
    ColumnId, DmlOp, FxHashSet, GroupId, Lsn, RowKey, TableId, Timestamp, TxnId, Value,
};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    run_realtime, AetsConfig, AetsEngine, ReplayEngine, ReplayMetrics, RetryPolicy, RunnerConfig,
    RunnerQuery, SerialEngine, TableGrouping, VisibilityBoard, Workload as RunnerWorkload,
};
use aets_suite::wal::{
    batch_into_epochs, crc32, encode_epoch, DmlEntry, EncodedEpoch, FaultInjector, FaultKind,
    FaultPlan, MetaScanner, TxnLog,
};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use aets_suite::workloads::Workload;
use std::time::Duration;

fn tpcc_setup(num_txns: usize, epoch_size: usize) -> (Workload, Vec<EncodedEpoch>, u64) {
    let w = tpcc::generate(&TpccConfig { num_txns, warehouses: 2, ..Default::default() });
    let epochs: Vec<EncodedEpoch> =
        batch_into_epochs(w.txns.clone(), epoch_size).unwrap().iter().map(encode_epoch).collect();
    let oracle = MemDb::new(w.table_names.len());
    SerialEngine.replay_all(&epochs, &oracle).unwrap();
    let digest = oracle.digest_at(Timestamp::MAX);
    (w, epochs, digest)
}

fn engine(w: &Workload) -> AetsEngine {
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.table_names.len(), groups, rates, &w.analytic_tables).unwrap();
    let retry = RetryPolicy { max_retries: 5, base_backoff_us: 1, max_backoff_us: 50 };
    AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, retry, ..Default::default() })
        .build()
        .unwrap()
}

/// Replays a tpcc stream under a seeded transient fault schedule and
/// asserts full recovery to the oracle digest; returns the metrics so
/// callers can check which resync counters moved.
fn assert_recovers(kinds: Vec<FaultKind>, seed: u64) -> ReplayMetrics {
    let (w, epochs, want) = tpcc_setup(600, 64);
    let eng = engine(&w);
    let db = MemDb::new(w.table_names.len());
    let board = VisibilityBoard::builder(eng.board_groups()).build();
    let mut source = FaultInjector::new(epochs, FaultPlan::new(seed, 0.5, kinds));
    let m = eng.replay_stream(&mut source, &db, &board).unwrap();
    assert!(!m.degraded(), "transient faults must heal, not quarantine");
    assert!(m.ingest_retries > 0, "seed {seed} faulted nothing; pick another");
    assert_eq!(db.digest_at(Timestamp::MAX), want, "recovered state diverged from oracle");
    assert!(db.all_chains_ordered());
    m
}

#[test]
fn recovers_from_torn_tail_faults() {
    let m = assert_recovers(vec![FaultKind::TornTail], 1);
    assert!(m.checksum_failures > 0, "torn tails must trip the epoch frame CRC");
}

#[test]
fn recovers_from_bit_flip_faults() {
    let m = assert_recovers(vec![FaultKind::BitFlip], 2);
    assert!(m.checksum_failures > 0, "bit flips must trip the epoch frame CRC");
}

#[test]
fn recovers_from_reorder_faults() {
    let m = assert_recovers(vec![FaultKind::Reorder, FaultKind::Duplicate, FaultKind::Drop], 3);
    assert!(m.epoch_gaps > 0, "mis-sequenced deliveries must trip the sequence check");
}

#[test]
fn recovers_from_stalled_deliveries() {
    let m = assert_recovers(vec![FaultKind::Stall], 4);
    assert!(m.ingest_stalls > 0, "stalls must be counted");
}

#[test]
fn persistent_corruption_quarantines_without_panic() {
    // Corruption stamped *inside* the frame (record CRC broken, frame CRC
    // valid) is invisible to ingest and cannot be healed by re-requesting:
    // replay must complete degraded — affected groups quarantined, healthy
    // groups at the stream head, global watermark frozen — not panic.
    let (w, epochs, _) = tpcc_setup(600, 64);
    let eng = engine(&w);
    let db = MemDb::new(w.table_names.len());
    let board = VisibilityBoard::builder(eng.board_groups()).build();
    let plan = FaultPlan::new(21, 1.0, vec![FaultKind::RecordCorruption]).persistent();
    let mut source = FaultInjector::new(epochs.clone(), plan);
    let m = eng.replay_stream(&mut source, &db, &board).unwrap();
    assert!(m.degraded(), "persistent record corruption must quarantine");
    assert_eq!(m.quarantined_groups, eng.quarantined_groups());
    assert_eq!(m.ingest_faults(), 0, "in-record corruption is invisible at ingest");
    let last = epochs.last().unwrap().max_commit_ts;
    for g in 0..eng.board_groups() {
        let tg = board.tg_cmt_ts(GroupId::new(g as u32));
        if m.quarantined_groups.contains(&g) {
            assert!(tg < last, "quarantined group {g} advanced to the stream head");
        } else {
            assert_eq!(tg, last, "healthy group {g} must keep replaying");
        }
    }
    assert!(board.global_cmt_ts() < last, "global watermark must freeze while degraded");
    assert!(db.all_chains_ordered());
}

#[test]
fn unhealable_delivery_faults_exhaust_retries_with_typed_errors() {
    let (w, epochs, _) = tpcc_setup(200, 64);

    // A channel that tears every delivery forever: resync exhausts its
    // retries on the frame CRC and surfaces a codec error.
    let eng = engine(&w);
    let db = MemDb::new(w.table_names.len());
    let board = VisibilityBoard::builder(eng.board_groups()).build();
    let plan = FaultPlan::new(7, 1.0, vec![FaultKind::TornTail]).persistent();
    let mut source = FaultInjector::new(epochs.clone(), plan);
    let err = eng.replay_stream(&mut source, &db, &board).unwrap_err();
    assert_eq!(err.kind(), "codec", "got {err}");

    // A channel that drops the requested epoch forever: resync exhausts
    // its retries on the sequence check and surfaces a protocol error.
    let eng = engine(&w);
    let db = MemDb::new(w.table_names.len());
    let board = VisibilityBoard::builder(eng.board_groups()).build();
    let plan = FaultPlan::new(7, 1.0, vec![FaultKind::Drop]).persistent();
    let mut source = FaultInjector::new(epochs, plan);
    let err = eng.replay_stream(&mut source, &db, &board).unwrap_err();
    assert_eq!(err.kind(), "protocol", "got {err}");
}

/// 12 transactions, each writing table 0 (group 0, hot) and table 2
/// (group 1, cold), batched into 3 epochs of 4.
fn two_group_stream() -> (Vec<EncodedEpoch>, TableGrouping) {
    let txns: Vec<TxnLog> = (1..=12u64)
        .map(|i| TxnLog {
            txn_id: TxnId::new(i),
            commit_ts: Timestamp::from_micros(i * 10),
            entries: [0u32, 2]
                .iter()
                .enumerate()
                .map(|(j, &table)| DmlEntry {
                    lsn: Lsn::new(i * 10 + j as u64),
                    txn_id: TxnId::new(i),
                    ts: Timestamp::from_micros(i * 10),
                    table: TableId::new(table),
                    op: DmlOp::Insert,
                    key: RowKey::new(i),
                    row_version: 1,
                    cols: vec![(ColumnId::new(0), Value::Int(i as i64))],
                    before: None,
                })
                .collect(),
        })
        .collect();
    let epochs = batch_into_epochs(txns, 4).unwrap().iter().map(encode_epoch).collect::<Vec<_>>();
    let hot: FxHashSet<TableId> = [TableId::new(0)].into_iter().collect();
    let grouping = TableGrouping::new(
        3,
        vec![vec![TableId::new(0), TableId::new(1)], vec![TableId::new(2)]],
        vec![10.0, 1.0],
        &hot,
    )
    .unwrap();
    (epochs, grouping)
}

/// Breaks the record CRC of `table`'s first DML and restamps the frame
/// CRC, mirroring `FaultKind::RecordCorruption` at a chosen position.
fn corrupt_first_dml_of(epoch: &EncodedEpoch, table: TableId) -> EncodedEpoch {
    let range = MetaScanner::new(epoch.bytes.clone())
        .filter_map(|i| i.ok())
        .find(|(meta, _)| meta.table == Some(table))
        .map(|(_, r)| r)
        .expect("epoch holds a DML of the table");
    let mut v = epoch.bytes.to_vec();
    v[range.end - 1] ^= 0x01;
    let crc = crc32(&v);
    EncodedEpoch { crc32: crc, bytes: v.into(), ..epoch.clone() }
}

#[test]
fn degraded_runner_times_out_quarantined_queries() {
    // Epoch 1 carries unrecoverable corruption in group 1's first
    // mini-txn. The realtime run must finish degraded: the analytical
    // query over the healthy group is served, the one over the
    // quarantined group blocks on Algorithm 3 until its timeout instead
    // of reading past the frozen watermark.
    let (mut epochs, grouping) = two_group_stream();
    epochs[1] = corrupt_first_dml_of(&epochs[1], TableId::new(2));
    let arrivals: Vec<Timestamp> = epochs.iter().map(|e| e.max_commit_ts).collect();
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .unwrap();
    let db = std::sync::Arc::new(MemDb::new(3));
    let queries = vec![
        RunnerQuery { arrival: epochs[0].max_commit_ts, tables: vec![TableId::new(0)] },
        RunnerQuery { arrival: epochs[2].max_commit_ts, tables: vec![TableId::new(2)] },
    ];
    let cfg = RunnerConfig {
        time_scale: 1000.0,
        query_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let outcome = run_realtime(
        std::sync::Arc::new(engine),
        db,
        &RunnerWorkload { epochs: &epochs, arrivals: &arrivals, queries: &queries },
        &cfg,
    )
    .unwrap();
    assert!(outcome.degraded(), "runner must surface the quarantine");
    assert_eq!(outcome.metrics.quarantined_groups, vec![1]);
    assert_eq!(outcome.delays.len(), 1, "the healthy-group query is served");
    assert_eq!(outcome.timed_out, 1, "the quarantined-group query must time out");
    assert_eq!(outcome.metrics.txns, 12, "healthy groups replay the whole stream");
}
