//! Crash-consistency integration tests: the durable WAL segment store,
//! epoch-aligned checkpoints, and restart recovery, driven end to end by
//! deterministic crash injection.
//!
//! The contract under test: for ANY seeded crash schedule — killing the
//! metered process mid-segment-write, mid-checkpoint, or mid-recovery —
//! a supervised sequence of restarts converges to exactly the state the
//! fault-free serial oracle produces, and each restart re-replays only
//! the WAL suffix past the newest durable checkpoint (never the full
//! history).
//!
//! The `crash_mid_segment_write` / `crash_mid_checkpoint` /
//! `stale_manifest_falls_back` tests double as the CI crash-matrix
//! entries (see `.github/workflows/ci.yml`).

use aets_suite::common::Timestamp;
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, DurableBackup, DurableOptions, ReplayEngine, SerialEngine,
    TableGrouping,
};
use aets_suite::wal::{
    batch_into_epochs, encode_epoch, CrashClock, EncodedEpoch, FsyncPolicy, SegmentConfig,
};
use aets_suite::workloads::{bustracker, tpcc, Workload};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

struct Fixture {
    epochs: Vec<EncodedEpoch>,
    num_tables: usize,
    grouping: TableGrouping,
    oracle_digest: u64,
}

fn build_fixture(w: Workload, epoch_size: usize) -> Fixture {
    let epochs: Vec<EncodedEpoch> =
        batch_into_epochs(w.txns.clone(), epoch_size).unwrap().iter().map(encode_epoch).collect();
    let num_tables = w.num_tables();
    let hot = w.analytic_tables.clone();
    let written = w.written_tables();
    let grouping =
        TableGrouping::per_table(
            num_tables,
            &hot,
            |t| {
                if written.contains(&t) {
                    50.0
                } else {
                    1.0
                }
            },
        );
    let oracle = MemDb::new(num_tables);
    SerialEngine.replay_all(&epochs, &oracle).unwrap();
    let oracle_digest = oracle.digest_at(Timestamp::MAX);
    Fixture { epochs, num_tables, grouping, oracle_digest }
}

fn tpcc_fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        build_fixture(
            tpcc::generate(&tpcc::TpccConfig {
                num_txns: 600,
                warehouses: 2,
                ..Default::default()
            }),
            48,
        )
    })
}

fn bustracker_fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        build_fixture(
            bustracker::generate(&bustracker::BusTrackerConfig {
                num_txns: 600,
                ..Default::default()
            }),
            48,
        )
    })
}

fn fresh_engine(grouping: &TableGrouping) -> AetsEngine {
    AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .unwrap()
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aets-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_opts() -> DurableOptions {
    DurableOptions {
        checkpoint_every: 3,
        keep_checkpoints: 2,
        segment: SegmentConfig { epochs_per_segment: 2, ..Default::default() },
        gc_before_checkpoint: true,
        ..Default::default()
    }
}

/// Group-commit variant: one fsync covers up to four frames, so acked
/// epochs past [`aets_suite::replay::DurableBackup::wal_synced_seq`] may
/// be lost to a crash and re-ingested on resync.
fn coalesced_opts() -> DurableOptions {
    DurableOptions {
        segment: SegmentConfig {
            epochs_per_segment: 4,
            fsync: FsyncPolicy::Coalesced { max_frames: 4, max_wait: Duration::from_secs(3600) },
        },
        ..durable_opts()
    }
}

// ---------------------------------------------------------------------
// The supervised crash-restart harness
// ---------------------------------------------------------------------

struct SupervisedOutcome {
    digest: u64,
    restarts: u64,
    /// Longest WAL suffix any single recovery had to re-replay.
    max_suffix: u64,
}

/// Runs the full epoch stream through a [`DurableBackup`], killing the
/// metered process after `schedule[i]` filesystem operations in life `i`
/// and restarting it from disk, until the stream completes (lives past
/// the schedule run unmetered). Asserts after every restart that
/// recovery resumed at or after the newest checkpoint known durable
/// before the crash — i.e. only the log suffix is ever re-replayed.
fn supervised_run(
    fx: &Fixture,
    opts: &DurableOptions,
    wal_dir: &Path,
    ckpt_dir: &Path,
    schedule: &[u64],
) -> SupervisedOutcome {
    let mut life = 0usize;
    let mut restarts = 0u64;
    let mut max_suffix = 0u64;
    // Newest checkpoint seq whose write was acked before any crash.
    let mut known_ckpt = 0u64;
    // Highest WAL sequence known fsync-covered before any crash: the
    // crash-loss bound under a coalescing fsync policy.
    let mut known_synced: Option<u64> = None;
    loop {
        let clock = schedule.get(life).map(|b| CrashClock::with_budget(*b));
        life += 1;
        let mut node = match DurableBackup::open(
            wal_dir,
            ckpt_dir,
            fresh_engine(&fx.grouping),
            fx.num_tables,
            opts.clone(),
            clock,
        ) {
            Ok(n) => n,
            Err(e) if e.is_crash() => {
                restarts += 1;
                continue; // crashed mid-recovery: restart again
            }
            Err(e) => panic!("recovery failed with a non-crash error: {e}"),
        };
        let rec = node.recovery();
        match rec.restored_seq {
            Some(r) => assert!(
                r >= known_ckpt,
                "life {life}: restored from epoch {r} although checkpoint \
                 {known_ckpt} was durable — recovery went further back than \
                 the log suffix"
            ),
            None => assert_eq!(
                known_ckpt, 0,
                "life {life}: durable checkpoint {known_ckpt} was not found"
            ),
        }
        max_suffix = max_suffix.max(rec.suffix_epochs);
        if let Some(synced) = known_synced {
            assert!(
                node.next_seq() > synced,
                "life {life}: epoch {synced} was fsync-covered before the \
                 crash but recovery resumed at {} — a torn batch truncated \
                 below the durable prefix",
                node.next_seq()
            );
        }

        let mut crashed = false;
        while (node.next_seq() as usize) < fx.epochs.len() {
            let e = &fx.epochs[node.next_seq() as usize];
            match node.ingest(e) {
                Ok(()) => {
                    known_ckpt = known_ckpt.max(node.last_checkpoint_seq());
                    known_synced = known_synced.max(node.wal_synced_seq());
                }
                Err(err) if err.is_crash() => {
                    restarts += 1;
                    crashed = true;
                    break;
                }
                Err(err) => panic!("ingest failed with a non-crash error: {err}"),
            }
        }
        if !crashed {
            return SupervisedOutcome {
                digest: node.db().digest_at(Timestamp::MAX),
                restarts,
                max_suffix,
            };
        }
    }
}

fn run_schedule(fx: &Fixture, schedule: &[u64], tag: &str) -> SupervisedOutcome {
    run_schedule_opts(fx, &durable_opts(), schedule, tag)
}

fn run_schedule_opts(
    fx: &Fixture,
    opts: &DurableOptions,
    schedule: &[u64],
    tag: &str,
) -> SupervisedOutcome {
    let wal_dir = scratch(&format!("{tag}-wal"));
    let ckpt_dir = scratch(&format!("{tag}-ckpt"));
    let out = supervised_run(fx, opts, &wal_dir, &ckpt_dir, schedule);
    assert_eq!(
        out.digest, fx.oracle_digest,
        "{tag}: recovered digest diverged from the fault-free serial oracle \
         (schedule {schedule:?}, {} restarts)",
        out.restarts
    );
    assert!(
        out.max_suffix <= opts.checkpoint_every,
        "{tag}: a recovery replayed {} epochs, more than the checkpoint \
         cadence of {} — restart cost is not bounded by the cadence",
        out.max_suffix,
        opts.checkpoint_every
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    out
}

// ---------------------------------------------------------------------
// Property: any crash schedule converges to the oracle
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TPC-C: crash after an arbitrary number of filesystem operations,
    /// up to three times in a row (including crashes during the recovery
    /// of a previous crash), then finish. The recovered digest must equal
    /// the fault-free oracle digest, and no recovery may replay more than
    /// the post-checkpoint suffix.
    #[test]
    fn tpcc_any_crash_schedule_converges(
        schedule in prop::collection::vec(1u64..300, 1..4)
    ) {
        // A budget larger than the run's total op count simply completes
        // without crashing, so `restarts <= schedule.len()` rather than
        // strictly equal.
        let out = run_schedule(tpcc_fixture(), &schedule, "prop-tpcc");
        prop_assert!(out.restarts as usize <= schedule.len());
    }

    /// BusTracker: same contract on the second headline workload.
    #[test]
    fn bustracker_any_crash_schedule_converges(
        schedule in prop::collection::vec(1u64..300, 1..3)
    ) {
        run_schedule(bustracker_fixture(), &schedule, "prop-bus");
    }
}

// ---------------------------------------------------------------------
// Pinned crash points (CI crash-matrix seeds)
// ---------------------------------------------------------------------

/// Crash-matrix seed 1: the crash instant lands inside the very first
/// WAL frame write — the torn tail must be discarded on reopen and the
/// epoch re-ingested.
#[test]
fn crash_mid_segment_write() {
    let fx = tpcc_fixture();
    // First append charges: create segment, segment header write, frame
    // write, fsync. Budget 3 tears the first frame write itself.
    let out = run_schedule(fx, &[3], "mid-segment");
    assert_eq!(out.restarts, 1);
}

/// Crash-matrix seed 2: the crash instant lands inside the checkpoint
/// write (torn manifest tmp / missed rename). Recovery must either see
/// the completed checkpoint or cleanly fall back to the state before it
/// — never a half-visible manifest.
#[test]
fn crash_mid_checkpoint() {
    let fx = tpcc_fixture();
    // Probe one unmetered life to find the operation window of the first
    // checkpoint (cadence 3): record the op counter as each ingest
    // completes; the first ingest that bumps `checkpoints_written`
    // contains the checkpoint's five operations at its end.
    let (before, after) = {
        let wal_dir = scratch("probe-wal");
        let ckpt_dir = scratch("probe-ckpt");
        let clock = CrashClock::unlimited();
        let mut node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&fx.grouping),
            fx.num_tables,
            durable_opts(),
            Some(clock.clone()),
        )
        .unwrap();
        let mut window = None;
        for e in &fx.epochs {
            let pre = clock.used();
            node.ingest(e).unwrap();
            if node.metrics().checkpoints_written == 1 {
                window = Some((pre, clock.used()));
                break;
            }
        }
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        window.expect("cadence must cut a checkpoint")
    };
    // Crash at every op inside the triggering ingest — WAL append ops
    // first, then the checkpoint's create-tmp / write / fsync / rename /
    // dir-fsync. Every cut must recover to the oracle.
    for budget in before + 1..=after {
        let out = run_schedule(fx, &[budget], "mid-checkpoint");
        assert_eq!(out.restarts, 1, "budget {budget} must crash exactly once");
    }
}

/// Crash-matrix seed 3: the newest manifest is corrupted on disk (torn
/// by a storage fault after the fact). Recovery must fall back to the
/// older retained checkpoint and re-replay the longer WAL suffix.
#[test]
fn stale_manifest_falls_back() {
    let fx = tpcc_fixture();
    let wal_dir = scratch("stale-wal");
    let ckpt_dir = scratch("stale-ckpt");
    let opts = durable_opts();
    {
        let mut node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&fx.grouping),
            fx.num_tables,
            opts.clone(),
            None,
        )
        .unwrap();
        for e in &fx.epochs {
            node.ingest(e).unwrap();
        }
        assert!(node.metrics().checkpoints_written >= 2);
        assert_eq!(node.db().digest_at(Timestamp::MAX), fx.oracle_digest);
    }
    // Corrupt the newest manifest's body.
    let mut manifests: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ack"))
        .collect();
    manifests.sort();
    assert!(manifests.len() >= 2, "retention must keep two manifests");
    let newest = manifests.last().unwrap();
    let mut raw = std::fs::read(newest).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x20;
    std::fs::write(newest, &raw).unwrap();

    let node = DurableBackup::open(
        &wal_dir,
        &ckpt_dir,
        fresh_engine(&fx.grouping),
        fx.num_tables,
        opts,
        None,
    )
    .unwrap();
    let rec = node.recovery();
    assert_eq!(rec.manifest_fallbacks, 1, "the corrupt newest manifest must be skipped");
    let restored = rec.restored_seq.expect("older manifest must load");
    assert!(restored < fx.epochs.len() as u64, "fallback restores an older barrier");
    assert!(
        rec.suffix_epochs > 0,
        "the longer suffix past the older checkpoint must be re-replayed"
    );
    assert_eq!(
        node.db().digest_at(Timestamp::MAX),
        fx.oracle_digest,
        "fallback recovery must still converge to the oracle"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

/// Crash-matrix seed 4 (group commit): under `FsyncPolicy::Coalesced`
/// an acked append is no longer durable — only the fsync-covered prefix
/// is. Crash at every filesystem operation of a short run and require,
/// at every cut: (1) recovery never resumes below the fsync-covered
/// bound (asserted inside the harness via `wal_synced_seq`), (2) a torn
/// coalesced batch truncates to the last fully-written frame — no
/// half-frame is ever replayed, because the recovered digest still
/// converges to the fault-free oracle after the lost tail re-ingests.
#[test]
fn coalesced_group_commit_crash_sweep() {
    let fx = tpcc_fixture();
    let opts = coalesced_opts();
    // Probe the total op count of a clean metered run over a short
    // prefix of the stream.
    let total = {
        let wal_dir = scratch("coalesced-probe-wal");
        let ckpt_dir = scratch("coalesced-probe-ckpt");
        let clock = CrashClock::unlimited();
        let mut node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&fx.grouping),
            fx.num_tables,
            opts.clone(),
            Some(clock.clone()),
        )
        .unwrap();
        for e in &fx.epochs[..6.min(fx.epochs.len())] {
            node.ingest(e).unwrap();
        }
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        clock.used()
    };
    for budget in 1..=total {
        let out = run_schedule_opts(fx, &opts, &[budget], "coalesced");
        assert!(out.restarts <= 1);
    }
}

/// Group commit under arbitrary multi-crash schedules (including crashes
/// during the recovery of a previous crash): same convergence contract
/// as the default-policy property above.
#[test]
fn coalesced_multi_crash_schedules_converge() {
    let fx = tpcc_fixture();
    let opts = coalesced_opts();
    for schedule in [&[7u64, 5][..], &[23, 11, 3], &[64, 64], &[150, 2, 90]] {
        run_schedule_opts(fx, &opts, schedule, "coalesced-multi");
    }
}

/// Dense sweep on a short stream: crash at EVERY filesystem operation of
/// the whole run, one life each, and require oracle convergence every
/// time. This is the exhaustive version of the sampled property above.
#[test]
fn every_single_crash_point_converges() {
    let fx = tpcc_fixture();
    // Probe the total op count of a clean metered run.
    let total = {
        let wal_dir = scratch("dense-probe-wal");
        let ckpt_dir = scratch("dense-probe-ckpt");
        let clock = CrashClock::unlimited();
        let mut node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&fx.grouping),
            fx.num_tables,
            durable_opts(),
            Some(clock.clone()),
        )
        .unwrap();
        for e in &fx.epochs[..6.min(fx.epochs.len())] {
            node.ingest(e).unwrap();
        }
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        clock.used()
    };
    for budget in 1..=total {
        run_schedule(fx, &[budget], "dense");
    }
}

// ---------------------------------------------------------------------
// Property: quarantine freezes WAL retention, across reopen
// ---------------------------------------------------------------------

/// Poisons the first epoch at index >= `from` that carries a DML of
/// `victim`: one record byte flipped, frame CRC re-stamped so the
/// corruption is only detected at replay time (record CRC), which
/// quarantines the victim's group. Returns the poisoned index.
fn poison_victim_epoch(
    epochs: &mut [EncodedEpoch],
    victim: aets_suite::common::TableId,
    from: usize,
) -> Option<usize> {
    use aets_suite::wal::{crc32, MetaScanner};
    let eidx = epochs.iter().enumerate().position(|(i, e)| {
        i >= from
            && MetaScanner::new(e.bytes.clone())
                .filter_map(|it| it.ok())
                .any(|(meta, _)| meta.table == Some(victim))
    })?;
    let range = MetaScanner::new(epochs[eidx].bytes.clone())
        .filter_map(|it| it.ok())
        .find(|(meta, _)| meta.table == Some(victim))
        .map(|(_, r)| r)?;
    let mut v = epochs[eidx].bytes.to_vec();
    v[range.end - 1] ^= 0x01;
    epochs[eidx] = EncodedEpoch { crc32: crc32(&v), bytes: v.into(), ..epochs[eidx].clone() };
    Some(eidx)
}

/// The retention invariant under quarantine: the WAL's first retained
/// epoch never passes the oldest manifest (recovery's fallback anchor),
/// and while any group is quarantined neither the oldest manifest nor
/// the retention point moves at all — the frozen group's unreplayed
/// suffix must survive until the quarantine clears.
fn assert_retention_frozen(
    node: &DurableBackup,
    frozen: &mut Option<(Option<u64>, Option<u64>)>,
    ctx: &str,
) {
    let first = node.wal_first_retained_seq();
    let oldest = node.oldest_checkpoint_seq().unwrap();
    if let (Some(f), Some(o)) = (first, oldest) {
        assert!(f <= o, "{ctx}: WAL first retained {f} passed the oldest manifest {o}");
    }
    if node.board().any_quarantined() {
        match frozen {
            None => *frozen = Some((first, oldest)),
            Some(state) => {
                assert_eq!(
                    (first, oldest),
                    *state,
                    "{ctx}: retention state moved while quarantined"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any poison position, checkpoint cadence, and reopen point
    /// past the quarantine: no WAL segment is ever retired past the
    /// oldest manifest, and retention is completely frozen from the
    /// quarantine instant on — including across a crash/reopen, whose
    /// suffix replay re-poisons the fresh engine and must re-freeze
    /// before the overdue-checkpoint path can truncate anything.
    #[test]
    fn quarantine_never_outruns_wal_retention(
        poison_frac in 0.1f64..0.8,
        cadence in 2u64..5,
        reopen_gap in 1usize..6,
    ) {
        let fx = tpcc_fixture();
        let mut epochs = fx.epochs.clone();
        let victim = aets_suite::common::TableId::new((fx.num_tables - 1) as u32);
        let from = (epochs.len() as f64 * poison_frac) as usize;
        let Some(eidx) = poison_victim_epoch(&mut epochs, victim, from) else {
            // No epoch at or past `from` touches the victim: vacuous case.
            return;
        };
        let wal_dir = scratch("quar-prop-wal");
        let ckpt_dir = scratch("quar-prop-ckpt");
        let opts = DurableOptions { checkpoint_every: cadence, ..durable_opts() };

        let mut node = DurableBackup::open(
            &wal_dir, &ckpt_dir, fresh_engine(&fx.grouping), fx.num_tables, opts.clone(), None,
        ).unwrap();
        let mut frozen = None;
        let stop = (eidx + reopen_gap).min(epochs.len());
        for e in &epochs[..stop] {
            node.ingest(e).unwrap();
            assert_retention_frozen(&node, &mut frozen, "first life");
        }
        prop_assert!(node.board().any_quarantined(), "poisoned epoch must quarantine");
        prop_assert!(frozen.is_some());

        // Crash: drop the node, reopen on the same directories. The WAL
        // suffix includes the poisoned epoch, so recovery re-quarantines
        // and the frozen retention state must carry over unchanged.
        drop(node);
        let mut node = DurableBackup::open(
            &wal_dir, &ckpt_dir, fresh_engine(&fx.grouping), fx.num_tables, opts, None,
        ).unwrap();
        prop_assert!(
            node.board().any_quarantined(),
            "reopen replayed the poisoned suffix and must re-quarantine"
        );
        assert_retention_frozen(&node, &mut frozen, "reopen");
        for e in &epochs[stop..] {
            node.ingest(e).unwrap();
            assert_retention_frozen(&node, &mut frozen, "second life");
        }
        // The frozen suffix is still fully covered: recovery from the
        // oldest manifest (or epoch 0) can reach every epoch the
        // quarantined group has not replayed.
        if let Some(f) = node.wal_first_retained_seq() {
            prop_assert!(f <= eidx as u64, "poisoned epoch {eidx} fell off the WAL ({f})");
        }
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }
}
