//! Telemetry smoke test: a short paced TPC-C replay with live
//! instrumentation must produce parseable exposition snapshots, a
//! monotone gap-free event stream, and registry totals that agree with
//! the engine's own `ReplayMetrics`. This is the CI gate for the
//! observability layer (`.github/workflows/ci.yml`, `telemetry-smoke`).

use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    run_realtime, AetsConfig, AetsEngine, ReplayEngine, ReplayMetrics, RunnerConfig, TableGrouping,
    Workload,
};
use aets_suite::telemetry::{names, parse_exposition, EventKind, Telemetry};
use aets_suite::wal::{batch_into_epochs, encode_epoch, ReplicationTimeline};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::Arc;

/// Metric families every live snapshot must expose (the dashboard
/// contract): throughput counters, stage walls, freshness, watermarks.
const REQUIRED_FAMILIES: &[&str] = &[
    names::EPOCHS,
    names::TXNS,
    names::ENTRIES,
    names::BYTES,
    names::DISPATCH_US,
    names::STAGE1_US,
    names::VISIBILITY_LAG_US,
    names::TG_CMT_TS_US,
    names::GLOBAL_CMT_TS_US,
    names::INGEST_BYTES_PER_SEC,
];

#[test]
fn short_paced_replay_emits_parseable_consistent_telemetry() {
    let w = tpcc::generate(&TpccConfig { num_txns: 2_000, warehouses: 2, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 128).expect("positive epoch size");
    let arrivals = ReplicationTimeline::default().arrivals(&raw);
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    assert!(epochs.len() >= 8, "smoke run needs a few epochs");

    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("valid config");
    let db = Arc::new(MemDb::new(w.num_tables()));
    let cfg = RunnerConfig { time_scale: 50.0, telemetry_every: 4, ..Default::default() };
    let outcome = run_realtime(
        Arc::new(engine),
        db,
        &Workload { epochs: &epochs, arrivals: &arrivals, queries: &[] },
        &cfg,
    )
    .expect("realtime run");

    // ---- Exposition snapshots parse and carry the metric families. ----
    assert_eq!(outcome.telemetry_snapshots.len(), epochs.len() / 4);
    for text in &outcome.telemetry_snapshots {
        let samples = parse_exposition(text).expect("snapshot must parse");
        assert!(!samples.is_empty());
    }
    let last = outcome.telemetry_snapshots.last().expect("at least one snapshot");
    for family in REQUIRED_FAMILIES {
        assert!(last.contains(family), "snapshot is missing metric family {family}");
    }
    assert!(outcome.degraded_snapshot.is_none(), "healthy run must not trip the flight recorder");

    // ---- Registry totals agree with the engine's ReplayMetrics. -------
    let snap = tel.snapshot();
    assert_eq!(snap.counter_total(names::EPOCHS), epochs.len() as u64);
    assert_eq!(snap.counter_total(names::TXNS), outcome.metrics.txns as u64);
    assert_eq!(snap.counter_total(names::ENTRIES), outcome.metrics.entries as u64);
    assert_eq!(snap.counter_total(names::BYTES), outcome.metrics.bytes);
    assert_eq!(snap.gauge(names::QUARANTINED_GROUPS, ""), Some(0));
    assert!(
        snap.gauge(names::INGEST_BYTES_PER_SEC, "").unwrap_or(0) > 0,
        "a replay that moved bytes must publish a nonzero ingest rate"
    );

    // A snapshot projects back into a ReplayMetrics with the same counts.
    let projected = ReplayMetrics::project(&snap);
    assert_eq!(projected.txns, outcome.metrics.txns);
    assert_eq!(projected.entries, outcome.metrics.entries);
    assert_eq!(projected.epochs, epochs.len());

    // ---- Freshness was sampled on the primary clock. ------------------
    let lag = snap.histogram_summary_all(names::VISIBILITY_LAG_US).expect("lag histogram");
    assert!(lag.count > 0, "visibility lag must be sampled");
    assert!(lag.p50_us <= lag.p95_us && lag.p95_us <= lag.max_us);
    let last_ts = epochs.last().expect("nonempty").max_commit_ts.as_micros();
    assert_eq!(snap.gauge(names::GLOBAL_CMT_TS_US, ""), Some(last_ts));

    // ---- Event stream: monotone, gap-free, lifecycle-complete. --------
    let events = tel.drain_events();
    assert_eq!(tel.events_dropped(), 0, "short run must not overflow the ring");
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "event seqs must be strictly increasing");
        assert!(pair[0].at_us <= pair[1].at_us, "event stamps must be monotone");
    }
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>(), "gap-free without drops");
    let dispatched =
        events.iter().filter(|e| matches!(e.kind, EventKind::EpochDispatched { .. })).count();
    let committed =
        events.iter().filter(|e| matches!(e.kind, EventKind::EpochCommitted { .. })).count();
    assert_eq!(dispatched, epochs.len(), "one dispatch event per epoch");
    assert_eq!(committed, epochs.len(), "one commit event per epoch");
    // Commit timestamps inside the events replay the epoch watermarks.
    let mut last_cmt = 0;
    for e in &events {
        if let EventKind::EpochCommitted { max_commit_ts_us, .. } = e.kind {
            assert!(max_commit_ts_us >= last_cmt, "epoch watermarks are monotone");
            last_cmt = max_commit_ts_us;
        }
    }
    assert_eq!(last_cmt, last_ts);
}

#[test]
fn epoch_spans_form_a_closed_causal_chain() {
    // The tracing tentpole's engine-side contract: every replayed epoch
    // leaves a closed span tree — a dispatch root with translate,
    // commit-queue wait, apply, and both flip point spans hanging off it
    // — and no span's parent dangles outside the ring.
    use aets_suite::replay::VisibilityBoard;
    use aets_suite::telemetry::trace::{first_orphan, stages};

    let w = tpcc::generate(&TpccConfig { num_txns: 1_000, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 64).expect("positive epoch size");
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    assert!(epochs.len() >= 4, "needs a few epochs");
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("valid config");
    let db = MemDb::new(w.num_tables());
    let board = VisibilityBoard::builder(grouping.num_groups()).build();
    engine.replay(&epochs, &db, &board).expect("replay");

    let ring = tel.spans();
    assert_eq!(
        ring.epoch_hint(),
        Some(epochs.len() as u64 - 1),
        "the hint tracks the last committed epoch"
    );
    for seq in 0..epochs.len() as u64 {
        let spans = ring.for_epoch(seq);
        assert!(
            first_orphan(&spans).is_none(),
            "epoch {seq}: a span's parent must resolve within the ring"
        );
        let have: Vec<&str> = spans.iter().map(|s| s.stage).collect();
        for want in [
            stages::DISPATCH,
            stages::TRANSLATE,
            stages::COMMIT_WAIT,
            stages::APPLY,
            stages::FLIP_GROUP,
            stages::FLIP_GLOBAL,
        ] {
            assert!(have.contains(&want), "epoch {seq} is missing a {want} span ({have:?})");
        }
        // One dispatch root per epoch; everything else chains to it.
        let roots: Vec<_> = spans.iter().filter(|s| s.stage == stages::DISPATCH).collect();
        assert_eq!(roots.len(), 1, "epoch {seq}: exactly one dispatch root");
        let root = roots[0];
        assert_eq!(root.parent, None);
        for s in &spans {
            if s.stage != stages::DISPATCH {
                assert_eq!(
                    s.parent,
                    Some(root.id),
                    "epoch {seq}: {} must parent to the dispatch root",
                    s.stage
                );
                assert!(s.start_us >= root.start_us, "children start after the root opens");
            }
            assert!(s.end_us >= s.start_us, "every recorded span is closed");
        }
        // The flips cover every group exactly once per epoch.
        let flips = spans.iter().filter(|s| s.stage == stages::FLIP_GROUP).count();
        assert_eq!(flips, grouping.num_groups(), "epoch {seq}: one group flip per group");
        assert_eq!(
            spans.iter().filter(|s| s.stage == stages::FLIP_GLOBAL).count(),
            1,
            "epoch {seq}: exactly one global flip"
        );
    }
}

#[test]
fn span_sampling_knob_bounds_tracing_and_the_anomaly_latch_overrides_it() {
    use aets_suite::replay::VisibilityBoard;

    let w = tpcc::generate(&TpccConfig { num_txns: 800, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 32).expect("positive epoch size");
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    assert!(epochs.len() >= 8, "needs enough epochs to see the knob");
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");

    let run = |sampling: u64, latch_anomaly: bool| {
        let tel = Arc::new(Telemetry::new());
        tel.spans().set_sampling(sampling);
        if latch_anomaly {
            // Any anomaly event latches always-sample (here: a synthetic
            // quarantine notice before the run).
            tel.event(EventKind::GroupQuarantined { group: 0 });
        }
        let engine = AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(tel.clone())
            .build()
            .expect("valid config");
        let db = MemDb::new(w.num_tables());
        let board = VisibilityBoard::builder(grouping.num_groups()).build();
        engine.replay(&epochs, &db, &board).expect("replay");
        tel
    };

    // every-4th sampling: only the divisible epochs leave spans.
    let tel = run(4, false);
    for seq in 0..epochs.len() as u64 {
        let n = tel.spans().for_epoch(seq).len();
        if seq % 4 == 0 {
            assert!(n > 0, "epoch {seq} is sampled under every=4");
        } else {
            assert_eq!(n, 0, "epoch {seq} must be skipped under every=4");
        }
    }

    // 0 disables tracing outright...
    let tel = run(0, false);
    assert_eq!(tel.spans().recorded(), 0, "sampling 0 records nothing");

    // ...unless an anomaly latched always-sample first.
    let tel = run(0, true);
    assert!(tel.spans().anomalous());
    for seq in 0..epochs.len() as u64 {
        assert!(
            !tel.spans().for_epoch(seq).is_empty(),
            "epoch {seq}: the anomaly latch must override sampling 0"
        );
    }
}

#[test]
fn coalesced_durable_ingest_records_fsync_batch_sizes() {
    // The durable path under a coalesced fsync policy must surface how
    // many frames each group-committed fsync covered: the segment store's
    // sync observer feeds `wal_fsync_coalesced_frames`, and the ingest
    // throughput gauge reflects the engine's replay of each epoch.
    use aets_suite::replay::{DurableBackup, DurableOptions};
    use aets_suite::wal::{FsyncPolicy, SegmentConfig};
    use std::path::PathBuf;
    use std::time::Duration;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aets-telsmoke-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 64).expect("positive epoch size");
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    assert!(epochs.len() >= 9, "needs enough epochs to fill two fsync batches");

    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("valid config");
    let opts = DurableOptions {
        checkpoint_every: 0,
        segment: SegmentConfig {
            fsync: FsyncPolicy::Coalesced { max_frames: 4, max_wait: Duration::from_secs(3600) },
            ..Default::default()
        },
        ..Default::default()
    };
    let mut node =
        DurableBackup::open(scratch("wal"), scratch("ckpt"), engine, w.num_tables(), opts, None)
            .expect("open durable backup");
    for e in &epochs {
        node.ingest(e).expect("ingest");
    }

    let snap = tel.snapshot();
    let frames =
        snap.histogram_summary_all(names::WAL_FSYNC_COALESCED_FRAMES).expect("frames histogram");
    // max_frames = 4 ⇒ every recorded batch holds exactly 4 frames, and
    // with ≥ 9 epochs at least two batches must have group-committed.
    assert!(frames.count >= 2, "at least two coalesced fsyncs must have fired");
    assert_eq!(frames.max_us, 4, "no batch may exceed the max_frames bound");
    assert!(
        snap.gauge(names::INGEST_BYTES_PER_SEC, "").unwrap_or(0) > 0,
        "durable ingest must publish a nonzero ingest rate"
    );
}

#[test]
fn obs_endpoint_serves_metrics_spans_and_a_flipping_healthz() {
    // A BackupNode with `obs_addr` mounts the zero-dependency HTTP
    // endpoint: /metrics parses as Prometheus exposition, /spans.json
    // filters by epoch, and /healthz flips 200 -> 503 when a group
    // quarantines.
    use aets_suite::replay::{BackupNode, NodeOptions, ServiceOptions};
    use aets_suite::telemetry::http_get;

    let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 64).expect("positive epoch size");
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let tel = Arc::new(Telemetry::new());
    let engine = Arc::new(
        AetsEngine::builder(grouping)
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(tel.clone())
            .build()
            .expect("valid config"),
    );
    let node = BackupNode::builder()
        .engine(engine)
        .num_tables(w.num_tables())
        .telemetry(tel.clone())
        .options(NodeOptions {
            service: ServiceOptions::builder().obs_addr("127.0.0.1:0").build(),
            ..Default::default()
        })
        .build()
        .expect("node with endpoint");
    let addr = node.obs_addr().expect("endpoint bound");
    node.replay(&epochs).expect("replay");

    // /metrics parses (including the histogram _sum/_count contract).
    let (status, body) = http_get(addr, "/metrics").expect("GET /metrics");
    assert!(status.contains("200"), "metrics status {status}");
    assert!(!parse_exposition(&body).expect("exposition parses").is_empty());

    // /spans.json?epoch=N returns exactly that epoch's chain.
    let probe = (epochs.len() / 2) as u64;
    let (status, body) =
        http_get(addr, &format!("/spans.json?epoch={probe}")).expect("GET /spans.json");
    assert!(status.contains("200"), "spans status {status}");
    assert!(body.contains(&format!("\"epoch\": {probe}")));
    assert!(body.contains("\"stage\": \"dispatch\""));
    assert!(body.contains("\"stage\": \"flip_global\""));
    let other = probe + 1;
    assert!(
        !body.contains(&format!("\"epoch\": {other}")),
        "the epoch filter must exclude other epochs"
    );

    // /events.json carries the epoch lifecycle events.
    let (status, body) = http_get(addr, "/events.json").expect("GET /events.json");
    assert!(status.contains("200"));
    assert!(body.contains("epoch_dispatched") && body.contains("epoch_committed"));

    // /healthz: healthy now, 503 naming the group once quarantined.
    let (status, body) = http_get(addr, "/healthz").expect("GET /healthz");
    assert!(status.contains("200"), "healthy node must report 200, got {status}");
    assert!(body.contains("\"ok\""));
    node.board().set_quarantined(&[1]);
    let (status, body) = http_get(addr, "/healthz").expect("GET /healthz degraded");
    assert!(status.contains("503"), "degraded node must report 503, got {status}");
    assert!(body.contains("\"degraded\"") && body.contains('1'));
}

#[test]
fn forced_quarantine_dumps_a_parseable_flight_bundle() {
    // Acceptance gate: a durable node with a flight directory must leave
    // a bounded JSON bundle on disk the moment a group quarantines — the
    // black box to pull after an incident.
    use aets_suite::common::TableId;
    use aets_suite::replay::{DurableBackup, DurableOptions, ServiceOptions};
    use aets_suite::telemetry::flight::list_bundles;
    use aets_suite::wal::{crc32, EncodedEpoch, MetaScanner};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aets-flight-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 64).expect("positive epoch size");
    let mut epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    // Corrupt one record of the highest-numbered table so its group
    // quarantines mid-run (the epoch frame CRC is fixed up so only the
    // record itself is bad).
    let victim = TableId::new((w.num_tables() - 1) as u32);
    let eidx = epochs
        .iter()
        .position(|e| {
            MetaScanner::new(e.bytes.clone())
                .filter_map(|i| i.ok())
                .any(|(meta, _)| meta.table == Some(victim))
        })
        .expect("some epoch touches the victim table");
    let range = MetaScanner::new(epochs[eidx].bytes.clone())
        .filter_map(|i| i.ok())
        .find(|(meta, _)| meta.table == Some(victim))
        .map(|(_, r)| r)
        .expect("victim record range");
    let mut v = epochs[eidx].bytes.to_vec();
    v[range.end - 1] ^= 0x01;
    epochs[eidx] = EncodedEpoch { crc32: crc32(&v), bytes: v.into(), ..epochs[eidx].clone() };

    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("valid config");
    let flight_dir = scratch("bundles");
    let opts = DurableOptions {
        checkpoint_every: 0,
        service: ServiceOptions::builder().flight_dir(flight_dir.clone()).build(),
        ..Default::default()
    };
    let mut node =
        DurableBackup::open(scratch("wal"), scratch("ckpt"), engine, w.num_tables(), opts, None)
            .expect("open durable backup");
    for e in &epochs {
        node.ingest(e).expect("ingest");
    }
    assert!(node.metrics().degraded(), "the poisoned group must quarantine");
    assert!(tel.spans().anomalous(), "the quarantine must latch always-sample");

    let bundles = list_bundles(&flight_dir).expect("flight dir listing");
    assert!(!bundles.is_empty(), "quarantine must leave at least one bundle on disk");
    let body = std::fs::read_to_string(&bundles[0]).expect("bundle readable");
    assert!(body.contains("\"reason\": \"group_quarantined\""));
    for key in ["\"seq\"", "\"spans\"", "\"events\"", "\"snapshot\""] {
        assert!(body.contains(key), "bundle missing {key}");
    }
    // Parseability smoke: balanced braces/brackets, one JSON object.
    let opens = body.matches('{').count();
    let closes = body.matches('}').count();
    assert_eq!(opens, closes, "bundle braces must balance");
    assert_eq!(body.matches('[').count(), body.matches(']').count());
    let _ = std::fs::remove_dir_all(&flight_dir);
}

#[test]
fn disabled_telemetry_keeps_the_runner_silent() {
    // The default engine carries a disabled instance: no snapshots are
    // rendered even when a cadence is configured, and nothing is charged
    // to the registry.
    let w = tpcc::generate(&TpccConfig { num_txns: 500, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 128).expect("positive epoch size");
    let arrivals = ReplicationTimeline::default().arrivals(&raw);
    let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let engine = Arc::new(
        AetsEngine::builder(grouping)
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .expect("config"),
    );
    let db = Arc::new(MemDb::new(w.num_tables()));
    let cfg = RunnerConfig { time_scale: 50.0, telemetry_every: 1, ..Default::default() };
    let outcome = run_realtime(
        engine.clone(),
        db,
        &Workload { epochs: &epochs, arrivals: &arrivals, queries: &[] },
        &cfg,
    )
    .expect("realtime run");
    assert!(outcome.telemetry_snapshots.is_empty());
    assert!(outcome.degraded_snapshot.is_none());
    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.counter_total(names::EPOCHS), 0);
    assert_eq!(snap.events_emitted, 0);
}

#[test]
fn net_shipping_emits_transport_metrics_on_both_endpoints() {
    // The transport layer's observability contract over a healthy
    // loopback link: the shipper counts its session and every epoch
    // frame and byte it wrote (plus the in-flight window depth), the
    // receiver counts the handshake and inbound bytes, and none of the
    // failure-path counters (reconnects, resyncs, dedups, frame errors)
    // move.
    use aets_suite::replay::{ingest_epoch, IngestStats, RetryPolicy};
    use aets_suite::transport::{ship_epochs, ReceiverConfig, ShipReceiver, ShipperConfig};

    let w = tpcc::generate(&TpccConfig { num_txns: 300, warehouses: 1, ..Default::default() });
    let epochs: Vec<_> = batch_into_epochs(w.txns.clone(), 32)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect();
    let total = epochs.len() as u64;

    let tel_rx = Arc::new(Telemetry::new());
    let mut receiver =
        ShipReceiver::bind("127.0.0.1:0", ReceiverConfig::default(), tel_rx.clone()).expect("bind");
    let addr = receiver.addr();
    let tel_tx = Arc::new(Telemetry::new());
    let ship_tel = tel_tx.clone();
    let ship_stream = epochs.clone();
    let shipper = std::thread::spawn(move || {
        ship_epochs(addr, &ship_stream, &ShipperConfig::default(), &ship_tel)
    });

    let mut source = receiver.source();
    let retry = RetryPolicy { max_retries: 20, base_backoff_us: 100, max_backoff_us: 5_000 };
    for seq in 0..total {
        let mut stats = IngestStats::default();
        ingest_epoch(&mut source, seq, &retry, &mut stats).expect("clean delivery");
    }
    let report = shipper.join().expect("shipper").expect("shipping failed");
    receiver.shutdown();

    // ---- Sender side: session + volume counters match the report. -----
    let tx = tel_tx.snapshot();
    assert_eq!(tx.counter_total(names::NET_CONNECTS), 1);
    assert_eq!(tx.counter_total(names::NET_RECONNECTS), 0);
    assert_eq!(tx.counter_total(names::NET_RESYNCS), 0);
    assert_eq!(tx.counter_total(names::NET_EPOCHS_SHIPPED), total);
    assert_eq!(tx.counter_total(names::NET_BYTES_SENT), report.bytes_sent);
    assert!(tx.counter_total(names::NET_BYTES_RECV) > 0, "acks flowed back");
    assert_eq!(tx.counter_total(names::NET_FRAME_ERRORS), 0);
    let depth =
        tx.histogram_summary_all(names::NET_ACK_WINDOW_DEPTH).expect("window depth histogram");
    assert_eq!(depth.count, total, "one depth sample per shipped epoch");
    assert!(
        depth.max_us <= ShipperConfig::default().window as u64,
        "in-flight depth may never exceed the window"
    );

    // ---- Receiver side: handshake + inbound volume, no failures. ------
    let rx = tel_rx.snapshot();
    assert_eq!(rx.counter_total(names::NET_HANDSHAKES), 1);
    assert!(rx.counter_total(names::NET_BYTES_RECV) > 0);
    assert_eq!(rx.counter_total(names::NET_EPOCHS_DEDUPED), 0, "nothing travels twice");
    assert_eq!(rx.counter_total(names::NET_FRAME_ERRORS), 0);
}

#[test]
fn fleet_run_emits_shard_health_failover_and_latency_metrics() {
    // The fleet layer's observability contract: per-shard health gauges
    // (0=down 1=hung 2=lagging 3=healthy), a failover counter, a routed
    // query latency histogram, the fleet watermark gauge, and the shard
    // lifecycle events — all from one supervised run with one induced
    // failover.
    use aets_suite::common::TableId;
    use aets_suite::fleet::{DegradedPolicy, Fleet, FleetOptions, ShardPlan};
    use aets_suite::replay::{QuerySpec, ServiceOptions};
    use aets_suite::telemetry::shard_label;

    let w = tpcc::generate(&TpccConfig { num_txns: 400, warehouses: 1, ..Default::default() });
    let raw = batch_into_epochs(w.txns.clone(), 32).expect("positive epoch size");
    let (groups, rates) = tpcc::paper_grouping();
    let grouping =
        TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).expect("grouping");
    let plan = ShardPlan::balanced(grouping, 2).expect("plan");

    let tel = Arc::new(Telemetry::new());
    let opts = FleetOptions {
        failover_after: 2,
        service: ServiceOptions::builder().telemetry(tel.clone()).build(),
        ..Default::default()
    };
    let root = std::env::temp_dir().join(format!("aets-telsmoke-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut fleet = Fleet::open(plan, &root, opts).expect("fleet");

    let target = raw.last().expect("nonempty").max_commit_ts();
    let mid = raw.len() / 2;
    for e in &raw[..mid] {
        fleet.enqueue(e);
    }
    fleet.run_until_fresh(raw[mid - 1].max_commit_ts(), 256).expect("first half");

    // Kill shard 1, let the supervisor miss two heartbeats and fail over.
    fleet.kill_shard(1);
    for e in &raw[mid..] {
        fleet.enqueue(e);
    }
    fleet.run_until_fresh(target, 256).expect("second half with failover");
    assert_eq!(fleet.metrics().failovers, 1);

    // One routed query so the latency histogram has a sample.
    let specs: Vec<QuerySpec> =
        (0..w.num_tables() as u32).map(|t| QuerySpec::count(TableId::new(t))).collect();
    let ans = fleet.query(target, &specs, DegradedPolicy::Refuse).expect("routed query");
    assert!(ans.is_complete());

    // ---- Registry: the fleet_* family. --------------------------------
    let snap = tel.snapshot();
    for s in 0..2 {
        assert_eq!(
            snap.gauge(names::FLEET_SHARD_HEALTH, &shard_label(s)),
            Some(3),
            "settled shard {s} must report healthy (3)"
        );
    }
    assert_eq!(snap.counter_total(names::FLEET_FAILOVERS), 1);
    assert!(snap.counter_total(names::FLEET_HEARTBEATS_MISSED) >= 2, "two misses forced failover");
    assert!(
        snap.counter_total(names::FLEET_QUERIES_ROUTED) >= w.num_tables() as u64,
        "every spec routed must be counted"
    );
    assert_eq!(snap.counter_total(names::FLEET_QUERIES_PARTIAL), 0, "no partial answers");
    let lat = snap
        .histogram_summary_all(names::FLEET_ROUTED_LATENCY_US)
        .expect("routed latency histogram");
    assert!(lat.count >= 1 && lat.p50_us <= lat.max_us);
    assert_eq!(
        snap.gauge(names::FLEET_GLOBAL_CMT_TS_US, ""),
        Some(target.as_micros()),
        "fleet watermark gauge must sit at the stream head"
    );

    // ---- Events: down -> missed heartbeats -> failover. ---------------
    let events = tel.drain_events();
    let down =
        events.iter().filter(|e| matches!(e.kind, EventKind::ShardDown { shard: 1 })).count();
    assert_eq!(down, 1, "exactly one shard death");
    let missed = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ShardHeartbeatMissed { shard: 1, .. }))
        .count();
    assert_eq!(missed, 2, "failover_after misses before the replacement");
    let failover = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::ShardFailover { shard, intervals_down, suffix_epochs } => {
                Some((shard, intervals_down, suffix_epochs))
            }
            _ => None,
        })
        .expect("a failover event");
    assert_eq!(failover.0, 1);
    assert_eq!(failover.1, 2, "replacement came after exactly failover_after intervals");
    assert!(
        failover.2 <= raw.len() as u64,
        "bootstrap replays at most the WAL suffix, never more than the stream"
    );

    // The fleet session pinned at the watermark is visible to GC floors
    // (smoke only: correctness is proven in tests/fleet_chaos.rs).
    drop(fleet);
    let _ = std::fs::remove_dir_all(&root);
}
