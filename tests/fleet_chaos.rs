//! Fleet chaos suite: N supervised shards under deterministic fault
//! schedules, proven against the single-node serial oracle.
//!
//! The contract under test, per seeded schedule:
//!
//! 1. **Oracle equivalence** — every routed-and-merged query result
//!    equals the serial oracle's answer at the same `qts`, both mid-run
//!    (while shards crash, hang, and lose heartbeats) and after drain.
//! 2. **Watermark safety** — the fleet-wide `global_cmt_ts` is monotone,
//!    and no query at or below it ever observes data past it: a dark
//!    shard freezes the watermark (consistent-but-stale), it never lets
//!    a stale read pass as fresh.
//! 3. **Bounded failover** — a shard that stops heartbeating is replaced
//!    within `failover_after` supervisor ticks, bootstrapped from its
//!    shipped checkpoints plus only the WAL suffix.
//!
//! Seeds are pinned for CI reproducibility (the `fleet-chaos` job runs
//! one per lane); set `AETS_FLEET_SEED=<u64>` to replay a single seed.

use aets_suite::common::{TableId, Timestamp};
use aets_suite::fleet::{
    DegradedPolicy, Fleet, FleetFaultPlan, FleetOptions, RoutedPart, ShardHealth, ShardPlan,
};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    eval_spec, QueryOutput, QuerySpec, QueryTarget, ReplayEngine, SerialEngine, TableGrouping,
};
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch, Epoch};
use aets_suite::workloads::tpcc;
use std::path::PathBuf;
use std::sync::OnceLock;

const NUM_SHARDS: usize = 3;
const FAILOVER_AFTER: u32 = 2;
/// Liveness budget: a watermark that fails to reach the stream head
/// within this many ticks is a stuck fleet, not bad luck.
const MAX_TICKS: u64 = 5_000;

struct Fixture {
    epochs: Vec<Epoch>,
    grouping: TableGrouping,
    oracle: MemDb,
    target: Timestamp,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let w = tpcc::generate(&tpcc::TpccConfig {
            num_txns: 700,
            warehouses: 2,
            ..Default::default()
        });
        let num_tables = w.num_tables();
        let (groups, rates) = tpcc::paper_grouping();
        let grouping = TableGrouping::new(num_tables, groups, rates, &w.analytic_tables).unwrap();
        let epochs = batch_into_epochs(w.txns.clone(), 16).unwrap();
        let encoded: Vec<EncodedEpoch> = epochs.iter().map(encode_epoch).collect();
        let oracle = MemDb::new(num_tables);
        SerialEngine.replay_all(&encoded, &oracle).unwrap();
        let target = epochs.last().unwrap().max_commit_ts();
        Fixture { epochs, grouping, oracle, target }
    })
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aets-fleet-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The serial-oracle answer for `spec` at `qts` — the shared
/// [`eval_spec`] path, the same glue every other target routes through.
fn oracle_answer(oracle: &MemDb, spec: &QuerySpec, qts: Timestamp) -> QueryOutput {
    eval_spec(oracle, spec, qts)
}

fn chaos_opts() -> FleetOptions {
    let mut opts = FleetOptions { failover_after: FAILOVER_AFTER, ..Default::default() };
    // Frequent checkpoints so failovers genuinely exercise the
    // checkpoint-shipping bootstrap (not a cold full-WAL replay).
    opts.shard.durable.checkpoint_every = 8;
    opts
}

/// One full chaos run under `seed`. Returns the failover count so the
/// driver can confirm the schedule actually bit.
fn chaos_run(seed: u64) -> u64 {
    let fx = fixture();
    let num_tables = fx.oracle.num_tables();
    let plan = ShardPlan::balanced(fx.grouping.clone(), NUM_SHARDS).unwrap();
    let mut fleet = Fleet::open(plan, scratch(&format!("chaos-{seed:x}")), chaos_opts())
        .unwrap()
        .with_faults(FleetFaultPlan::new(seed, 0.12));

    // Held fleet session, opened at the first nonzero watermark: clamps
    // every shard's GC below its qts for the whole run, and must survive
    // every failover via the re-pin path.
    let mut early_session = None;
    let mut prev_wm = Timestamp::ZERO;
    let mut down_streak = [0u64; NUM_SHARDS];
    let mut fed = 0usize;

    while fleet.global_cmt_ts() < fx.target {
        assert!(fleet.now() < MAX_TICKS, "seed {seed:#x}: fleet stuck at {prev_wm:?}");
        if fed < fx.epochs.len() {
            fleet.enqueue(&fx.epochs[fed]);
            fed += 1;
        }
        fleet.tick().unwrap();

        // Invariant 2: the fleet watermark only moves forward.
        let wm = fleet.global_cmt_ts();
        assert!(wm >= prev_wm, "seed {seed:#x}: watermark moved backwards");
        prev_wm = wm;
        if early_session.is_none() && wm > Timestamp::ZERO {
            early_session = Some(fleet.open_session(wm));
        }

        // Invariant 3: a shard is never observed down for more than
        // `failover_after` consecutive ticks — the supervisor's bound.
        for (s, h) in fleet.health().iter().enumerate() {
            if *h == ShardHealth::Down {
                down_streak[s] += 1;
            } else {
                down_streak[s] = 0;
            }
            assert!(
                down_streak[s] <= u64::from(FAILOVER_AFTER),
                "seed {seed:#x}: shard {s} down past the failover bound"
            );
        }

        // Invariant 1+2, mid-run: routed counts at the *current* fleet
        // watermark match the oracle exactly. A part served by a shard
        // that replayed further ahead must still read the qts snapshot
        // (nothing past the fleet watermark), and a dark shard answers
        // Unavailable, never stale.
        if fleet.now().is_multiple_of(8) && wm > Timestamp::ZERO {
            let specs: Vec<QuerySpec> =
                (0..num_tables as u32).map(|t| QuerySpec::count(TableId::new(t))).collect();
            let ans = fleet.query(wm, &specs, DegradedPolicy::Partial).unwrap();
            for (spec, part) in specs.iter().zip(&ans.parts) {
                if let RoutedPart::Output(out) = part {
                    assert_eq!(
                        *out,
                        oracle_answer(&fx.oracle, spec, wm),
                        "seed {seed:#x}: mid-run divergence on table {:?} at {wm:?}",
                        spec.table
                    );
                }
            }
        }
    }

    // Settle: tick until every shard is routable again (faults keep
    // firing; the supervisor must win within the liveness budget).
    let mut settle = 0u64;
    while !fleet.health().iter().all(|h| h.routable()) {
        settle += 1;
        assert!(settle < MAX_TICKS, "seed {seed:#x}: fleet never settled");
        fleet.tick().unwrap();
    }
    assert_eq!(fleet.global_cmt_ts(), fx.target, "drained fleet must reach the stream head");

    // Final oracle equivalence: full row scans of every table through
    // the generic `QueryTarget` surface — the fleet (routed + merged,
    // strict policy) and the serial oracle answer the identical call.
    let specs: Vec<QuerySpec> =
        (0..num_tables as u32).map(|t| QuerySpec::rows(TableId::new(t))).collect();
    let got = fleet.query_at(fx.target, &specs).expect("settled fleet must answer strict reads");
    let want = fx.oracle.query_at(fx.target, &specs).unwrap();
    assert_eq!(got, want, "seed {seed:#x}: final state diverged from oracle");

    // The held early session survived every failover; its snapshot must
    // still be exact (its pins kept GC below its qts on every shard,
    // including replacements).
    if let Some(session) = early_session {
        let qts = session.qts();
        let got = fleet.query_at(qts, &specs).unwrap();
        let want = fx.oracle.query_at(qts, &specs).unwrap();
        assert_eq!(got, want, "seed {seed:#x}: pinned early snapshot diverged from oracle");
    }

    let m = fleet.metrics();
    // Failovers bootstrap from shipped state: a replacement must restore
    // a checkpoint and/or replay a bounded WAL suffix — never re-replay
    // the whole history from scratch.
    if m.failovers > 0 {
        let restored = (0..NUM_SHARDS)
            .filter_map(|s| fleet.shard(s).recovery())
            .any(|r| r.restored_seq.is_some() || r.suffix_epochs > 0);
        assert!(restored, "seed {seed:#x}: failover left no recovery evidence");
        for s in 0..NUM_SHARDS {
            if let Some(r) = fleet.shard(s).recovery() {
                if r.restored_seq.is_some() {
                    assert!(
                        r.suffix_epochs < fx.epochs.len() as u64,
                        "seed {seed:#x}: shard {s} replayed the full history despite a checkpoint"
                    );
                }
            }
        }
    }
    eprintln!(
        "seed {seed:#x}: ticks={} failovers={} crashes={} hangs={} heartbeats_missed={} acked={}",
        m.ticks,
        m.failovers,
        m.crashes_injected,
        m.hangs_injected,
        m.heartbeats_missed,
        m.epochs_acked
    );
    m.failovers
}

fn seeds() -> Vec<u64> {
    match std::env::var("AETS_FLEET_SEED").ok().and_then(|s| s.parse().ok()) {
        Some(seed) => vec![seed],
        None => vec![0x00F1_EE70, 0x00F1_EE71, 0x00F1_EE72],
    }
}

#[test]
fn chaos_matches_oracle_across_pinned_seeds() {
    let mut failovers = 0;
    for seed in seeds() {
        failovers += chaos_run(seed);
    }
    // The pinned seeds are chosen so the schedule actually bites: at
    // least one failover must have been exercised across the suite.
    assert!(failovers > 0, "chaos seeds produced no failover — schedule too tame");
}

/// Crash-only schedule at a brutal rate: every shard dies repeatedly,
/// every death redelivers its un-acked backlog to the replacement, and
/// the final state still matches the oracle bit for bit.
#[test]
fn crash_storm_converges() {
    let fx = fixture();
    let num_tables = fx.oracle.num_tables();
    let plan = ShardPlan::balanced(fx.grouping.clone(), NUM_SHARDS).unwrap();
    let mut fleet = Fleet::open(plan, scratch("storm"), chaos_opts()).unwrap().with_faults(
        FleetFaultPlan::new(0x0D00D, 0.25)
            .kinds(vec![aets_suite::fleet::FleetFaultKind::ShardCrash]),
    );
    for e in &fx.epochs {
        fleet.enqueue(e);
    }
    let mut prev = Timestamp::ZERO;
    while fleet.global_cmt_ts() < fx.target {
        assert!(fleet.now() < MAX_TICKS, "storm: fleet stuck");
        fleet.tick().unwrap();
        assert!(fleet.global_cmt_ts() >= prev);
        prev = fleet.global_cmt_ts();
    }
    let m = fleet.metrics();
    assert!(m.crashes_injected > 0 && m.failovers > 0, "storm schedule must bite");

    let mut settle = 0u64;
    while !fleet.health().iter().all(|h| h.routable()) {
        settle += 1;
        assert!(settle < MAX_TICKS, "storm: fleet never settled");
        fleet.tick().unwrap();
    }
    let specs: Vec<QuerySpec> =
        (0..num_tables as u32).map(|t| QuerySpec::rows(TableId::new(t))).collect();
    let got = fleet.query_at(fx.target, &specs).unwrap();
    assert_eq!(got, fx.oracle.query_at(fx.target, &specs).unwrap());
}
