//! Property-based cross-crate tests: arbitrary generated transaction
//! streams round-trip through the wire format and replay identically on
//! every engine.

use aets_suite::common::{
    ColumnId, DmlOp, FxHashMap, FxHashSet, Lsn, RowKey, TableId, Timestamp, TxnId, Value,
};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, AtrEngine, C5Engine, ReplayEngine, RetryPolicy, SerialEngine,
    TableGrouping, VisibilityBoard,
};
use aets_suite::wal::{
    batch_into_epochs, encode_epoch, DmlEntry, FaultInjector, FaultKind, FaultPlan, TxnLog,
};
use proptest::prelude::*;

const TABLES: usize = 4;

/// An abstract op: (table, key, op-kind selector, value).
type AbstractOp = (u8, u8, u8, i64);

/// Materializes abstract ops into well-formed transactions: LSNs,
/// commit timestamps, and per-row RVIDs assigned consistently.
fn materialize(txn_ops: Vec<Vec<AbstractOp>>) -> Vec<TxnLog> {
    let mut lsn = 1u64;
    let mut rvids: FxHashMap<(TableId, RowKey), u64> = FxHashMap::default();
    let mut out = Vec::new();
    for (i, ops) in txn_ops.into_iter().enumerate() {
        let txn_id = TxnId::new(i as u64 + 1);
        let commit_ts = Timestamp::from_micros((i as u64 + 1) * 10);
        let entries: Vec<DmlEntry> = ops
            .into_iter()
            .map(|(t, k, op_sel, v)| {
                let table = TableId::new(t as u32 % TABLES as u32);
                let key = RowKey::new(k as u64 % 16);
                let op = match op_sel % 3 {
                    0 => DmlOp::Insert,
                    1 => DmlOp::Update,
                    _ => DmlOp::Delete,
                };
                let rv = rvids.entry((table, key)).or_insert(0);
                *rv += 1;
                let e = DmlEntry {
                    lsn: Lsn::new(lsn),
                    txn_id,
                    ts: commit_ts,
                    table,
                    op,
                    key,
                    row_version: *rv,
                    cols: if op == DmlOp::Delete {
                        vec![]
                    } else {
                        vec![(ColumnId::new(0), Value::Int(v))]
                    },
                    before: None,
                };
                lsn += 1;
                e
            })
            .collect();
        out.push(TxnLog { txn_id, commit_ts, entries });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_on_arbitrary_streams(
        txn_ops in prop::collection::vec(
            prop::collection::vec(any::<AbstractOp>(), 0..6),
            1..40,
        ),
        epoch_size in 1usize..20,
    ) {
        let txns = materialize(txn_ops);
        let epochs: Vec<_> = batch_into_epochs(txns.clone(), epoch_size)
            .unwrap()
            .iter()
            .map(encode_epoch)
            .collect();

        let oracle = MemDb::new(TABLES);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        let probes = [
            Timestamp::ZERO,
            Timestamp::from_micros(txns.len() as u64 * 5),
            Timestamp::MAX,
        ];
        let want: Vec<u64> = probes.iter().map(|ts| oracle.digest_at(*ts)).collect();

        let hot: FxHashSet<TableId> = [TableId::new(0), TableId::new(1)].into_iter().collect();
        let grouping = TableGrouping::new(
            TABLES,
            vec![
                vec![TableId::new(0), TableId::new(1)],
                vec![TableId::new(2)],
                vec![TableId::new(3)],
            ],
            vec![10.0, 1.0, 1.0],
            &hot,
        )
        .unwrap();

        let engines: Vec<Box<dyn ReplayEngine>> = vec![
            Box::new(AetsEngine::builder(grouping).config(AetsConfig { threads: 2, ..Default::default() }).build().unwrap()),
            Box::new(AetsEngine::tplr_baseline(2, TABLES, &hot).unwrap()),
            Box::new(AtrEngine::new(2).unwrap()),
            Box::new(C5Engine::new(2).unwrap()),
        ];
        for engine in engines {
            let db = MemDb::new(TABLES);
            engine.replay_all(&epochs, &db).unwrap();
            prop_assert!(db.all_chains_ordered(), "{} ordering", engine.name());
            for (ts, expect) in probes.iter().zip(&want) {
                prop_assert_eq!(
                    db.digest_at(*ts),
                    *expect,
                    "{} at {}",
                    engine.name(),
                    ts
                );
            }
        }
    }

    #[test]
    fn fault_injected_replay_recovers_to_oracle(
        txn_ops in prop::collection::vec(
            prop::collection::vec(any::<AbstractOp>(), 0..5),
            1..30,
        ),
        epoch_size in 1usize..10,
        seed in any::<u64>(),
    ) {
        // Any seeded schedule of *recoverable* faults (torn tails, bit
        // flips, duplicated/reordered/dropped epochs, stalls) over any
        // generated stream must, with enough retries, replay to exactly
        // the fault-free serial oracle's state — and leave no group
        // quarantined.
        let txns = materialize(txn_ops);
        let epochs: Vec<_> = batch_into_epochs(txns, epoch_size)
            .unwrap()
            .iter()
            .map(encode_epoch)
            .collect();

        let oracle = MemDb::new(TABLES);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        let want = oracle.digest_at(Timestamp::MAX);

        let hot: FxHashSet<TableId> = [TableId::new(0), TableId::new(1)].into_iter().collect();
        let grouping = TableGrouping::new(
            TABLES,
            vec![
                vec![TableId::new(0), TableId::new(1)],
                vec![TableId::new(2)],
                vec![TableId::new(3)],
            ],
            vec![10.0, 1.0, 1.0],
            &hot,
        )
        .unwrap();
        let retry = RetryPolicy { max_retries: 4, base_backoff_us: 1, max_backoff_us: 20 };
        let eng = AetsEngine::builder(grouping).config(AetsConfig { threads: 2, retry, ..Default::default() }).build()
        .unwrap();
        let db = MemDb::new(TABLES);
        let board = VisibilityBoard::builder(eng.board_groups()).build();
        let kinds = vec![
            FaultKind::TornTail,
            FaultKind::BitFlip,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Drop,
            FaultKind::Stall,
        ];
        let mut source = FaultInjector::new(epochs, FaultPlan::new(seed, 0.7, kinds));
        let m = eng.replay_stream(&mut source, &db, &board).unwrap();
        prop_assert!(!m.degraded(), "recoverable faults must not quarantine");
        prop_assert!(db.all_chains_ordered());
        prop_assert_eq!(db.digest_at(Timestamp::MAX), want, "seed {}", seed);
    }

    #[test]
    fn wire_format_round_trips_arbitrary_epochs(
        txn_ops in prop::collection::vec(
            prop::collection::vec(any::<AbstractOp>(), 0..5),
            1..20,
        ),
    ) {
        let txns = materialize(txn_ops);
        let epochs = batch_into_epochs(txns.clone(), 8).unwrap();
        for epoch in &epochs {
            let encoded = encode_epoch(epoch);
            let records = aets_suite::wal::decode_batch(encoded.bytes.clone()).unwrap();
            let back = aets_suite::wal::assemble_txns(&records).unwrap();
            prop_assert_eq!(&back, &epoch.txns);
        }
    }
}
