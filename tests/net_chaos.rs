//! Network chaos suite: framed log shipping over real loopback TCP
//! through a seeded fault-injecting proxy, proven against the serial
//! oracle.
//!
//! The contract under test, per seeded schedule:
//!
//! 1. **Oracle equivalence** — the durable backup fed by the network
//!    receiver matches the serial oracle's digest at the visibility
//!    watermark *mid-chaos* (while the proxy disconnects, partitions,
//!    corrupts, truncates, delays, duplicates, and stalls the stream)
//!    and equals it exactly after drain.
//! 2. **Exactly-once ingest** — reconnect resyncs re-ship the in-flight
//!    window, yet no duplicate, gap, or corrupted epoch ever reaches the
//!    consumer: receiver-side CRC + sequence dedup turn at-least-once
//!    delivery into exactly-once ingest.
//! 3. **Monotone watermark** — `global_cmt_ts` never regresses across
//!    reconnects.
//! 4. **Trace reproducibility** — a JSONL trace captured from the
//!    net-delivered stream replays (in every mode) to the same final
//!    watermark and byte-identical query results.
//!
//! Seeds are pinned for CI reproducibility (the `net-chaos` job runs one
//! per lane); set `AETS_NET_SEED=<u64>` to replay a single seed.

use aets_suite::common::{TableId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    ingest_epoch, AetsConfig, AetsEngine, DurableBackup, DurableOptions, IngestStats, QuerySpec,
    ReplayEngine, RetryPolicy, SerialEngine, TableGrouping,
};
use aets_suite::telemetry::{names, Telemetry};
use aets_suite::transport::{
    ship_epochs, EngineSink, FaultProxy, NetFaultPlan, ReceiverConfig, ReplayMode, ShipReceiver,
    ShipReport, ShipperConfig, TraceRecorder, TraceReplayer, TraceSink,
};
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Per-seed liveness budget: a stream that has not drained by then is a
/// wedged transport, not bad luck.
const DRAIN_BUDGET: Duration = Duration::from_secs(120);

struct Fixture {
    epochs: Vec<EncodedEpoch>,
    grouping: TableGrouping,
    oracle: MemDb,
    target: Timestamp,
    num_tables: usize,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 2, ..Default::default() });
        let num_tables = w.num_tables();
        let (groups, rates) = tpcc::paper_grouping();
        let grouping = TableGrouping::new(num_tables, groups, rates, &w.analytic_tables).unwrap();
        let epochs: Vec<EncodedEpoch> =
            batch_into_epochs(w.txns.clone(), 32).unwrap().iter().map(encode_epoch).collect();
        let oracle = MemDb::new(num_tables);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        let target = epochs.last().unwrap().max_commit_ts;
        Fixture { epochs, grouping, oracle, target, num_tables }
    })
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aets-net-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full chaos run under `seed`: primary ships through the faulty
/// proxy, the durable backup ingests from the network receiver, and the
/// oracle digest is checked both mid-chaos and after drain. Returns the
/// shipper's wire report so the driver can confirm the schedule bit.
fn chaos_run(seed: u64) -> ShipReport {
    let fx = fixture();
    let total = fx.epochs.len() as u64;

    // Receiving endpoint. Short fetch timeout so the consumer loop comes
    // up for air (and runs its mid-chaos checks) frequently.
    let tel_rx = Arc::new(Telemetry::new());
    let mut receiver = ShipReceiver::bind(
        "127.0.0.1:0",
        ReceiverConfig { fetch_timeout: Duration::from_millis(50), ..Default::default() },
        tel_rx.clone(),
    )
    .unwrap();

    // The chaos proxy sits between shipper and receiver.
    let mut proxy =
        FaultProxy::start(receiver.addr(), NetFaultPlan::new(seed, 0.03)).expect("start proxy");
    let proxy_addr = proxy.addr();

    // Primary side: ship the whole stream through the proxy; blocks until
    // the receiver's durable floor covers the stream. The result lands in
    // a shared slot so the consumer loop can fail fast on a shipper
    // error instead of spinning to its deadline.
    let epochs = fx.epochs.clone();
    let tel_tx = Arc::new(Telemetry::new());
    let ship_tel = tel_tx.clone();
    let ship_done: Arc<std::sync::Mutex<Option<aets_suite::common::Result<ShipReport>>>> =
        Arc::new(std::sync::Mutex::new(None));
    let ship_slot = ship_done.clone();
    let shipper = std::thread::spawn(move || {
        let r = ship_epochs(
            proxy_addr,
            &epochs,
            &ShipperConfig { window: 8, ..Default::default() },
            &ship_tel,
        );
        *ship_slot.lock().unwrap() = Some(r);
    });

    // Backup side: a durable node pulling from the network source.
    let engine = AetsEngine::builder(fx.grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .unwrap();
    let opts = DurableOptions { checkpoint_every: 16, ..Default::default() };
    let mut node = DurableBackup::open(
        scratch(&format!("wal-{seed:x}")),
        scratch(&format!("ckpt-{seed:x}")),
        engine,
        fx.num_tables,
        opts,
        None,
    )
    .unwrap();
    let mut source = receiver.source();

    // Small retry budget: a stalled feed surfaces quickly so the loop can
    // run its mid-chaos oracle checks between drains.
    let retry = RetryPolicy { max_retries: 2, base_backoff_us: 100, max_backoff_us: 1_000 };
    let deadline = Instant::now() + DRAIN_BUDGET;
    let mut prev_wm = Timestamp::ZERO;
    while node.next_seq() < total {
        assert!(
            Instant::now() < deadline,
            "seed {seed:#x}: stream wedged at epoch {}/{total}",
            node.next_seq()
        );
        if let Some(Err(e)) = ship_done.lock().unwrap().as_ref() {
            panic!("seed {seed:#x}: shipper gave up at epoch {}/{total}: {e}", node.next_seq());
        }
        // Stall errors are the feed being mid-reconnect; everything
        // ingested before the stall is already durable. Real corruption
        // can never surface here (the receiver never admits it) and the
        // post-drain metrics assert exactly that.
        let _ = node.ingest_from(&mut source, &retry);

        // Monotone watermark across reconnects/resyncs.
        let wm = node.board().global_cmt_ts();
        assert!(wm >= prev_wm, "seed {seed:#x}: watermark regressed {prev_wm:?} -> {wm:?}");
        prev_wm = wm;

        // Mid-chaos oracle equivalence at the current watermark.
        if wm > Timestamp::ZERO {
            assert_eq!(
                node.db().digest_at(wm),
                fx.oracle.digest_at(wm),
                "seed {seed:#x}: mid-chaos state diverged from oracle at {wm:?}"
            );
        }
    }

    // Post-drain: exact oracle equivalence at the stream head.
    assert_eq!(node.board().global_cmt_ts(), fx.target, "seed {seed:#x}: watermark short of head");
    assert_eq!(
        node.db().digest_at(Timestamp::MAX),
        fx.oracle.digest_at(Timestamp::MAX),
        "seed {seed:#x}: drained state diverged from oracle"
    );
    assert!(node.db().all_chains_ordered());

    // Exactly-once: every epoch was appended durably exactly once, and no
    // gap or corrupted frame ever reached the consumer.
    let m = node.metrics();
    assert_eq!(m.wal_epochs_appended, total, "seed {seed:#x}: duplicate or missing WAL appends");
    assert_eq!(m.checksum_failures, 0, "seed {seed:#x}: corruption leaked past the receiver");
    assert_eq!(m.epoch_gaps, 0, "seed {seed:#x}: out-of-order delivery leaked past the receiver");

    shipper.join().expect("shipper panicked");
    let report =
        ship_done.lock().unwrap().take().expect("shipper finished").expect("shipping failed");
    assert_eq!(report.epochs, total);

    // The sender's own telemetry agrees with its report.
    let snap = tel_tx.snapshot();
    assert_eq!(snap.counter_total(names::NET_CONNECTS), report.connects);
    assert_eq!(snap.counter_total(names::NET_RECONNECTS), report.reconnects);
    assert_eq!(snap.counter_total(names::NET_RESYNCS), report.resyncs);
    assert!(snap.counter_total(names::NET_BYTES_SENT) >= report.bytes_sent);

    receiver.shutdown();
    proxy.shutdown();
    report
}

fn run_seed(seed: u64) {
    let report = chaos_run(seed);
    // Lane log line (visible with --nocapture / in the CI lane output).
    eprintln!("seed {seed:#x}: {report:?}");
    assert!(report.reconnects > 0, "seed {seed:#x} never broke the connection; pick another seed");
    assert!(
        report.frames_sent >= report.epochs,
        "resyncs re-ship, so frames can only meet or exceed the run length"
    );
}

// The three pinned CI lanes (see .github/workflows/ci.yml, `net-chaos`).
// `AETS_NET_SEED=<u64>` overrides all of them for bisecting a failure.

fn seed_override() -> Option<u64> {
    std::env::var("AETS_NET_SEED").ok().and_then(|s| s.parse().ok())
}

#[test]
fn survives_seeded_chaos_lane_1() {
    run_seed(seed_override().unwrap_or(0xA5EED1));
}

#[test]
fn survives_seeded_chaos_lane_2() {
    run_seed(seed_override().unwrap_or(0xB5EED2));
}

#[test]
fn survives_seeded_chaos_lane_3() {
    run_seed(seed_override().unwrap_or(0xC5EED3));
}

#[test]
fn clean_link_ships_without_reconnects() {
    // Control lane: no proxy, direct loopback. One connect, no resyncs,
    // and the same oracle-equivalent end state — proves the recovery
    // machinery is inert when nothing fails.
    let fx = fixture();
    let total = fx.epochs.len() as u64;
    let tel = Arc::new(Telemetry::new());
    let mut receiver =
        ShipReceiver::bind("127.0.0.1:0", ReceiverConfig::default(), tel.clone()).unwrap();
    let addr = receiver.addr();
    let epochs = fx.epochs.clone();
    let ship_tel = Arc::new(Telemetry::new());
    let t = ship_tel.clone();
    let shipper =
        std::thread::spawn(move || ship_epochs(addr, &epochs, &ShipperConfig::default(), &t));

    let engine = AetsEngine::builder(fx.grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .unwrap();
    let mut node = DurableBackup::open(
        scratch("clean-wal"),
        scratch("clean-ckpt"),
        engine,
        fx.num_tables,
        DurableOptions::default(),
        None,
    )
    .unwrap();
    let mut source = receiver.source();
    let retry = RetryPolicy { max_retries: 20, base_backoff_us: 100, max_backoff_us: 5_000 };
    let deadline = Instant::now() + DRAIN_BUDGET;
    while node.next_seq() < total {
        assert!(Instant::now() < deadline, "clean link wedged");
        let _ = node.ingest_from(&mut source, &retry);
    }
    let report = shipper.join().unwrap().unwrap();
    assert_eq!(report.connects, 1, "a healthy link needs exactly one session");
    assert_eq!(report.reconnects, 0);
    assert_eq!(report.resyncs, 0);
    assert_eq!(report.frames_sent, total, "no re-ships on a healthy link");
    assert_eq!(node.db().digest_at(Timestamp::MAX), fx.oracle.digest_at(Timestamp::MAX));
    receiver.shutdown();
}

#[test]
fn restarted_backup_resumes_mid_stream_without_reingest() {
    // Ship the first half, tear everything down, restart the backup from
    // its own durable state, and resume shipping the full stream: the
    // handshake's durable floor must skip everything already ingested.
    let fx = fixture();
    let total = fx.epochs.len() as u64;
    let half = total / 2;
    let wal = scratch("resume-wal");
    let ckpt = scratch("resume-ckpt");
    let retry = RetryPolicy { max_retries: 20, base_backoff_us: 100, max_backoff_us: 5_000 };

    let engine = |fx: &Fixture| {
        AetsEngine::builder(fx.grouping.clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap()
    };

    // Phase 1: ship the first half and ingest it durably.
    {
        let tel = Arc::new(Telemetry::new());
        let mut receiver =
            ShipReceiver::bind("127.0.0.1:0", ReceiverConfig::default(), tel).unwrap();
        let addr = receiver.addr();
        let first: Vec<EncodedEpoch> = fx.epochs[..half as usize].to_vec();
        let t = Arc::new(Telemetry::new());
        let tt = t.clone();
        let shipper =
            std::thread::spawn(move || ship_epochs(addr, &first, &ShipperConfig::default(), &tt));
        let mut node = DurableBackup::open(
            wal.clone(),
            ckpt.clone(),
            engine(fx),
            fx.num_tables,
            DurableOptions::default(),
            None,
        )
        .unwrap();
        let mut source = receiver.source();
        let deadline = Instant::now() + DRAIN_BUDGET;
        while node.next_seq() < half {
            assert!(Instant::now() < deadline, "first half wedged");
            let _ = node.ingest_from(&mut source, &retry);
        }
        shipper.join().unwrap().unwrap();
        receiver.shutdown();
    }

    // Phase 2: restart; the receiver announces the restored durable floor
    // and the shipper's resync must skip the already-ingested prefix.
    let mut node =
        DurableBackup::open(wal, ckpt, engine(fx), fx.num_tables, DurableOptions::default(), None)
            .unwrap();
    assert_eq!(node.next_seq(), half, "restart must recover the ingested prefix");
    let tel = Arc::new(Telemetry::new());
    let mut receiver = ShipReceiver::bind(
        "127.0.0.1:0",
        ReceiverConfig { initial_floor: Some(half - 1), ..Default::default() },
        tel,
    )
    .unwrap();
    let addr = receiver.addr();
    let all = fx.epochs.clone();
    let t = Arc::new(Telemetry::new());
    let tt = t.clone();
    let shipper =
        std::thread::spawn(move || ship_epochs(addr, &all, &ShipperConfig::default(), &tt));
    let mut source = receiver.source();
    let deadline = Instant::now() + DRAIN_BUDGET;
    while node.next_seq() < total {
        assert!(Instant::now() < deadline, "resumed half wedged");
        let _ = node.ingest_from(&mut source, &retry);
    }
    let report = shipper.join().unwrap().unwrap();
    assert_eq!(
        report.frames_sent,
        total - half,
        "the resume handshake must skip the already-durable prefix"
    );
    assert_eq!(node.metrics().wal_epochs_appended, total - half, "no re-ingest after restart");
    assert_eq!(node.db().digest_at(Timestamp::MAX), fx.oracle.digest_at(Timestamp::MAX));
    receiver.shutdown();
}

#[test]
fn chaos_spans_reconstruct_the_causal_chain_for_a_single_epoch_id() {
    // The tracing acceptance lane: under seeded chaos (the link breaks
    // and resyncs mid-stream), the sender's and receiver's span rings
    // merged on one epoch id must still close the full causal chain —
    // ship -> net_recv -> wal_append -> dispatch -> translate -> commit
    // -> visibility flip -> first admitted query — with no span ever
    // referencing a missing parent, and the receiver-side chain must be
    // reconstructable live from the node's `/spans.json` endpoint.
    use aets_suite::replay::{NodeOptions, QueryTarget, ServiceOptions};
    use aets_suite::telemetry::trace::{first_orphan, stages};
    use aets_suite::telemetry::{http_get, Span};

    let fx = fixture();
    let total = fx.epochs.len() as u64;
    let seed = seed_override().unwrap_or(0xA5EED1);

    let tel_rx = Arc::new(Telemetry::new());
    let mut receiver = ShipReceiver::bind(
        "127.0.0.1:0",
        ReceiverConfig { fetch_timeout: Duration::from_millis(50), ..Default::default() },
        tel_rx.clone(),
    )
    .unwrap();
    let mut proxy =
        FaultProxy::start(receiver.addr(), NetFaultPlan::new(seed, 0.03)).expect("start proxy");
    let proxy_addr = proxy.addr();
    let epochs = fx.epochs.clone();
    let tel_tx = Arc::new(Telemetry::new());
    let tt = tel_tx.clone();
    let shipper = std::thread::spawn(move || {
        ship_epochs(proxy_addr, &epochs, &ShipperConfig { window: 8, ..Default::default() }, &tt)
    });

    // The backup engine shares the receiver's telemetry, so net_recv,
    // WAL, replay, flip, and query spans all land in one scrapeable ring.
    let engine = AetsEngine::builder(fx.grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel_rx.clone())
        .build()
        .unwrap();
    let mut node = DurableBackup::open(
        scratch("span-wal"),
        scratch("span-ckpt"),
        engine,
        fx.num_tables,
        DurableOptions::default(),
        None,
    )
    .unwrap();
    let mut source = receiver.source();
    let retry = RetryPolicy { max_retries: 2, base_backoff_us: 100, max_backoff_us: 1_000 };
    let deadline = Instant::now() + DRAIN_BUDGET;
    while node.next_seq() < total {
        assert!(Instant::now() < deadline, "seed {seed:#x}: stream wedged");
        let _ = node.ingest_from(&mut source, &retry);
    }
    let report = shipper.join().unwrap().expect("shipping failed");
    assert!(report.reconnects > 0, "this lane must exercise reconnect/resync paths");
    receiver.shutdown();
    proxy.shutdown();

    // First admitted query after drain: its spans attach to the most
    // recently committed epoch — the probe epoch of the chain below.
    let probe = total - 1;
    assert_eq!(tel_rx.spans().epoch_hint(), Some(probe), "epoch hint tracks the commit");
    let serving = node
        .serve(NodeOptions {
            service: ServiceOptions::builder().obs_addr("127.0.0.1:0").build(),
            ..Default::default()
        })
        .unwrap();
    // Generic-surface read: the served count must equal the serial
    // oracle's answer through the same `QueryTarget` call.
    let got = serving.query_one(fx.target, QuerySpec::count(TableId::new(0))).unwrap();
    assert_eq!(got, fx.oracle.query_one(fx.target, QuerySpec::count(TableId::new(0))).unwrap());

    // Spans survived the chaos: every epoch was admitted exactly once, so
    // every epoch id carries exactly one receive span, and the merged
    // sender + receiver rings are orphan-free.
    let mut merged: Vec<Span> = Vec::new();
    for seq in 0..total {
        let rx = tel_rx.spans().for_epoch(seq);
        let tx = tel_tx.spans().for_epoch(seq);
        assert_eq!(
            rx.iter().filter(|s| s.stage == stages::NET_RECV).count(),
            1,
            "seed {seed:#x}: epoch {seq} must be received exactly once"
        );
        assert!(
            tx.iter().any(|s| s.stage == stages::NET_SHIP),
            "seed {seed:#x}: epoch {seq} lost its ship span"
        );
        merged.extend(tx);
        merged.extend(rx);
    }
    if let Some(orphan) = first_orphan(&merged) {
        panic!("seed {seed:#x}: span references a missing parent: {orphan:?}");
    }

    // The two endpoints' rings join on the shipped span id: the receive
    // span is recorded under the id the sender announced on the wire.
    let probe_spans: Vec<&Span> = merged.iter().filter(|s| s.epoch == probe).collect();
    let recv = probe_spans.iter().find(|s| s.stage == stages::NET_RECV).unwrap();
    assert!(
        probe_spans.iter().any(|s| s.stage == stages::NET_SHIP && s.id == recv.id),
        "seed {seed:#x}: receiver's span id must match the sender's shipped id"
    );

    // The complete lifecycle is present for the single probe epoch id.
    for stage in [
        stages::NET_SHIP,
        stages::NET_RECV,
        stages::WAL_APPEND,
        stages::DISPATCH,
        stages::TRANSLATE,
        stages::COMMIT_WAIT,
        stages::APPLY,
        stages::FLIP_GROUP,
        stages::FLIP_GLOBAL,
        stages::QUERY_ADMISSION,
        stages::QUERY_EXEC,
    ] {
        assert!(
            probe_spans.iter().any(|s| s.stage == stage),
            "seed {seed:#x}: epoch {probe} chain is missing its {stage} span"
        );
    }

    // And the same receiver-side chain is live over HTTP: one epoch id
    // against /spans.json reconstructs ship-arrival through first query.
    let (status, body) =
        http_get(serving.obs_addr().unwrap(), &format!("/spans.json?epoch={probe}"))
            .expect("GET /spans.json");
    assert!(status.contains("200"), "spans endpoint status {status}");
    for stage in [
        "net_recv",
        "wal_append",
        "dispatch",
        "translate",
        "commit_wait",
        "apply",
        "flip_group",
        "flip_global",
        "query_admission",
        "query_exec",
    ] {
        assert!(
            body.contains(&format!("\"stage\": \"{stage}\"")),
            "/spans.json?epoch={probe} is missing the {stage} stage"
        );
    }
}

#[test]
fn net_delivered_stream_traces_and_replays_byte_identically() {
    // The acceptance lane: capture a JSONL trace of the net-delivered
    // stream (epochs + live query results), then replay it into a fresh
    // sink in every mode; the final watermark and every rendered query
    // result must reproduce byte for byte.
    let fx = fixture();
    let total = fx.epochs.len() as u64;
    let tel = Arc::new(Telemetry::new());
    let mut receiver = ShipReceiver::bind("127.0.0.1:0", ReceiverConfig::default(), tel).unwrap();
    let addr = receiver.addr();
    let epochs = fx.epochs.clone();
    let t = Arc::new(Telemetry::new());
    let tt = t.clone();
    let shipper =
        std::thread::spawn(move || ship_epochs(addr, &epochs, &ShipperConfig::default(), &tt));

    let dir = scratch("trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("net.trace.jsonl");
    let mut recorder = TraceRecorder::create(&path).unwrap();
    let mut sink = EngineSink::new(fx.num_tables);
    let mut source = receiver.source();
    let retry = RetryPolicy { max_retries: 20, base_backoff_us: 100, max_backoff_us: 5_000 };
    for seq in 0..total {
        let mut stats = IngestStats::default();
        let epoch = ingest_epoch(&mut source, seq, &retry, &mut stats).expect("net delivery");
        sink.ingest(&epoch).unwrap();
        recorder.record_epoch(seq, &epoch).unwrap();
        if seq % 2 == 1 {
            // A live analytical probe at the current watermark, recorded
            // with its result.
            let qts = Timestamp::from_micros(sink.global_cmt_ts_us());
            let spec = QuerySpec::count(TableId::new((seq % fx.num_tables as u64) as u32));
            let out = sink.query(qts, spec.table, spec.key_range, &spec.output).unwrap();
            recorder.record_query(seq, qts, &spec, &out).unwrap();
        }
    }
    let recorded_wm = recorder.finish().unwrap();
    assert_eq!(recorded_wm, fx.target.as_micros());
    shipper.join().unwrap().unwrap();
    receiver.shutdown();

    let replayer = TraceReplayer::open(&path).unwrap();
    for mode in [
        ReplayMode::Sequential,
        ReplayMode::Paced { time_scale: 1_000.0 },
        ReplayMode::AsFastAsPossible,
    ] {
        let mut fresh = EngineSink::new(fx.num_tables);
        let report = replayer.run(mode, &mut fresh).unwrap();
        assert_eq!(report.epochs, total);
        assert!(report.reproduced(), "{mode:?} replay diverged: {:?}", report.mismatches.first());
        assert_eq!(report.final_global_cmt_ts_us, fx.target.as_micros());
        assert_eq!(
            fresh.db().digest_at(Timestamp::MAX),
            fx.oracle.digest_at(Timestamp::MAX),
            "{mode:?} replayed state diverged from oracle"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
