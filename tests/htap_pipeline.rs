//! End-to-end HTAP pipeline test: primary log generation → replication →
//! two-stage replay → Algorithm 3 visibility → consistent analytical
//! reads. Verifies the paper's consistency contract: once a query is
//! admitted at `qts`, it observes exactly the primary's committed prefix
//! at `qts` for every table it reads.

use aets_suite::common::{GroupId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{AetsConfig, AetsEngine, ReplayEngine, TableGrouping, VisibilityBoard};
use aets_suite::wal::{batch_into_epochs, encode_epoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn queries_admitted_by_algorithm3_see_consistent_prefixes() {
    let w = tpcc::generate(&TpccConfig {
        num_txns: 3_000,
        warehouses: 2,
        olap_qps: 500.0,
        ..Default::default()
    });
    let epochs: Vec<_> =
        batch_into_epochs(w.txns.clone(), 512).unwrap().iter().map(encode_epoch).collect();

    // Oracle database: serial replay, for per-timestamp ground truth.
    let oracle = MemDb::new(w.num_tables());
    aets_suite::replay::SerialEngine.replay_all(&epochs, &oracle).unwrap();

    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
    let engine = Arc::new(
        AetsEngine::builder(grouping)
            .config(AetsConfig { threads: 3, ..Default::default() })
            .build()
            .unwrap(),
    );
    let db = Arc::new(MemDb::new(w.num_tables()));
    let board = Arc::new(VisibilityBoard::builder(engine.board_groups()).build());

    // Replay concurrently with query threads waiting on the board.
    let queries: Vec<_> = w.queries.iter().take(40).cloned().collect();
    assert!(!queries.is_empty(), "workload must produce queries");
    std::thread::scope(|scope| {
        let replayer = {
            let engine = engine.clone();
            let db = db.clone();
            let board = board.clone();
            let epochs = &epochs;
            scope.spawn(move || engine.replay(epochs, &db, &board).unwrap())
        };
        for q in &queries {
            let engine = engine.clone();
            let db = db.clone();
            let board = board.clone();
            let oracle = &oracle;
            scope.spawn(move || {
                let gids = engine.board_groups_for(&q.tables);
                let ok = board.wait_visible(&gids, q.arrival, Duration::from_secs(30));
                assert!(ok, "query {} timed out waiting for visibility", q.id);
                // Admitted: every accessed table must now show at least
                // the primary's committed prefix at qts. (The backup may
                // be ahead — MVCC reads at qts still return the exact
                // snapshot.)
                for t in &q.tables {
                    let got = db.table(*t).digest_at(q.arrival);
                    let want = oracle.table(*t).digest_at(q.arrival);
                    assert_eq!(got, want, "query {} table {t} snapshot mismatch", q.id);
                }
            });
        }
        let metrics = replayer.join().unwrap();
        assert_eq!(metrics.txns, w.txns.len());
    });

    // After replay completes everything is visible.
    let last = w.txns.last().unwrap().commit_ts;
    let all_groups: Vec<GroupId> = (0..engine.board_groups() as u32).map(GroupId::new).collect();
    assert!(board.is_visible(&all_groups, last));
    assert_eq!(board.global_cmt_ts(), last);
}

#[test]
fn heartbeats_unblock_queries_on_idle_groups() {
    use aets_suite::common::TxnId;
    use aets_suite::wal::insert_heartbeats;

    // A stream that only ever writes table 0; table 1 stays idle. A query
    // on table 1 must still be admitted via heartbeat-driven timestamps.
    let w = tpcc::generate(&TpccConfig {
        num_txns: 200,
        warehouses: 2,
        oltp_tps: 10.0, // slow primary: big idle gaps
        ..Default::default()
    });
    let next_id = TxnId::new(w.txns.last().unwrap().txn_id.raw() + 1);
    let with_hb = insert_heartbeats(&w.txns, 50_000, next_id);
    assert!(with_hb.len() > w.txns.len(), "idle gaps must create heartbeats");

    let epochs: Vec<_> = batch_into_epochs(with_hb, 64).unwrap().iter().map(encode_epoch).collect();
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .unwrap();
    let db = MemDb::new(w.num_tables());
    let board = VisibilityBoard::builder(engine.board_groups()).build();
    engine.replay(&epochs, &db, &board).unwrap();

    // Every group's timestamp advanced to the stream's end even if the
    // group saw no DML (heartbeats land everywhere).
    let last = w.txns.last().unwrap().commit_ts;
    for g in 0..engine.board_groups() as u32 {
        assert!(board.tg_cmt_ts(GroupId::new(g)) >= last, "group {g} left behind");
    }
}

#[test]
fn replication_timeline_orders_epoch_arrivals() {
    use aets_suite::wal::ReplicationTimeline;
    let w = tpcc::generate(&TpccConfig { num_txns: 1_000, warehouses: 2, ..Default::default() });
    let epochs = batch_into_epochs(w.txns, 128).unwrap();
    let tl = ReplicationTimeline::default();
    let arrivals = tl.arrivals(&epochs);
    assert_eq!(arrivals.len(), epochs.len());
    assert!(arrivals.windows(2).all(|a| a[0] <= a[1]), "arrivals must be monotone");
    for (e, a) in epochs.iter().zip(&arrivals) {
        assert!(*a > e.max_commit_ts(), "epoch cannot arrive before it commits");
    }
    let _ = Timestamp::ZERO;
}
