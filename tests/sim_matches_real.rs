//! The virtual-clock simulator and the real threaded engines are two
//! views of one design. This test pins the invariants that keep them from
//! drifting: identical work accounting (transactions, entries, epochs),
//! the same grouping code, and qualitatively matching breakdowns.

use aets_suite::common::Timestamp;
use aets_suite::memtable::MemDb;
use aets_suite::replay::{AetsConfig, AetsEngine, ReplayEngine, TableGrouping};
use aets_suite::simulator::{
    profile_epochs, simulate, CostModel, SimAetsConfig, SimConfig, SimEngineKind,
};
use aets_suite::wal::{batch_into_epochs, encode_epoch};
use aets_suite::workloads::tpcc::{self, TpccConfig};

#[test]
fn simulator_and_real_engine_account_identical_work() {
    let w = tpcc::generate(&TpccConfig { num_txns: 2_000, warehouses: 2, ..Default::default() });
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();

    // Real engine.
    let epochs: Vec<_> =
        batch_into_epochs(w.txns.clone(), 512).unwrap().iter().map(encode_epoch).collect();
    let engine = AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .build()
        .unwrap();
    let db = MemDb::new(w.num_tables());
    let real = engine.replay_all(&epochs, &db).unwrap();

    // Simulator over the same stream and grouping.
    let profiles = profile_epochs(&w.txns, 512, &grouping, 500, false);
    let sim = simulate(
        &profiles,
        &grouping,
        &SimConfig {
            kind: SimEngineKind::TwoPhase(SimAetsConfig::default()),
            threads: 2,
            cost: CostModel::default(),
        },
        None,
    );

    assert_eq!(real.txns, sim.txns, "transaction counts");
    assert_eq!(real.entries as u64, sim.entries, "entry counts");
    assert_eq!(real.epochs, profiles.len(), "epoch counts");
    assert_eq!(
        sim.global_curve.final_ts(),
        w.txns.last().unwrap().commit_ts,
        "final visibility timestamp"
    );

    // Both views must be replay-dominated (Table II's shape).
    let (_d, real_replay, _c) = real.breakdown();
    let (_d2, sim_replay, _c2) = sim.breakdown();

    assert!(real_replay > 0.5, "real replay share {real_replay}");
    assert!(sim_replay > 0.9, "sim replay share {sim_replay}");

    // The database actually contains every version.
    assert_eq!(db.total_versions(), w.total_entries());
    assert!(db.table(tpcc::tables::ORDERS).count_at(Timestamp::MAX) > 0);
}

#[test]
fn simulator_visibility_respects_epoch_order() {
    // Epoch k+1's transactions must never become visible before epoch k's
    // final transaction — strict epoch ordering (Section III-B).
    let w = tpcc::generate(&TpccConfig { num_txns: 1_500, warehouses: 2, ..Default::default() });
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
    let profiles = profile_epochs(&w.txns, 256, &grouping, 500, true);
    let sim = simulate(
        &profiles,
        &grouping,
        &SimConfig {
            kind: SimEngineKind::TwoPhase(SimAetsConfig::default()),
            threads: 4,
            cost: CostModel::default(),
        },
        None,
    );
    // The global watermark reaches epoch k's max before epoch k+1's max.
    let mut last_wall = 0u64;
    for p in &profiles {
        let wall =
            sim.global_curve.first_time_reaching(p.max_commit_ts).expect("every epoch completes");
        assert!(wall >= last_wall, "epoch visibility out of order");
        last_wall = wall;
    }
}
