//! Cross-crate integration: every parallel replay engine must converge to
//! exactly the serial oracle's MVCC state, on every workload, at every
//! snapshot.

use aets_suite::common::{FxHashSet, TableId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, AtrEngine, C5Engine, ReplayEngine, SerialEngine, TableGrouping,
};
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::{bustracker, chbench, tpcc, Workload};

fn encode(w: &Workload, epoch_size: usize) -> Vec<EncodedEpoch> {
    batch_into_epochs(w.txns.clone(), epoch_size)
        .unwrap()
        .iter()
        .map(encode_epoch)
        .collect()
}

fn engines_for(w: &Workload) -> Vec<Box<dyn ReplayEngine>> {
    let n = w.num_tables();
    let hot = w.analytic_tables.clone();
    let written: FxHashSet<TableId> = w.written_tables();
    let per_table = TableGrouping::per_table(n, &hot, |t| {
        if written.contains(&t) {
            50.0
        } else {
            1.0
        }
    });
    vec![
        Box::new(
            AetsEngine::new(AetsConfig { threads: 3, ..Default::default() }, per_table)
                .unwrap(),
        ),
        Box::new(AetsEngine::tplr_baseline(3, n, &hot).unwrap()),
        Box::new(AtrEngine::new(3).unwrap()),
        Box::new(C5Engine::new(3).unwrap()),
    ]
}

fn check_workload(w: Workload, epoch_size: usize) {
    let epochs = encode(&w, epoch_size);
    let n = w.num_tables();
    let oracle = MemDb::new(n);
    SerialEngine.replay_all(&epochs, &oracle).unwrap();

    // Snapshot timestamps to compare: start, several interior, end.
    let probes: Vec<Timestamp> = {
        let mut v = vec![Timestamp::ZERO, Timestamp::MAX];
        for frac in [4usize, 2, 4 * 3 / 4] {
            let idx = (w.txns.len() / 4 * frac / 4).min(w.txns.len() - 1);
            v.push(w.txns[idx].commit_ts);
        }
        v
    };
    let want: Vec<u64> = probes.iter().map(|ts| oracle.digest_at(*ts)).collect();

    for engine in engines_for(&w) {
        let db = MemDb::new(n);
        let m = engine.replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len(), "{} txn count", engine.name());
        assert!(db.all_chains_ordered(), "{} version order", engine.name());
        assert_eq!(
            db.total_versions(),
            oracle.total_versions(),
            "{} version count",
            engine.name()
        );
        for (ts, expect) in probes.iter().zip(&want) {
            assert_eq!(
                db.digest_at(*ts),
                *expect,
                "{} snapshot at {ts} diverged",
                engine.name()
            );
        }
    }
}

#[test]
fn tpcc_all_engines_match_oracle() {
    let w = tpcc::generate(&tpcc::TpccConfig {
        num_txns: 2_000,
        warehouses: 2,
        ..Default::default()
    });
    check_workload(w, 512);
}

#[test]
fn bustracker_all_engines_match_oracle() {
    let w = bustracker::generate(&bustracker::BusTrackerConfig {
        num_txns: 2_000,
        ..Default::default()
    });
    check_workload(w, 256);
}

#[test]
fn chbench_all_engines_match_oracle() {
    let w = chbench::generate(&tpcc::TpccConfig {
        num_txns: 2_000,
        warehouses: 2,
        ..Default::default()
    });
    check_workload(w, 700); // deliberately not a power of two
}

#[test]
fn tiny_epochs_still_converge() {
    let w = tpcc::generate(&tpcc::TpccConfig {
        num_txns: 300,
        warehouses: 2,
        ..Default::default()
    });
    check_workload(w, 7);
}
