//! Cross-crate integration: every parallel replay engine must converge to
//! exactly the serial oracle's MVCC state, on every workload, at every
//! snapshot.

use aets_suite::common::{FxHashSet, GroupId, TableId, Timestamp};
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    AetsConfig, AetsEngine, AtrEngine, C5Engine, ReplayEngine, SerialEngine, TableGrouping,
    VisibilityBoard,
};
use aets_suite::wal::{batch_into_epochs, crc32, crc32_scalar, encode_epoch, EncodedEpoch};
use aets_suite::workloads::{bustracker, chbench, tpcc, Workload};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

fn encode(w: &Workload, epoch_size: usize) -> Vec<EncodedEpoch> {
    batch_into_epochs(w.txns.clone(), epoch_size).unwrap().iter().map(encode_epoch).collect()
}

fn engines_for(w: &Workload) -> Vec<Box<dyn ReplayEngine>> {
    let n = w.num_tables();
    let hot = w.analytic_tables.clone();
    let written: FxHashSet<TableId> = w.written_tables();
    let per_table =
        TableGrouping::per_table(n, &hot, |t| if written.contains(&t) { 50.0 } else { 1.0 });
    vec![
        Box::new(
            AetsEngine::builder(per_table)
                .config(AetsConfig { threads: 3, ..Default::default() })
                .build()
                .unwrap(),
        ),
        Box::new(AetsEngine::tplr_baseline(3, n, &hot).unwrap()),
        Box::new(AtrEngine::new(3).unwrap()),
        Box::new(C5Engine::new(3).unwrap()),
    ]
}

fn check_workload(w: Workload, epoch_size: usize) {
    let epochs = encode(&w, epoch_size);
    let n = w.num_tables();
    let oracle = MemDb::new(n);
    SerialEngine.replay_all(&epochs, &oracle).unwrap();

    // Snapshot timestamps to compare: start, several interior, end.
    let probes: Vec<Timestamp> = {
        let mut v = vec![Timestamp::ZERO, Timestamp::MAX];
        for frac in [4usize, 2, 4 * 3 / 4] {
            let idx = (w.txns.len() / 4 * frac / 4).min(w.txns.len() - 1);
            v.push(w.txns[idx].commit_ts);
        }
        v
    };
    let want: Vec<u64> = probes.iter().map(|ts| oracle.digest_at(*ts)).collect();

    for engine in engines_for(&w) {
        let db = MemDb::new(n);
        let m = engine.replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len(), "{} txn count", engine.name());
        assert!(db.all_chains_ordered(), "{} version order", engine.name());
        assert_eq!(db.total_versions(), oracle.total_versions(), "{} version count", engine.name());
        for (ts, expect) in probes.iter().zip(&want) {
            assert_eq!(db.digest_at(*ts), *expect, "{} snapshot at {ts} diverged", engine.name());
        }
    }
}

#[test]
fn tpcc_all_engines_match_oracle() {
    let w =
        tpcc::generate(&tpcc::TpccConfig { num_txns: 2_000, warehouses: 2, ..Default::default() });
    check_workload(w, 512);
}

#[test]
fn bustracker_all_engines_match_oracle() {
    let w = bustracker::generate(&bustracker::BusTrackerConfig {
        num_txns: 2_000,
        ..Default::default()
    });
    check_workload(w, 256);
}

#[test]
fn chbench_all_engines_match_oracle() {
    let w = chbench::generate(&tpcc::TpccConfig {
        num_txns: 2_000,
        warehouses: 2,
        ..Default::default()
    });
    check_workload(w, 700); // deliberately not a power of two
}

#[test]
fn tiny_epochs_still_converge() {
    let w =
        tpcc::generate(&tpcc::TpccConfig { num_txns: 300, warehouses: 2, ..Default::default() });
    check_workload(w, 7);
}

/// The pipelined datapath (dispatcher thread + bounded channel) must be
/// invisible in the final MVCC state: every pipeline depth, including the
/// inline-dispatch serial datapath (`depth = 0`), converges to the serial
/// oracle on both TPC-C and BusTracker streams.
#[test]
fn pipelined_aets_matches_oracle_on_tpcc_and_bustracker() {
    let workloads = [
        tpcc::generate(&tpcc::TpccConfig { num_txns: 1_200, warehouses: 2, ..Default::default() }),
        bustracker::generate(&bustracker::BusTrackerConfig {
            num_txns: 1_200,
            ..Default::default()
        }),
    ];
    for w in workloads {
        let epochs = encode(&w, 200);
        let n = w.num_tables();
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        let want = oracle.digest_at(Timestamp::MAX);
        let mid = w.txns[w.txns.len() / 2].commit_ts;
        let want_mid = oracle.digest_at(mid);

        let written: FxHashSet<TableId> = w.written_tables();
        for depth in [0usize, 1, 3] {
            let grouping = TableGrouping::per_table(n, &w.analytic_tables, |t| {
                if written.contains(&t) {
                    50.0
                } else {
                    1.0
                }
            });
            let eng = AetsEngine::builder(grouping)
                .config(AetsConfig { threads: 3, pipeline_depth: depth, ..Default::default() })
                .build()
                .unwrap();
            let db = MemDb::new(n);
            let m = eng.replay_all(&epochs, &db).unwrap();
            assert_eq!(m.txns, w.txns.len(), "depth={depth} txn count");
            assert!(db.all_chains_ordered(), "depth={depth} version order");
            assert_eq!(db.digest_at(Timestamp::MAX), want, "depth={depth} final state");
            assert_eq!(db.digest_at(mid), want_mid, "depth={depth} mid snapshot");
        }
    }
}

/// The lock-free SPSC commit queues inside AETS must be linearizable:
/// under heavy producer/consumer contention (more worker threads than
/// cores see groups, single-digit epochs, deep pipeline) the committed
/// MVCC state must still be byte-identical to the serial oracle's at
/// every probed snapshot. The schedule is pinned by a seed so a CI
/// failure replays exactly; override with `AETS_TEST_SEED=<u64>`.
#[test]
fn spsc_commit_queues_linearize_under_contention() {
    let seed: u64 =
        std::env::var("AETS_TEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5E1F);
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    let mut rng = seed;
    for round in 0..6 {
        // Seed-derived shapes: small epochs maximize queue churn, thread
        // counts above the group count force workers to contend on the
        // same group's producer side.
        let num_txns = 400 + (splitmix(&mut rng) % 400) as usize;
        let epoch_size = 1 + (splitmix(&mut rng) % 24) as usize;
        let threads = 2 + (splitmix(&mut rng) % 6) as usize;
        let depth = (splitmix(&mut rng) % 4) as usize;
        let w = tpcc::generate(&tpcc::TpccConfig { num_txns, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, epoch_size);
        let n = w.num_tables();
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        let want = oracle.digest_at(Timestamp::MAX);
        let mid = w.txns[w.txns.len() / 2].commit_ts;
        let want_mid = oracle.digest_at(mid);

        let k = 1 + (splitmix(&mut rng) % 4) as usize;
        let grouping = round_robin_grouping(n, k.min(n), &w.analytic_tables);
        let eng = AetsEngine::builder(grouping)
            .config(AetsConfig { threads, pipeline_depth: depth, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(n);
        let m = eng.replay_all(&epochs, &db).unwrap();
        let tag = format!(
            "seed={seed:#x} round={round} txns={num_txns} epoch={epoch_size} \
             threads={threads} depth={depth} groups={k}"
        );
        assert_eq!(m.txns, w.txns.len(), "{tag}: txn count");
        assert!(db.all_chains_ordered(), "{tag}: version order");
        assert_eq!(db.digest_at(Timestamp::MAX), want, "{tag}: final state");
        assert_eq!(db.digest_at(mid), want_mid, "{tag}: mid snapshot");
    }
}

/// Round-robins `n` tables into `k` groups with synthetic rates.
fn round_robin_grouping(n: usize, k: usize, hot: &FxHashSet<TableId>) -> TableGrouping {
    let mut groups: Vec<Vec<TableId>> = vec![Vec::new(); k];
    for t in 0..n as u32 {
        groups[t as usize % k].push(TableId::new(t));
    }
    let rates: Vec<f64> = (0..k).map(|i| 1.0 + i as f64).collect();
    TableGrouping::new(n, groups, rates, hot).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slice-by-8 CRC kernel on the ingest hot path must be a drop-in
    /// for the bytewise reference: identical digests on arbitrary byte
    /// strings, including lengths that leave a non-8-aligned head/tail.
    #[test]
    fn crc_slice_by_8_matches_bytewise_reference(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(crc32(&bytes), crc32_scalar(&bytes));
    }
}

/// Deterministic CRC edge cases the proptest could miss in a short run:
/// empty input, every sub-word length straddling the 8-byte step, and
/// misaligned views into a larger buffer.
#[test]
fn crc_kernels_agree_on_empty_and_unaligned_inputs() {
    assert_eq!(crc32(&[]), crc32_scalar(&[]));
    let buf: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(131).wrapping_add(7)) as u8).collect();
    for len in 0..=buf.len() {
        assert_eq!(crc32(&buf[..len]), crc32_scalar(&buf[..len]), "prefix len {len}");
    }
    for start in 1..16 {
        let view = &buf[start..];
        assert_eq!(crc32(view), crc32_scalar(view), "offset {start}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Epoch-barrier invariant under randomized epoch sizes, group
    /// counts, and pipeline depths: while replay runs, `global_cmt_ts`
    /// and every `tg_cmt_ts` only ever advance, and no group's published
    /// watermark drops below the global one — the global mark only moves
    /// once an epoch is fully replayed, so a group observed behind it
    /// would mean epoch `e+1` work committed before epoch `e` finished.
    #[test]
    fn epoch_barrier_holds_under_randomized_shapes(
        num_txns in 50usize..250,
        epoch_size in 1usize..64,
        num_groups in 1usize..5,
        depth in 0usize..4,
    ) {
        let w = tpcc::generate(&tpcc::TpccConfig {
            num_txns,
            warehouses: 2,
            ..Default::default()
        });
        let epochs = encode(&w, epoch_size);
        let n = w.num_tables();
        let grouping = round_robin_grouping(n, num_groups.min(n), &w.analytic_tables);
        let ng = grouping.num_groups();
        let eng = AetsEngine::builder(grouping).config(AetsConfig { threads: 2, pipeline_depth: depth, ..Default::default() }).build()
        .unwrap();

        let db = MemDb::new(n);
        let board = VisibilityBoard::builder(ng).build();
        let stop = AtomicBool::new(false);
        let violation = std::thread::scope(|scope| {
            // Concurrent observer: samples the board while replay runs.
            // Reading the global mark *before* the group marks makes the
            // barrier check race-free — both only ever advance, so a
            // stale group read can only over-report lag, never hide it.
            let observer = scope.spawn(|| {
                let mut last_global = Timestamp::ZERO;
                let mut last_tg = vec![Timestamp::ZERO; ng];
                while !stop.load(Ordering::Acquire) {
                    let global = board.global_cmt_ts();
                    if global < last_global {
                        return Some(format!("global regressed: {last_global} -> {global}"));
                    }
                    last_global = global;
                    for g in 0..ng as u32 {
                        let tg = board.tg_cmt_ts(GroupId::new(g));
                        if tg < last_tg[g as usize] {
                            return Some(format!("group {g} regressed"));
                        }
                        last_tg[g as usize] = tg;
                        if tg < global {
                            return Some(format!(
                                "barrier violated: group {g} at {tg} behind global {global}"
                            ));
                        }
                    }
                    std::thread::yield_now();
                }
                None
            });
            let m = eng.replay(&epochs, &db, &board).unwrap();
            stop.store(true, Ordering::Release);
            prop_assert_eq!(m.txns, w.txns.len());
            observer.join().expect("observer panicked")
        });
        prop_assert!(violation.is_none(), "{}", violation.unwrap_or_default());

        // After replay every watermark sits at the last epoch's high-water
        // mark, and the state matches the serial oracle.
        let last = epochs.last().unwrap().max_commit_ts;
        prop_assert_eq!(board.global_cmt_ts(), last);
        for g in 0..ng as u32 {
            prop_assert!(board.tg_cmt_ts(GroupId::new(g)) >= last);
        }
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        prop_assert!(db.all_chains_ordered());
        prop_assert_eq!(db.digest_at(Timestamp::MAX), oracle.digest_at(Timestamp::MAX));
    }
}
