//! Multi-reader stress test for the query-serving `BackupNode`: N client
//! threads open pinned read sessions against a node that is *live
//! replaying* a paced TPC-C stream with GC enabled, and every successful
//! result must equal a serial snapshot oracle at the same `qts` — for
//! sessions opened before their snapshot is visible (they park on
//! Algorithm 3), for sessions racing GC passes, and across a quarantine
//! event (where refusal with `degraded` is the only acceptable failure).
//!
//! Seeds are pinned for CI (`query-stress` in `.github/workflows/ci.yml`);
//! set `AETS_QS_SEED` to replay a single seed.

use aets_suite::common::{ColumnId, Error, TableId, Timestamp};
use aets_suite::memtable::{Aggregate, MemDb, Scan};
use aets_suite::replay::{
    AetsConfig, AetsEngine, BackupNode, NodeOptions, QueryOutput, QuerySpec, ReplayEngine,
    SerialEngine, TableGrouping,
};
use aets_suite::telemetry::{names, Telemetry};
use aets_suite::wal::{batch_into_epochs, crc32, encode_epoch, EncodedEpoch, MetaScanner};
use aets_suite::workloads::tpcc::{self, TpccConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 6;
const ITERS: usize = 10;

fn seeds() -> Vec<u64> {
    match std::env::var("AETS_QS_SEED").ok().and_then(|s| s.parse().ok()) {
        Some(s) => vec![s],
        None => vec![0x5EED_0001, 0x5EED_0002],
    }
}

/// xorshift64* — deterministic per-seed query mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Breaks the record CRC of `table`'s first DML in `epoch` and restamps
/// the frame CRC, so the owning group quarantines at that record.
fn corrupt_first_dml_of(epoch: &EncodedEpoch, table: TableId) -> EncodedEpoch {
    let range = MetaScanner::new(epoch.bytes.clone())
        .filter_map(|i| i.ok())
        .find(|(meta, _)| meta.table == Some(table))
        .map(|(_, r)| r)
        .expect("epoch holds a DML of the victim table");
    let mut v = epoch.bytes.to_vec();
    v[range.end - 1] ^= 0x01;
    EncodedEpoch { crc32: crc32(&v), bytes: v.into(), ..epoch.clone() }
}

/// The serial-oracle answer for `spec` at `qts`.
fn oracle_answer(oracle: &MemDb, spec: &QuerySpec, qts: Timestamp) -> QueryOutput {
    let mut scan = Scan::at(qts);
    if let Some((lo, hi)) = spec.key_range {
        scan = scan.keys(lo, hi);
    }
    let table = oracle.table(spec.table);
    match &spec.output {
        aets_suite::replay::OutputKind::Rows => QueryOutput::Rows(scan.collect(table)),
        aets_suite::replay::OutputKind::Count => QueryOutput::Count(scan.count(table)),
        aets_suite::replay::OutputKind::AggregateCol { column, agg } => {
            QueryOutput::Aggregate(scan.aggregate(table, *column, *agg))
        }
    }
}

/// One full stress run. When `poison` is set, an epoch two thirds into
/// the stream carries unrecoverable corruption for the highest-numbered
/// table, so its group quarantines mid-run with its watermark frozen.
fn run_stress(seed: u64, poison: bool) {
    let w = tpcc::generate(&TpccConfig {
        num_txns: 2_500,
        warehouses: 2,
        oltp_tps: 20_000.0,
        ..Default::default()
    });
    let n = w.num_tables();
    let clean: Vec<EncodedEpoch> =
        batch_into_epochs(w.txns.clone(), 128).unwrap().iter().map(encode_epoch).collect();
    assert!(clean.len() >= 9, "stress run needs a real stream");

    // The oracle replays the CLEAN stream serially with no GC: a
    // quarantined group freezes *before* applying any poisoned state, so
    // every admitted read — on healthy or frozen groups — must equal the
    // clean serial snapshot at its qts.
    let oracle = MemDb::new(n);
    SerialEngine.replay_all(&clean, &oracle).unwrap();

    let victim = TableId::new((n - 1) as u32);
    let (epochs, poison_idx) = if poison {
        let idx = (clean.len() * 2 / 3..clean.len())
            .find(|&i| {
                MetaScanner::new(clean[i].bytes.clone())
                    .filter_map(|r| r.ok())
                    .any(|(meta, _)| meta.table == Some(victim))
            })
            .expect("late epoch touches the victim table");
        let mut e = clean.clone();
        e[idx] = corrupt_first_dml_of(&e[idx], victim);
        (e, idx)
    } else {
        (clean.clone(), usize::MAX)
    };

    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(n, groups, rates, &w.analytic_tables).unwrap();
    let victim_gid = grouping.group_of(victim);
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping.clone())
        .config(AetsConfig { threads: 2, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .unwrap();
    let node = BackupNode::builder()
        .engine(Arc::new(engine))
        .num_tables(n)
        .options(NodeOptions {
            query_workers: 4,
            queue_depth: 64,
            default_timeout: Duration::from_secs(20),
            ..Default::default()
        })
        .build()
        .unwrap();

    // Tables a client may query without touching the victim's group.
    let healthy_tables: Vec<TableId> =
        (0..n as u32).map(TableId::new).filter(|t| grouping.group_of(*t) != victim_gid).collect();

    // Clients replay snapshots as old as epoch ANCHOR long after later
    // epochs land, so a session pinned at that watermark must hold the GC
    // floor for the whole run — GC passes still prune everything below it.
    const ANCHOR: usize = 1;
    let anchor = node.open_session(epochs[ANCHOR].max_commit_ts, &[]);

    let served = AtomicUsize::new(0);
    let degraded = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Feeder: replay one epoch at a time with GC every 4 epochs,
        // pacing just enough that early clients open pre-visibility
        // sessions against later epochs.
        let feeder = scope.spawn(|| {
            for (i, e) in epochs.iter().enumerate() {
                node.replay(std::slice::from_ref(e)).unwrap();
                if (i + 1) % 4 == 0 {
                    node.gc();
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        let mut clients = Vec::new();
        for c in 0..CLIENTS {
            let mut rng = Rng(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1)));
            let (node, oracle) = (&node, &oracle);
            let (epochs, healthy_tables) = (&epochs, &healthy_tables);
            let (served, degraded) = (&served, &degraded);
            clients.push(scope.spawn(move || {
                for _ in 0..ITERS {
                    // In a poison run, only victim-group queries may use
                    // post-quarantine snapshots (they must be refused);
                    // healthy-group queries stick to qts the frozen global
                    // watermark still covers, so they always admit.
                    let pick_victim = poison && rng.below(4) == 0;
                    let (table, eidx) = if pick_victim {
                        (victim, ANCHOR + rng.below(epochs.len() - ANCHOR))
                    } else {
                        let bound = if poison { poison_idx } else { epochs.len() };
                        (
                            healthy_tables[rng.below(healthy_tables.len())],
                            ANCHOR + rng.below(bound - ANCHOR),
                        )
                    };
                    let qts = epochs[eidx].max_commit_ts;
                    let spec = match rng.below(3) {
                        0 => QuerySpec::count(table),
                        1 => QuerySpec::aggregate(table, ColumnId::new(rng.below(4) as u16), {
                            [Aggregate::Sum, Aggregate::Min, Aggregate::Max, Aggregate::Avg]
                                [rng.below(4)]
                        }),
                        _ => QuerySpec::rows(table).keys(
                            aets_suite::common::RowKey::new(0),
                            aets_suite::common::RowKey::new(rng.next() % 512),
                        ),
                    };
                    let session = node.open_session(qts, &[table]);
                    match session.query(spec.clone()) {
                        Ok(out) => {
                            assert_eq!(
                                out,
                                oracle_answer(oracle, &spec, qts),
                                "seed {seed}: live result diverged from the serial \
                                 oracle (table {table}, qts {qts}, epoch {eidx})"
                            );
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(Error::Degraded) => {
                            assert!(
                                poison && table == victim && eidx >= poison_idx,
                                "seed {seed}: spurious degraded refusal \
                                 (table {table}, epoch {eidx}, poison at {poison_idx})"
                            );
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("seed {seed}: unexpected query error {e}"),
                    }
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        feeder.join().unwrap();
    });
    assert_eq!(node.floor().floor(), epochs[ANCHOR].max_commit_ts, "anchor still pins the floor");
    drop(anchor);

    let total = CLIENTS * ITERS;
    assert_eq!(served.load(Ordering::Relaxed) + degraded.load(Ordering::Relaxed), total);
    if poison {
        assert!(node.is_degraded(), "the poisoned group must quarantine");
        // Deterministic spot checks, independent of the random mix: a
        // post-quarantine snapshot on the victim group is refused fast, a
        // pre-quarantine one still serves and matches the oracle.
        let refused = node.open_session(epochs.last().unwrap().max_commit_ts, &[victim]);
        assert_eq!(refused.query(QuerySpec::count(victim)).unwrap_err(), Error::Degraded);
        let early_qts = epochs[ANCHOR].max_commit_ts;
        let frozen = node.open_session(early_qts, &[victim]);
        assert_eq!(
            frozen.query(QuerySpec::count(victim)).unwrap(),
            oracle_answer(&oracle, &QuerySpec::count(victim), early_qts),
            "frozen group must still serve snapshots its watermark covers"
        );
    } else {
        assert_eq!(degraded.load(Ordering::Relaxed), 0);
        assert_eq!(served.load(Ordering::Relaxed), total, "healthy run serves everything");
        assert!(!node.is_degraded());
    }

    // The instrumentation saw the whole run: every session was closed
    // (RAII floor release), GC passes ran against live readers.
    let snap = tel.snapshot();
    assert!(snap.counter_total(names::SESSIONS_OPENED) >= total as u64);
    assert_eq!(
        snap.counter_total(names::SESSIONS_OPENED),
        snap.counter_total(names::SESSIONS_CLOSED)
    );
    assert_eq!(snap.gauge(names::SESSIONS_ACTIVE, ""), Some(0));
    assert_eq!(snap.gauge(names::QUERIES_INFLIGHT, ""), Some(0));
    assert!(snap.counter_total(names::GC_PASSES) > 0, "GC must have run against live readers");
    assert!(node.floor().floor() == Timestamp::MAX, "all floor pins released");
}

#[test]
fn multi_reader_stress_matches_serial_oracle() {
    for seed in seeds() {
        run_stress(seed, false);
    }
}

#[test]
fn multi_reader_stress_across_quarantine() {
    for seed in seeds() {
        run_stress(seed, true);
    }
}
