//! Adaptive-drift suite: the live control loop (telemetry → forecast →
//! regroup/resplit → epoch-boundary apply) must adapt when the access
//! distribution shifts and must never change the replayed state while
//! doing so.
//!
//! Three properties are pinned:
//!
//! 1. **Equivalence across reconfiguration.** Under the drift workloads
//!    (`rotating_tpcc`, `flash_crowd_bustracker`) the adaptive node's MVCC
//!    state stays byte-identical to the serial oracle at every probed
//!    snapshot, and live query answers match the oracle's, no matter when
//!    the controller's regroups/resplits land.
//! 2. **Adaptation actually happens.** The drifting hot set forces the
//!    controller to queue — and the engine to apply — at least one
//!    regroup, visible both in `ReplayMetrics` and the adapt counters.
//! 3. **No churn without drift.** A stationary access pattern plans once
//!    and then holds: after the initial plan no further regroup is
//!    applied, and the state still equals both the oracle and a
//!    static-split baseline.
//!
//! Regroup *timing* depends on wall-clock window sampling and is not
//! deterministic; every assertion here is timing-independent (equivalence
//! holds for any interleaving). Workload seeds are pinned; set
//! `AETS_ADAPT_SEED=<u64>` to replay a single seed.

use aets_suite::common::{FxHashSet, TableId, Timestamp};
use aets_suite::forecast::ForecastModel;
use aets_suite::memtable::MemDb;
use aets_suite::replay::{
    eval_spec, AetsConfig, AetsEngine, BackupNode, ControllerConfig, NodeOptions, QuerySpec,
    QueryTarget, ReplayEngine, ReplayMetrics, SerialEngine, ServiceOptions, TableGrouping,
};
use aets_suite::telemetry::{names, Telemetry};
use aets_suite::wal::{batch_into_epochs, encode_epoch, EncodedEpoch};
use aets_suite::workloads::drift::{
    flash_crowd_bustracker, rotating_tpcc, FlashCrowdConfig, RotatingTpccConfig,
};
use aets_suite::workloads::tpcc::{self, tables, TpccConfig};
use aets_suite::workloads::{bustracker, QueryInstance, Workload};
use std::sync::Arc;

const EPOCH_SIZE: usize = 64;
const THREADS: usize = 3;

fn seeds() -> Vec<u64> {
    match std::env::var("AETS_ADAPT_SEED").ok().and_then(|s| s.parse().ok()) {
        Some(seed) => vec![seed],
        None => vec![7, 42],
    }
}

fn encode(w: &Workload) -> Vec<EncodedEpoch> {
    batch_into_epochs(w.txns.clone(), EPOCH_SIZE)
        .expect("positive epoch size")
        .iter()
        .map(encode_epoch)
        .collect()
}

/// An adaptive serving node: AETS engine plus the forecast-driven
/// controller wired through `ServiceOptions`, all sharing one telemetry
/// instance so `aets_table_access_total` closes the loop.
fn adaptive_node(num_tables: usize, grouping: TableGrouping) -> (BackupNode, Arc<Telemetry>) {
    let tel = Arc::new(Telemetry::new());
    let engine = AetsEngine::builder(grouping)
        .config(AetsConfig { threads: THREADS, ..Default::default() })
        .telemetry(tel.clone())
        .build()
        .expect("engine config");
    let node = BackupNode::builder()
        .engine(Arc::new(engine))
        .num_tables(num_tables)
        .options(NodeOptions {
            query_workers: 2,
            service: ServiceOptions::builder()
                .controller(ControllerConfig {
                    epoch_window: 2,
                    min_history: 1,
                    model: ForecastModel::Naive,
                    threads: THREADS,
                    hot_min_rate: 0.5,
                    ..Default::default()
                })
                .build(),
            ..Default::default()
        })
        .build()
        .expect("node config");
    (node, tel)
}

/// Replays the stream one epoch at a time through the node while feeding
/// it the workload's query arrivals: each query whose arrival is covered
/// by the new watermark opens (and drops) a read session over its
/// footprint, bumping the access counters the controller forecasts from.
/// Every `probe_every` epochs the probed tables are also *answered*
/// through the live query path and checked against the serial oracle.
fn drive(
    node: &BackupNode,
    epochs: &[EncodedEpoch],
    queries: &[QueryInstance],
    oracle: &MemDb,
    probe_tables: &[TableId],
    probe_every: usize,
) -> ReplayMetrics {
    let mut total = ReplayMetrics::default();
    let mut next_query = 0usize;
    for (i, epoch) in epochs.iter().enumerate() {
        let m = node.replay(std::slice::from_ref(epoch)).expect("replay");
        total.absorb(&m);
        let wm = node.safe_ts();
        while next_query < queries.len() && queries[next_query].arrival <= wm {
            drop(node.open_session(wm, &queries[next_query].tables));
            next_query += 1;
        }
        if (i + 1) % probe_every == 0 {
            for &t in probe_tables {
                let spec = QuerySpec::count(t);
                let got = node.query_one(wm, spec.clone()).expect("probe query");
                assert_eq!(
                    got,
                    eval_spec(oracle, &spec, wm),
                    "live answer diverged from oracle at {wm} on table {t} (epoch {i})"
                );
            }
        }
    }
    total
}

/// Interior + terminal snapshot probes, engine_equivalence-style.
fn assert_state_matches(db: &MemDb, oracle: &MemDb, w: &Workload, tag: &str) {
    assert!(db.all_chains_ordered(), "{tag}: version order");
    assert_eq!(db.total_versions(), oracle.total_versions(), "{tag}: version count");
    let mut probes = vec![Timestamp::ZERO, Timestamp::MAX];
    for frac in [1usize, 2, 3] {
        probes.push(w.txns[(w.txns.len() * frac / 4).min(w.txns.len() - 1)].commit_ts);
    }
    for ts in probes {
        assert_eq!(db.digest_at(ts), oracle.digest_at(ts), "{tag}: snapshot at {ts} diverged");
    }
}

#[test]
fn rotating_hotspot_adapts_and_matches_the_oracle() {
    for seed in seeds() {
        let w = rotating_tpcc(&RotatingTpccConfig {
            base: TpccConfig {
                seed,
                num_txns: 4_000,
                warehouses: 4,
                olap_qps: 400.0,
                ..Default::default()
            },
            phases: 4,
            focus_share: 0.8,
        });
        let epochs = encode(&w);
        let n = w.num_tables();
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).expect("oracle replay");

        let (groups, rates) = tpcc::paper_grouping();
        let grouping =
            TableGrouping::new(n, groups, rates, &w.analytic_tables).expect("paper grouping");

        // Static-split baseline: same initial plan, no controller. Both
        // datapaths must land on the identical bytes — adaptation is
        // semantically free.
        let static_db = MemDb::new(n);
        let static_eng = AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: THREADS, ..Default::default() })
            .build()
            .expect("engine config");
        static_eng.replay_all(&epochs, &static_db).expect("static replay");

        let (node, tel) = adaptive_node(n, grouping);
        let m =
            drive(&node, &epochs, &w.queries, &oracle, &[tables::ORDER_LINE, tables::WAREHOUSE], 8);

        let tag = format!("seed={seed}");
        assert_eq!(m.txns, w.txns.len(), "{tag}: txn count");
        assert_state_matches(node.db(), &oracle, &w, &tag);
        assert_state_matches(&static_db, &oracle, &w, &format!("{tag} static baseline"));

        // The rotating hot set must have forced live reconfiguration.
        assert!(m.regroups_applied >= 1, "{tag}: rotating hotspot applied no regroup ({m:?})");
        let windows = node.adaptive_windows().expect("controller attached");
        assert!(windows >= 2, "{tag}: only {windows} control windows observed");
        let snap = tel.snapshot();
        assert!(snap.counter_total(names::ADAPT_WINDOWS) >= windows as u64);
        assert_eq!(snap.counter_total(names::ADAPT_REGROUPS), m.regroups_applied, "{tag}");
        assert_eq!(snap.counter_total(names::ADAPT_RESPLITS), m.resplits_applied, "{tag}");
    }
}

#[test]
fn flash_crowd_adapts_and_matches_the_oracle() {
    for seed in seeds() {
        let cfg = FlashCrowdConfig {
            base: bustracker::BusTrackerConfig {
                seed,
                num_txns: 4_000,
                slots: 20,
                ..Default::default()
            },
            flash_start: 6,
            flash_len: 6,
            flash_rate: 150.0,
            ..Default::default()
        };
        let w = flash_crowd_bustracker(&cfg);
        let epochs = encode(&w);
        let n = w.num_tables();
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).expect("oracle replay");

        // Initial plan from the *pre-flash* rate model: the crowd's log
        // tables start cold, so serving the flash forces a regroup.
        let hot: FxHashSet<TableId> = (0..bustracker::NUM_HOT as u32).map(TableId::new).collect();
        let grouping =
            TableGrouping::dbscan(n, &hot, |t| bustracker::access_rate(t.index(), 0), 0.3)
                .expect("dbscan grouping");

        let (node, tel) = adaptive_node(n, grouping);
        let probe = cfg.flash_tables[0];
        let m = drive(&node, &epochs, &w.queries, &oracle, &[probe, TableId::new(0)], 8);

        let tag = format!("seed={seed}");
        assert_eq!(m.txns, w.txns.len(), "{tag}: txn count");
        assert_state_matches(node.db(), &oracle, &w, &tag);
        assert!(m.regroups_applied >= 1, "{tag}: flash crowd applied no regroup ({m:?})");
        assert!(tel.snapshot().counter_total(names::ADAPT_WINDOWS) >= 2, "{tag}");
    }
}

#[test]
fn stationary_stream_holds_the_first_plan() {
    // A constant access pattern: every epoch touches the same footprint
    // with the same intensity, so after the initial plan the predicted
    // hot set never shifts and the controller must not churn the
    // grouping. (Re-splits are rate-magnitude sensitive and may still
    // fire under wall-clock jitter; they move no tables and are checked
    // for equivalence, not absence.)
    for seed in seeds() {
        let w = tpcc::generate(&TpccConfig {
            seed,
            num_txns: 3_000,
            warehouses: 2,
            ..Default::default()
        });
        let epochs = encode(&w);
        let n = w.num_tables();
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).expect("oracle replay");

        let (groups, rates) = tpcc::paper_grouping();
        let grouping =
            TableGrouping::new(n, groups, rates, &w.analytic_tables).expect("paper grouping");
        let (node, tel) = adaptive_node(n, grouping);

        let footprint: Vec<TableId> =
            vec![tables::DISTRICT, tables::ORDER_LINE, tables::STOCK, tables::CUSTOMER];
        let mut total = ReplayMetrics::default();
        for epoch in &epochs {
            let m = node.replay(std::slice::from_ref(epoch)).expect("replay");
            total.absorb(&m);
            drop(node.open_session(node.safe_ts(), &footprint));
        }

        let tag = format!("seed={seed}");
        assert_eq!(total.txns, w.txns.len(), "{tag}: txn count");
        assert_state_matches(node.db(), &oracle, &w, &tag);
        assert!(
            total.regroups_applied <= 1,
            "{tag}: stationary stream regrouped {} times ({total:?})",
            total.regroups_applied
        );
        assert_eq!(total.reconf_rejected, 0, "{tag}: no command may be rejected");
        assert!(node.adaptive_windows().expect("controller attached") >= 2, "{tag}");
        assert!(tel.snapshot().counter_total(names::ADAPT_WINDOWS) >= 2, "{tag}");
    }
}
