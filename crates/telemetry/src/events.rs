//! Bounded structured event ring.
//!
//! Replay emits one [`Event`] per interesting state transition (epoch
//! dispatched/committed, group quarantined, checkpoint written/skipped,
//! WAL segment retired, GC pass, recovery fallback). Events carry a
//! monotonic sequence number assigned at emission, so a consumer that
//! drains the ring can detect loss: a gap in sequence numbers means the
//! ring overflowed and `dropped()` counts exactly how many fell out.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. Timestamps inside payloads are primary-clock
/// microseconds; `group` fields are visibility-board indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The dispatcher finished the metadata scan of an epoch.
    EpochDispatched {
        /// Epoch sequence number in the stream.
        seq: u64,
    },
    /// Both replay stages of an epoch completed and visibility advanced.
    EpochCommitted {
        /// Epoch sequence number in the stream.
        seq: u64,
        /// The epoch's last primary commit timestamp (micros).
        max_commit_ts_us: u64,
    },
    /// A group hit an unrecoverable fault; its watermark is frozen.
    GroupQuarantined {
        /// Board index of the group.
        group: usize,
    },
    /// A previously quarantined group was restored to health (restart
    /// recovery re-replays its suffix through a fresh engine).
    GroupUnquarantined {
        /// Board index of the group.
        group: usize,
    },
    /// First quarantine of the run: the node entered degraded mode.
    DegradedEntered {
        /// All groups quarantined at entry (ascending board indices).
        groups: Vec<usize>,
    },
    /// A checkpoint manifest became durable.
    CheckpointWritten {
        /// `next_epoch_seq` the checkpoint covers up to.
        next_epoch_seq: u64,
    },
    /// A checkpoint opportunity was refused because a group is
    /// quarantined (truncating the WAL would lose its frozen suffix).
    CheckpointSkippedDegraded,
    /// WAL segments behind the checkpoint watermark were deleted.
    WalSegmentRetired {
        /// Segments removed in this retirement pass.
        segments: u64,
    },
    /// A version-chain GC pass completed.
    GcPass {
        /// Record nodes visited.
        nodes: usize,
        /// Versions pruned.
        pruned: usize,
    },
    /// Restart recovery skipped corrupt checkpoint manifests before
    /// finding a valid one.
    RecoveryFallback {
        /// Manifests that failed validation.
        manifests_skipped: u64,
    },
    /// A read session opened and pinned the GC floor at its `qts`.
    SessionOpened {
        /// The session's snapshot timestamp (micros).
        qts_us: u64,
    },
    /// A read session closed and released its GC floor pin.
    SessionClosed {
        /// The session's snapshot timestamp (micros).
        qts_us: u64,
    },
    /// The fleet supervisor declared a shard dead (crash observed, or
    /// heartbeat liveness exhausted on a hung shard) and removed it from
    /// the routing table.
    ShardDown {
        /// Fleet index of the shard.
        shard: usize,
    },
    /// A replacement shard finished bootstrapping from checkpoint
    /// shipping + WAL-suffix replay and rejoined the routing table.
    ShardFailover {
        /// Fleet index of the shard.
        shard: usize,
        /// Heartbeat intervals between the shard leaving and rejoining
        /// the routing table.
        intervals_down: u64,
        /// Epochs the replacement re-replayed from the shipped WAL suffix
        /// (everything else came from the checkpoint manifest).
        suffix_epochs: u64,
    },
    /// A shard missed a coordinator heartbeat interval.
    ShardHeartbeatMissed {
        /// Fleet index of the shard.
        shard: usize,
        /// Consecutive intervals missed so far.
        missed: u32,
    },
    /// The adaptive controller's table grouping was applied at an epoch
    /// boundary: commit queues drained, tables migrated, replay resumed.
    Regroup {
        /// Epoch sequence the new grouping takes effect at.
        at_seq: u64,
        /// Groups in the new grouping (unchanged by construction).
        groups: usize,
        /// Tables whose group assignment changed.
        moved_tables: usize,
    },
    /// A pinned per-group worker split took effect at an epoch boundary.
    ThreadSplit {
        /// Epoch sequence the split takes effect at.
        at_seq: u64,
        /// Worker counts per group, board order.
        split: Vec<usize>,
    },
    /// The log-shipping sender lost its session and re-established it.
    NetReconnect {
        /// Consecutive failed connection attempts before this one stuck.
        attempts: u32,
    },
    /// A reconnect handshake rewound the send cursor: the epochs that
    /// were in flight when the session broke are shipped again (and
    /// deduplicated at the receiver).
    NetResync {
        /// First epoch sequence shipped again.
        resume_seq: u64,
        /// Epochs rewound (send cursor minus resume point).
        rewound: u64,
    },
}

/// One emitted event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (gap-free unless the ring overflowed).
    pub seq: u64,
    /// Emission time on the telemetry clock (micros).
    pub at_us: u64,
    /// Payload.
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct RingState {
    buf: VecDeque<Event>,
    dropped: u64,
}

/// Bounded MPSC-ish ring: any thread pushes, one consumer drains.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    next_seq: AtomicU64,
    state: Mutex<RingState>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` undelivered events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Appends an event, assigning the next sequence number. The oldest
    /// undelivered event is evicted (and counted dropped) when full.
    pub fn push(&self, at_us: u64, kind: EventKind) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        if s.buf.len() >= self.capacity {
            s.buf.pop_front();
            s.dropped += 1;
        }
        s.buf.push_back(Event { seq, at_us, kind });
        seq
    }

    /// Takes every undelivered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.state.lock().buf.drain(..).collect()
    }

    /// Copies every undelivered event, oldest first, without consuming
    /// them — observers (`/events.json`, flight-recorder bundles) must
    /// not steal events from the run's real consumer.
    pub fn peek(&self) -> Vec<Event> {
        self.state.lock().buf.iter().cloned().collect()
    }

    /// Sequence number the next event will get (== total emitted so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events evicted before being drained.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }
}

impl EventKind {
    /// Stable snake_case name used in exposition output.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::EpochDispatched { .. } => "epoch_dispatched",
            EventKind::EpochCommitted { .. } => "epoch_committed",
            EventKind::GroupQuarantined { .. } => "group_quarantined",
            EventKind::GroupUnquarantined { .. } => "group_unquarantined",
            EventKind::DegradedEntered { .. } => "degraded_entered",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::CheckpointSkippedDegraded => "checkpoint_skipped_degraded",
            EventKind::WalSegmentRetired { .. } => "wal_segment_retired",
            EventKind::GcPass { .. } => "gc_pass",
            EventKind::RecoveryFallback { .. } => "recovery_fallback",
            EventKind::SessionOpened { .. } => "session_opened",
            EventKind::SessionClosed { .. } => "session_closed",
            EventKind::ShardDown { .. } => "shard_down",
            EventKind::ShardFailover { .. } => "shard_failover",
            EventKind::ShardHeartbeatMissed { .. } => "shard_heartbeat_missed",
            EventKind::Regroup { .. } => "regroup",
            EventKind::ThreadSplit { .. } => "thread_split",
            EventKind::NetReconnect { .. } => "net_reconnect",
            EventKind::NetResync { .. } => "net_resync",
        }
    }

    /// Renders the payload fields as a JSON object.
    pub fn detail_json(&self) -> String {
        match self {
            EventKind::EpochDispatched { seq } => format!("{{\"seq\": {seq}}}"),
            EventKind::EpochCommitted { seq, max_commit_ts_us } => {
                format!("{{\"seq\": {seq}, \"max_commit_ts_us\": {max_commit_ts_us}}}")
            }
            EventKind::GroupQuarantined { group } | EventKind::GroupUnquarantined { group } => {
                format!("{{\"group\": {group}}}")
            }
            EventKind::DegradedEntered { groups } => {
                let list: Vec<String> = groups.iter().map(|g| g.to_string()).collect();
                format!("{{\"groups\": [{}]}}", list.join(", "))
            }
            EventKind::CheckpointWritten { next_epoch_seq } => {
                format!("{{\"next_epoch_seq\": {next_epoch_seq}}}")
            }
            EventKind::CheckpointSkippedDegraded => "{}".to_string(),
            EventKind::WalSegmentRetired { segments } => format!("{{\"segments\": {segments}}}"),
            EventKind::GcPass { nodes, pruned } => {
                format!("{{\"nodes\": {nodes}, \"pruned\": {pruned}}}")
            }
            EventKind::RecoveryFallback { manifests_skipped } => {
                format!("{{\"manifests_skipped\": {manifests_skipped}}}")
            }
            EventKind::SessionOpened { qts_us } | EventKind::SessionClosed { qts_us } => {
                format!("{{\"qts_us\": {qts_us}}}")
            }
            EventKind::ShardDown { shard } => format!("{{\"shard\": {shard}}}"),
            EventKind::ShardFailover { shard, intervals_down, suffix_epochs } => format!(
                "{{\"shard\": {shard}, \"intervals_down\": {intervals_down}, \
                 \"suffix_epochs\": {suffix_epochs}}}"
            ),
            EventKind::ShardHeartbeatMissed { shard, missed } => {
                format!("{{\"shard\": {shard}, \"missed\": {missed}}}")
            }
            EventKind::Regroup { at_seq, groups, moved_tables } => format!(
                "{{\"at_seq\": {at_seq}, \"groups\": {groups}, \
                 \"moved_tables\": {moved_tables}}}"
            ),
            EventKind::ThreadSplit { at_seq, split } => {
                let list: Vec<String> = split.iter().map(|w| w.to_string()).collect();
                format!("{{\"at_seq\": {at_seq}, \"split\": [{}]}}", list.join(", "))
            }
            EventKind::NetReconnect { attempts } => format!("{{\"attempts\": {attempts}}}"),
            EventKind::NetResync { resume_seq, rewound } => {
                format!("{{\"resume_seq\": {resume_seq}, \"rewound\": {rewound}}}")
            }
        }
    }
}

/// Renders events as a JSON array (the `/events.json` payload body and
/// the flight-recorder bundle format).
pub fn events_json(events: &[Event]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"seq\": {}, \"at_us\": {}, \"kind\": \"{}\", \"detail\": {}}}",
            e.seq,
            e.at_us,
            e.kind.name(),
            e.kind.detail_json(),
        );
    }
    if !events.is_empty() {
        out.push_str("\n  ");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotone_and_gap_free() {
        let r = EventRing::new(8);
        for i in 0..5 {
            r.push(i, EventKind::EpochDispatched { seq: i });
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 5);
        for (i, e) in drained.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.next_seq(), 5);
        // Draining resets the buffer but not the sequence.
        r.push(9, EventKind::CheckpointSkippedDegraded);
        assert_eq!(r.drain()[0].seq, 5);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let r = EventRing::new(3);
        for i in 0..7 {
            r.push(i, EventKind::EpochCommitted { seq: i, max_commit_ts_us: i * 10 });
        }
        assert_eq!(r.dropped(), 4);
        let drained = r.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].seq, 4, "oldest surviving event");
        assert_eq!(drained[2].seq, 6);
    }

    #[test]
    fn peek_is_non_destructive_and_renders_json() {
        let r = EventRing::new(8);
        r.push(10, EventKind::NetResync { resume_seq: 3, rewound: 2 });
        r.push(11, EventKind::ShardFailover { shard: 1, intervals_down: 4, suffix_epochs: 9 });
        let peeked = r.peek();
        assert_eq!(peeked.len(), 2);
        assert_eq!(r.peek().len(), 2, "peek leaves events in place");
        let json = events_json(&peeked);
        assert!(json.contains("\"kind\": \"net_resync\""));
        assert!(json.contains("\"resume_seq\": 3"));
        assert!(json.contains("\"suffix_epochs\": 9"));
        assert_eq!(events_json(&[]), "[]");
        assert_eq!(r.drain().len(), 2, "real consumer still sees everything");
    }

    #[test]
    fn concurrent_pushes_never_reuse_a_sequence() {
        let r = EventRing::new(1024);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.push(0, EventKind::GcPass { nodes: 1, pruned: 0 });
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = r.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 400);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "no duplicate sequence numbers");
        assert_eq!(r.next_seq(), 400);
    }
}
