//! Point-in-time exposition snapshots.
//!
//! [`TelemetrySnapshot`] is a plain-data copy of every registered series
//! plus event-ring accounting, renderable as Prometheus text exposition
//! ([`TelemetrySnapshot::render_prometheus`]) or a JSON document
//! ([`TelemetrySnapshot::render_json`]). [`parse_exposition`] is the
//! dependency-free counterpart used by smoke tests and scrapers to
//! validate a rendered snapshot without a Prometheus client.

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, HistogramSummary};
use crate::registry::merged_histogram;
use std::fmt::Write as _;

/// A point-in-time copy of the whole registry. Series are sorted by
/// `(family, label)`.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Capture time on the telemetry clock (micros).
    pub at_us: u64,
    /// Counter series: `(family, label, value)`.
    pub counters: Vec<(&'static str, String, u64)>,
    /// Gauge series: `(family, label, value)`.
    pub gauges: Vec<(&'static str, String, u64)>,
    /// Histogram series: `(family, label, state)`.
    pub histograms: Vec<(&'static str, String, HistogramSnapshot)>,
    /// Events emitted so far (== next sequence number).
    pub events_emitted: u64,
    /// Events evicted from the ring before being drained.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Value of counter `name` summed across labels (`0` if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(n, _, _)| *n == name).map(|(_, _, v)| *v).sum()
    }

    /// Value of the exact `(name, label)` counter series.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters.iter().find(|(n, l, _)| *n == name && l == label).map(|(_, _, v)| *v)
    }

    /// Value of the exact `(name, label)` gauge series.
    pub fn gauge(&self, name: &str, label: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, l, _)| *n == name && l == label).map(|(_, _, v)| *v)
    }

    /// The exact `(name, label)` histogram series.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, l, _)| *n == name && l == label).map(|(_, _, h)| h)
    }

    /// Summary of the `(name, label)` histogram series.
    pub fn histogram_summary(&self, name: &str, label: &str) -> Option<HistogramSummary> {
        self.histogram(name, label).map(HistogramSnapshot::summary)
    }

    /// Summary of histogram family `name` merged across every label
    /// (e.g. overall visibility lag across all groups).
    pub fn histogram_summary_all(&self, name: &str) -> Option<HistogramSummary> {
        merged_histogram(self, name).map(|h| h.summary())
    }

    /// Renders Prometheus text exposition format.
    ///
    /// Histograms render cumulative `_bucket{le="..."}` series (inclusive
    /// upper bounds, powers of two) up to the highest non-empty bucket,
    /// then `+Inf`, `_sum`, and `_count`. The `+Inf` bucket and `_count`
    /// are both derived from the same bucket copy (not the histogram's
    /// separately-updated count atomic), so a scrape taken mid-run is
    /// always self-consistent: `+Inf == _count` and buckets never
    /// decrease — the invariants [`parse_exposition`] enforces.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# AETS telemetry snapshot at {}us", self.at_us);

        let mut last = "";
        for (name, label, v) in &self.counters {
            if *name != last {
                let _ = writeln!(out, "# TYPE {name} counter");
                last = name;
            }
            let _ = writeln!(out, "{name}{} {v}", braced(label, None));
        }
        last = "";
        for (name, label, v) in &self.gauges {
            if *name != last {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last = name;
            }
            let _ = writeln!(out, "{name}{} {v}", braced(label, None));
        }
        last = "";
        for (name, label, h) in &self.histograms {
            if *name != last {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last = name;
            }
            let total: u64 = h.buckets.iter().sum();
            let top = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate().take(top + 1) {
                cum += n;
                let le = match bucket_upper_bound(i) {
                    Some(ub) => ub.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "{name}_bucket{} {cum}", braced(label, Some(&le)));
            }
            if bucket_upper_bound(top).is_some() {
                let _ = writeln!(out, "{name}_bucket{} {total}", braced(label, Some("+Inf")));
            }
            let _ = writeln!(out, "{name}_sum{} {}", braced(label, None), h.sum);
            let _ = writeln!(out, "{name}_count{} {total}", braced(label, None));
        }
        out
    }

    /// Renders a JSON document: counters and gauges verbatim, histograms
    /// as quantile summaries (p50/p95/p99/max), plus event accounting.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"at_us\": {},", self.at_us);
        out.push_str("  \"counters\": [");
        for (i, (name, label, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"label\": \"{}\", \"value\": {v}}}",
                json_escape(label)
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (name, label, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"label\": \"{}\", \"value\": {v}}}",
                json_escape(label)
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, (name, label, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = h.summary();
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"label\": \"{}\", \"count\": {}, \
                 \"sum_us\": {}, \"mean_us\": {:.3}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {}}}",
                json_escape(label),
                s.count,
                s.sum_us,
                s.mean_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.max_us
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"events\": {{\"emitted\": {}, \"dropped\": {}}}\n}}\n",
            self.events_emitted, self.events_dropped
        );
        out
    }
}

/// Renders `{label}`, `{label,le="x"}`, `{le="x"}`, or `` from an
/// optional pre-rendered label pair and an optional `le` bound.
fn braced(label: &str, le: Option<&str>) -> String {
    match (label.is_empty(), le) {
        (true, None) => String::new(),
        (true, Some(le)) => format!("{{le=\"{le}\"}}"),
        (false, None) => format!("{{{label}}}"),
        (false, Some(le)) => format!("{{{label},le=\"{le}\"}}"),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One sample line of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (family plus any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Raw label block without braces (empty when unlabeled).
    pub labels: String,
    /// Parsed value.
    pub value: f64,
}

/// Parses Prometheus text exposition produced by
/// [`TelemetrySnapshot::render_prometheus`], validating every sample
/// line. Comment (`#`) and blank lines are skipped. Histogram families
/// are checked for self-consistency: cumulative `_bucket` values must be
/// non-decreasing in ascending `le` order and end at `le="+Inf"`, the
/// `+Inf` bucket must equal the family's `_count` sample, and a `_sum`
/// sample must be present. Returns the parsed samples or a description
/// of the first malformed line or inconsistent family.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad value in {line:?}", lineno + 1))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), String::new()),
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {line:?}", lineno + 1))?;
                (n.to_string(), labels.to_string())
            }
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if value < 0.0 {
            return Err(format!("line {}: negative sample {value}", lineno + 1));
        }
        out.push(Sample { name, labels, value });
    }
    if out.is_empty() {
        return Err("exposition holds no samples".to_string());
    }
    validate_histograms(&out)?;
    Ok(out)
}

/// Splits a `_bucket` sample's label block into (labels without `le`,
/// parsed `le` bound). `None` when no well-formed `le` label exists.
fn split_le(labels: &str) -> Option<(String, f64)> {
    let mut rest = Vec::new();
    let mut le = None;
    for part in labels.split(',') {
        if let Some(v) = part.strip_prefix("le=\"").and_then(|p| p.strip_suffix('"')) {
            le = Some(if v == "+Inf" { f64::INFINITY } else { v.parse().ok()? });
        } else if !part.is_empty() {
            rest.push(part);
        }
    }
    Some((rest.join(","), le?))
}

/// Cross-sample histogram consistency: for every `(family, labels)` with
/// `_bucket` samples, buckets must be cumulative (non-decreasing in
/// ascending `le`), terminated by `+Inf`, `_count` must equal the `+Inf`
/// bucket, and `_sum` must be present.
fn validate_histograms(samples: &[Sample]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut families: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for s in samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            let (labels, le) = split_le(&s.labels)
                .ok_or_else(|| format!("{}{{{}}}: bucket without le label", s.name, s.labels))?;
            families.entry((base.to_string(), labels)).or_default().push((le, s.value));
        }
    }
    for ((family, labels), buckets) in &families {
        let series =
            if labels.is_empty() { family.clone() } else { format!("{family}{{{labels}}}") };
        let ascending = buckets.windows(2).all(|w| w[0].0 < w[1].0);
        if !ascending {
            return Err(format!("{series}: bucket le bounds not ascending"));
        }
        let cumulative = buckets.windows(2).all(|w| w[0].1 <= w[1].1);
        if !cumulative {
            return Err(format!("{series}: cumulative bucket values decrease"));
        }
        let &(last_le, last_value) =
            buckets.last().ok_or_else(|| format!("{series}: empty bucket series"))?;
        if last_le != f64::INFINITY {
            return Err(format!("{series}: bucket series does not end at le=\"+Inf\""));
        }
        let count = samples
            .iter()
            .find(|s| s.name == format!("{family}_count") && s.labels == *labels)
            .ok_or_else(|| format!("{series}: missing _count sample"))?;
        if count.value != last_value {
            return Err(format!("{series}: _count {} != +Inf bucket {last_value}", count.value));
        }
        if !samples.iter().any(|s| s.name == format!("{family}_sum") && s.labels == *labels) {
            return Err(format!("{series}: missing _sum sample"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn prometheus_roundtrip_parses_and_buckets_are_cumulative() {
        let tel = Telemetry::new();
        tel.registry().counter("aets_epochs_total").add(3);
        tel.registry().gauge("aets_global_cmt_ts_us").set(99);
        let h = tel
            .registry()
            .histogram_with("aets_visibility_lag_us", crate::registry::group_label(0));
        h.record_micros(1);
        h.record_micros(5);
        h.record_micros(5_000);

        let text = tel.snapshot().render_prometheus();
        let samples = parse_exposition(&text).expect("rendered exposition must parse");
        assert!(samples.iter().any(|s| s.name == "aets_epochs_total" && s.value == 3.0));
        assert!(samples.iter().any(|s| s.name == "aets_global_cmt_ts_us" && s.value == 99.0));
        let count = samples
            .iter()
            .find(|s| s.name == "aets_visibility_lag_us_count")
            .expect("histogram count sample");
        assert_eq!(count.value, 3.0);
        assert_eq!(count.labels, "group=\"0\"");
        // Cumulative bucket values must be non-decreasing and end at the
        // total count.
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "aets_visibility_lag_us_bucket")
            .map(|s| s.value)
            .collect();
        assert!(!buckets.is_empty());
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets cumulative: {buckets:?}");
        assert_eq!(*buckets.last().expect("nonempty"), 3.0);
        // `_sum` is exposed so a scraper can compute averages.
        let sum = samples
            .iter()
            .find(|s| s.name == "aets_visibility_lag_us_sum")
            .expect("histogram sum sample");
        assert_eq!(sum.value, 5_006.0);
        assert_eq!(sum.labels, "group=\"0\"");
    }

    #[test]
    fn parse_validates_histogram_consistency() {
        let good = "h_bucket{group=\"0\",le=\"1\"} 1\nh_bucket{group=\"0\",le=\"+Inf\"} 2\n\
                    h_sum{group=\"0\"} 9\nh_count{group=\"0\"} 2\n";
        assert!(parse_exposition(good).is_ok());

        let missing_sum = "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n";
        assert!(parse_exposition(missing_sum).expect_err("no _sum").contains("_sum"));

        let count_mismatch = "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n";
        assert!(parse_exposition(count_mismatch).expect_err("bad _count").contains("_count"));

        let decreasing = "h_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
        assert!(parse_exposition(decreasing).expect_err("decreasing").contains("decrease"));

        let unterminated = "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse_exposition(unterminated).expect_err("no +Inf").contains("+Inf"));
    }

    #[test]
    fn json_rendering_contains_summaries() {
        let tel = Telemetry::new();
        let h = tel.registry().histogram("aets_dispatch_us");
        for v in [10u64, 20, 30] {
            h.record_micros(v);
        }
        let json = tel.snapshot().render_json();
        assert!(json.contains("\"name\": \"aets_dispatch_us\""));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"p95_us\""));
        assert!(json.contains("\"events\""));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_exposition("").is_err());
        assert!(parse_exposition("novalue").is_err());
        assert!(parse_exposition("bad-name{} 1").is_err());
        assert!(parse_exposition("x{unterminated 1").is_err());
        assert!(parse_exposition("x 1\ny nan_nope").is_err());
    }

    #[test]
    fn snapshot_accessors() {
        let tel = Telemetry::new();
        tel.registry().counter_with("c", "group=\"1\"".into()).add(2);
        tel.registry().counter_with("c", "group=\"2\"".into()).add(3);
        let h0 = tel.registry().histogram_with("h", "group=\"0\"".into());
        let h1 = tel.registry().histogram_with("h", "group=\"1\"".into());
        h0.record_micros(10);
        h1.record_micros(1_000);
        let snap = tel.snapshot();
        assert_eq!(snap.counter_total("c"), 5);
        assert_eq!(snap.counter("c", "group=\"1\""), Some(2));
        assert_eq!(snap.counter("c", "group=\"9\""), None);
        let all = snap.histogram_summary_all("h").expect("merged histogram");
        assert_eq!(all.count, 2);
        assert_eq!(all.max_us, 1_000);
        assert_eq!(snap.histogram_summary("h", "group=\"0\"").expect("series").count, 1);
    }
}
