//! Degraded-mode flight recorder.
//!
//! When a run hits an anomaly — a group quarantine, a fleet failover, a
//! net-shipping resync — the in-memory rings hold exactly the forensic
//! record an operator needs, and exactly the record that is gone once
//! the process exits. The flight recorder makes that record durable: on
//! each trigger event it dumps a bounded JSON bundle (recent spans,
//! undelivered events, a full metric snapshot) into a configurable
//! directory, keeping only the newest `retention` bundles.
//!
//! Dumps are best-effort by design: they run inside
//! [`crate::Telemetry::event`] on replay/supervision threads, so an
//! unwritable directory must never take the node down — errors are
//! counted, not propagated.

use crate::events::events_json;
use crate::trace::spans_json;
use crate::Telemetry;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where bundles go and how many to keep.
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// Directory bundles are written into (created if missing).
    pub dir: PathBuf,
    /// Newest bundles kept on disk; older ones are deleted (minimum 1).
    pub retention: usize,
    /// Most recent spans included per bundle.
    pub max_spans: usize,
}

impl FlightRecorderConfig {
    /// Config writing into `dir` with default retention (8 bundles) and
    /// span budget (2048 spans).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), retention: 8, max_spans: 2048 }
    }
}

/// Dumps bounded post-mortem bundles on anomaly events.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightRecorderConfig,
    next_seq: AtomicU64,
    failed: AtomicU64,
}

impl FlightRecorder {
    /// Creates the bundle directory and positions the sequence after any
    /// bundles already on disk, so restarts never overwrite history.
    pub fn create(cfg: FlightRecorderConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&cfg.dir)?;
        let next = list_bundles(&cfg.dir)?
            .iter()
            .filter_map(|p| bundle_seq(p))
            .max()
            .map_or(0, |max| max + 1);
        Ok(Self { cfg, next_seq: AtomicU64::new(next), failed: AtomicU64::new(0) })
    }

    /// The configured bundle directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Dumps failed with an I/O error so far.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Writes one bundle named after `reason` (the trigger event's
    /// snake_case name) and enforces retention. Returns the bundle path.
    pub fn dump(&self, reason: &str, tel: &Telemetry) -> io::Result<PathBuf> {
        match self.try_dump(reason, tel) {
            Ok(path) => Ok(path),
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn try_dump(&self, reason: &str, tel: &Telemetry) -> io::Result<PathBuf> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
            .collect();
        let path = self.cfg.dir.join(format!("flight-{seq:06}-{safe}.json"));

        let spans = tel.spans().recent(self.cfg.max_spans);
        let events = tel.peek_events();
        let mut bundle = String::with_capacity(4096);
        bundle.push_str("{\n");
        let _ = writeln!(bundle, "  \"reason\": \"{safe}\",");
        let _ = writeln!(bundle, "  \"seq\": {seq},");
        let _ = writeln!(bundle, "  \"spans\": {},", spans_json(&spans));
        let _ = writeln!(bundle, "  \"spans_dropped\": {},", tel.spans().dropped());
        let _ = writeln!(bundle, "  \"events\": {},", events_json(&events));
        // `render_json` ends with a newline, so the closing brace lands
        // on its own line.
        let _ = write!(bundle, "  \"snapshot\": {}", tel.snapshot().render_json());
        bundle.push_str("}\n");

        // Write-then-rename: a crashed dump leaves a `.tmp`, never a
        // truncated bundle that a post-mortem parser would choke on.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, bundle.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        self.enforce_retention()?;
        Ok(path)
    }

    fn enforce_retention(&self) -> io::Result<()> {
        let bundles = list_bundles(&self.cfg.dir)?;
        let keep = self.cfg.retention.max(1);
        if bundles.len() > keep {
            for old in &bundles[..bundles.len() - keep] {
                std::fs::remove_file(old)?;
            }
        }
        Ok(())
    }
}

/// Bundle files in `dir`, oldest first (sequence prefix orders names).
pub fn list_bundles(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if bundle_seq(&path).is_some() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn bundle_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("flight-")?;
    if !name.ends_with(".json") {
        return None;
    }
    rest.split('-').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, EventKind};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aets-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dump_writes_a_parseable_bundle() {
        let dir = scratch("dump");
        let tel = Telemetry::new();
        tel.registry().counter(names::EPOCHS).add(2);
        tel.event(EventKind::GroupQuarantined { group: 1 });
        tel.spans().point(7, crate::trace::stages::FLIP_GLOBAL, None, None);

        let fr = FlightRecorder::create(FlightRecorderConfig::new(&dir)).expect("create");
        let path = fr.dump("group_quarantined", &tel).expect("dump");
        let body = std::fs::read_to_string(&path).expect("bundle readable");
        assert!(body.contains("\"reason\": \"group_quarantined\""));
        assert!(body.contains("\"stage\": \"flip_global\""));
        assert!(body.contains("\"kind\": \"group_quarantined\""));
        assert!(body.contains("\"name\": \"aets_epochs_total\""));
        assert_eq!(fr.failed(), 0);
        // The dump peeked, never drained: the real consumer still sees it.
        assert_eq!(tel.drain_events().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_only_the_newest_bundles() {
        let dir = scratch("retention");
        let tel = Telemetry::new();
        let mut cfg = FlightRecorderConfig::new(&dir);
        cfg.retention = 3;
        let fr = FlightRecorder::create(cfg).expect("create");
        for i in 0..7 {
            fr.dump(&format!("trigger_{i}"), &tel).expect("dump");
        }
        let bundles = list_bundles(&dir).expect("list");
        assert_eq!(bundles.len(), 3);
        assert!(bundles[0].to_string_lossy().contains("flight-000004"), "{bundles:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_the_sequence_without_overwriting() {
        let dir = scratch("restart");
        let tel = Telemetry::new();
        {
            let fr = FlightRecorder::create(FlightRecorderConfig::new(&dir)).expect("create");
            fr.dump("first", &tel).expect("dump");
        }
        let fr = FlightRecorder::create(FlightRecorderConfig::new(&dir)).expect("reopen");
        let path = fr.dump("second", &tel).expect("dump");
        assert!(path.to_string_lossy().contains("flight-000001"));
        assert_eq!(list_bundles(&dir).expect("list").len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
