//! Metric primitives: sharded counters, gauges, and fixed-bucket
//! log-scale histograms.
//!
//! All three are cheap enough for the replay hot path: a counter
//! increment is one relaxed atomic add on a per-thread shard, a gauge
//! update is one atomic store / fetch-max, and a histogram record is two
//! relaxed adds plus a fetch-max. Every handle carries the owning
//! [`Telemetry`](crate::Telemetry) instance's enabled flag, so a disabled
//! instance reduces each operation to a single relaxed load.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of counter shards (power of two).
const SHARDS: usize = 16;

/// Number of histogram buckets. Bucket `0` holds the value `0`; bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`; the last bucket also
/// absorbs everything at or above its lower bound (the clamp bucket), so
/// no sample is ever lost.
pub const HISTOGRAM_BUCKETS: usize = 42;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread is pinned to one shard for its lifetime; unrelated
    /// threads spread across shards, so concurrent increments do not
    /// contend on one cache line.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// One cache line per shard so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

impl CounterCore {
    fn add(&self, n: u64) {
        MY_SHARD.with(|s| self.shards[*s].0.fetch_add(n, Ordering::Relaxed));
    }

    pub(crate) fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotonically increasing counter, sharded per thread.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) core: Arc<CounterCore>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.add(n);
        }
    }

    /// Current value (sum over shards). Reads are exact once all writers
    /// have quiesced; mid-run they are a consistent-enough live view.
    pub fn get(&self) -> u64 {
        self.core.get()
    }
}

/// A last-value gauge (also supports monotone ratchet via
/// [`Gauge::set_max`]).
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) core: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores `v` unconditionally.
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.store(v, Ordering::Relaxed);
        }
    }

    /// Ratchets the gauge up to `v` (keeps the maximum seen). Used for
    /// watermarks like `tg_cmt_ts` where concurrent publishers may race.
    pub fn set_max(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` to the gauge. Used for up/down levels such as in-flight
    /// query counts and queue depths.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n` from the gauge, saturating at zero so a racy
    /// decrement can never wrap a level gauge to `u64::MAX`.
    pub fn sub(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            let _ = self
                .core
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.core.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of value `v`: `0` for `0`, otherwise `floor(log2 v) + 1`,
/// clamped into the last bucket.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`None` for the unbounded clamp
/// bucket).
pub(crate) fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else if i == 0 {
        Some(0)
    } else {
        Some((1u64 << i) - 1)
    }
}

impl HistogramCore {
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket log-scale histogram of microsecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one microsecond sample.
    pub fn record_micros(&self, us: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.record(us);
        }
    }

    /// Records a [`std::time::Duration`] sample.
    pub fn record(&self, d: std::time::Duration) {
        self.record_micros(d.as_micros() as u64);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }

    /// Quantile summary of the current state.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

/// A point-in-time copy of one histogram (or a merge of several).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (microseconds).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Accumulates `other` into `self` (used to merge per-group
    /// histograms into an overall one).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the bucket holding
    /// the rank is located and the value interpolated linearly inside
    /// it. Zero samples yield `0`, never NaN.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let est = match bucket_upper_bound(i) {
                    None => self.max,
                    Some(0) => 0,
                    Some(ub) => {
                        let lo = ub.div_ceil(2); // 2^(i-1)
                        let frac = (rank - cum) as f64 / n as f64;
                        lo + ((ub + 1 - lo) as f64 * frac) as u64
                    }
                };
                return est.min(self.max);
            }
            cum += n;
        }
        self.max
    }

    /// p50/p95/p99/max summary. All fields are `0` when no sample was
    /// recorded (empty, not NaN).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum_us: self.sum,
            mean_us: if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 },
            p50_us: self.quantile(0.50),
            p95_us: self.quantile(0.95),
            p99_us: self.quantile(0.99),
            max_us: self.max,
        }
    }
}

/// Quantile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_us: u64,
    /// Mean sample (0 when empty).
    pub mean_us: f64,
    /// Median estimate.
    pub p50_us: u64,
    /// 95th-percentile estimate.
    pub p95_us: u64,
    /// 99th-percentile estimate.
    pub p99_us: u64,
    /// Exact maximum.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hist() -> Histogram {
        Histogram {
            enabled: Arc::new(AtomicBool::new(true)),
            core: Arc::new(HistogramCore::default()),
        }
    }

    fn counter() -> Counter {
        Counter { enabled: Arc::new(AtomicBool::new(true)), core: Arc::new(CounterCore::default()) }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(2), Some(3));
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn empty_histogram_summary_is_zero_not_nan() {
        let s = hist().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p95_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us, 0.0);
        assert!(!s.mean_us.is_nan());
    }

    #[test]
    fn single_sample_summary() {
        let h = hist();
        h.record_micros(777);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_us, 777);
        assert_eq!(s.p50_us, 777, "all quantiles of one sample are that sample");
        assert_eq!(s.p99_us, 777);
        assert_eq!(s.mean_us, 777.0);
    }

    #[test]
    fn values_above_the_top_bucket_clamp() {
        let h = hist();
        h.record_micros(u64::MAX);
        h.record_micros(u64::MAX - 1);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 2, "both land in the clamp bucket");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        // Quantiles in the clamp bucket report the exact max, never more.
        assert_eq!(snap.quantile(0.99), u64::MAX);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = hist();
        for v in 1..=1000u64 {
            h.record_micros(v);
        }
        let s = h.summary();
        // Log-bucket interpolation: each estimate must land within the
        // bucket of the true quantile (factor-of-2 accuracy).
        assert!((250..=1000).contains(&s.p50_us), "p50 {}", s.p50_us);
        assert!((475..=1900).contains(&s.p95_us), "p95 {}", s.p95_us);
        assert_eq!(s.max_us, 1000);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn concurrent_recording_matches_serial_oracle_count() {
        let h = hist();
        let c = counter();
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record_micros(t as u64 * 1_000 + i % 977);
                        c.inc();
                    }
                });
            }
        });
        let want = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), want, "sharded counter equals the serial count");
        let snap = h.snapshot();
        assert_eq!(snap.count, want);
        assert_eq!(snap.buckets.iter().sum::<u64>(), want, "every sample landed in a bucket");
    }

    #[test]
    fn disabled_handles_are_noops() {
        let off = Arc::new(AtomicBool::new(false));
        let h = Histogram { enabled: off.clone(), core: Arc::new(HistogramCore::default()) };
        let c = Counter { enabled: off.clone(), core: Arc::new(CounterCore::default()) };
        let g = Gauge { enabled: off, core: Arc::new(AtomicU64::new(0)) };
        h.record_micros(5);
        c.add(5);
        g.set(5);
        g.set_max(9);
        assert_eq!(h.summary().count, 0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_set_and_ratchet() {
        let g =
            Gauge { enabled: Arc::new(AtomicBool::new(true)), core: Arc::new(AtomicU64::new(0)) };
        g.set(10);
        assert_eq!(g.get(), 10);
        g.set_max(5);
        assert_eq!(g.get(), 10, "ratchet keeps the max");
        g.set_max(20);
        assert_eq!(g.get(), 20);
        g.set(1);
        assert_eq!(g.get(), 1, "plain set overwrites");
    }

    #[test]
    fn gauge_add_sub_saturates_at_zero() {
        let g =
            Gauge { enabled: Arc::new(AtomicBool::new(true)), core: Arc::new(AtomicU64::new(0)) };
        g.add(3);
        assert_eq!(g.get(), 3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "level gauge never wraps below zero");
    }

    #[test]
    fn merged_snapshots_accumulate() {
        let a = hist();
        let b = hist();
        a.record_micros(10);
        b.record_micros(1_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.sum, 1_010);
        assert_eq!(m.max, 1_000);
    }
}
