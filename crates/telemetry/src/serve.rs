//! Zero-dependency live exposition endpoint.
//!
//! [`ObsServer`] is a tiny blocking HTTP/1.1 server (std `TcpListener`
//! on a dedicated thread, no external crates — the workspace builds
//! offline) that exposes a shared [`Telemetry`] while the node runs:
//!
//! | route                | body                                         |
//! |----------------------|----------------------------------------------|
//! | `/metrics`           | Prometheus text exposition                   |
//! | `/snapshot.json`     | full snapshot as JSON (quantile summaries)   |
//! | `/spans.json?epoch=N`| lifecycle spans of epoch `N` (or the newest) |
//! | `/events.json`       | undelivered structured events (peeked)       |
//! | `/healthz`           | `200` healthy / `503` degraded + quarantine  |
//!
//! The server is deliberately modest: one connection at a time, short
//! socket timeouts, `Connection: close`. Scrapes are rare (seconds
//! apart) and cheap (one snapshot copy); a slow or stuck scraper must
//! never be able to hold replay-side locks — handlers only read the
//! same lock-light structures the instrumented threads push into.

use crate::events::events_json;
use crate::trace::spans_json;
use crate::Telemetry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What `/healthz` reports.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// `false` renders a `503` — the node cannot serve its full contract.
    pub healthy: bool,
    /// Quarantined visibility-board groups (or down fleet shards).
    pub quarantined: Vec<usize>,
    /// Free-form operator hint.
    pub detail: String,
}

impl HealthReport {
    /// A healthy report.
    pub fn ok() -> Self {
        Self { healthy: true, quarantined: Vec::new(), detail: String::new() }
    }

    /// A degraded report listing the quarantined group/shard indices.
    pub fn degraded(quarantined: Vec<usize>, detail: impl Into<String>) -> Self {
        Self { healthy: false, quarantined, detail: detail.into() }
    }
}

/// Callback the mounting node supplies so `/healthz` reflects *live*
/// quarantine/degraded state rather than a stale snapshot.
pub type HealthFn = Arc<dyn Fn() -> HealthReport + Send + Sync>;

/// The live exposition endpoint. Shuts down on [`ObsServer::shutdown`]
/// or drop.
pub struct ObsServer {
    addr: SocketAddr,
    closed: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer").field("addr", &self.addr).finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the serve thread.
    pub fn bind(addr: &str, tel: Arc<Telemetry>, health: HealthFn) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let closed = Arc::new(AtomicBool::new(false));
        let flag = closed.clone();
        let thread = std::thread::Builder::new()
            .name("aets-obs".into())
            .spawn(move || serve_loop(listener, tel, health, flag))?;
        Ok(Self { addr: local, closed, thread: Some(thread) })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serve thread and joins it. Idempotent.
    pub fn shutdown(&mut self) {
        self.closed.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(
    listener: TcpListener,
    tel: Arc<Telemetry>,
    health: HealthFn,
    closed: Arc<AtomicBool>,
) {
    while !closed.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A misbehaving client costs at most the socket timeouts;
                // its error never reaches the node.
                let _ = handle_conn(stream, &tel, &health);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, tel: &Telemetry, health: &HealthFn) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nonblocking(false)?;

    // Read until the end of the request head; the routes take no bodies.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();

    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = tel.snapshot().render_prometheus();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/snapshot.json" => {
            let body = tel.snapshot().render_json();
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/spans.json" => {
            let epoch = query_param(query, "epoch").and_then(|v| v.parse::<u64>().ok());
            let spans = match epoch {
                Some(seq) => tel.spans().for_epoch(seq),
                None => tel.spans().recent(512),
            };
            let body = format!(
                "{{\n  \"epoch\": {},\n  \"spans\": {},\n  \"recorded\": {},\n  \
                 \"dropped\": {}\n}}\n",
                epoch.map_or("null".to_string(), |e| e.to_string()),
                spans_json(&spans),
                tel.spans().recorded(),
                tel.spans().dropped(),
            );
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/events.json" => {
            let events = tel.peek_events();
            let body = format!(
                "{{\n  \"events\": {},\n  \"emitted\": {},\n  \"dropped\": {}\n}}\n",
                events_json(&events),
                tel.events_emitted(),
                tel.events_dropped(),
            );
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/healthz" => {
            let report = health();
            let groups: Vec<String> = report.quarantined.iter().map(|g| g.to_string()).collect();
            let body = format!(
                "{{\"status\": \"{}\", \"quarantined\": [{}], \"detail\": \"{}\"}}\n",
                if report.healthy { "ok" } else { "degraded" },
                groups.join(", "),
                report.detail.replace('\\', "\\\\").replace('"', "\\\""),
            );
            let status = if report.healthy { "200 OK" } else { "503 Service Unavailable" };
            respond(&mut stream, status, "application/json", &body)
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "unknown route\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Blocking `GET` against an [`ObsServer`] route; returns
/// `(status_line, body)`. Shared by tests, examples, and the CI endpoint
/// smoke so scrape plumbing lives in one place.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: aets\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head.lines().next().unwrap_or_default().to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, parse_exposition, EventKind};

    fn server(tel: Arc<Telemetry>, health: HealthFn) -> ObsServer {
        ObsServer::bind("127.0.0.1:0", tel, health).expect("bind obs server")
    }

    #[test]
    fn metrics_route_serves_parseable_exposition() {
        let tel = Arc::new(Telemetry::new());
        tel.registry().counter(names::EPOCHS).add(5);
        tel.registry().histogram(names::DISPATCH_US).record_micros(42);
        let mut srv = server(tel, Arc::new(HealthReport::ok));
        let (status, body) = http_get(srv.addr(), "/metrics").expect("scrape");
        assert!(status.contains("200"), "{status}");
        let samples = parse_exposition(&body).expect("scraped exposition parses");
        assert!(samples.iter().any(|s| s.name == names::EPOCHS && s.value == 5.0));
        assert!(samples.iter().any(|s| s.name == "aets_dispatch_us_sum"));
        srv.shutdown();
    }

    #[test]
    fn spans_route_filters_by_epoch() {
        let tel = Arc::new(Telemetry::new());
        tel.spans().point(3, crate::trace::stages::FLIP_GLOBAL, None, None);
        tel.spans().point(4, crate::trace::stages::FLIP_GLOBAL, None, None);
        let mut srv = server(tel, Arc::new(HealthReport::ok));
        let (status, body) = http_get(srv.addr(), "/spans.json?epoch=3").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"epoch\": 3"));
        assert!(body.contains("\"epoch\": 3,"), "{body}");
        assert!(!body.contains("\"epoch\": 4,"), "filtered: {body}");
        let (_, all) = http_get(srv.addr(), "/spans.json").expect("scrape");
        assert!(all.contains("\"epoch\": null"), "no filter echoes null: {all}");
        assert!(all.contains("\"recorded\": 2"), "{all}");
        srv.shutdown();
    }

    #[test]
    fn events_and_snapshot_routes_serve_json() {
        let tel = Arc::new(Telemetry::new());
        tel.event(EventKind::NetReconnect { attempts: 2 });
        let mut srv = server(tel.clone(), Arc::new(HealthReport::ok));
        let (status, body) = http_get(srv.addr(), "/events.json").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"kind\": \"net_reconnect\""));
        assert!(body.contains("\"emitted\": 1"));
        let (status, body) = http_get(srv.addr(), "/snapshot.json").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"events\""));
        // The exposition peeked: the run's real consumer still drains it.
        assert_eq!(tel.drain_events().len(), 1);
        srv.shutdown();
    }

    #[test]
    fn healthz_reflects_degraded_state() {
        let tel = Arc::new(Telemetry::new());
        let degraded = Arc::new(AtomicBool::new(false));
        let flag = degraded.clone();
        let health: HealthFn = Arc::new(move || {
            if flag.load(Ordering::Relaxed) {
                HealthReport::degraded(vec![1, 3], "groups quarantined")
            } else {
                HealthReport::ok()
            }
        });
        let mut srv = server(tel, health);
        let (status, body) = http_get(srv.addr(), "/healthz").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\": \"ok\""));
        degraded.store(true, Ordering::Relaxed);
        let (status, body) = http_get(srv.addr(), "/healthz").expect("scrape");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"quarantined\": [1, 3]"), "{body}");
        srv.shutdown();
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let tel = Arc::new(Telemetry::new());
        let mut srv = server(tel, Arc::new(HealthReport::ok));
        let (status, _) = http_get(srv.addr(), "/nope").expect("scrape");
        assert!(status.contains("404"), "{status}");
        let mut stream = TcpStream::connect(srv.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: aets\r\nConnection: close\r\n\r\n")
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        srv.shutdown();
    }
}
