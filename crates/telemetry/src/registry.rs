//! The metrics registry: named families of counters, gauges, and
//! histograms, each optionally split by a label (in practice the
//! visibility-board group index).
//!
//! Handle acquisition takes a mutex and is meant for setup paths; the
//! returned handles are `Arc`-shared and lock-free, so hot paths cache
//! them (see `EngineStats` in `aets-replay`) and never touch the map.

use crate::metrics::{Counter, CounterCore, Gauge, Histogram, HistogramCore, HistogramSnapshot};
use crate::snapshot::TelemetrySnapshot;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;

#[derive(Debug)]
enum Slot {
    Counter(Arc<CounterCore>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// Named metric families. Keys are `(family, label)`; the empty label is
/// the unlabeled series.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    slots: Mutex<BTreeMap<(&'static str, String), Slot>>,
}

/// Renders the canonical `group="N"` label for board group `idx`.
pub fn group_label(idx: usize) -> String {
    format!("group=\"{idx}\"")
}

impl Registry {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Self { enabled, slots: Mutex::new(BTreeMap::new()) }
    }

    /// Counter handle for the unlabeled series of `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, String::new())
    }

    /// Counter handle for the `label` series of `name` (label is a fully
    /// rendered `key="value"` pair, e.g. from [`group_label`]).
    ///
    /// If `name` is already registered as a different metric kind, a
    /// detached (unregistered) handle is returned instead of panicking:
    /// it counts, but never appears in snapshots. That is a programming
    /// error surfaced by the missing family, not a crash.
    pub fn counter_with(&self, name: &'static str, label: String) -> Counter {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry((name, label))
            .or_insert_with(|| Slot::Counter(Arc::new(CounterCore::default())));
        let core = match slot {
            Slot::Counter(c) => c.clone(),
            _ => Arc::new(CounterCore::default()),
        };
        Counter { enabled: self.enabled.clone(), core }
    }

    /// Gauge handle for the unlabeled series of `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_with(name, String::new())
    }

    /// Gauge handle for the `label` series of `name`.
    pub fn gauge_with(&self, name: &'static str, label: String) -> Gauge {
        let mut slots = self.slots.lock();
        let slot =
            slots.entry((name, label)).or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
        let core = match slot {
            Slot::Gauge(g) => g.clone(),
            _ => Arc::new(AtomicU64::new(0)),
        };
        Gauge { enabled: self.enabled.clone(), core }
    }

    /// Histogram handle for the unlabeled series of `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, String::new())
    }

    /// Histogram handle for the `label` series of `name`.
    pub fn histogram_with(&self, name: &'static str, label: String) -> Histogram {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry((name, label))
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCore::default())));
        let core = match slot {
            Slot::Histogram(h) => h.clone(),
            _ => Arc::new(HistogramCore::default()),
        };
        Histogram { enabled: self.enabled.clone(), core }
    }

    /// Point-in-time copy of every registered series.
    pub(crate) fn snapshot_into(&self, snap: &mut TelemetrySnapshot) {
        let slots = self.slots.lock();
        for ((name, label), slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.push((name, label.clone(), c.get()));
                }
                Slot::Gauge(g) => {
                    snap.gauges.push((
                        name,
                        label.clone(),
                        g.load(std::sync::atomic::Ordering::Relaxed),
                    ));
                }
                Slot::Histogram(h) => {
                    snap.histograms.push((name, label.clone(), h.snapshot()));
                }
            }
        }
    }
}

/// Merges every labeled series of histogram family `name` in `snap`.
pub(crate) fn merged_histogram(snap: &TelemetrySnapshot, name: &str) -> Option<HistogramSnapshot> {
    let mut out: Option<HistogramSnapshot> = None;
    for (n, _, h) in &snap.histograms {
        if *n == name {
            match &mut out {
                Some(acc) => acc.merge(h),
                None => out = Some(h.clone()),
            }
        }
    }
    out
}
