//! Live observability for the AETS backup node.
//!
//! The paper's promise is *real-time* visibility, so the replayer must be
//! observable in real time too: this crate provides the allocation-light
//! in-process layer the replay path is instrumented with —
//!
//! * a [`Registry`] of named counter/gauge/histogram families with
//!   per-thread sharded counters and fixed-bucket log-scale histograms
//!   ([`Histogram::record_micros`], p50/p95/p99/max summaries);
//! * a bounded structured [`EventRing`] with monotonic sequence numbers
//!   and a drain API, for state transitions (epoch committed, group
//!   quarantined, checkpoint written, ...);
//! * [`TelemetrySnapshot`]: a point-in-time copy renderable as Prometheus
//!   text exposition or JSON, plus [`parse_exposition`] to validate it.
//!
//! Everything hangs off one [`Telemetry`] instance, shared via `Arc`
//! between the engine, the visibility board, the realtime runner, and the
//! durable backup. A [`Telemetry::disabled`] instance turns every record
//! operation into a single relaxed atomic load, which is what the
//! telemetry-on/off overhead benchmark compares against
//! (`results/BENCH_observability.json`).
//!
//! No external dependencies (`parking_lot` is the in-repo vendored shim),
//! matching the workspace's offline-build policy.

// Telemetry runs inside replay and recovery threads: a panic here would
// quarantine a healthy group, so fallible paths must not unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod events;
pub mod flight;
pub mod metrics;
pub mod registry;
pub mod serve;
pub mod snapshot;
pub mod trace;

pub use events::{events_json, Event, EventKind, EventRing};
pub use flight::{FlightRecorder, FlightRecorderConfig};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramSummary};
pub use registry::{group_label, Registry};
pub use serve::{http_get, HealthFn, HealthReport, ObsServer};
pub use snapshot::{parse_exposition, Sample, TelemetrySnapshot};
pub use trace::{first_orphan, spans_json, OpenSpan, Span, SpanId, SpanRing};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A clock returning "now" in microseconds on whatever timeline the
/// instrumentation point cares about (wall micros since start for event
/// stamps, primary-clock micros for freshness lag).
pub type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Default event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Event kinds that mean "something went wrong enough to keep forensic
/// state": they latch the span ring's always-sample override and, when a
/// [`FlightRecorder`] is attached, dump a post-mortem bundle to disk.
fn is_anomaly(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::GroupQuarantined { .. }
            | EventKind::DegradedEntered { .. }
            | EventKind::ShardDown { .. }
            | EventKind::ShardFailover { .. }
            | EventKind::NetResync { .. }
    )
}

/// Metric family names used by the replay stack, so producers and
/// consumers (snapshot tests, dashboards, `ReplayMetrics::project`)
/// agree on spelling.
pub mod names {
    /// Epochs fully replayed (both stages + global publish).
    pub const EPOCHS: &str = "aets_epochs_total";
    /// Transactions replayed.
    pub const TXNS: &str = "aets_txns_total";
    /// DML entries replayed.
    pub const ENTRIES: &str = "aets_entries_total";
    /// Encoded log bytes processed.
    pub const BYTES: &str = "aets_bytes_total";
    /// Per-epoch dispatcher (metadata scan + route) time histogram.
    pub const DISPATCH_US: &str = "aets_dispatch_us";
    /// Per-epoch stage-1 (hot groups) wall-time histogram.
    pub const STAGE1_US: &str = "aets_stage1_us";
    /// Per-epoch stage-2 (cold groups) wall-time histogram.
    pub const STAGE2_US: &str = "aets_stage2_us";
    /// Aggregate phase-1 worker busy time (micros counter).
    pub const REPLAY_BUSY_US: &str = "aets_replay_busy_us_total";
    /// Aggregate commit-thread busy time (micros counter).
    pub const COMMIT_BUSY_US: &str = "aets_commit_busy_us_total";
    /// Freshness: visibility lag (`now − primary_commit_ts`) per group.
    pub const VISIBILITY_LAG_US: &str = "aets_visibility_lag_us";
    /// Live per-group `tg_cmt_ts` watermark gauge (micros).
    pub const TG_CMT_TS_US: &str = "aets_tg_cmt_ts_us";
    /// Live `global_cmt_ts` watermark gauge (micros).
    pub const GLOBAL_CMT_TS_US: &str = "aets_global_cmt_ts_us";
    /// Ingest resync: epoch re-requests issued.
    pub const INGEST_RETRIES: &str = "aets_ingest_retries_total";
    /// Ingest resync: deliveries rejected by the epoch frame CRC.
    pub const CHECKSUM_FAILURES: &str = "aets_ingest_checksum_failures_total";
    /// Ingest resync: out-of-sequence deliveries.
    pub const EPOCH_GAPS: &str = "aets_ingest_epoch_gaps_total";
    /// Ingest resync: fetches that found the epoch unavailable.
    pub const INGEST_STALLS: &str = "aets_ingest_stalls_total";
    /// Groups currently quarantined.
    pub const QUARANTINED_GROUPS: &str = "aets_quarantined_groups";
    /// Phase-1 cell buffers served from the free-list pools.
    pub const CELL_RECYCLED: &str = "aets_cell_buffers_recycled_total";
    /// Phase-1 cell buffers freshly allocated.
    pub const CELL_ALLOCATED: &str = "aets_cell_buffers_allocated_total";
    /// Version-chain GC passes run.
    pub const GC_PASSES: &str = "aets_gc_passes_total";
    /// Versions pruned by GC.
    pub const GC_PRUNED: &str = "aets_gc_pruned_total";
    /// Checkpoints written durably.
    pub const CHECKPOINTS_WRITTEN: &str = "aets_checkpoints_written_total";
    /// Checkpoint opportunities skipped while degraded.
    pub const CHECKPOINTS_SKIPPED: &str = "aets_checkpoints_skipped_degraded_total";
    /// Epochs appended durably to the WAL segment store.
    pub const WAL_EPOCHS_APPENDED: &str = "aets_wal_epochs_appended_total";
    /// WAL segments retired past the checkpoint watermark.
    pub const WAL_SEGMENTS_RETIRED: &str = "aets_wal_segments_retired_total";
    /// Corrupt checkpoint manifests skipped at recovery.
    pub const MANIFEST_FALLBACKS: &str = "aets_manifest_fallbacks_total";
    /// Epochs re-replayed from the WAL suffix during recovery.
    pub const RECOVERY_SUFFIX_EPOCHS: &str = "aets_recovery_suffix_epochs_total";
    /// Query service: end-to-end query latency (submit → reply, micros).
    pub const QUERY_LATENCY_US: &str = "aets_query_latency_us";
    /// Query service: time a query spent in the admission queue before a
    /// worker picked it up (micros).
    pub const QUERY_QUEUE_WAIT_US: &str = "aets_query_queue_wait_us";
    /// Query service: time a worker spent parked on Algorithm 3
    /// visibility before the snapshot became readable (micros).
    pub const QUERY_ADMISSION_WAIT_US: &str = "aets_query_admission_wait_us";
    /// Query service: queries completed successfully.
    pub const QUERIES_SERVED: &str = "aets_queries_served_total";
    /// Query service: queries that missed their deadline.
    pub const QUERIES_TIMED_OUT: &str = "aets_queries_timed_out_total";
    /// Query service: submissions rejected by the full admission queue.
    pub const QUERIES_OVERLOADED: &str = "aets_queries_overloaded_total";
    /// Query service: queries refused because a quarantined group's
    /// frozen watermark can never reach their `qts`.
    pub const QUERIES_REFUSED_DEGRADED: &str = "aets_queries_refused_degraded_total";
    /// Query service: queries cancelled by their client.
    pub const QUERIES_CANCELLED: &str = "aets_queries_cancelled_total";
    /// Query service: queries currently executing on workers (level).
    pub const QUERIES_INFLIGHT: &str = "aets_queries_inflight";
    /// Query service: submissions currently waiting in the admission
    /// queue (level).
    pub const QUERY_QUEUE_DEPTH: &str = "aets_query_queue_depth";
    /// Query service: read sessions opened.
    pub const SESSIONS_OPENED: &str = "aets_sessions_opened_total";
    /// Query service: read sessions closed (floor pin released).
    pub const SESSIONS_CLOSED: &str = "aets_sessions_closed_total";
    /// Query service: read sessions currently pinning the GC floor
    /// (level).
    pub const SESSIONS_ACTIVE: &str = "aets_sessions_active";
    /// Ingest hot path: encoded log bytes replayed per wall second,
    /// sampled per epoch (level gauge).
    pub const INGEST_BYTES_PER_SEC: &str = "aets_ingest_bytes_per_sec";
    /// WAL group commit: frames made durable per fsync point (batch-size
    /// histogram; always 1 under `FsyncPolicy::EveryEpoch`).
    pub const WAL_FSYNC_COALESCED_FRAMES: &str = "wal_fsync_coalesced_frames";
    /// Fleet: per-shard health gauge, labeled `shard="N"` (see
    /// [`super::shard_label`]). Levels: 0 = down, 1 = hung, 2 = lagging,
    /// 3 = healthy.
    pub const FLEET_SHARD_HEALTH: &str = "fleet_shard_health";
    /// Fleet: failovers completed (replacement shard bootstrapped from
    /// checkpoint shipping and rejoined the routing table).
    pub const FLEET_FAILOVERS: &str = "fleet_failovers_total";
    /// Fleet: end-to-end routed query latency (route + fan-out + merge,
    /// micros).
    pub const FLEET_ROUTED_LATENCY_US: &str = "fleet_routed_query_latency_us";
    /// Fleet: the fleet-wide `global_cmt_ts` watermark gauge (micros) —
    /// the minimum over every shard's last heartbeat-reported watermark.
    pub const FLEET_GLOBAL_CMT_TS_US: &str = "fleet_global_cmt_ts_us";
    /// Fleet: coordinator heartbeat intervals a shard failed to report in.
    pub const FLEET_HEARTBEATS_MISSED: &str = "fleet_heartbeats_missed_total";
    /// Fleet: queries routed to shards (one per fanned-out sub-query).
    pub const FLEET_QUERIES_ROUTED: &str = "fleet_queries_routed_total";
    /// Fleet: routed queries answered partially because a shard was
    /// unavailable (`DegradedPolicy::Partial`).
    pub const FLEET_QUERIES_PARTIAL: &str = "fleet_queries_partial_total";
    /// Transport: sender sessions (re-)established over TCP — the first
    /// connection counts too, so `value - 1` is the reconnect count of a
    /// single-stream run.
    pub const NET_CONNECTS: &str = "net_connects_total";
    /// Transport: reconnects after a broken session (excludes the first
    /// connection).
    pub const NET_RECONNECTS: &str = "net_reconnects_total";
    /// Transport: handshakes whose RESUME point rewound the send cursor —
    /// epochs in flight when the session broke are shipped again.
    pub const NET_RESYNCS: &str = "net_resyncs_total";
    /// Transport: HELLO/RESUME handshakes completed on the receiver.
    pub const NET_HANDSHAKES: &str = "net_handshakes_total";
    /// Transport: bytes the sender wrote to the wire (frames + payloads,
    /// including re-shipped epochs).
    pub const NET_BYTES_SENT: &str = "net_bytes_sent_total";
    /// Transport: bytes the receiver read off the wire.
    pub const NET_BYTES_RECV: &str = "net_bytes_recv_total";
    /// Transport: epoch frames shipped (including re-ships after resync).
    pub const NET_EPOCHS_SHIPPED: &str = "net_epochs_shipped_total";
    /// Transport: duplicate epoch deliveries discarded by the receiver's
    /// epoch-id dedup (exactly-once guarantee at work).
    pub const NET_EPOCHS_DEDUPED: &str = "net_epochs_deduped_total";
    /// Transport: frames rejected at decode (bad magic, header/payload
    /// CRC mismatch, oversized length, protocol violations). Every
    /// rejection tears the session down: a byte-corrupted TCP stream
    /// cannot be trusted to re-frame.
    pub const NET_FRAME_ERRORS: &str = "net_frame_errors_total";
    /// Transport: in-flight (sent, not yet acked) epochs sampled at each
    /// epoch send — the histogram of ack-window depth.
    pub const NET_ACK_WINDOW_DEPTH: &str = "net_ack_window_depth";
    /// Query service: analytical accesses per table, labeled
    /// `table="N"` (see [`super::table_label`]). One increment per table
    /// in a read session's footprint at open — the raw signal the
    /// adaptive controller differentiates into per-table access rates.
    pub const TABLE_ACCESS: &str = "aets_table_access_total";
    /// Adaptive control: rate windows closed (one forecast per window).
    pub const ADAPT_WINDOWS: &str = "aets_adapt_windows_total";
    /// Adaptive control: `Regroup` commands applied at an epoch boundary.
    pub const ADAPT_REGROUPS: &str = "aets_adapt_regroups_total";
    /// Adaptive control: `SetThreadSplit` commands applied at an epoch
    /// boundary.
    pub const ADAPT_RESPLITS: &str = "aets_adapt_resplits_total";
    /// Adaptive control: reconfigure commands dropped at the boundary
    /// (regroup while degraded, stale shape).
    pub const ADAPT_REJECTED: &str = "aets_adapt_rejected_total";
    /// Adaptive control: forecast + planning time per window (micros).
    pub const ADAPT_PLAN_US: &str = "aets_adapt_plan_us";
    /// Adaptive control: tables in the currently predicted hot set
    /// (level gauge).
    pub const ADAPT_HOT_TABLES: &str = "aets_adapt_hot_tables";
    /// Structured events emitted (== the ring's next sequence number).
    pub const EVENTS_EMITTED: &str = "aets_events_emitted_total";
    /// Structured events evicted from the ring before being drained.
    pub const EVENTS_DROPPED: &str = "aets_events_dropped_total";
}

/// Renders the canonical `shard="N"` label for fleet shard `idx`.
pub fn shard_label(idx: usize) -> String {
    format!("shard=\"{idx}\"")
}

/// Renders the canonical `table="N"` label for table `idx` (the
/// [`names::TABLE_ACCESS`] counter family).
pub fn table_label(idx: usize) -> String {
    format!("table=\"{idx}\"")
}

/// The shared telemetry instance: registry + event ring + span ring +
/// clock, with an optional flight recorder for anomaly post-mortems.
pub struct Telemetry {
    enabled: Arc<AtomicBool>,
    registry: Registry,
    events: EventRing,
    spans: SpanRing,
    flight: Mutex<Option<FlightRecorder>>,
    clock: ClockFn,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("events_emitted", &self.events.next_seq())
            .finish()
    }
}

impl Telemetry {
    /// An enabled instance with the default event capacity and a clock
    /// counting microseconds since creation.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY, true)
    }

    /// An instance whose record operations are all no-ops (one relaxed
    /// load each). Snapshots still render — empty.
    pub fn disabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY, false)
    }

    /// An instance with an explicit event-ring capacity.
    pub fn with_capacity(event_capacity: usize, enabled: bool) -> Self {
        let start = Instant::now();
        let enabled = Arc::new(AtomicBool::new(enabled));
        let clock: ClockFn = Arc::new(move || start.elapsed().as_micros() as u64);
        Self {
            registry: Registry::new(enabled.clone()),
            events: EventRing::new(event_capacity),
            spans: SpanRing::new(trace::DEFAULT_SPAN_CAPACITY, enabled.clone(), clock.clone()),
            flight: Mutex::new(None),
            clock,
            enabled,
        }
    }

    /// Whether record operations currently do anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The telemetry clock (micros since creation by default).
    pub fn clock(&self) -> ClockFn {
        self.clock.clone()
    }

    /// The lifecycle span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Attaches (or detaches, with `None`) a flight recorder: anomaly
    /// events from now on dump post-mortem bundles to its directory.
    pub fn set_flight_recorder(&self, recorder: Option<FlightRecorder>) {
        *self.flight.lock() = recorder;
    }

    /// Emits a structured event (no-op when disabled). Returns the
    /// assigned sequence number, or `None` when disabled.
    ///
    /// Anomaly events (quarantine, degraded entry, shard down/failover,
    /// net resync) additionally latch the span ring's always-sample
    /// override and, when a flight recorder is attached, dump a bundle —
    /// best-effort: a failed dump is counted on the recorder, never
    /// propagated into the replay thread that emitted the event.
    pub fn event(&self, kind: EventKind) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let anomaly = is_anomaly(&kind);
        if anomaly {
            self.spans.note_anomaly();
        }
        let name = kind.name();
        let seq = self.events.push((self.clock)(), kind);
        if anomaly {
            if let Some(recorder) = self.flight.lock().as_ref() {
                let _ = recorder.dump(name, self);
            }
        }
        Some(seq)
    }

    /// Takes every undelivered event, oldest first.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events.drain()
    }

    /// Copies every undelivered event without consuming them (for
    /// exposition and flight bundles).
    pub fn peek_events(&self) -> Vec<Event> {
        self.events.peek()
    }

    /// Events emitted so far (== next sequence number).
    pub fn events_emitted(&self) -> u64 {
        self.events.next_seq()
    }

    /// Events evicted before being drained.
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Point-in-time copy of every registered series plus event
    /// accounting. Event accounting is surfaced both as snapshot fields
    /// and as `aets_events_emitted_total` / `aets_events_dropped_total`
    /// counter series, so exposition and cross-checks see them like any
    /// other counter.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot { at_us: (self.clock)(), ..Default::default() };
        self.registry.snapshot_into(&mut snap);
        snap.events_emitted = self.events.next_seq();
        snap.events_dropped = self.events.dropped();
        snap.counters.push((names::EVENTS_EMITTED, String::new(), snap.events_emitted));
        snap.counters.push((names::EVENTS_DROPPED, String::new(), snap.events_dropped));
        snap.counters.sort();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instance_records_nothing() {
        let tel = Telemetry::disabled();
        tel.registry().counter(names::EPOCHS).inc();
        tel.registry().histogram(names::DISPATCH_US).record_micros(10);
        assert_eq!(tel.event(EventKind::CheckpointSkippedDegraded), None);
        let snap = tel.snapshot();
        assert_eq!(snap.counter_total(names::EPOCHS), 0);
        assert_eq!(snap.events_emitted, 0);
    }

    #[test]
    fn events_carry_monotone_clock_stamps() {
        let tel = Telemetry::new();
        tel.event(EventKind::EpochDispatched { seq: 0 });
        tel.event(EventKind::EpochCommitted { seq: 0, max_commit_ts_us: 5 });
        let evs = tel.drain_events();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].seq < evs[1].seq);
        assert!(evs[0].at_us <= evs[1].at_us);
        assert_eq!(evs[0].kind.name(), "epoch_dispatched");
    }

    #[test]
    fn snapshot_reflects_live_state() {
        let tel = Telemetry::new();
        tel.registry().counter(names::TXNS).add(7);
        tel.registry().gauge(names::GLOBAL_CMT_TS_US).set_max(123);
        let snap = tel.snapshot();
        assert_eq!(snap.counter_total(names::TXNS), 7);
        assert_eq!(snap.gauge(names::GLOBAL_CMT_TS_US, ""), Some(123));
    }

    #[test]
    fn event_accounting_surfaces_as_counter_series() {
        let tel = Telemetry::new();
        tel.event(EventKind::CheckpointSkippedDegraded);
        let snap = tel.snapshot();
        assert_eq!(snap.counter(names::EVENTS_EMITTED, ""), Some(1));
        assert_eq!(snap.counter(names::EVENTS_DROPPED, ""), Some(0));
        assert!(snap.counters.windows(2).all(|w| w[0] <= w[1]), "counters stay sorted");
        let text = snap.render_prometheus();
        assert!(text.contains("aets_events_emitted_total 1"));
        assert!(text.contains("aets_events_dropped_total 0"));
    }

    #[test]
    fn anomaly_events_latch_always_sample() {
        let tel = Telemetry::new();
        tel.spans().set_sampling(0);
        assert!(!tel.spans().should_sample(9));
        tel.event(EventKind::EpochDispatched { seq: 1 });
        assert!(!tel.spans().anomalous(), "routine events are not anomalies");
        tel.event(EventKind::GroupQuarantined { group: 2 });
        assert!(tel.spans().should_sample(9), "quarantine latches always-sample");
    }

    #[test]
    fn kind_mismatch_yields_detached_handle_not_panic() {
        let tel = Telemetry::new();
        tel.registry().counter("aets_epochs_total").inc();
        // Same name requested as a gauge: detached, snapshot unaffected.
        let g = tel.registry().gauge("aets_epochs_total");
        g.set(999);
        let snap = tel.snapshot();
        assert_eq!(snap.counter_total("aets_epochs_total"), 1);
        assert_eq!(snap.gauge("aets_epochs_total", ""), None);
    }
}
