//! Causal epoch-lifecycle spans.
//!
//! A [`Span`] is one timed step of an epoch's life — shipped, appended,
//! fsynced, dispatched, translated, committed, flipped, queried — keyed
//! by the epoch sequence number so one id reconstructs the full
//! cross-thread (and, joined over both endpoints' rings, cross-node)
//! timeline. Spans form a tree per epoch through `parent` links; links
//! across the wire reuse the sender's span id carried in the transport
//! trace extension, so the two rings join on id as well as on epoch.
//!
//! The [`SpanRing`] is bounded and lock-light: an id allocation is one
//! relaxed `fetch_add`, the sampling decision is two relaxed loads, and
//! only a *completed* span takes the ring mutex for one `VecDeque` push.
//! Nothing is recorded for unsampled epochs, so the sampling knob
//! ([`SpanRing::set_sampling`]) bounds tracing cost under load — except
//! after an anomaly (quarantine, failover, net resync), when the
//! always-sample latch ([`SpanRing::note_anomaly`]) overrides the knob:
//! the epochs around an incident are exactly the ones worth keeping.

use crate::ClockFn;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default bounded capacity of a [`SpanRing`].
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// Stable stage names, so producers (instrumentation points) and
/// consumers (`/spans.json`, tests, flight-recorder bundles) agree on
/// spelling. One epoch's healthy life visits them in roughly this order.
pub mod stages {
    /// Sender: epoch frame written to the wire until cumulatively acked.
    pub const NET_SHIP: &str = "net_ship";
    /// Receiver: epoch verified and admitted into the delivery queue.
    pub const NET_RECV: &str = "net_recv";
    /// Durable backup: epoch appended to the WAL segment store.
    pub const WAL_APPEND: &str = "wal_append";
    /// Durable backup: the fsync making the append durable.
    pub const WAL_FSYNC: &str = "wal_fsync";
    /// Engine: dispatcher metadata scan + routing of the epoch.
    pub const DISPATCH: &str = "dispatch";
    /// Engine: one (stage, group)'s log-to-operation translation work.
    pub const TRANSLATE: &str = "translate";
    /// Engine: a group's commit thread waiting on its commit queue.
    pub const COMMIT_WAIT: &str = "commit_wait";
    /// Engine: a group's commit thread applying ordered mini-txns.
    pub const APPLY: &str = "apply";
    /// Board: a group's `tg_cmt_ts` publication (point span).
    pub const FLIP_GROUP: &str = "flip_group";
    /// Board: the `global_cmt_ts` publication (point span).
    pub const FLIP_GLOBAL: &str = "flip_global";
    /// Service: a query waiting on Algorithm 3 admission.
    pub const QUERY_ADMISSION: &str = "query_admission";
    /// Service: a query executing on a worker.
    pub const QUERY_EXEC: &str = "query_exec";
    /// Fleet: routing fan-out + merge of one fleet query.
    pub const FLEET_ROUTE: &str = "fleet_route";
    /// Engine: a reconfigure command (regroup / thread resplit) applied
    /// at an epoch boundary (point span at the boundary's seq).
    pub const RECONFIGURE: &str = "reconfigure";
}

/// Unique (per ring) span identity. Ids are nonzero; spans recorded from
/// a remote peer's trace extension reuse the *remote* id so the two
/// endpoints' rings join on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One completed lifecycle step of an epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Ring-unique id (or the remote peer's id for wire-linked spans).
    pub id: SpanId,
    /// Epoch sequence number the step belongs to.
    pub epoch: u64,
    /// Stage name (see [`stages`]).
    pub stage: &'static str,
    /// Board group index, for per-group stages.
    pub group: Option<usize>,
    /// Start stamp on the telemetry clock (micros).
    pub start_us: u64,
    /// End stamp on the telemetry clock (micros); `== start_us` for
    /// point spans like visibility flips.
    pub end_us: u64,
    /// Causal parent within the same ring, if any.
    pub parent: Option<SpanId>,
}

impl Span {
    /// Wall duration of the span in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A started-but-unfinished span: holds the id and start stamp, pushed
/// into the ring only on [`OpenSpan::finish`]. `Copy`-cheap to thread
/// through worker closures.
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    id: SpanId,
    epoch: u64,
    stage: &'static str,
    group: Option<usize>,
    start_us: u64,
    parent: Option<SpanId>,
}

impl OpenSpan {
    /// The span's id, for use as a child's parent before finishing.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The span's start stamp (e.g. to carry in a wire trace extension).
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Completes the span now (on the ring's clock) and records it.
    pub fn finish(self, ring: &SpanRing) {
        let end = (ring.clock)();
        self.finish_at(ring, end);
    }

    /// Completes the span at an explicit end stamp and records it.
    pub fn finish_at(self, ring: &SpanRing, end_us: u64) {
        ring.record(Span {
            id: self.id,
            epoch: self.epoch,
            stage: self.stage,
            group: self.group,
            start_us: self.start_us,
            end_us: end_us.max(self.start_us),
            parent: self.parent,
        });
    }
}

#[derive(Debug, Default)]
struct TraceState {
    buf: VecDeque<Span>,
    dropped: u64,
}

/// Bounded ring of completed spans with an epoch-sampling knob and an
/// always-sample-on-anomaly latch.
pub struct SpanRing {
    capacity: usize,
    enabled: Arc<AtomicBool>,
    /// Sample epochs whose sequence is divisible by this; `1` = all
    /// (default), `0` = tracing off.
    sample_every: AtomicU64,
    /// Latched by [`SpanRing::note_anomaly`]: from then on every epoch
    /// samples regardless of the knob.
    anomaly: AtomicBool,
    next_id: AtomicU64,
    recorded: AtomicU64,
    /// Advisory "most recently committed epoch" used by instrumentation
    /// points that have no epoch of their own (query spans).
    epoch_hint: AtomicU64,
    clock: ClockFn,
    state: Mutex<TraceState>,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity)
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed))
            .field("recorded", &self.recorded.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans (minimum 1),
    /// sharing the owning `Telemetry`'s enabled flag and clock.
    pub(crate) fn new(capacity: usize, enabled: Arc<AtomicBool>, clock: ClockFn) -> Self {
        Self {
            capacity: capacity.max(1),
            enabled,
            sample_every: AtomicU64::new(1),
            anomaly: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            epoch_hint: AtomicU64::new(0),
            clock,
            state: Mutex::new(TraceState::default()),
        }
    }

    /// Sets the sampling knob: record spans for epochs whose sequence is
    /// divisible by `every`. `1` samples everything, `0` disables
    /// tracing (the anomaly latch still overrides either).
    pub fn set_sampling(&self, every: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Current sampling knob value.
    pub fn sampling(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Latches the always-sample override: an anomaly (quarantine,
    /// failover, net resync) makes every subsequent epoch worth tracing.
    pub fn note_anomaly(&self) {
        self.anomaly.store(true, Ordering::Relaxed);
    }

    /// Whether the anomaly latch is set.
    pub fn anomalous(&self) -> bool {
        self.anomaly.load(Ordering::Relaxed)
    }

    /// Whether spans of `epoch` should be recorded right now.
    pub fn should_sample(&self, epoch: u64) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        if self.anomaly.load(Ordering::Relaxed) {
            return true;
        }
        match self.sample_every.load(Ordering::Relaxed) {
            0 => false,
            every => epoch.is_multiple_of(every),
        }
    }

    /// Allocates a fresh span id (for wire-carried trace extensions).
    pub fn alloc_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts a span of `epoch` now, or `None` when the epoch is not
    /// sampled — callers thread the `Option` through and `finish` it.
    pub fn begin(
        &self,
        epoch: u64,
        stage: &'static str,
        group: Option<usize>,
        parent: Option<SpanId>,
    ) -> Option<OpenSpan> {
        let start = (self.clock)();
        self.begin_at(epoch, stage, group, parent, start)
    }

    /// Starts a span at an explicit start stamp.
    pub fn begin_at(
        &self,
        epoch: u64,
        stage: &'static str,
        group: Option<usize>,
        parent: Option<SpanId>,
        start_us: u64,
    ) -> Option<OpenSpan> {
        if !self.should_sample(epoch) {
            return None;
        }
        Some(OpenSpan { id: self.alloc_id(), epoch, stage, group, start_us, parent })
    }

    /// Records a point span (start == end == now): visibility flips and
    /// other instantaneous transitions. Returns the id for child links.
    pub fn point(
        &self,
        epoch: u64,
        stage: &'static str,
        group: Option<usize>,
        parent: Option<SpanId>,
    ) -> Option<SpanId> {
        if !self.should_sample(epoch) {
            return None;
        }
        let now = (self.clock)();
        let id = self.alloc_id();
        self.record(Span { id, epoch, stage, group, start_us: now, end_us: now, parent });
        Some(id)
    }

    /// Appends a completed span, evicting (and counting) the oldest when
    /// full. Accepts spans with foreign ids (wire-linked).
    pub fn record(&self, span: Span) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        if s.buf.len() >= self.capacity {
            s.buf.pop_front();
            s.dropped += 1;
        }
        s.buf.push_back(span);
    }

    /// Every retained span of `epoch`, oldest first (non-destructive).
    pub fn for_epoch(&self, epoch: u64) -> Vec<Span> {
        self.state.lock().buf.iter().filter(|s| s.epoch == epoch).cloned().collect()
    }

    /// The newest `n` retained spans, oldest first (non-destructive).
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let s = self.state.lock();
        let skip = s.buf.len().saturating_sub(n);
        s.buf.iter().skip(skip).cloned().collect()
    }

    /// Spans evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Total spans ever recorded (evicted ones included).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Retained spans right now.
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes the most recently committed epoch sequence, as a hint
    /// for instrumentation points without an epoch of their own.
    pub fn set_epoch_hint(&self, seq: u64) {
        self.epoch_hint.fetch_max(seq + 1, Ordering::Relaxed);
    }

    /// Latest committed epoch sequence, or `None` before the first.
    pub fn epoch_hint(&self) -> Option<u64> {
        match self.epoch_hint.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n - 1),
        }
    }
}

/// Renders spans as a JSON array (the `/spans.json` payload body and the
/// flight-recorder bundle format).
pub fn spans_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": {}, \"epoch\": {}, \"stage\": \"{}\", \"group\": {}, \
             \"start_us\": {}, \"end_us\": {}, \"parent\": {}}}",
            s.id.0,
            s.epoch,
            s.stage,
            s.group.map_or("null".to_string(), |g| g.to_string()),
            s.start_us,
            s.end_us,
            s.parent.map_or("null".to_string(), |p| p.0.to_string()),
        );
    }
    if !spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push(']');
    out
}

/// Checks that every span's `parent` resolves to another span in the
/// same slice — the no-orphan invariant trace reconstruction relies on.
/// Returns the first orphaned span, or `None` when the tree is closed.
pub fn first_orphan(spans: &[Span]) -> Option<&Span> {
    use std::collections::HashSet;
    let ids: HashSet<u64> = spans.iter().map(|s| s.id.0).collect();
    spans.iter().find(|s| s.parent.is_some_and(|p| !ids.contains(&p.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(capacity: usize) -> SpanRing {
        SpanRing::new(capacity, Arc::new(AtomicBool::new(true)), Arc::new(|| 42))
    }

    #[test]
    fn begin_finish_records_a_closed_span() {
        let r = ring(16);
        let open = r.begin(3, stages::DISPATCH, None, None).expect("sampled");
        open.finish_at(&r, 100);
        let spans = r.for_epoch(3);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, stages::DISPATCH);
        assert_eq!(spans[0].start_us, 42);
        assert_eq!(spans[0].end_us, 100);
        assert_eq!(spans[0].parent, None);
        assert!(r.for_epoch(4).is_empty());
    }

    #[test]
    fn sampling_knob_gates_epochs() {
        let r = ring(64);
        r.set_sampling(4);
        for epoch in 0..16u64 {
            if let Some(s) = r.begin(epoch, stages::DISPATCH, None, None) {
                s.finish(&r);
            }
        }
        assert_eq!(r.len(), 4, "only every 4th epoch sampled");
        r.set_sampling(0);
        assert!(r.begin(0, stages::DISPATCH, None, None).is_none(), "0 disables");
    }

    #[test]
    fn anomaly_latch_overrides_the_knob() {
        let r = ring(64);
        r.set_sampling(0);
        assert!(!r.should_sample(7));
        r.note_anomaly();
        assert!(r.should_sample(7), "anomaly samples everything");
        assert!(r.anomalous());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let r = ring(3);
        for epoch in 0..8u64 {
            r.point(epoch, stages::FLIP_GLOBAL, None, None);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 5);
        assert_eq!(r.recorded(), 8);
        let recent = r.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].epoch, 7, "recent returns the newest tail");
    }

    #[test]
    fn parent_links_and_orphan_detection() {
        let r = ring(16);
        let root = r.begin(1, stages::DISPATCH, None, None).expect("sampled");
        let root_id = root.id();
        let child = r.begin(1, stages::APPLY, Some(0), Some(root_id)).expect("sampled");
        child.finish(&r);
        root.finish(&r);
        let spans = r.for_epoch(1);
        assert_eq!(spans.len(), 2);
        assert!(first_orphan(&spans).is_none(), "closed tree");
        let orphaned = vec![Span {
            id: SpanId(99),
            epoch: 1,
            stage: stages::APPLY,
            group: None,
            start_us: 0,
            end_us: 1,
            parent: Some(SpanId(12345)),
        }];
        assert!(first_orphan(&orphaned).is_some());
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let r = SpanRing::new(16, Arc::new(AtomicBool::new(false)), Arc::new(|| 0));
        assert!(r.begin(0, stages::DISPATCH, None, None).is_none());
        assert!(r.point(0, stages::FLIP_GLOBAL, None, None).is_none());
        r.record(Span {
            id: SpanId(1),
            epoch: 0,
            stage: stages::DISPATCH,
            group: None,
            start_us: 0,
            end_us: 0,
            parent: None,
        });
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn spans_render_as_json() {
        let r = ring(8);
        let s = r.begin(5, stages::WAL_APPEND, Some(2), None).expect("sampled");
        s.finish_at(&r, 50);
        let json = spans_json(&r.for_epoch(5));
        assert!(json.contains("\"epoch\": 5"));
        assert!(json.contains("\"stage\": \"wal_append\""));
        assert!(json.contains("\"group\": 2"));
        assert!(json.contains("\"parent\": null"));
        assert_eq!(spans_json(&[]), "[]");
    }

    #[test]
    fn epoch_hint_is_monotone() {
        let r = ring(8);
        assert_eq!(r.epoch_hint(), None);
        r.set_epoch_hint(4);
        r.set_epoch_hint(2);
        assert_eq!(r.epoch_hint(), Some(4), "hint never regresses");
    }
}
