//! SEATS (airline reservation) — used by the paper only for the Table I
//! workload-characteristic analysis: 4 OLTP-written tables, 8 tables read
//! by analytical queries, an intersection of 2, and a hot-entry ratio of
//! 38.08 %.

use crate::spec::{int_row, poisson_query_stream, TxnFactory, Workload};
use aets_common::rng::seeded_rng;
use aets_common::{DmlOp, FxHashSet, Row, RowKey, TableId};
use rand::Rng;

/// Table ids of the SEATS schema subset we model.
pub mod tables {
    use aets_common::TableId;
    /// `reservation` (written, analytically read)
    pub const RESERVATION: TableId = TableId::new(0);
    /// `customer` (written)
    pub const CUSTOMER: TableId = TableId::new(1);
    /// `frequent_flyer` (written)
    pub const FREQUENT_FLYER: TableId = TableId::new(2);
    /// `flight` (written, analytically read)
    pub const FLIGHT: TableId = TableId::new(3);
    /// `airport` (read-only)
    pub const AIRPORT: TableId = TableId::new(4);
    /// `airline` (read-only)
    pub const AIRLINE: TableId = TableId::new(5);
    /// `country` (read-only)
    pub const COUNTRY: TableId = TableId::new(6);
    /// `airport_distance` (read-only)
    pub const AIRPORT_DISTANCE: TableId = TableId::new(7);
    /// `config_profile` (read-only)
    pub const CONFIG_PROFILE: TableId = TableId::new(8);
    /// `config_histograms` (read-only)
    pub const CONFIG_HISTOGRAMS: TableId = TableId::new(9);
}

/// Table names indexed by table id.
pub const TABLE_NAMES: [&str; 10] = [
    "reservation",
    "customer",
    "frequent_flyer",
    "flight",
    "airport",
    "airline",
    "country",
    "airport_distance",
    "config_profile",
    "config_histograms",
];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct SeatsConfig {
    /// RNG seed.
    pub seed: u64,
    /// Read-write transactions to generate.
    pub num_txns: usize,
    /// Primary OLTP throughput (txn/s).
    pub oltp_tps: f64,
    /// Analytical query rate (queries/s).
    pub olap_qps: f64,
}

impl Default for SeatsConfig {
    fn default() -> Self {
        Self { seed: 42, num_txns: 10_000, oltp_tps: 10_000.0, olap_qps: 100.0 }
    }
}

/// Generates the SEATS workload (sufficient fidelity for Table I).
pub fn generate(cfg: &SeatsConfig) -> Workload {
    use tables::*;
    let mut rng = seeded_rng(cfg.seed);
    let mut factory = TxnFactory::new(cfg.oltp_tps);
    let mut next_res = 0u64;

    let mut txns = Vec::with_capacity(cfg.num_txns);
    for _ in 0..cfg.num_txns {
        // NewReservation 55 %, UpdateCustomer 25 %, UpdateReservation 20 %.
        // Write footprints tuned so hot (reservation + flight) entries are
        // ~38 % of the total.
        let pick = rng.gen_range(0..100u32);
        let rows: Vec<(TableId, DmlOp, RowKey, Row)> = if pick < 55 {
            let r = next_res;
            next_res += 1;
            vec![
                (RESERVATION, DmlOp::Insert, RowKey::new(r), int_row(&[(0, r as i64)])),
                (FLIGHT, DmlOp::Update, RowKey::new(rng.gen_range(0..2000)), int_row(&[(0, 1)])),
                (
                    CUSTOMER,
                    DmlOp::Update,
                    RowKey::new(rng.gen_range(0..50_000)),
                    int_row(&[(0, 1)]),
                ),
                (
                    FREQUENT_FLYER,
                    DmlOp::Update,
                    RowKey::new(rng.gen_range(0..50_000)),
                    int_row(&[(0, 1)]),
                ),
            ]
        } else if pick < 80 {
            vec![
                (
                    CUSTOMER,
                    DmlOp::Update,
                    RowKey::new(rng.gen_range(0..50_000)),
                    int_row(&[(1, 1)]),
                ),
                (
                    FREQUENT_FLYER,
                    DmlOp::Update,
                    RowKey::new(rng.gen_range(0..50_000)),
                    int_row(&[(1, 1)]),
                ),
            ]
        } else {
            let r = rng.gen_range(0..next_res.max(1));
            vec![
                (RESERVATION, DmlOp::Update, RowKey::new(r), int_row(&[(1, 1)])),
                (
                    CUSTOMER,
                    DmlOp::Update,
                    RowKey::new(rng.gen_range(0..50_000)),
                    int_row(&[(2, 1)]),
                ),
            ]
        };
        txns.push(factory.build(&mut rng, rows));
    }

    // Analytical queries read 8 tables; only flight and reservation are in
    // the written set.
    let classes = vec![
        (1, 1.0, vec![FLIGHT, AIRPORT, AIRLINE, AIRPORT_DISTANCE]),
        (2, 1.0, vec![RESERVATION, FLIGHT, COUNTRY, CONFIG_PROFILE, CONFIG_HISTOGRAMS]),
    ];
    let horizon = factory.now();
    let queries = poisson_query_stream(&mut rng, cfg.olap_qps, horizon, &classes);
    let analytic_tables: FxHashSet<TableId> =
        classes.iter().flat_map(|(_, _, t)| t.iter().copied()).collect();

    Workload { name: "seats", table_names: TABLE_NAMES.to_vec(), txns, queries, analytic_tables }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_characteristics() {
        let w = generate(&SeatsConfig::default());
        assert_eq!(w.written_tables().len(), 4, "SEATS writes 4 tables");
        assert_eq!(w.analytic_tables.len(), 8, "8 tables read by OLAP");
        let written = w.written_tables();
        let inter = w.analytic_tables.iter().filter(|t| written.contains(t)).count();
        assert_eq!(inter, 2, "intersection of 2");
        let r = w.hot_entry_ratio();
        assert!((r - 0.3808).abs() < 0.05, "hot ratio {r} should be ~0.3808");
    }

    #[test]
    fn deterministic() {
        let a = generate(&SeatsConfig::default());
        let b = generate(&SeatsConfig::default());
        assert_eq!(a.txns[3], b.txns[3]);
    }
}
