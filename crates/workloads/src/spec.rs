//! Common types for workload generation.
//!
//! A workload is two correlated streams on the primary's clock: the OLTP
//! *log stream* (committed transactions with value-log entries) and the
//! OLAP *query stream* (arrival-timestamped queries, each with the set of
//! tables it reads). The replay engines consume the first; the visibility
//! experiments consume both.

use aets_common::{ColumnId, DmlOp, FxHashSet, Lsn, Row, RowKey, TableId, Timestamp, TxnId, Value};
use aets_wal::{DmlEntry, TxnLog};
use rand::rngs::StdRng;
use rand::Rng;

/// One analytical query instance.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    /// Unique id within the stream.
    pub id: u32,
    /// Query class (e.g. CH-benCHmark query number 1..=22, or a workload-
    /// specific template index).
    pub class: u32,
    /// Arrival timestamp `qts` on the primary's clock.
    pub arrival: Timestamp,
    /// Tables the query reads.
    pub tables: Vec<TableId>,
}

/// A generated HTAP workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name ("tpcc", "bustracker", ...).
    pub name: &'static str,
    /// Table names indexed by `TableId`.
    pub table_names: Vec<&'static str>,
    /// Committed OLTP transactions in primary commit order.
    pub txns: Vec<TxnLog>,
    /// Analytical query stream sorted by arrival time.
    pub queries: Vec<QueryInstance>,
    /// Tables accessed by at least one analytical query class — the *hot*
    /// tables in the paper's sense.
    pub analytic_tables: FxHashSet<TableId>,
}

impl Workload {
    /// Number of tables in the schema.
    pub fn num_tables(&self) -> usize {
        self.table_names.len()
    }

    /// Total DML entries in the log stream.
    pub fn total_entries(&self) -> usize {
        self.txns.iter().map(|t| t.entries.len()).sum()
    }

    /// Fraction of DML entries that touch hot (analytically read) tables —
    /// the `ratio` column of Table I.
    pub fn hot_entry_ratio(&self) -> f64 {
        let mut hot = 0usize;
        let mut total = 0usize;
        for t in &self.txns {
            for e in &t.entries {
                total += 1;
                if self.analytic_tables.contains(&e.table) {
                    hot += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hot as f64 / total as f64
        }
    }

    /// The set of tables written by the OLTP stream.
    pub fn written_tables(&self) -> FxHashSet<TableId> {
        let mut s = FxHashSet::default();
        for t in &self.txns {
            for e in &t.entries {
                s.insert(e.table);
            }
        }
        s
    }
}

/// Assigns transaction ids, LSNs, and commit timestamps while building a
/// log stream. Commit timestamps advance by an exponential gap drawn from
/// the configured OLTP throughput, so the stream looks like a primary
/// committing at `tps` transactions per second.
#[derive(Debug)]
pub struct TxnFactory {
    next_txn: u64,
    next_lsn: u64,
    clock_us: u64,
    tps: f64,
    /// Per-row version counters (RVIDs), keyed by `(table, key)`. The
    /// primary stamps every DML with the row version *after* the operation;
    /// the ATR baseline's sequence check depends on these being exact.
    row_versions: aets_common::FxHashMap<(TableId, RowKey), u64>,
}

impl TxnFactory {
    /// Creates a factory starting at txn id 1, LSN 1, time 0.
    pub fn new(tps: f64) -> Self {
        assert!(tps > 0.0, "tps must be positive");
        Self {
            next_txn: 1,
            next_lsn: 1,
            clock_us: 0,
            tps,
            row_versions: aets_common::FxHashMap::default(),
        }
    }

    /// Current clock (commit time of the last built transaction).
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.clock_us)
    }

    /// Next transaction id that will be assigned (for heartbeat ranges).
    pub fn next_txn_id(&self) -> TxnId {
        TxnId::new(self.next_txn)
    }

    /// Builds a committed transaction from `(table, op, key, cols)` rows.
    ///
    /// `before` images are attached to updates (zero-valued placeholders)
    /// so the ATR baseline has something to check; AETS ignores them.
    pub fn build(&mut self, rng: &mut StdRng, rows: Vec<(TableId, DmlOp, RowKey, Row)>) -> TxnLog {
        let txn_id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        // Exponential inter-commit gap targeting `tps`.
        let gap = aets_common::rng::exp_interarrival(rng, self.tps);
        self.clock_us += (gap * 1_000_000.0).max(1.0) as u64;
        let commit_ts = Timestamp::from_micros(self.clock_us);
        let entries = rows
            .into_iter()
            .map(|(table, op, key, cols)| {
                let lsn = Lsn::new(self.next_lsn);
                self.next_lsn += 1;
                let before = if op == DmlOp::Update {
                    Some(cols.iter().map(|(cid, _)| (*cid, Value::Int(0))).collect::<Row>())
                } else {
                    None
                };
                let rv = self.row_versions.entry((table, key)).or_insert(0);
                *rv += 1;
                DmlEntry {
                    lsn,
                    txn_id,
                    ts: commit_ts,
                    table,
                    op,
                    key,
                    row_version: *rv,
                    cols,
                    before,
                }
            })
            .collect();
        TxnLog { txn_id, commit_ts, entries }
    }
}

/// Builds a Poisson query arrival stream over `[0, horizon]`.
///
/// `classes` supplies `(class id, weight, footprint tables)`; each arrival
/// picks a class proportionally to weight.
pub fn poisson_query_stream(
    rng: &mut StdRng,
    qps: f64,
    horizon: Timestamp,
    classes: &[(u32, f64, Vec<TableId>)],
) -> Vec<QueryInstance> {
    assert!(!classes.is_empty(), "need at least one query class");
    let total_w: f64 = classes.iter().map(|(_, w, _)| w).sum();
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut id = 0u32;
    loop {
        t += aets_common::rng::exp_interarrival(rng, qps);
        let ts = Timestamp::from_secs_f64(t);
        if ts > horizon {
            break;
        }
        let mut pick = rng.gen_range(0.0..total_w);
        let mut chosen = &classes[0];
        for c in classes {
            if pick < c.1 {
                chosen = c;
                break;
            }
            pick -= c.1;
        }
        out.push(QueryInstance { id, class: chosen.0, arrival: ts, tables: chosen.2.clone() });
        id += 1;
    }
    out
}

/// Convenience: a small row of integer columns.
pub fn int_row(vals: &[(u16, i64)]) -> Row {
    vals.iter().map(|(c, v)| (ColumnId::new(*c), Value::Int(*v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::rng::seeded_rng;

    #[test]
    fn factory_assigns_monotone_ids_and_timestamps() {
        let mut f = TxnFactory::new(1000.0);
        let mut rng = seeded_rng(1);
        let a = f.build(
            &mut rng,
            vec![(TableId::new(0), DmlOp::Insert, RowKey::new(1), int_row(&[(0, 1)]))],
        );
        let b = f.build(
            &mut rng,
            vec![(TableId::new(0), DmlOp::Update, RowKey::new(1), int_row(&[(0, 2)]))],
        );
        assert!(a.txn_id < b.txn_id);
        assert!(a.commit_ts < b.commit_ts);
        assert!(a.entries[0].lsn < b.entries[0].lsn);
        assert!(a.entries[0].before.is_none());
        assert!(b.entries[0].before.is_some(), "updates carry before-images");
    }

    #[test]
    fn factory_tracks_target_tps() {
        let mut f = TxnFactory::new(10_000.0);
        let mut rng = seeded_rng(2);
        for _ in 0..5000 {
            f.build(&mut rng, vec![]);
        }
        let elapsed = f.now().as_secs_f64();
        let tps = 5000.0 / elapsed;
        assert!((tps - 10_000.0).abs() / 10_000.0 < 0.1, "tps {tps}");
    }

    #[test]
    fn poisson_stream_is_sorted_and_bounded() {
        let mut rng = seeded_rng(3);
        let classes =
            vec![(1, 1.0, vec![TableId::new(0)]), (2, 3.0, vec![TableId::new(1), TableId::new(2)])];
        let horizon = Timestamp::from_secs_f64(10.0);
        let qs = poisson_query_stream(&mut rng, 100.0, horizon, &classes);
        assert!(!qs.is_empty());
        assert!(qs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(qs.iter().all(|q| q.arrival <= horizon));
        // Class 2 should dominate 3:1.
        let c2 = qs.iter().filter(|q| q.class == 2).count();
        assert!(c2 as f64 / qs.len() as f64 > 0.6);
    }
}
