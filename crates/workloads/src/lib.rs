//! HTAP benchmark generators for the AETS reproduction.
//!
//! Each generator plays the *primary node*: it executes a benchmark's
//! read-write transaction mix and emits the committed value-log stream,
//! plus the analytical query stream that the backup serves. Provided
//! workloads: TPC-C, BusTracker (synthetic reconstruction of the QB5000
//! trace), CH-benCHmark, and SEATS (Table I statistics only).

pub mod bustracker;
pub mod chbench;
pub mod drift;
pub mod seats;
pub mod spec;
pub mod stats;
pub mod tpcc;

pub use spec::{poisson_query_stream, QueryInstance, TxnFactory, Workload};
pub use stats::{table_one_row, table_one_row_for_class, TableOneRow};
