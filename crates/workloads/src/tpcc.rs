//! TPC-C as an HTAP workload (Section VI-A3 of the paper).
//!
//! The primary runs the three read-write transactions — NewOrder, Payment,
//! Delivery — in the default mixed proportions (45/43/4, renormalized);
//! the two read-only transactions — StockLevel and OrderStatus — play the
//! analytical queries on the backup, per the paper's Table I footnote.
//!
//! Hot tables (accessed by the read-only transactions): `district`,
//! `customer`, `orders`, `order_line`, `stock`. The paper reports hot
//! tables producing 90.98 % of all log entries; this generator lands
//! within a point of that by construction of the per-transaction write
//! footprints.

use crate::spec::{int_row, poisson_query_stream, TxnFactory, Workload};
use aets_common::rng::{nurand, seeded_rng, Zipf};
use aets_common::{ColumnId, DmlOp, FxHashSet, Row, RowKey, TableId, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Table ids of the TPC-C schema.
pub mod tables {
    use aets_common::TableId;
    /// `warehouse`
    pub const WAREHOUSE: TableId = TableId::new(0);
    /// `district`
    pub const DISTRICT: TableId = TableId::new(1);
    /// `customer`
    pub const CUSTOMER: TableId = TableId::new(2);
    /// `history`
    pub const HISTORY: TableId = TableId::new(3);
    /// `new_order`
    pub const NEW_ORDER: TableId = TableId::new(4);
    /// `orders`
    pub const ORDERS: TableId = TableId::new(5);
    /// `order_line`
    pub const ORDER_LINE: TableId = TableId::new(6);
    /// `item` (read-only; never written by the mix)
    pub const ITEM: TableId = TableId::new(7);
    /// `stock`
    pub const STOCK: TableId = TableId::new(8);
}

/// Human-readable table names, indexed by table id.
pub const TABLE_NAMES: [&str; 9] = [
    "warehouse",
    "district",
    "customer",
    "history",
    "new_order",
    "orders",
    "order_line",
    "item",
    "stock",
];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// RNG seed.
    pub seed: u64,
    /// Scale factor: number of warehouses (paper uses 20).
    pub warehouses: u32,
    /// Number of read-write transactions to generate.
    pub num_txns: usize,
    /// Primary OLTP throughput (txn/s) driving commit timestamps.
    pub oltp_tps: f64,
    /// Analytical query arrival rate (queries/s).
    pub olap_qps: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self { seed: 42, warehouses: 20, num_txns: 20_000, oltp_tps: 10_000.0, olap_qps: 200.0 }
    }
}

pub(crate) const DISTRICTS_PER_WH: u64 = 10;
const CUSTOMERS_PER_DISTRICT: u64 = 3000;
const ITEMS: u64 = 100_000;
const NURAND_C_CID: u64 = 259;

fn wh_key(w: u64) -> RowKey {
    RowKey::new(w)
}
fn district_key(w: u64, d: u64) -> RowKey {
    RowKey::new(w * DISTRICTS_PER_WH + d)
}
fn customer_key(w: u64, d: u64, c: u64) -> RowKey {
    RowKey::new((w * DISTRICTS_PER_WH + d) * CUSTOMERS_PER_DISTRICT + c)
}
fn order_key(w: u64, d: u64, o: u64) -> RowKey {
    RowKey::new(((w * DISTRICTS_PER_WH + d) << 32) | o)
}
fn order_line_key(w: u64, d: u64, o: u64, ol: u64) -> RowKey {
    RowKey::new((((w * DISTRICTS_PER_WH + d) << 32) | o) << 4 | ol)
}
fn stock_key(w: u64, i: u64) -> RowKey {
    RowKey::new(w * ITEMS + i)
}

pub(crate) struct TpccState {
    next_order: Vec<u64>, // per (w,d): next order id
    next_history: u64,
    undelivered: Vec<Vec<(u64, u64)>>, // per (w,d): (order id, ol count) FIFO
}

impl TpccState {
    pub(crate) fn new(warehouses: u32) -> Self {
        let slots = warehouses as usize * DISTRICTS_PER_WH as usize;
        Self { next_order: vec![1; slots], next_history: 0, undelivered: vec![Vec::new(); slots] }
    }

    fn slot(w: u64, d: u64) -> usize {
        (w * DISTRICTS_PER_WH + d) as usize
    }
}

fn text_value(rng: &mut StdRng, len: usize) -> Value {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let s: String = (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect();
    Value::from(s)
}

fn new_order(
    rng: &mut StdRng,
    st: &mut TpccState,
    warehouses: u32,
    item_zipf: &Zipf,
) -> Vec<(TableId, DmlOp, RowKey, Row)> {
    let w = rng.gen_range(0..warehouses as u64);
    new_order_at(rng, st, w, item_zipf)
}

/// [`new_order`] against a caller-chosen warehouse (the drift generator
/// rotates its hot warehouse explicitly).
pub(crate) fn new_order_at(
    rng: &mut StdRng,
    st: &mut TpccState,
    w: u64,
    item_zipf: &Zipf,
) -> Vec<(TableId, DmlOp, RowKey, Row)> {
    let d = rng.gen_range(0..DISTRICTS_PER_WH);
    let slot = TpccState::slot(w, d);
    let o = st.next_order[slot];
    st.next_order[slot] += 1;
    let n_lines = rng.gen_range(5..=15u64);
    st.undelivered[slot].push((o, n_lines));

    let mut rows: Vec<(TableId, DmlOp, RowKey, Row)> = Vec::with_capacity(3 + 2 * n_lines as usize);
    rows.push((
        tables::DISTRICT,
        DmlOp::Update,
        district_key(w, d),
        int_row(&[(3, o as i64 + 1)]), // d_next_o_id
    ));
    rows.push((
        tables::ORDERS,
        DmlOp::Insert,
        order_key(w, d, o),
        vec![
            (ColumnId::new(0), Value::Int(o as i64)),
            (
                ColumnId::new(1),
                Value::Int(nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT, NURAND_C_CID) as i64),
            ),
            (ColumnId::new(2), Value::Int(n_lines as i64)),
            (ColumnId::new(3), Value::Null), // o_carrier_id
        ],
    ));
    rows.push((tables::NEW_ORDER, DmlOp::Insert, order_key(w, d, o), int_row(&[(0, o as i64)])));
    for ol in 0..n_lines {
        let item = item_zipf.sample(rng) as u64 - 1;
        rows.push((
            tables::ORDER_LINE,
            DmlOp::Insert,
            order_line_key(w, d, o, ol),
            vec![
                (ColumnId::new(0), Value::Int(item as i64)),
                (ColumnId::new(1), Value::Int(rng.gen_range(1..=10))),
                (ColumnId::new(2), Value::Float(rng.gen_range(1.0..100.0))),
                (ColumnId::new(3), Value::Null), // ol_delivery_d
            ],
        ));
        rows.push((
            tables::STOCK,
            DmlOp::Update,
            stock_key(w, item),
            int_row(&[(0, rng.gen_range(10..100)), (1, 1)]), // s_quantity, s_order_cnt
        ));
    }
    rows
}

fn payment(
    rng: &mut StdRng,
    st: &mut TpccState,
    warehouses: u32,
) -> Vec<(TableId, DmlOp, RowKey, Row)> {
    let w = rng.gen_range(0..warehouses as u64);
    payment_at(rng, st, w)
}

/// [`payment`] against a caller-chosen warehouse.
pub(crate) fn payment_at(
    rng: &mut StdRng,
    st: &mut TpccState,
    w: u64,
) -> Vec<(TableId, DmlOp, RowKey, Row)> {
    let d = rng.gen_range(0..DISTRICTS_PER_WH);
    let c = nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT, NURAND_C_CID) - 1;
    let amount = rng.gen_range(1.0..5000.0f64);
    let h = st.next_history;
    st.next_history += 1;
    vec![
        (
            tables::WAREHOUSE,
            DmlOp::Update,
            wh_key(w),
            vec![(ColumnId::new(0), Value::Float(amount))], // w_ytd
        ),
        (
            tables::DISTRICT,
            DmlOp::Update,
            district_key(w, d),
            vec![(ColumnId::new(1), Value::Float(amount))], // d_ytd
        ),
        (
            tables::CUSTOMER,
            DmlOp::Update,
            customer_key(w, d, c),
            vec![
                (ColumnId::new(0), Value::Float(-amount)), // c_balance
                (ColumnId::new(1), Value::Int(1)),         // c_payment_cnt
            ],
        ),
        (
            tables::HISTORY,
            DmlOp::Insert,
            RowKey::new(h),
            vec![
                (ColumnId::new(0), Value::Int(c as i64)),
                (ColumnId::new(1), Value::Float(amount)),
                (ColumnId::new(2), text_value(rng, 12)),
            ],
        ),
    ]
}

fn delivery(
    rng: &mut StdRng,
    st: &mut TpccState,
    warehouses: u32,
) -> Vec<(TableId, DmlOp, RowKey, Row)> {
    let w = rng.gen_range(0..warehouses as u64);
    delivery_at(rng, st, w)
}

/// [`delivery`] against a caller-chosen warehouse.
pub(crate) fn delivery_at(
    rng: &mut StdRng,
    st: &mut TpccState,
    w: u64,
) -> Vec<(TableId, DmlOp, RowKey, Row)> {
    let carrier = rng.gen_range(1..=10i64);
    let mut rows = Vec::new();
    for d in 0..DISTRICTS_PER_WH {
        let slot = TpccState::slot(w, d);
        let Some((o, n_lines)) = st.undelivered[slot].first().copied() else {
            continue;
        };
        st.undelivered[slot].remove(0);
        rows.push((tables::NEW_ORDER, DmlOp::Delete, order_key(w, d, o), Row::new()));
        rows.push((tables::ORDERS, DmlOp::Update, order_key(w, d, o), int_row(&[(3, carrier)])));
        for ol in 0..n_lines {
            rows.push((
                tables::ORDER_LINE,
                DmlOp::Update,
                order_line_key(w, d, o, ol),
                int_row(&[(3, 1)]), // ol_delivery_d set
            ));
        }
        rows.push((
            tables::CUSTOMER,
            DmlOp::Update,
            customer_key(w, d, rng.gen_range(0..CUSTOMERS_PER_DISTRICT)),
            vec![(ColumnId::new(0), Value::Float(rng.gen_range(1.0..100.0)))],
        ));
    }
    rows
}

/// StockLevel reads `district`, `order_line`, `stock`; OrderStatus reads
/// `customer`, `orders`, `order_line`. Their union is the paper's 5 hot
/// tables.
fn query_classes() -> Vec<(u32, f64, Vec<TableId>)> {
    vec![
        // class 1 = StockLevel (weight matches the 4 % slot, same as
        // OrderStatus; relative rate between them is equal).
        (1, 1.0, vec![tables::DISTRICT, tables::ORDER_LINE, tables::STOCK]),
        // class 2 = OrderStatus.
        (2, 1.0, vec![tables::CUSTOMER, tables::ORDERS, tables::ORDER_LINE]),
    ]
}

/// Generates the TPC-C HTAP workload.
pub fn generate(cfg: &TpccConfig) -> Workload {
    let mut rng = seeded_rng(cfg.seed);
    let mut factory = TxnFactory::new(cfg.oltp_tps);
    let mut st = TpccState::new(cfg.warehouses);
    let item_zipf = Zipf::new(ITEMS as usize, 0.5);

    let mut txns = Vec::with_capacity(cfg.num_txns);
    for _ in 0..cfg.num_txns {
        // Renormalized default mix over the three read-write transactions:
        // NewOrder 45, Payment 43, Delivery 4 (of 92).
        let pick = rng.gen_range(0..92u32);
        let rows = if pick < 45 {
            new_order(&mut rng, &mut st, cfg.warehouses, &item_zipf)
        } else if pick < 88 {
            payment(&mut rng, &mut st, cfg.warehouses)
        } else {
            delivery(&mut rng, &mut st, cfg.warehouses)
        };
        txns.push(factory.build(&mut rng, rows));
    }

    let horizon = factory.now();
    let classes = query_classes();
    let queries = poisson_query_stream(&mut rng, cfg.olap_qps, horizon, &classes);
    let analytic_tables: FxHashSet<TableId> =
        classes.iter().flat_map(|(_, _, t)| t.iter().copied()).collect();

    Workload { name: "tpcc", table_names: TABLE_NAMES.to_vec(), txns, queries, analytic_tables }
}

/// The paper's hand-specified grouping for TPC-C (Section VI-A3): one hot
/// group with `district`, `stock`, `customer`, `orders`; one hot group with
/// `order_line` (accessed at twice the rate); every cold table in its own
/// group. Returned as `(groups, per-group access rate)`.
pub fn paper_grouping() -> (Vec<Vec<TableId>>, Vec<f64>) {
    let g0 = vec![tables::DISTRICT, tables::STOCK, tables::CUSTOMER, tables::ORDERS];
    let g1 = vec![tables::ORDER_LINE];
    let cold = [tables::WAREHOUSE, tables::HISTORY, tables::NEW_ORDER, tables::ITEM];
    let mut groups = vec![g0, g1];
    let mut rates = vec![100.0, 200.0];
    for t in cold {
        groups.push(vec![t]);
        rates.push(1.0);
    }
    (groups, rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        generate(&TpccConfig { num_txns: 3000, warehouses: 4, ..Default::default() })
    }

    #[test]
    fn hot_ratio_matches_paper_ballpark() {
        let w = small();
        let r = w.hot_entry_ratio();
        assert!((0.85..=0.95).contains(&r), "hot ratio {r} should be ~0.91");
    }

    #[test]
    fn writes_cover_eight_tables_and_skip_item() {
        let w = small();
        let written = w.written_tables();
        assert_eq!(written.len(), 8, "TPC-C writes 8 tables");
        assert!(!written.contains(&tables::ITEM));
    }

    #[test]
    fn analytic_tables_are_the_five_hot_ones() {
        let w = small();
        assert_eq!(w.analytic_tables.len(), 5);
        for t in
            [tables::DISTRICT, tables::CUSTOMER, tables::ORDERS, tables::ORDER_LINE, tables::STOCK]
        {
            assert!(w.analytic_tables.contains(&t));
        }
    }

    #[test]
    fn txns_are_in_commit_order_with_unique_lsns() {
        let w = small();
        let mut last_txn = 0;
        let mut last_lsn = 0;
        for t in &w.txns {
            assert!(t.txn_id.raw() > last_txn);
            last_txn = t.txn_id.raw();
            for e in &t.entries {
                assert!(e.lsn.raw() > last_lsn, "LSNs must increase");
                last_lsn = e.lsn.raw();
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.txns.len(), b.txns.len());
        assert_eq!(a.txns[10], b.txns[10]);
        assert_eq!(a.queries.len(), b.queries.len());
    }

    #[test]
    fn deliveries_consume_new_orders() {
        let w = generate(&TpccConfig { num_txns: 5000, warehouses: 2, ..Default::default() });
        // Every delete on new_order must target a key previously inserted.
        let mut inserted = FxHashSet::default();
        for t in &w.txns {
            for e in &t.entries {
                if e.table == tables::NEW_ORDER {
                    match e.op {
                        DmlOp::Insert => {
                            inserted.insert(e.key);
                        }
                        DmlOp::Delete => {
                            assert!(inserted.contains(&e.key), "delete of unknown new_order");
                        }
                        DmlOp::Update => panic!("new_order is never updated"),
                    }
                }
            }
        }
    }

    #[test]
    fn paper_grouping_covers_all_tables() {
        let (groups, rates) = paper_grouping();
        assert_eq!(groups.len(), rates.len());
        let all: Vec<TableId> = groups.iter().flatten().copied().collect();
        assert_eq!(all.len(), 9);
    }
}
