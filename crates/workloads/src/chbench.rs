//! CH-benCHmark: TPC-C OLTP plus the 22 TPC-H-derived analytical queries.
//!
//! The OLTP side is exactly the TPC-C generator; the OLAP side issues
//! Q1..Q22 with their standard table footprints over the combined schema
//! (TPC-C's nine tables plus the read-only `supplier`, `nation`, `region`).
//! The footprints reproduce the paper's Table I rows: e.g. Q2 touches five
//! tables of which only `stock` is OLTP-written; Q5 touches seven of which
//! four are written.

use crate::spec::{poisson_query_stream, Workload};
use crate::tpcc::{self, tables, TpccConfig};
use aets_common::rng::seeded_rng;
use aets_common::{FxHashSet, TableId};

/// Read-only reference tables appended to the TPC-C schema.
pub mod ref_tables {
    use aets_common::TableId;
    /// `supplier`
    pub const SUPPLIER: TableId = TableId::new(9);
    /// `nation`
    pub const NATION: TableId = TableId::new(10);
    /// `region`
    pub const REGION: TableId = TableId::new(11);
}

/// All 12 table names of the CH-benCHmark schema.
pub const TABLE_NAMES: [&str; 12] = [
    "warehouse",
    "district",
    "customer",
    "history",
    "new_order",
    "orders",
    "order_line",
    "item",
    "stock",
    "supplier",
    "nation",
    "region",
];

/// The table footprint of CH-benCHmark query `q` (1..=22).
pub fn query_footprint(q: u32) -> Vec<TableId> {
    use ref_tables::*;
    use tables::*;
    match q {
        1 => vec![ORDER_LINE],
        2 => vec![ITEM, STOCK, SUPPLIER, NATION, REGION],
        3 => vec![CUSTOMER, NEW_ORDER, ORDERS, ORDER_LINE],
        4 => vec![ORDERS, ORDER_LINE],
        5 => vec![CUSTOMER, ORDERS, ORDER_LINE, STOCK, SUPPLIER, NATION, REGION],
        6 => vec![ORDER_LINE],
        7 => vec![CUSTOMER, ORDERS, ORDER_LINE, STOCK, SUPPLIER, NATION],
        8 => vec![ITEM, CUSTOMER, ORDERS, ORDER_LINE, STOCK, SUPPLIER, NATION, REGION],
        9 => vec![ITEM, ORDERS, ORDER_LINE, STOCK, SUPPLIER, NATION],
        10 => vec![CUSTOMER, ORDERS, ORDER_LINE, NATION],
        11 => vec![STOCK, SUPPLIER, NATION],
        12 => vec![ORDERS, ORDER_LINE],
        13 => vec![CUSTOMER, ORDERS],
        14 => vec![ITEM, ORDER_LINE],
        15 => vec![ORDER_LINE, STOCK, SUPPLIER],
        16 => vec![ITEM, STOCK, SUPPLIER],
        17 => vec![ITEM, ORDER_LINE],
        18 => vec![CUSTOMER, ORDERS, ORDER_LINE],
        19 => vec![ITEM, ORDER_LINE],
        20 => vec![ITEM, ORDER_LINE, STOCK, SUPPLIER, NATION],
        21 => vec![ORDERS, ORDER_LINE, STOCK, SUPPLIER, NATION],
        22 => vec![CUSTOMER, ORDERS],
        _ => panic!("CH-benCHmark has queries 1..=22, got {q}"),
    }
}

/// Generates the CH-benCHmark HTAP workload. `cfg` parameterizes the
/// shared TPC-C OLTP side.
pub fn generate(cfg: &TpccConfig) -> Workload {
    let base = tpcc::generate(cfg);
    let mut rng = seeded_rng(cfg.seed ^ 0xC4B3); // independent OLAP stream

    let horizon = base.txns.last().map(|t| t.commit_ts).unwrap_or_default();
    let classes: Vec<(u32, f64, Vec<TableId>)> =
        (1..=22).map(|q| (q, 1.0, query_footprint(q))).collect();
    let queries = poisson_query_stream(&mut rng, cfg.olap_qps, horizon, &classes);

    let analytic_tables: FxHashSet<TableId> =
        classes.iter().flat_map(|(_, _, t)| t.iter().copied()).collect();

    Workload {
        name: "chbench",
        table_names: TABLE_NAMES.to_vec(),
        txns: base.txns,
        queries,
        analytic_tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_table_one_counts() {
        // Paper Table I: num(A) per query and num(A ∩ T).
        let written: FxHashSet<TableId> = [
            tables::WAREHOUSE,
            tables::DISTRICT,
            tables::CUSTOMER,
            tables::HISTORY,
            tables::NEW_ORDER,
            tables::ORDERS,
            tables::ORDER_LINE,
            tables::STOCK,
        ]
        .into_iter()
        .collect();
        let expect = [(1, 1, 1), (2, 5, 1), (3, 4, 4), (4, 2, 2), (5, 7, 4), (6, 1, 1)];
        for (q, num_a, num_inter) in expect {
            let fp = query_footprint(q);
            assert_eq!(fp.len(), num_a, "Q{q} num(A)");
            let inter = fp.iter().filter(|t| written.contains(t)).count();
            assert_eq!(inter, num_inter, "Q{q} num(A ∩ T)");
        }
    }

    #[test]
    fn all_22_queries_have_footprints() {
        for q in 1..=22 {
            assert!(!query_footprint(q).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn query_zero_panics() {
        query_footprint(0);
    }

    #[test]
    fn generated_workload_has_high_hot_ratio() {
        let w = generate(&TpccConfig { num_txns: 3000, warehouses: 4, ..Default::default() });
        // Paper: 93.72 % of entries are on hot tables (the OLAP footprint
        // union covers everything TPC-C writes except history and
        // warehouse... in fact all but history/warehouse).
        let r = w.hot_entry_ratio();
        assert!(r > 0.88, "hot ratio {r}");
        assert_eq!(w.name, "chbench");
        assert_eq!(w.num_tables(), 12);
    }

    #[test]
    fn olap_queries_cover_all_classes() {
        // High qps so every class is drawn within the short horizon.
        let w = generate(&TpccConfig {
            num_txns: 3000,
            warehouses: 4,
            olap_qps: 5_000.0,
            ..Default::default()
        });
        let classes: FxHashSet<u32> = w.queries.iter().map(|q| q.class).collect();
        assert_eq!(classes.len(), 22, "expected all 22 query classes to appear");
    }
}
