//! Workload-characteristic statistics (Table I of the paper).

use crate::spec::Workload;
use aets_common::FxHashSet;

/// One row of Table I for a benchmark (or one of its query classes).
#[derive(Debug, Clone, PartialEq)]
pub struct TableOneRow {
    /// Benchmark (and optional query-class) label.
    pub label: String,
    /// `num(T)`: tables written by OLTP.
    pub num_written: usize,
    /// `num(A)`: tables accessed by the analytical queries.
    pub num_analytic: usize,
    /// `num(A ∩ T)`.
    pub num_intersection: usize,
    /// Fraction of log entries on hot tables.
    pub ratio: f64,
}

/// Computes the Table I row for a whole workload (hot = the union of all
/// query-class footprints).
pub fn table_one_row(w: &Workload) -> TableOneRow {
    let written = w.written_tables();
    let inter = w.analytic_tables.iter().filter(|t| written.contains(t)).count();
    TableOneRow {
        label: w.name.to_string(),
        num_written: written.len(),
        num_analytic: w.analytic_tables.len(),
        num_intersection: inter,
        ratio: w.hot_entry_ratio(),
    }
}

/// Computes a Table I row for one query class of a workload: hot tables
/// are just that class's footprint (this is how the paper reports
/// CH-benCHmark Q1..Q6 separately).
pub fn table_one_row_for_class(w: &Workload, class: u32) -> Option<TableOneRow> {
    let footprint: FxHashSet<_> =
        w.queries.iter().find(|q| q.class == class)?.tables.iter().copied().collect();
    let written = w.written_tables();
    let inter = footprint.iter().filter(|t| written.contains(t)).count();
    let mut hot = 0usize;
    let mut total = 0usize;
    for t in &w.txns {
        for e in &t.entries {
            total += 1;
            if footprint.contains(&e.table) {
                hot += 1;
            }
        }
    }
    Some(TableOneRow {
        label: format!("{} Q{}", w.name, class),
        num_written: written.len(),
        num_analytic: footprint.len(),
        num_intersection: inter,
        ratio: if total == 0 { 0.0 } else { hot as f64 / total as f64 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{self, TpccConfig};

    #[test]
    fn tpcc_row_matches_paper_shape() {
        let w = tpcc::generate(&TpccConfig { num_txns: 3000, warehouses: 4, ..Default::default() });
        let row = table_one_row(&w);
        assert_eq!(row.num_written, 8);
        assert_eq!(row.num_analytic, 5);
        assert_eq!(row.num_intersection, 5);
        assert!(row.ratio > 0.85);
    }

    #[test]
    fn class_row_restricts_footprint() {
        let w = tpcc::generate(&TpccConfig { num_txns: 2000, warehouses: 4, ..Default::default() });
        let row = table_one_row_for_class(&w, 1).expect("class 1 exists");
        assert_eq!(row.num_analytic, 3); // StockLevel footprint
        assert!(row.ratio < table_one_row(&w).ratio);
        assert!(table_one_row_for_class(&w, 99).is_none());
    }
}
