//! BusTracker: a synthetic reconstruction of the real-world HTAP workload
//! published with QB5000 (Section VI-A3 of the paper).
//!
//! The schema has 65 tables. 14 are *hot* — read by the real-time
//! bus-arrival prediction queries (`m.trip`, `m.calendar`, `m.estimate`,
//! ...). The rest are append-heavy logging tables (`m.app_state_log`,
//! `m.screen_log`, ...) that users "rarely access"; they dominate log
//! volume so that hot-table entries are 37.12 % of the total, matching the
//! paper. Per-table access rates vary over time (Figure 7) following
//! smooth diurnal-style curves with regime shifts, which is exactly what
//! the DTGM forecaster and the adaptive thread allocator are built for.
//!
//! Time is organized in *slots* (the paper's "minutes"); the physical slot
//! length scales with the generated transaction count so experiments can
//! compress 30 model-minutes into a few seconds of primary time.

use crate::spec::{int_row, QueryInstance, TxnFactory, Workload};
use aets_common::rng::seeded_rng;
use aets_common::{ColumnId, DmlOp, FxHashSet, Row, RowKey, TableId, Timestamp, Value};
use rand::Rng;

/// Number of tables in the schema.
pub const NUM_TABLES: usize = 65;
/// Number of hot tables (read by analytical queries).
pub const NUM_HOT: usize = 14;

/// The 14 hot tables (ids 0..14), named after the paper/QB5000 schema.
pub const HOT_NAMES: [&str; NUM_HOT] = [
    "m.trip",
    "m.calendar",
    "m.estimate",
    "m.agency",
    "m.stop_time",
    "m.route",
    "m.stop",
    "m.messages",
    "m.region_agency",
    "m.vehicle",
    "m.prediction",
    "m.region",
    "m.service_alert",
    "m.calendar_date",
];

/// The 51 cold tables (ids 14..65): logging/archival tables with heavy
/// write volume and essentially no analytical reads.
pub const COLD_NAMES: [&str; NUM_TABLES - NUM_HOT] = [
    "m.app_state_log",
    "m.screen_log",
    "m.position_log",
    "m.api_request_log",
    "m.device_log",
    "m.error_log",
    "m.session_log",
    "m.click_log",
    "m.push_log",
    "m.debug_log",
    "m.gps_raw",
    "m.accel_raw",
    "m.battery_log",
    "m.network_log",
    "m.crash_log",
    "m.install_log",
    "m.uninstall_log",
    "m.feedback_log",
    "m.rating_log",
    "m.search_log",
    "m.geocode_log",
    "m.route_request_log",
    "m.eta_request_log",
    "m.notification_log",
    "m.billing_log",
    "m.auth_log",
    "m.token_log",
    "m.export_staging",
    "m.import_staging",
    "m.trip_archive",
    "m.estimate_archive",
    "m.position_archive",
    "m.message_archive",
    "m.schedule_archive",
    "m.vehicle_archive",
    "m.audit_trail",
    "m.job_log",
    "m.queue_log",
    "m.cache_log",
    "m.metric_raw",
    "m.heartbeat_log",
    "m.diag_log",
    "m.replay_log",
    "m.sensor_raw",
    "m.weather_raw",
    "m.traffic_raw",
    "m.incident_raw",
    "m.maintenance_log",
    "m.driver_log",
    "m.shift_log",
    "m.fuel_log",
];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct BusTrackerConfig {
    /// RNG seed.
    pub seed: u64,
    /// Read-write transactions to generate.
    pub num_txns: usize,
    /// Primary OLTP throughput (txn/s).
    pub oltp_tps: f64,
    /// Number of time slots (the paper's "minutes"); the rate model is
    /// evaluated per slot. Default 35 = 5 warm-up + 30 measured.
    pub slots: usize,
    /// Target share of log entries on hot tables (paper: 0.3712).
    pub hot_share: f64,
    /// Scales analytical query volume (1.0 = rates straight from the
    /// model, in queries per slot).
    pub olap_scale: f64,
}

impl Default for BusTrackerConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            num_txns: 20_000,
            oltp_tps: 10_000.0,
            slots: 35,
            hot_share: 0.3712,
            olap_scale: 1.0,
        }
    }
}

/// All 65 table names, indexed by `TableId`.
pub fn table_names() -> Vec<&'static str> {
    HOT_NAMES.iter().chain(COLD_NAMES.iter()).copied().collect()
}

/// Ground-truth access rate (queries per slot) of `table` in `slot`.
///
/// Hot tables follow one of three regimes chosen by table index, mirroring
/// the "comprehensible trend" of Figure 7: (a) a diurnal sinusoid, (b) a
/// ramp with a mid-run regime shift (a cold-ish table turning hot), and
/// (c) a spiky commuter double-peak. Cold tables have zero analytical
/// rate.
pub fn access_rate(table: usize, slot: usize) -> f64 {
    if table >= NUM_HOT {
        return 0.0;
    }
    // Popularity spans orders of magnitude across tables (the paper's
    // urgency example uses a table accessed by 1,000 queries per slot
    // next to near-idle ones); the temporal *shape* below is multiplied
    // by this factor.
    let popularity = [1.0, 3.0, 10.0, 30.0][table % 4];
    // The pattern repeats every "day" of [`DAY_SLOTS`] slots, like the
    // real trace's daily commuter rhythm.
    let t = slot as f64;
    let td = (slot % DAY_SLOTS) as f64;
    let phase = table as f64 * 0.7;
    popularity
        * match table % 3 {
            // Diurnal sinusoid around a per-table base.
            0 => {
                let base = 30.0 + 4.0 * table as f64;
                (base * (1.0 + 0.45 * ((t / 12.0 + phase).sin()))).max(1.0)
            }
            // Regime shift within each day: quiet first half, busy second.
            1 => {
                let shift = 14.0 + (table % 5) as f64;
                let low = 18.0 + table as f64;
                let high = 55.0 + 3.0 * table as f64;
                let s = 1.0 / (1.0 + (-(td - shift)).exp()); // logistic switch
                (low + (high - low) * s).max(1.0)
            }
            // Commuter double-peak, morning and evening.
            _ => {
                let base = 22.0 + 2.0 * table as f64;
                let peak1 = 40.0 * (-((td - 8.0) * (td - 8.0)) / 18.0).exp();
                let peak2 = 50.0 * (-((td - 26.0) * (td - 26.0)) / 18.0).exp();
                (base + peak1 + peak2).max(1.0)
            }
        }
}

/// Samples a hot table to write, proportional to popularity.
pub(crate) fn hot_write_table<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let total: f64 = (0..NUM_HOT).map(popularity).sum();
    let mut pick = rng.gen_range(0.0..total);
    for t in 0..NUM_HOT {
        let p = popularity(t);
        if pick < p {
            return t;
        }
        pick -= p;
    }
    NUM_HOT - 1
}

/// Returns the popularity multiplier of a hot table (1 for cold tables).
pub fn popularity(table: usize) -> f64 {
    if table >= NUM_HOT {
        1.0
    } else {
        [1.0, 3.0, 10.0, 30.0][table % 4]
    }
}

/// Slots per modelled "day" (the default run length: 5 warm-up + 30
/// measured slots).
pub const DAY_SLOTS: usize = 35;

/// The full rate matrix: `slots x NUM_TABLES`, cold columns all zero.
/// This is the forecasting ground truth for Tables III/IV and Figure 14.
pub fn rate_matrix(slots: usize) -> Vec<Vec<f64>> {
    (0..slots).map(|s| (0..NUM_TABLES).map(|t| access_rate(t, s)).collect()).collect()
}

/// Co-access adjacency between hot tables, from the prediction queries'
/// join structure. Used to build DTGM's table-access graph.
pub fn access_graph() -> Vec<(usize, usize)> {
    vec![
        (0, 4),  // trip - stop_time
        (0, 5),  // trip - route
        (0, 9),  // trip - vehicle
        (4, 6),  // stop_time - stop
        (5, 6),  // route - stop
        (2, 10), // estimate - prediction
        (2, 9),  // estimate - vehicle
        (1, 13), // calendar - calendar_date
        (3, 8),  // agency - region_agency
        (8, 11), // region_agency - region
        (7, 12), // messages - service_alert
    ]
}

/// Query classes: each hot table anchors a class; several classes join
/// their graph neighbours (so queries span table groups, exercising the
/// multi-group wait in Algorithm 3).
pub(crate) fn class_footprint(table: usize) -> Vec<TableId> {
    let mut tabs = vec![TableId::new(table as u32)];
    for (a, b) in access_graph() {
        if a == table {
            tabs.push(TableId::new(b as u32));
        }
    }
    tabs.truncate(3);
    tabs
}

/// Generates the BusTracker HTAP workload.
pub fn generate(cfg: &BusTrackerConfig) -> Workload {
    assert!(cfg.slots >= 2, "need at least two slots");
    let mut rng = seeded_rng(cfg.seed);
    let mut factory = TxnFactory::new(cfg.oltp_tps);

    // Hot txns write 3 hot entries; cold txns write 5 cold entries. Choose
    // the hot-txn fraction f so hot entries are `hot_share` of the total:
    // 3f / (3f + 5(1-f)) = hot_share.
    let h = cfg.hot_share;
    let f = 5.0 * h / (3.0 + 2.0 * h);

    let mut txns = Vec::with_capacity(cfg.num_txns);
    let mut next_key = vec![0u64; NUM_TABLES];
    for _ in 0..cfg.num_txns {
        let rows: Vec<(TableId, DmlOp, RowKey, Row)> = if rng.gen_bool(f) {
            // Operational update: writes 3 hot tables, weighted by
            // popularity — heavily queried tables (positions, estimates)
            // are also the heavily updated ones in the real trace.
            (0..3)
                .map(|_| {
                    let t = hot_write_table(&mut rng);
                    let k = rng.gen_range(0..5000u64);
                    (
                        TableId::new(t as u32),
                        DmlOp::Update,
                        RowKey::new(k),
                        vec![
                            (ColumnId::new(0), Value::Float(rng.gen_range(-90.0..90.0))),
                            (ColumnId::new(1), Value::Int(rng.gen_range(0..10_000))),
                        ],
                    )
                })
                .collect()
        } else {
            // Telemetry burst: appends 5 rows to cold logging tables.
            (0..5)
                .map(|_| {
                    let t = NUM_HOT + rng.gen_range(0..NUM_TABLES - NUM_HOT);
                    let k = next_key[t];
                    next_key[t] += 1;
                    (
                        TableId::new(t as u32),
                        DmlOp::Insert,
                        RowKey::new(k),
                        int_row(&[(0, rng.gen_range(0..1_000_000)), (1, k as i64)]),
                    )
                })
                .collect()
        };
        txns.push(factory.build(&mut rng, rows));
    }

    // Query stream: per slot, per hot table, Poisson(rate * olap_scale)
    // arrivals uniformly inside the slot.
    let horizon = factory.now();
    let slot_len_us = (horizon.as_micros() / cfg.slots as u64).max(1);
    let mut queries = Vec::new();
    let mut qid = 0u32;
    for slot in 0..cfg.slots {
        for table in 0..NUM_HOT {
            let lambda = access_rate(table, slot) * cfg.olap_scale;
            // Poisson sampling via exponential gaps within the slot.
            let mut t = 0.0f64; // position within the slot, in [0, 1)
            loop {
                t += aets_common::rng::exp_interarrival(&mut rng, lambda.max(1e-9));
                if t >= 1.0 {
                    break;
                }
                let arrival = Timestamp::from_micros(
                    slot as u64 * slot_len_us + (t * slot_len_us as f64) as u64,
                );
                queries.push(QueryInstance {
                    id: qid,
                    class: table as u32,
                    arrival,
                    tables: class_footprint(table),
                });
                qid += 1;
            }
        }
    }
    queries.sort_by_key(|q| q.arrival);
    for (i, q) in queries.iter_mut().enumerate() {
        q.id = i as u32;
    }

    let analytic_tables: FxHashSet<TableId> = (0..NUM_HOT as u32).map(TableId::new).collect();

    Workload { name: "bustracker", table_names: table_names(), txns, queries, analytic_tables }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        generate(&BusTrackerConfig { num_txns: 4000, ..Default::default() })
    }

    #[test]
    fn schema_has_65_tables_14_hot() {
        assert_eq!(table_names().len(), NUM_TABLES);
        let w = small();
        assert_eq!(w.num_tables(), 65);
        assert_eq!(w.analytic_tables.len(), 14);
    }

    #[test]
    fn hot_share_matches_paper() {
        let w = generate(&BusTrackerConfig { num_txns: 20_000, ..Default::default() });
        let r = w.hot_entry_ratio();
        assert!((r - 0.3712).abs() < 0.02, "hot share {r} should be ~0.3712");
    }

    #[test]
    fn rates_are_positive_for_hot_and_zero_for_cold() {
        for slot in 0..35 {
            for t in 0..NUM_TABLES {
                let r = access_rate(t, slot);
                if t < NUM_HOT {
                    assert!(r > 0.0);
                } else {
                    assert_eq!(r, 0.0);
                }
            }
        }
    }

    #[test]
    fn regime_shift_tables_change_level() {
        // Table 1 uses the logistic regime shift: late slots must be much
        // busier than early slots.
        let early = access_rate(1, 2);
        let late = access_rate(1, 30);
        assert!(late > 2.0 * early, "early {early}, late {late}");
    }

    #[test]
    fn rate_matrix_shape() {
        let m = rate_matrix(10);
        assert_eq!(m.len(), 10);
        assert_eq!(m[0].len(), NUM_TABLES);
    }

    #[test]
    fn queries_sorted_and_within_horizon() {
        let w = small();
        assert!(!w.queries.is_empty());
        assert!(w.queries.windows(2).all(|q| q[0].arrival <= q[1].arrival));
        let horizon = w.txns.last().expect("txns").commit_ts;
        // Queries land within ~1 slot of the horizon.
        let slack = horizon.as_micros() / 10;
        assert!(w.queries.iter().all(|q| q.arrival.as_micros() <= horizon.as_micros() + slack));
    }

    #[test]
    fn some_queries_span_multiple_tables() {
        let w = small();
        assert!(w.queries.iter().any(|q| q.tables.len() > 1));
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.txns[5], b.txns[5]);
        assert_eq!(a.queries.len(), b.queries.len());
    }
}
