//! Drift workloads: deterministic streams whose hot set *moves*.
//!
//! The static generators in [`tpcc`](crate::tpcc) and
//! [`bustracker`](crate::bustracker) hold their access distribution fixed
//! for the whole run, which is exactly the regime where a static thread
//! split and a one-shot grouping are optimal. The adaptive control loop
//! only earns its keep when the distribution shifts mid-run, so this
//! module provides two seeded drift patterns from the paper's motivation:
//!
//! * [`rotating_tpcc`] — the classic rotating-hot-warehouse TPC-C: the
//!   run is cut into phases, each phase concentrates `focus_share` of the
//!   OLTP traffic on one rotating warehouse, and the analytical query mix
//!   rotates with it (StockLevel-heavy → OrderStatus-heavy → an audit
//!   phase that reads the normally-cold `warehouse`/`history` tables).
//!   The queried hot set therefore genuinely changes membership, not just
//!   intensity — the case that forces a regroup, not merely a resplit.
//! * [`flash_crowd_bustracker`] — BusTracker with a flash crowd: inside a
//!   configured slot window, a set of flash tables (cold log tables by
//!   default — an incident investigation) receives a large query
//!   multiplier, then the crowd disperses.
//!
//! Both generators are pure functions of their seed: the same config
//! yields byte-identical transaction and query streams (asserted below),
//! which is what lets the adaptive-drift suite pin seeds in CI.

use crate::bustracker::{self, BusTrackerConfig};
use crate::spec::{int_row, poisson_query_stream, QueryInstance, TxnFactory, Workload};
use crate::tpcc::{self, tables, TpccConfig};
use aets_common::rng::{seeded_rng, Zipf};
use aets_common::{ColumnId, DmlOp, FxHashSet, Row, RowKey, TableId, Timestamp, Value};
use rand::Rng;

/// Parameters of the rotating-hot-warehouse TPC-C stream.
#[derive(Debug, Clone)]
pub struct RotatingTpccConfig {
    /// Base TPC-C parameters (seed, scale, volume, rates).
    pub base: TpccConfig,
    /// Number of drift phases the run is cut into.
    pub phases: usize,
    /// Fraction of each phase's OLTP traffic (and query weight) pinned to
    /// the phase's focus; the rest stays uniform.
    pub focus_share: f64,
}

impl Default for RotatingTpccConfig {
    fn default() -> Self {
        Self {
            base: TpccConfig { warehouses: 4, ..Default::default() },
            phases: 4,
            focus_share: 0.8,
        }
    }
}

/// The rotating query classes: phase `p` concentrates weight on class
/// `p % 3`. Class 2 is the audit phase — it queries `warehouse` and
/// `history`, tables no static TPC-C query ever touches, so the hot set
/// changes membership when it arrives.
pub fn rotating_query_classes() -> Vec<(u32, Vec<TableId>)> {
    vec![
        (0, vec![tables::DISTRICT, tables::ORDER_LINE, tables::STOCK]), // StockLevel
        (1, vec![tables::CUSTOMER, tables::ORDERS, tables::ORDER_LINE]), // OrderStatus
        (2, vec![tables::WAREHOUSE, tables::HISTORY]),                  // audit sweep
    ]
}

/// The warehouse phase `p` focuses on.
pub fn focus_warehouse(p: usize, warehouses: u32) -> u64 {
    (p as u64) % u64::from(warehouses)
}

/// Generates the rotating-hot-warehouse TPC-C workload.
///
/// Transactions keep the standard NewOrder/Payment/Delivery mix and the
/// full TPC-C state machine (deliveries still consume previously inserted
/// new-orders), but each phase routes `focus_share` of them to its focus
/// warehouse. Queries are Poisson within each phase's time span with the
/// phase's class taking `focus_share` of the class weight.
pub fn rotating_tpcc(cfg: &RotatingTpccConfig) -> Workload {
    assert!(cfg.phases >= 2, "drift needs at least two phases");
    assert!(
        (0.0..=1.0).contains(&cfg.focus_share),
        "focus_share must be a fraction, got {}",
        cfg.focus_share
    );
    let base = &cfg.base;
    let mut rng = seeded_rng(base.seed);
    let mut factory = TxnFactory::new(base.oltp_tps);
    let mut st = tpcc::TpccState::new(base.warehouses);
    let item_zipf = Zipf::new(100_000, 0.5);

    let per_phase = base.num_txns.div_ceil(cfg.phases);
    let mut txns = Vec::with_capacity(base.num_txns);
    let mut phase_ends = Vec::with_capacity(cfg.phases);
    for p in 0..cfg.phases {
        let focus = focus_warehouse(p, base.warehouses);
        let n = per_phase.min(base.num_txns - txns.len());
        for _ in 0..n {
            let w = if rng.gen_bool(cfg.focus_share) {
                focus
            } else {
                rng.gen_range(0..u64::from(base.warehouses))
            };
            let pick = rng.gen_range(0..92u32);
            let rows = if pick < 45 {
                tpcc::new_order_at(&mut rng, &mut st, w, &item_zipf)
            } else if pick < 88 {
                tpcc::payment_at(&mut rng, &mut st, w)
            } else {
                tpcc::delivery_at(&mut rng, &mut st, w)
            };
            txns.push(factory.build(&mut rng, rows));
        }
        phase_ends.push(factory.now());
    }

    // Per-phase Poisson query stream with rotating class weights; the
    // off-focus classes split the remaining weight evenly.
    let classes = rotating_query_classes();
    let mut queries = Vec::new();
    let mut start = Timestamp::ZERO;
    for (p, end) in phase_ends.iter().enumerate() {
        let span = Timestamp::from_micros(end.as_micros().saturating_sub(start.as_micros()));
        let hot_class = (p % classes.len()) as u32;
        let rest = (1.0 - cfg.focus_share) / (classes.len() - 1) as f64;
        let weighted: Vec<(u32, f64, Vec<TableId>)> = classes
            .iter()
            .map(|(c, tabs)| {
                let w = if *c == hot_class { cfg.focus_share } else { rest };
                (*c, w, tabs.clone())
            })
            .collect();
        let mut phase_qs = poisson_query_stream(&mut rng, base.olap_qps, span, &weighted);
        for q in &mut phase_qs {
            q.arrival = Timestamp::from_micros(q.arrival.as_micros() + start.as_micros());
        }
        queries.extend(phase_qs);
        start = *end;
    }
    queries.sort_by_key(|q| q.arrival);
    for (i, q) in queries.iter_mut().enumerate() {
        q.id = i as u32;
    }

    let analytic_tables: FxHashSet<TableId> =
        classes.iter().flat_map(|(_, t)| t.iter().copied()).collect();

    Workload {
        name: "tpcc-rotating",
        table_names: tpcc::TABLE_NAMES.to_vec(),
        txns,
        queries,
        analytic_tables,
    }
}

/// Parameters of the flash-crowd BusTracker stream.
#[derive(Debug, Clone)]
pub struct FlashCrowdConfig {
    /// Base BusTracker parameters (seed, volume, slots, shares).
    pub base: BusTrackerConfig,
    /// Tables the crowd lands on. The defaults are *cold* logging tables,
    /// so the flash changes hot-set membership.
    pub flash_tables: Vec<TableId>,
    /// First slot of the crowd window.
    pub flash_start: usize,
    /// Crowd duration in slots.
    pub flash_len: usize,
    /// Queries per slot on each flash table while the crowd lasts.
    pub flash_rate: f64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        Self {
            base: BusTrackerConfig::default(),
            // m.api_request_log (id 17) and m.error_log (id 19): cold log
            // tables an incident response suddenly starts querying.
            flash_tables: vec![TableId::new(17), TableId::new(19)],
            flash_start: 12,
            flash_len: 8,
            flash_rate: 400.0,
        }
    }
}

impl FlashCrowdConfig {
    /// Whether `slot` falls inside the crowd window.
    pub fn in_flash(&self, slot: usize) -> bool {
        (self.flash_start..self.flash_start + self.flash_len).contains(&slot)
    }

    /// Ground-truth query rate of `table` in `slot`: the base BusTracker
    /// rate plus the crowd on flash tables inside the window.
    pub fn rate(&self, table: usize, slot: usize) -> f64 {
        let base = bustracker::access_rate(table, slot);
        let flashed = self.in_flash(slot) && self.flash_tables.iter().any(|t| t.index() == table);
        if flashed {
            base + self.flash_rate
        } else {
            base
        }
    }
}

/// Generates the flash-crowd BusTracker workload: the base write mix
/// (hot operational updates + cold telemetry appends) with a query
/// stream whose per-slot rates follow [`FlashCrowdConfig::rate`].
pub fn flash_crowd_bustracker(cfg: &FlashCrowdConfig) -> Workload {
    let base = &cfg.base;
    assert!(base.slots >= 2, "need at least two slots");
    assert!(
        cfg.flash_start + cfg.flash_len <= base.slots,
        "flash window [{}, {}) exceeds {} slots",
        cfg.flash_start,
        cfg.flash_start + cfg.flash_len,
        base.slots
    );
    let mut rng = seeded_rng(base.seed);
    let mut factory = TxnFactory::new(base.oltp_tps);

    // Same write mix as the static generator: hot txns write 3 hot
    // entries, cold txns 5 cold entries, fraction solved for hot_share.
    let h = base.hot_share;
    let f = 5.0 * h / (3.0 + 2.0 * h);
    let mut txns = Vec::with_capacity(base.num_txns);
    let mut next_key = vec![0u64; bustracker::NUM_TABLES];
    for _ in 0..base.num_txns {
        let rows: Vec<(TableId, DmlOp, RowKey, Row)> = if rng.gen_bool(f) {
            (0..3)
                .map(|_| {
                    let t = bustracker::hot_write_table(&mut rng);
                    let k = rng.gen_range(0..5000u64);
                    (
                        TableId::new(t as u32),
                        DmlOp::Update,
                        RowKey::new(k),
                        vec![
                            (ColumnId::new(0), Value::Float(rng.gen_range(-90.0..90.0))),
                            (ColumnId::new(1), Value::Int(rng.gen_range(0..10_000))),
                        ],
                    )
                })
                .collect()
        } else {
            (0..5)
                .map(|_| {
                    let t = bustracker::NUM_HOT
                        + rng.gen_range(0..bustracker::NUM_TABLES - bustracker::NUM_HOT);
                    let k = next_key[t];
                    next_key[t] += 1;
                    (
                        TableId::new(t as u32),
                        DmlOp::Insert,
                        RowKey::new(k),
                        int_row(&[(0, rng.gen_range(0..1_000_000)), (1, k as i64)]),
                    )
                })
                .collect()
        };
        txns.push(factory.build(&mut rng, rows));
    }

    // Query stream: Poisson per slot per table at the flash-aware rate.
    // Flash-table queries read just that table (a log investigation);
    // hot-table queries keep their join footprints.
    let horizon = factory.now();
    let slot_len_us = (horizon.as_micros() / base.slots as u64).max(1);
    let mut queries = Vec::new();
    for slot in 0..base.slots {
        for table in 0..bustracker::NUM_TABLES {
            let lambda = cfg.rate(table, slot) * base.olap_scale;
            if lambda <= 0.0 {
                continue;
            }
            let mut t = 0.0f64;
            loop {
                t += aets_common::rng::exp_interarrival(&mut rng, lambda);
                if t >= 1.0 {
                    break;
                }
                let arrival = Timestamp::from_micros(
                    slot as u64 * slot_len_us + (t * slot_len_us as f64) as u64,
                );
                let tables = if table < bustracker::NUM_HOT {
                    bustracker::class_footprint(table)
                } else {
                    vec![TableId::new(table as u32)]
                };
                queries.push(QueryInstance { id: 0, class: table as u32, arrival, tables });
            }
        }
    }
    queries.sort_by_key(|q| q.arrival);
    for (i, q) in queries.iter_mut().enumerate() {
        q.id = i as u32;
    }

    let mut analytic_tables: FxHashSet<TableId> =
        (0..bustracker::NUM_HOT as u32).map(TableId::new).collect();
    analytic_tables.extend(cfg.flash_tables.iter().copied());

    Workload {
        name: "bustracker-flash",
        table_names: bustracker::table_names(),
        txns,
        queries,
        analytic_tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rot() -> Workload {
        rotating_tpcc(&RotatingTpccConfig {
            base: TpccConfig { num_txns: 4000, warehouses: 4, ..Default::default() },
            phases: 4,
            focus_share: 0.8,
        })
    }

    fn small_flash() -> (FlashCrowdConfig, Workload) {
        let cfg = FlashCrowdConfig {
            base: BusTrackerConfig { num_txns: 4000, ..Default::default() },
            ..Default::default()
        };
        let w = flash_crowd_bustracker(&cfg);
        (cfg, w)
    }

    /// Phase index of a commit/arrival timestamp given phase boundaries
    /// derived by splitting the txn stream into equal chunks.
    fn phase_of(w: &Workload, phases: usize, ts: Timestamp) -> usize {
        let per = w.txns.len().div_ceil(phases);
        for p in 0..phases {
            let end = w.txns[(per * (p + 1)).min(w.txns.len()) - 1].commit_ts;
            if ts <= end {
                return p;
            }
        }
        phases - 1
    }

    #[test]
    fn rotating_tpcc_is_deterministic() {
        let a = small_rot();
        let b = small_rot();
        assert_eq!(a.txns.len(), b.txns.len());
        assert_eq!(a.txns[17], b.txns[17]);
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(a.queries[17], b.queries[17]);
    }

    #[test]
    fn rotating_tpcc_focus_warehouse_rotates_in_the_writes() {
        let w = small_rot();
        let phases = 4;
        let per = w.txns.len().div_ceil(phases);
        // District keys encode the warehouse (key / DISTRICTS_PER_WH):
        // each phase's district writes must concentrate on its focus
        // warehouse, and the focus must differ between phases.
        let mut dominant = Vec::new();
        for p in 0..phases {
            let mut by_wh = [0usize; 4];
            for t in &w.txns[per * p..(per * (p + 1)).min(w.txns.len())] {
                for e in &t.entries {
                    if e.table == tables::DISTRICT {
                        by_wh[(e.key.raw() / tpcc::DISTRICTS_PER_WH) as usize] += 1;
                    }
                }
            }
            let total: usize = by_wh.iter().sum();
            let (top, top_n) =
                by_wh.iter().enumerate().max_by_key(|(_, n)| **n).expect("4 warehouses");
            assert_eq!(top as u64, focus_warehouse(p, 4), "phase {p} focus");
            assert!(
                *top_n as f64 / total as f64 > 0.6,
                "phase {p}: focus got {top_n}/{total} district writes"
            );
            dominant.push(top);
        }
        assert_eq!(dominant, vec![0, 1, 2, 3], "focus must rotate");
    }

    #[test]
    fn rotating_tpcc_query_mix_rotates_and_reaches_cold_tables() {
        let w = small_rot();
        let phases = 4;
        // Per phase, the focus class must dominate the query stream.
        for p in 0..phases {
            let hot_class = (p % 3) as u32;
            let in_phase: Vec<_> =
                w.queries.iter().filter(|q| phase_of(&w, phases, q.arrival) == p).collect();
            assert!(!in_phase.is_empty(), "phase {p} has queries");
            let hot = in_phase.iter().filter(|q| q.class == hot_class).count();
            assert!(
                hot as f64 / in_phase.len() as f64 > 0.6,
                "phase {p}: class {hot_class} got {hot}/{}",
                in_phase.len()
            );
        }
        // The audit phase pulls warehouse/history into the analytic set.
        assert!(w.analytic_tables.contains(&tables::WAREHOUSE));
        assert!(w.analytic_tables.contains(&tables::HISTORY));
        assert_eq!(w.analytic_tables.len(), 7);
    }

    #[test]
    fn rotating_tpcc_keeps_the_state_machine_valid() {
        let w = small_rot();
        let mut inserted = FxHashSet::default();
        let mut last_lsn = 0;
        for t in &w.txns {
            for e in &t.entries {
                assert!(e.lsn.raw() > last_lsn, "LSNs must increase");
                last_lsn = e.lsn.raw();
                if e.table == tables::NEW_ORDER {
                    match e.op {
                        DmlOp::Insert => {
                            inserted.insert(e.key);
                        }
                        DmlOp::Delete => {
                            assert!(inserted.contains(&e.key), "delete of unknown new_order")
                        }
                        DmlOp::Update => panic!("new_order is never updated"),
                    }
                }
            }
        }
    }

    #[test]
    fn flash_crowd_is_deterministic() {
        let (_, a) = small_flash();
        let (_, b) = small_flash();
        assert_eq!(a.txns[11], b.txns[11]);
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(a.queries[11], b.queries[11]);
    }

    #[test]
    fn flash_crowd_spikes_inside_the_window_only() {
        let (cfg, w) = small_flash();
        let horizon = w.txns.last().expect("txns").commit_ts;
        let slot_len = (horizon.as_micros() / cfg.base.slots as u64).max(1);
        let flash: FxHashSet<TableId> = cfg.flash_tables.iter().copied().collect();
        let mut inside = 0usize;
        let mut outside = 0usize;
        for q in &w.queries {
            if !q.tables.iter().any(|t| flash.contains(t)) {
                continue;
            }
            let slot = (q.arrival.as_micros() / slot_len) as usize;
            if cfg.in_flash(slot.min(cfg.base.slots - 1)) {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        assert!(inside > 0, "the crowd must produce queries");
        // Base rate on cold flash tables is zero, so the only out-of-window
        // hits come from slot-boundary rounding.
        assert!(
            outside as f64 <= inside as f64 * 0.05,
            "flash queries must concentrate in the window: {inside} in, {outside} out"
        );
        // Flash tables join the analytic (hot) set.
        for t in &cfg.flash_tables {
            assert!(w.analytic_tables.contains(t));
        }
        assert_eq!(w.analytic_tables.len(), bustracker::NUM_HOT + cfg.flash_tables.len());
    }

    #[test]
    fn flash_rate_model_is_the_base_plus_crowd() {
        let cfg = FlashCrowdConfig::default();
        let flash_table = cfg.flash_tables[0].index();
        let in_slot = cfg.flash_start;
        let out_slot = cfg.flash_start + cfg.flash_len;
        assert_eq!(cfg.rate(flash_table, in_slot), cfg.flash_rate, "cold base + crowd");
        assert_eq!(cfg.rate(flash_table, out_slot), 0.0, "crowd dispersed");
        // Non-flash hot tables are untouched by the window.
        assert_eq!(cfg.rate(0, in_slot), bustracker::access_rate(0, in_slot));
    }
}
