//! The AETS log-replay framework (the paper's primary contribution).
//!
//! Pipeline overview, mirroring Figure 3 of the paper:
//!
//! ```text
//!   encoded epochs ──► dispatcher ──► per-group mini-txns (commit_order_queue)
//!                        (meta parse)        │
//!        access-rate predictor ──► adaptive thread allocation (λ·n weights)
//!                                            │
//!    stage 1: hot groups ─► TPLR phase 1 (translate, lock-free)
//!                           TPLR phase 2 (per-group commit thread, Alg. 1/2)
//!    stage 2: cold groups ─► same
//!                                            │
//!                              VisibilityBoard (tg_cmt_ts, global_cmt_ts,
//!                              Algorithm 3 admission for queries)
//! ```
//!
//! The baselines the paper compares against (ATR, C5, ungrouped TPLR, a
//! serial oracle) live in [`engines`] behind the same [`ReplayEngine`]
//! trait, so correctness tests can assert state equivalence across all of
//! them and benchmarks can sweep them uniformly.
//!
//! Ingest is fault-tolerant: deliveries are CRC- and sequence-checked and
//! re-requested with bounded backoff ([`ingest_epoch`]), and AETS replay
//! is supervised — an unrecoverable group is quarantined with its
//! visibility watermark frozen while healthy groups keep replaying.

// Replay sits on the recovery path: every fallible operation outside
// tests must surface a typed error (or quarantine a group), never panic.
// Crate-wide deny (started as deny-on-durability-modules only, then
// warn-everywhere; the whole crate is clean now, so hold the line).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod alloc;
pub mod checkpoint;
pub mod control;
pub mod dispatch;
pub mod engines;
pub mod grouping;
pub mod metrics;
pub mod options;
pub mod recovery;
pub mod runner;
pub mod service;
pub mod target;
pub mod visibility;

pub use alloc::{allocate_threads, UrgencyMode};
pub use checkpoint::{Checkpoint, CheckpointMeta, CheckpointStore};
pub use control::{plan_grouping, AdaptiveController, ControllerConfig};
pub use dispatch::{
    dispatch_epoch, ingest_epoch, DispatchedEpoch, GroupWork, IngestStats, MiniTxn, RetryPolicy,
};
#[doc(hidden)]
pub use engines::aets::CommitQueue;
pub use engines::aets::{AetsConfig, AetsEngine, RateFn, Reconfigure, ReconfigureHandle};
pub use engines::atr::AtrEngine;
pub use engines::c5::C5Engine;
pub use engines::pool::CellPool;
pub use engines::serial::SerialEngine;
pub use engines::{apply_entry, commit_cell, translate_entry, Cell, ReplayEngine};
pub use grouping::{dbscan_1d, TableGrouping};
pub use metrics::ReplayMetrics;
pub use options::{ServiceOptions, ServiceOptionsBuilder};
pub use recovery::{DurableBackup, DurableOptions, RecoveryReport};
pub use runner::{run_realtime, RunnerConfig, RunnerOutcome, RunnerQuery, Workload};
pub use service::{
    AdmissionMode, BackupNode, BackupNodeBuilder, NodeOptions, OutputKind, QueryHandle,
    QueryOutput, QuerySpec, ReadSession,
};
pub use target::{eval_spec, QueryTarget};
pub use visibility::{VisibilityBoard, VisibilityBoardBuilder, WaitOutcome};
