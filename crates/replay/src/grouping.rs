//! Fine-grained table grouping (component ③ of the AETS architecture).
//!
//! Tables are split into *groups*; each group gets its own task queue,
//! commit-order queue, single commit thread, and group commit timestamp.
//! Hot groups (tables read by analytical queries) replay in stage 1 of
//! each epoch, cold groups in stage 2.
//!
//! Grouping policies mirror Section IV-A: one group per table, a
//! DBSCAN-style clustering of tables by (predicted) access rate, or the
//! paper's hand-specified groups for TPC-C.

use aets_common::{Error, FxHashSet, GroupId, Result, TableId};

/// A materialized grouping of tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TableGrouping {
    /// Member tables of each group.
    groups: Vec<Vec<TableId>>,
    /// Whether each group is hot (stage 1) or cold (stage 2).
    hot: Vec<bool>,
    /// Access rate of each group (queries per time unit over its tables).
    rates: Vec<f64>,
    /// Table id -> group id.
    table_to_group: Vec<GroupId>,
}

impl TableGrouping {
    /// Builds a grouping from explicit groups.
    ///
    /// * `groups[i]` — tables of group `i`; every table in `0..num_tables`
    ///   must appear exactly once.
    /// * `rates[i]` — the group's table access rate `r` (used for the
    ///   urgency factor and for hot/cold classification).
    /// * `hot_tables` — tables read by analytical queries; a group is hot
    ///   iff it contains at least one.
    pub fn new(
        num_tables: usize,
        groups: Vec<Vec<TableId>>,
        rates: Vec<f64>,
        hot_tables: &FxHashSet<TableId>,
    ) -> Result<Self> {
        if groups.len() != rates.len() {
            return Err(Error::Config(format!(
                "{} groups but {} rates",
                groups.len(),
                rates.len()
            )));
        }
        let mut table_to_group = vec![None; num_tables];
        for (gid, members) in groups.iter().enumerate() {
            if members.is_empty() {
                return Err(Error::Config(format!("group {gid} is empty")));
            }
            for t in members {
                let slot = table_to_group
                    .get_mut(t.index())
                    .ok_or_else(|| Error::Config(format!("{t} out of range")))?;
                if slot.is_some() {
                    return Err(Error::Config(format!("{t} assigned to two groups")));
                }
                *slot = Some(GroupId::new(gid as u32));
            }
        }
        let table_to_group: Vec<GroupId> = table_to_group
            .into_iter()
            .enumerate()
            .map(|(t, g)| g.ok_or_else(|| Error::Config(format!("table {t} unassigned"))))
            .collect::<Result<_>>()?;
        let hot =
            groups.iter().map(|members| members.iter().any(|t| hot_tables.contains(t))).collect();
        Ok(Self { groups, hot, rates, table_to_group })
    }

    /// Single group holding every table (the ungrouped TPLR baseline).
    pub fn single(num_tables: usize, hot_tables: &FxHashSet<TableId>) -> Self {
        let all: Vec<TableId> = (0..num_tables as u32).map(TableId::new).collect();
        Self::new(num_tables, vec![all], vec![1.0], hot_tables)
            .expect("single grouping is always valid")
    }

    /// One group per table; rate per table supplied by `rate_of`.
    pub fn per_table(
        num_tables: usize,
        hot_tables: &FxHashSet<TableId>,
        mut rate_of: impl FnMut(TableId) -> f64,
    ) -> Self {
        let groups: Vec<Vec<TableId>> =
            (0..num_tables as u32).map(|t| vec![TableId::new(t)]).collect();
        let rates = (0..num_tables as u32).map(|t| rate_of(TableId::new(t))).collect();
        Self::new(num_tables, groups, rates, hot_tables)
            .expect("per-table grouping is always valid")
    }

    /// Clusters tables by access rate with [`dbscan_1d`]; hot tables are
    /// clustered, cold tables merged into one catch-all cold group.
    ///
    /// `eps` is the relative rate distance for DBSCAN (e.g. 0.25 groups
    /// tables within 25 % of each other).
    ///
    /// Errors on a NaN rate (the predictor handed back garbage) — the
    /// caller decides whether to keep the previous grouping or abort,
    /// rather than this panicking inside a replay thread.
    pub fn dbscan(
        num_tables: usize,
        hot_tables: &FxHashSet<TableId>,
        rate_of: impl Fn(TableId) -> f64,
        eps: f64,
    ) -> Result<Self> {
        let mut hot: Vec<(TableId, f64)> = (0..num_tables as u32)
            .map(TableId::new)
            .filter(|t| hot_tables.contains(t))
            .map(|t| (t, rate_of(t)))
            .collect();
        if let Some((t, _)) = hot.iter().find(|(_, r)| r.is_nan()) {
            return Err(Error::Config(format!("NaN access rate for {t}")));
        }
        hot.sort_by(|a, b| a.1.total_cmp(&b.1));
        let labels = dbscan_1d(&hot.iter().map(|(_, r)| r.ln_1p()).collect::<Vec<_>>(), eps, 1);
        let num_clusters = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
        let mut groups: Vec<Vec<TableId>> = vec![Vec::new(); num_clusters];
        let mut sums = vec![0.0f64; num_clusters];
        for ((t, r), l) in hot.iter().zip(&labels) {
            match l {
                Some(l) => {
                    groups[*l].push(*t);
                    sums[*l] += *r;
                }
                // Noise under a stricter min_pts: every table still needs
                // a group, so an outlier becomes a singleton group.
                None => {
                    groups.push(vec![*t]);
                    sums.push(*r);
                }
            }
        }
        let mut rates: Vec<f64> =
            sums.iter().zip(&groups).map(|(s, g)| s / g.len() as f64).collect();
        let cold: Vec<TableId> =
            (0..num_tables as u32).map(TableId::new).filter(|t| !hot_tables.contains(t)).collect();
        if !cold.is_empty() {
            groups.push(cold);
            rates.push(0.0);
        }
        Self::new(num_tables, groups, rates, hot_tables)
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of tables this grouping partitions.
    pub fn num_tables(&self) -> usize {
        self.table_to_group.len()
    }

    /// Group of `table`.
    pub fn group_of(&self, table: TableId) -> GroupId {
        self.table_to_group[table.index()]
    }

    /// Member tables of `group`.
    pub fn members(&self, group: GroupId) -> &[TableId] {
        &self.groups[group.index()]
    }

    /// Whether `group` is hot (replayed in stage 1).
    pub fn is_hot(&self, group: GroupId) -> bool {
        self.hot[group.index()]
    }

    /// Access rate of `group`.
    pub fn rate(&self, group: GroupId) -> f64 {
        self.rates[group.index()]
    }

    /// Overwrites the access rates (adaptive re-grouping between epochs
    /// keeps the structure but refreshes rates from the predictor).
    pub fn set_rates(&mut self, rates: Vec<f64>) -> Result<()> {
        if rates.len() != self.groups.len() {
            return Err(Error::Config("rate vector length mismatch".into()));
        }
        self.rates = rates;
        Ok(())
    }

    /// Group ids of all hot groups.
    pub fn hot_groups(&self) -> Vec<GroupId> {
        (0..self.groups.len() as u32).map(GroupId::new).filter(|g| self.is_hot(*g)).collect()
    }

    /// Group ids of all cold groups.
    pub fn cold_groups(&self) -> Vec<GroupId> {
        (0..self.groups.len() as u32).map(GroupId::new).filter(|g| !self.is_hot(*g)).collect()
    }

    /// Groups accessed by a query footprint.
    pub fn groups_of(&self, tables: &[TableId]) -> Vec<GroupId> {
        let mut gids: Vec<GroupId> = tables.iter().map(|t| self.group_of(*t)).collect();
        gids.sort();
        gids.dedup();
        gids
    }
}

/// 1-D DBSCAN over sorted points: returns a cluster label per point,
/// `None` for noise.
///
/// The real density rule, not just gap splitting: a point is a *core*
/// when at least `min_pts` points (itself included) lie within `eps` of
/// it. Cores within `eps` of each other chain into one cluster; a
/// non-core point joins its nearest core's cluster when one is within
/// `eps` (a *border* point) and is labelled `None` (noise) otherwise.
/// With `min_pts <= 1` every point is core and the rule degenerates to
/// splitting on gaps wider than `eps` — the previous behaviour, which
/// silently ignored `min_pts` and glued sparse outliers into clusters.
pub fn dbscan_1d(sorted_points: &[f64], eps: f64, min_pts: usize) -> Vec<Option<usize>> {
    let n = sorted_points.len();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    // Two-pointer eps-neighbourhood counts over the sorted input.
    let mut core = vec![false; n];
    let (mut lo, mut hi) = (0usize, 0usize);
    for i in 0..n {
        while sorted_points[i] - sorted_points[lo] > eps {
            lo += 1;
        }
        while hi + 1 < n && sorted_points[hi + 1] - sorted_points[i] <= eps {
            hi += 1;
        }
        core[i] = hi - lo + 1 >= min_pts.max(1);
    }
    // Chain density-connected cores: consecutive cores at most eps apart
    // share a cluster.
    let mut next = 0usize;
    let mut prev_core: Option<usize> = None;
    for i in 0..n {
        if !core[i] {
            continue;
        }
        match prev_core {
            Some(p) if sorted_points[i] - sorted_points[p] <= eps => labels[i] = labels[p],
            _ => {
                labels[i] = Some(next);
                next += 1;
            }
        }
        prev_core = Some(i);
    }
    // Border points adopt the nearest in-range core's label; the rest
    // stay noise.
    for i in 0..n {
        if core[i] {
            continue;
        }
        let left = (0..i)
            .rev()
            .take_while(|&j| sorted_points[i] - sorted_points[j] <= eps)
            .find(|&j| core[j]);
        let right = (i + 1..n)
            .take_while(|&j| sorted_points[j] - sorted_points[i] <= eps)
            .find(|&j| core[j]);
        labels[i] = match (left, right) {
            (Some(l), Some(r)) => {
                if sorted_points[i] - sorted_points[l] <= sorted_points[r] - sorted_points[i] {
                    labels[l]
                } else {
                    labels[r]
                }
            }
            (Some(l), None) => labels[l],
            (None, Some(r)) => labels[r],
            (None, None) => None,
        };
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hotset(ids: &[u32]) -> FxHashSet<TableId> {
        ids.iter().map(|i| TableId::new(*i)).collect()
    }

    #[test]
    fn explicit_grouping_maps_tables() {
        let g = TableGrouping::new(
            4,
            vec![
                vec![TableId::new(0), TableId::new(2)],
                vec![TableId::new(1)],
                vec![TableId::new(3)],
            ],
            vec![10.0, 5.0, 0.0],
            &hotset(&[0, 1]),
        )
        .unwrap();
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.group_of(TableId::new(2)), GroupId::new(0));
        assert!(g.is_hot(GroupId::new(0)));
        assert!(g.is_hot(GroupId::new(1)));
        assert!(!g.is_hot(GroupId::new(2)));
        assert_eq!(g.hot_groups().len(), 2);
        assert_eq!(g.cold_groups(), vec![GroupId::new(2)]);
    }

    #[test]
    fn rejects_missing_and_duplicate_tables() {
        // Table 1 unassigned.
        assert!(
            TableGrouping::new(2, vec![vec![TableId::new(0)]], vec![1.0], &hotset(&[]),).is_err()
        );
        // Table 0 twice.
        assert!(TableGrouping::new(
            2,
            vec![vec![TableId::new(0)], vec![TableId::new(0), TableId::new(1)]],
            vec![1.0, 1.0],
            &hotset(&[]),
        )
        .is_err());
        // Out-of-range table.
        assert!(TableGrouping::new(
            1,
            vec![vec![TableId::new(0), TableId::new(5)]],
            vec![1.0],
            &hotset(&[]),
        )
        .is_err());
    }

    #[test]
    fn single_and_per_table_groupings() {
        let s = TableGrouping::single(5, &hotset(&[1]));
        assert_eq!(s.num_groups(), 1);
        assert!(s.is_hot(GroupId::new(0)));

        let p = TableGrouping::per_table(3, &hotset(&[2]), |t| t.raw() as f64);
        assert_eq!(p.num_groups(), 3);
        assert_eq!(p.rate(GroupId::new(2)), 2.0);
        assert_eq!(p.hot_groups(), vec![GroupId::new(2)]);
    }

    #[test]
    fn dbscan_splits_on_gaps() {
        let labels = dbscan_1d(&[1.0, 1.1, 1.2, 5.0, 5.1, 20.0], 0.5, 1);
        assert_eq!(
            labels,
            vec![Some(0), Some(0), Some(0), Some(1), Some(1), Some(2)],
            "min_pts=1 keeps the pure gap-splitting behaviour"
        );
    }

    #[test]
    fn dbscan_min_pts_marks_sparse_points_as_noise() {
        // Regression: min_pts used to be silently ignored, so the lone
        // point at 20.0 was emitted as its own "cluster" and a straggler
        // at 5.8 glued onto the {5.0, 5.1, 5.2} cluster even under a
        // density requirement it cannot meet.
        let pts = [1.0, 1.1, 1.2, 5.0, 5.1, 5.2, 5.8, 20.0];
        let labels = dbscan_1d(&pts, 0.5, 3);
        // Dense triplets survive as clusters.
        assert_eq!(&labels[..3], &[Some(0), Some(0), Some(0)]);
        assert_eq!(&labels[3..6], &[Some(1), Some(1), Some(1)]);
        // 5.8 is no core (only {5.8} within 0.5... plus 5.3? no: [5.3,6.3]
        // holds just itself) but sits within eps of nothing core-like
        // either: nearest core 5.2 is 0.6 away -> noise.
        assert_eq!(labels[6], None, "straggler must not join the cluster");
        // The isolated point has a 1-point neighbourhood -> noise.
        assert_eq!(labels[7], None, "lone outlier must be noise, not a cluster");

        // A border point (non-core, but within eps of a core) still joins:
        // 1.55 sees only {1.1, 1.55} in its eps-ball (not core), yet the
        // core 1.1 reaches it.
        let pts = [1.0, 1.05, 1.1, 1.55];
        let labels = dbscan_1d(&pts, 0.5, 3);
        assert_eq!(labels, vec![Some(0), Some(0), Some(0), Some(0)], "border point joins");

        // Two dense runs bridged only by a non-core point stay separate
        // clusters; the bridge becomes a border of the nearer one. (2.0
        // sees just {1.3, 2.0, 2.7} — three points, below min_pts=4 — so
        // it cannot density-connect the runs.)
        let pts = [1.0, 1.1, 1.2, 1.3, 2.0, 2.7, 2.8, 2.9, 3.0];
        let labels = dbscan_1d(&pts, 0.7, 4);
        assert_eq!(&labels[..4], &[Some(0), Some(0), Some(0), Some(0)]);
        assert_eq!(&labels[5..], &[Some(1), Some(1), Some(1), Some(1)]);
        assert_eq!(labels[4], Some(0), "bridge adopts its nearest core's cluster");
    }

    #[test]
    fn dbscan_grouping_clusters_similar_rates() {
        // Tables 0-2 hot with similar rates, 3 hot with a very different
        // rate, 4-5 cold.
        let rates = [10.0, 11.0, 10.5, 500.0, 0.0, 0.0];
        let g =
            TableGrouping::dbscan(6, &hotset(&[0, 1, 2, 3]), |t| rates[t.index()], 0.3).unwrap();
        // Expect: one cluster {0,1,2}, one {3}, one cold {4,5}.
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.group_of(TableId::new(0)), g.group_of(TableId::new(2)));
        assert_ne!(g.group_of(TableId::new(0)), g.group_of(TableId::new(3)));
        let cold_gid = g.group_of(TableId::new(4));
        assert!(!g.is_hot(cold_gid));
        assert_eq!(g.members(cold_gid).len(), 2);
    }

    #[test]
    fn groups_of_dedups() {
        let g = TableGrouping::single(4, &hotset(&[0]));
        let gids = g.groups_of(&[TableId::new(0), TableId::new(3), TableId::new(1)]);
        assert_eq!(gids.len(), 1);
    }

    #[test]
    fn set_rates_validates_length() {
        let mut g = TableGrouping::single(2, &hotset(&[]));
        assert!(g.set_rates(vec![1.0, 2.0]).is_err());
        assert!(g.set_rates(vec![3.0]).is_ok());
        assert_eq!(g.rate(GroupId::new(0)), 3.0);
    }
}
