//! Replay metrics: throughput, phase time breakdown (Table II), and
//! stage-level replay times (Figures 8b/9b).

use std::time::Duration;

/// Measurements collected by one engine run.
#[derive(Debug, Clone, Default)]
pub struct ReplayMetrics {
    /// Engine name ("aets", "atr", "c5", "tplr", "serial").
    pub engine: &'static str,
    /// Transactions replayed.
    pub txns: usize,
    /// DML entries replayed.
    pub entries: usize,
    /// Encoded log bytes processed.
    pub bytes: u64,
    /// Epochs processed.
    pub epochs: usize,
    /// End-to-end wall time of the replay.
    pub wall: Duration,
    /// Serial dispatcher busy time (metadata or full-image parse + route).
    pub dispatch_busy: Duration,
    /// Aggregate replay-worker busy time (phase 1 / apply).
    pub replay_busy: Duration,
    /// Aggregate commit-thread busy time (phase 2 / visibility publish).
    pub commit_busy: Duration,
    /// Wall time spent in stage 1 (hot groups). Zero for engines without
    /// stages.
    pub stage1_wall: Duration,
    /// Wall time spent in stage 2 (cold groups).
    pub stage2_wall: Duration,
    /// Phase-1 cell buffers served from the per-group free-list pools
    /// (zero for engines without cell pooling).
    pub cell_buffers_recycled: u64,
    /// Phase-1 cell buffers that had to be freshly allocated.
    pub cell_buffers_allocated: u64,
}

impl ReplayMetrics {
    /// Replayed entries per second of wall time.
    pub fn entries_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.entries as f64 / s
        }
    }

    /// Replayed transactions per second of wall time.
    pub fn txns_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.txns as f64 / s
        }
    }

    /// The Table II breakdown: fractions of busy time spent in
    /// (dispatch, replay, commit). Sums to 1 when any work was done.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let d = self.dispatch_busy.as_secs_f64();
        let r = self.replay_busy.as_secs_f64();
        let c = self.commit_busy.as_secs_f64();
        let total = d + r + c;
        if total <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (d / total, r / total, c / total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_wall() {
        let m = ReplayMetrics::default();
        assert_eq!(m.entries_per_sec(), 0.0);
        assert_eq!(m.txns_per_sec(), 0.0);
        assert_eq!(m.breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn breakdown_normalizes() {
        let m = ReplayMetrics {
            dispatch_busy: Duration::from_millis(10),
            replay_busy: Duration::from_millis(80),
            commit_busy: Duration::from_millis(10),
            ..Default::default()
        };
        let (d, r, c) = m.breakdown();
        assert!((d - 0.1).abs() < 1e-9);
        assert!((r - 0.8).abs() < 1e-9);
        assert!((c - 0.1).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_entries_over_wall() {
        let m = ReplayMetrics {
            entries: 1000,
            txns: 100,
            wall: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(m.entries_per_sec(), 500.0);
        assert_eq!(m.txns_per_sec(), 50.0);
    }
}
