//! Replay metrics: throughput, phase time breakdown (Table II), and
//! stage-level replay times (Figures 8b/9b).

use aets_memtable::GcStats;
use aets_telemetry::{names, TelemetrySnapshot};
use std::time::Duration;

/// Measurements collected by one engine run.
#[derive(Debug, Clone, Default)]
pub struct ReplayMetrics {
    /// Engine name ("aets", "atr", "c5", "tplr", "serial").
    pub engine: &'static str,
    /// Transactions replayed.
    pub txns: usize,
    /// DML entries replayed.
    pub entries: usize,
    /// Encoded log bytes processed.
    pub bytes: u64,
    /// Epochs processed.
    pub epochs: usize,
    /// End-to-end wall time of the replay.
    pub wall: Duration,
    /// Serial dispatcher busy time (metadata or full-image parse + route).
    pub dispatch_busy: Duration,
    /// Aggregate replay-worker busy time (phase 1 / apply).
    pub replay_busy: Duration,
    /// Aggregate commit-thread busy time (phase 2 / visibility publish).
    pub commit_busy: Duration,
    /// Wall time spent in stage 1 (hot groups). Zero for engines without
    /// stages.
    pub stage1_wall: Duration,
    /// Wall time spent in stage 2 (cold groups).
    pub stage2_wall: Duration,
    /// Phase-1 cell buffers served from the per-group free-list pools
    /// (zero for engines without cell pooling).
    pub cell_buffers_recycled: u64,
    /// Phase-1 cell buffers that had to be freshly allocated.
    pub cell_buffers_allocated: u64,
    /// Ingest resync: epoch re-requests issued after a failed delivery.
    pub ingest_retries: u64,
    /// Ingest resync: deliveries rejected by the epoch frame CRC.
    pub checksum_failures: u64,
    /// Ingest resync: deliveries rejected as out-of-sequence
    /// (duplicate / reordered / dropped epochs).
    pub epoch_gaps: u64,
    /// Ingest resync: fetches that found the epoch not yet available.
    pub ingest_stalls: u64,
    /// Groups quarantined during replay (board indices, ascending). A
    /// quarantined group's `tg_cmt_ts` is frozen at its last consistent
    /// commit and `global_cmt_ts` stops advancing, while healthy groups
    /// keep replaying. Empty in a healthy run.
    pub quarantined_groups: Vec<usize>,
    /// Aggregate version-chain GC statistics across passes.
    pub gc: GcStats,
    /// Number of GC passes run.
    pub gc_passes: u64,
    /// Checkpoints written durably.
    pub checkpoints_written: u64,
    /// Checkpoint opportunities skipped because a group was quarantined:
    /// advancing the checkpoint (and truncating the WAL) past a frozen
    /// group would lose its unreplayed suffix forever.
    pub checkpoints_skipped_degraded: u64,
    /// Epochs appended durably to the WAL segment store.
    pub wal_epochs_appended: u64,
    /// WAL segments retired (deleted) past the checkpoint watermark.
    pub wal_segments_retired: u64,
    /// Checkpoint manifests skipped at recovery because they failed
    /// validation (torn write, checksum mismatch) before an older valid
    /// one was found.
    pub manifest_fallbacks: u64,
    /// Epochs re-replayed from the WAL suffix during recovery (bounded by
    /// the epochs since the last checkpoint, not the full history).
    pub recovery_suffix_epochs: u64,
    /// Fleet: failovers completed (replacement shards bootstrapped and
    /// rejoined the routing table). Zero outside fleet runs.
    pub fleet_failovers: u64,
    /// Fleet: coordinator heartbeat intervals shards failed to report in.
    pub fleet_heartbeats_missed: u64,
    /// Fleet: queries routed to shards (one per fanned-out sub-query).
    pub fleet_queries_routed: u64,
    /// Fleet: routed queries answered partially because a shard was
    /// unavailable.
    pub fleet_queries_partial: u64,
    /// Transport: sender sessions (re-)established over TCP.
    pub net_connects: u64,
    /// Transport: reconnects after a broken session.
    pub net_reconnects: u64,
    /// Transport: handshakes whose RESUME point rewound the send cursor.
    pub net_resyncs: u64,
    /// Transport: HELLO/RESUME handshakes completed on the receiver.
    pub net_handshakes: u64,
    /// Transport: bytes the sender wrote to the wire.
    pub net_bytes_sent: u64,
    /// Transport: bytes the receiver read off the wire.
    pub net_bytes_recv: u64,
    /// Transport: epoch frames shipped (including resync re-ships).
    pub net_epochs_shipped: u64,
    /// Transport: duplicate epoch deliveries dropped by receiver dedup.
    pub net_epochs_deduped: u64,
    /// Transport: frames rejected at decode (each tears a session down).
    pub net_frame_errors: u64,
    /// Adaptive control: `Regroup` commands applied at epoch boundaries.
    pub regroups_applied: u64,
    /// Adaptive control: `SetThreadSplit` commands applied at epoch
    /// boundaries.
    pub resplits_applied: u64,
    /// Adaptive control: reconfigure commands dropped at the boundary
    /// (e.g. a regroup refused while a group is quarantined).
    pub reconf_rejected: u64,
}

impl ReplayMetrics {
    /// Replayed entries per second of wall time.
    pub fn entries_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.entries as f64 / s
        }
    }

    /// Replayed transactions per second of wall time.
    pub fn txns_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.txns as f64 / s
        }
    }

    /// Whether replay is in degraded mode: at least one group has been
    /// quarantined and its watermark frozen.
    pub fn degraded(&self) -> bool {
        !self.quarantined_groups.is_empty()
    }

    /// Total faulted deliveries the ingest resync loop observed.
    pub fn ingest_faults(&self) -> u64 {
        self.checksum_failures + self.epoch_gaps + self.ingest_stalls
    }

    /// Accumulates another run's counters into this one: sums every
    /// additive counter and duration except `wall` (the caller owns
    /// end-to-end wall time) and `engine` (identity, not a counter), and
    /// unions the quarantine sets (sorted, deduped). The union matters
    /// when runs from *different* engine instances are absorbed — e.g. a
    /// restart-recovery run absorbed into the pre-crash run: each engine
    /// only reports its own ledger, so replacing would silently drop
    /// groups quarantined before the restart.
    pub fn absorb(&mut self, other: &ReplayMetrics) {
        self.txns += other.txns;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.epochs += other.epochs;
        self.dispatch_busy += other.dispatch_busy;
        self.replay_busy += other.replay_busy;
        self.commit_busy += other.commit_busy;
        self.stage1_wall += other.stage1_wall;
        self.stage2_wall += other.stage2_wall;
        self.cell_buffers_recycled += other.cell_buffers_recycled;
        self.cell_buffers_allocated += other.cell_buffers_allocated;
        self.ingest_retries += other.ingest_retries;
        self.checksum_failures += other.checksum_failures;
        self.epoch_gaps += other.epoch_gaps;
        self.ingest_stalls += other.ingest_stalls;
        self.quarantined_groups.extend_from_slice(&other.quarantined_groups);
        self.quarantined_groups.sort_unstable();
        self.quarantined_groups.dedup();
        self.gc.merge(other.gc);
        self.gc_passes += other.gc_passes;
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoints_skipped_degraded += other.checkpoints_skipped_degraded;
        self.wal_epochs_appended += other.wal_epochs_appended;
        self.wal_segments_retired += other.wal_segments_retired;
        self.manifest_fallbacks += other.manifest_fallbacks;
        self.recovery_suffix_epochs += other.recovery_suffix_epochs;
        self.fleet_failovers += other.fleet_failovers;
        self.fleet_heartbeats_missed += other.fleet_heartbeats_missed;
        self.fleet_queries_routed += other.fleet_queries_routed;
        self.fleet_queries_partial += other.fleet_queries_partial;
        self.net_connects += other.net_connects;
        self.net_reconnects += other.net_reconnects;
        self.net_resyncs += other.net_resyncs;
        self.net_handshakes += other.net_handshakes;
        self.net_bytes_sent += other.net_bytes_sent;
        self.net_bytes_recv += other.net_bytes_recv;
        self.net_epochs_shipped += other.net_epochs_shipped;
        self.net_epochs_deduped += other.net_epochs_deduped;
        self.net_frame_errors += other.net_frame_errors;
        self.regroups_applied += other.regroups_applied;
        self.resplits_applied += other.resplits_applied;
        self.reconf_rejected += other.reconf_rejected;
    }

    /// Rebuilds the counter view of a run from a telemetry registry
    /// snapshot — the projection the smoke test cross-checks against the
    /// per-run `ReplayMetrics` the engine returns directly.
    ///
    /// Projectable fields are exactly the ones the registry integrates:
    /// throughput counters, busy-time counters, the dispatch/stage
    /// histogram sums, ingest-resync and durability counters, pool hit
    /// counts, and the `fleet_*` / `net_*` counter families. Not
    /// projectable (left at their defaults): `wall` (the
    /// registry holds no end-to-end clock), `engine`, `gc` node-level
    /// stats (only pass/pruned totals are exported), and the
    /// `quarantined_groups` *indices* (the registry exports the count
    /// gauge; the index set lives in events and on the engine).
    pub fn project(snap: &TelemetrySnapshot) -> ReplayMetrics {
        let hist_sum = |name: &str| {
            Duration::from_micros(
                snap.histogram_summary_all(name).map(|s| s.sum_us).unwrap_or_default(),
            )
        };
        ReplayMetrics {
            txns: snap.counter_total(names::TXNS) as usize,
            entries: snap.counter_total(names::ENTRIES) as usize,
            bytes: snap.counter_total(names::BYTES),
            epochs: snap.counter_total(names::EPOCHS) as usize,
            dispatch_busy: hist_sum(names::DISPATCH_US),
            replay_busy: Duration::from_micros(snap.counter_total(names::REPLAY_BUSY_US)),
            commit_busy: Duration::from_micros(snap.counter_total(names::COMMIT_BUSY_US)),
            stage1_wall: hist_sum(names::STAGE1_US),
            stage2_wall: hist_sum(names::STAGE2_US),
            cell_buffers_recycled: snap.counter_total(names::CELL_RECYCLED),
            cell_buffers_allocated: snap.counter_total(names::CELL_ALLOCATED),
            ingest_retries: snap.counter_total(names::INGEST_RETRIES),
            checksum_failures: snap.counter_total(names::CHECKSUM_FAILURES),
            epoch_gaps: snap.counter_total(names::EPOCH_GAPS),
            ingest_stalls: snap.counter_total(names::INGEST_STALLS),
            gc_passes: snap.counter_total(names::GC_PASSES),
            checkpoints_written: snap.counter_total(names::CHECKPOINTS_WRITTEN),
            checkpoints_skipped_degraded: snap.counter_total(names::CHECKPOINTS_SKIPPED),
            wal_epochs_appended: snap.counter_total(names::WAL_EPOCHS_APPENDED),
            wal_segments_retired: snap.counter_total(names::WAL_SEGMENTS_RETIRED),
            manifest_fallbacks: snap.counter_total(names::MANIFEST_FALLBACKS),
            recovery_suffix_epochs: snap.counter_total(names::RECOVERY_SUFFIX_EPOCHS),
            fleet_failovers: snap.counter_total(names::FLEET_FAILOVERS),
            fleet_heartbeats_missed: snap.counter_total(names::FLEET_HEARTBEATS_MISSED),
            fleet_queries_routed: snap.counter_total(names::FLEET_QUERIES_ROUTED),
            fleet_queries_partial: snap.counter_total(names::FLEET_QUERIES_PARTIAL),
            net_connects: snap.counter_total(names::NET_CONNECTS),
            net_reconnects: snap.counter_total(names::NET_RECONNECTS),
            net_resyncs: snap.counter_total(names::NET_RESYNCS),
            net_handshakes: snap.counter_total(names::NET_HANDSHAKES),
            net_bytes_sent: snap.counter_total(names::NET_BYTES_SENT),
            net_bytes_recv: snap.counter_total(names::NET_BYTES_RECV),
            net_epochs_shipped: snap.counter_total(names::NET_EPOCHS_SHIPPED),
            net_epochs_deduped: snap.counter_total(names::NET_EPOCHS_DEDUPED),
            net_frame_errors: snap.counter_total(names::NET_FRAME_ERRORS),
            regroups_applied: snap.counter_total(names::ADAPT_REGROUPS),
            resplits_applied: snap.counter_total(names::ADAPT_RESPLITS),
            reconf_rejected: snap.counter_total(names::ADAPT_REJECTED),
            ..Default::default()
        }
    }

    /// The Table II breakdown: fractions of busy time spent in
    /// (dispatch, replay, commit). Sums to 1 when any work was done.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let d = self.dispatch_busy.as_secs_f64();
        let r = self.replay_busy.as_secs_f64();
        let c = self.commit_busy.as_secs_f64();
        let total = d + r + c;
        if total <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (d / total, r / total, c / total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_wall() {
        let m = ReplayMetrics::default();
        assert_eq!(m.entries_per_sec(), 0.0);
        assert_eq!(m.txns_per_sec(), 0.0);
        assert_eq!(m.breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn breakdown_normalizes() {
        let m = ReplayMetrics {
            dispatch_busy: Duration::from_millis(10),
            replay_busy: Duration::from_millis(80),
            commit_busy: Duration::from_millis(10),
            ..Default::default()
        };
        let (d, r, c) = m.breakdown();
        assert!((d - 0.1).abs() < 1e-9);
        assert!((r - 0.8).abs() < 1e-9);
        assert!((c - 0.1).abs() < 1e-9);
    }

    #[test]
    fn degraded_mode_and_fault_counters() {
        let mut m = ReplayMetrics::default();
        assert!(!m.degraded());
        assert_eq!(m.ingest_faults(), 0);
        m.quarantined_groups.push(2);
        m.checksum_failures = 3;
        m.epoch_gaps = 1;
        m.ingest_stalls = 2;
        assert!(m.degraded());
        assert_eq!(m.ingest_faults(), 6);
    }

    #[test]
    fn absorb_unions_quarantine_sets() {
        // Absorbing runs that each saw a different quarantined group must
        // keep both; a replace would drop the pre-restart set.
        let mut total =
            ReplayMetrics { quarantined_groups: vec![3, 1], txns: 10, ..Default::default() };
        let run = ReplayMetrics { quarantined_groups: vec![2, 1], txns: 5, ..Default::default() };
        total.absorb(&run);
        assert_eq!(total.quarantined_groups, vec![1, 2, 3], "sorted deduped union");
        assert_eq!(total.txns, 15);
        // Absorbing a healthy run must not clear degraded state.
        total.absorb(&ReplayMetrics::default());
        assert_eq!(total.quarantined_groups, vec![1, 2, 3]);
        assert!(total.degraded());
    }

    #[test]
    fn project_rebuilds_counters_from_a_snapshot() {
        use aets_telemetry::{names, Telemetry};
        let tel = Telemetry::new();
        tel.registry().counter(names::TXNS).add(42);
        tel.registry().counter(names::EPOCHS).add(3);
        tel.registry().counter(names::REPLAY_BUSY_US).add(1_500);
        tel.registry().counter(names::CHECKPOINTS_WRITTEN).add(2);
        tel.registry().histogram(names::DISPATCH_US).record_micros(250);
        let m = ReplayMetrics::project(&tel.snapshot());
        assert_eq!(m.txns, 42);
        assert_eq!(m.epochs, 3);
        assert_eq!(m.replay_busy, Duration::from_micros(1_500));
        assert_eq!(m.checkpoints_written, 2);
        assert_eq!(m.dispatch_busy, Duration::from_micros(250));
        assert_eq!(m.wall, Duration::ZERO, "wall is not projectable");
    }

    #[test]
    fn project_covers_the_fleet_and_net_families() {
        use aets_telemetry::{names, Telemetry};
        let tel = Telemetry::new();
        tel.registry().counter(names::FLEET_FAILOVERS).add(2);
        tel.registry().counter(names::FLEET_HEARTBEATS_MISSED).add(5);
        tel.registry().counter(names::FLEET_QUERIES_ROUTED).add(30);
        tel.registry().counter(names::FLEET_QUERIES_PARTIAL).add(4);
        tel.registry().counter(names::NET_CONNECTS).add(3);
        tel.registry().counter(names::NET_RECONNECTS).add(2);
        tel.registry().counter(names::NET_RESYNCS).add(1);
        tel.registry().counter(names::NET_HANDSHAKES).add(3);
        tel.registry().counter(names::NET_BYTES_SENT).add(9_000);
        tel.registry().counter(names::NET_BYTES_RECV).add(8_500);
        tel.registry().counter(names::NET_EPOCHS_SHIPPED).add(64);
        tel.registry().counter(names::NET_EPOCHS_DEDUPED).add(6);
        tel.registry().counter(names::NET_FRAME_ERRORS).add(7);
        let m = ReplayMetrics::project(&tel.snapshot());
        assert_eq!(m.fleet_failovers, 2);
        assert_eq!(m.fleet_heartbeats_missed, 5);
        assert_eq!(m.fleet_queries_routed, 30);
        assert_eq!(m.fleet_queries_partial, 4);
        assert_eq!(m.net_connects, 3);
        assert_eq!(m.net_reconnects, 2);
        assert_eq!(m.net_resyncs, 1);
        assert_eq!(m.net_handshakes, 3);
        assert_eq!(m.net_bytes_sent, 9_000);
        assert_eq!(m.net_bytes_recv, 8_500);
        assert_eq!(m.net_epochs_shipped, 64);
        assert_eq!(m.net_epochs_deduped, 6);
        assert_eq!(m.net_frame_errors, 7);

        // Absorb sums the new families like any other counter.
        let mut total = m.clone();
        total.absorb(&m);
        assert_eq!(total.net_epochs_shipped, 128);
        assert_eq!(total.fleet_failovers, 4);
    }

    #[test]
    fn throughput_is_entries_over_wall() {
        let m = ReplayMetrics {
            entries: 1000,
            txns: 100,
            wall: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(m.entries_per_sec(), 500.0);
        assert_eq!(m.txns_per_sec(), 50.0);
    }
}
