//! Log parser and dispatcher (component ① of the AETS architecture).
//!
//! The dispatcher scans an encoded epoch *metadata-only* (it never decodes
//! data images — that is the workers' job in phase 1), finds transaction
//! boundaries from BEGIN/COMMIT markers, and splits every transaction into
//! per-group *mini-transactions*: the subset of its entries that modify
//! tables of one group. Each group's mini-transactions, in primary commit
//! order, are simultaneously that group's `commit_order_queue`.
//!
//! Upstream of dispatch sits the *ingest resync loop* ([`ingest_epoch`]):
//! every delivery from the replication feed is checked against its epoch
//! frame CRC and expected sequence number, and a failed delivery (torn
//! tail, bit flip, duplicate/reordered/dropped epoch, stall) is
//! re-requested with bounded exponential backoff before the epoch is
//! allowed anywhere near the dispatcher.

use crate::grouping::TableGrouping;
use aets_common::{Error, GroupId, Result, Timestamp, TxnId};
use aets_wal::{EncodedEpoch, EpochSource, MetaScanner};
use bytes::Bytes;
use std::ops::Range;
use std::time::Duration;

/// The part of one transaction that lands in one table group.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniTxn {
    /// Owning transaction.
    pub txn_id: TxnId,
    /// Commit timestamp of the owning transaction.
    pub commit_ts: Timestamp,
    /// Byte ranges of this group's DML entries within the epoch buffer,
    /// in LSN order. Empty for heartbeat placements.
    pub entry_ranges: Vec<Range<usize>>,
    /// Total encoded bytes of those entries (the mini-txn's share of
    /// `n_gi`).
    pub bytes: u64,
}

/// All work routed to one group for one epoch.
#[derive(Debug, Clone, Default)]
pub struct GroupWork {
    /// Mini-transactions in primary commit order (the group's
    /// `commit_order_queue`).
    pub mini_txns: Vec<MiniTxn>,
    /// Sum of entry bytes (`n_gi` for the allocation solver).
    pub bytes: u64,
    /// Total entries.
    pub entries: usize,
}

/// A dispatched epoch: shared byte buffer plus per-group work lists.
#[derive(Debug, Clone)]
pub struct DispatchedEpoch {
    /// The epoch's encoded bytes (entries are decoded lazily from ranges).
    pub bytes: Bytes,
    /// Work per group, indexed by `GroupId`.
    pub groups: Vec<GroupWork>,
    /// Commit timestamp of the epoch's last transaction.
    pub max_commit_ts: Timestamp,
    /// Number of transactions in the epoch.
    pub txn_count: usize,
}

impl DispatchedEpoch {
    /// Work of `group`.
    pub fn group(&self, g: GroupId) -> &GroupWork {
        &self.groups[g.index()]
    }

    /// Per-group pending byte volumes (input to the allocation solver).
    pub fn pending_bytes(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.bytes).collect()
    }
}

/// Bounded-retry policy of the ingest resync loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Re-requests allowed per epoch before the delivery error becomes
    /// fatal (0 disables resync entirely).
    pub max_retries: u32,
    /// Backoff before the first re-request; doubles per attempt
    /// (exponential), capped at [`RetryPolicy::max_backoff_us`].
    pub base_backoff_us: u64,
    /// Upper bound on a single backoff sleep.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3, base_backoff_us: 100, max_backoff_us: 10_000 }
    }
}

impl RetryPolicy {
    /// Backoff before re-request number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let us = self
            .base_backoff_us
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.max_backoff_us);
        Duration::from_micros(us)
    }
}

/// Counters produced by the ingest resync loop, merged into
/// `ReplayMetrics` so recovery activity is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Epoch re-requests issued.
    pub retries: u64,
    /// Deliveries rejected by the epoch frame CRC.
    pub checksum_failures: u64,
    /// Deliveries rejected as out-of-sequence (duplicate / reordered /
    /// dropped epochs).
    pub epoch_gaps: u64,
    /// Fetches that found the epoch not yet available.
    pub stalls: u64,
}

impl IngestStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &IngestStats) {
        self.retries += other.retries;
        self.checksum_failures += other.checksum_failures;
        self.epoch_gaps += other.epoch_gaps;
        self.stalls += other.stalls;
    }
}

/// Fetches epoch `seq` from `source`, verifying the frame CRC and the
/// sequence number, re-requesting with exponential backoff on failure.
///
/// Returns the verified epoch, or the last delivery error once
/// `policy.max_retries` re-requests are exhausted — at which point the
/// stream cannot make progress and the caller must surface the error.
pub fn ingest_epoch(
    source: &mut dyn EpochSource,
    seq: u64,
    policy: &RetryPolicy,
    stats: &mut IngestStats,
) -> Result<EncodedEpoch> {
    let mut last_err = Error::Protocol(format!("epoch {seq} never delivered"));
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            stats.retries += 1;
            std::thread::sleep(policy.backoff(attempt));
        }
        match source.fetch(seq, attempt) {
            None => {
                stats.stalls += 1;
                last_err = Error::Protocol(format!("epoch {seq} stalled in the feed"));
            }
            Some(epoch) => {
                if let Err(e) = epoch.verify() {
                    stats.checksum_failures += 1;
                    last_err = e;
                    continue;
                }
                if epoch.id.raw() != seq {
                    stats.epoch_gaps += 1;
                    last_err = Error::EpochGap { expected: seq, got: epoch.id.raw() };
                    continue;
                }
                return Ok(epoch);
            }
        }
    }
    Err(last_err)
}

/// Scans `epoch` and routes every DML entry to its table group.
///
/// Heartbeat transactions (BEGIN/COMMIT with no DML) are placed into
/// *every* group as empty mini-transactions, per Section V-B, so each
/// group's commit timestamp advances even when the group gets no writes.
pub fn dispatch_epoch(epoch: &EncodedEpoch, grouping: &TableGrouping) -> Result<DispatchedEpoch> {
    let mut groups: Vec<GroupWork> = vec![GroupWork::default(); grouping.num_groups()];
    // Per-group index of the open mini-txn, or usize::MAX.
    let mut open_slots: Vec<usize> = vec![usize::MAX; grouping.num_groups()];
    let mut open_txn: Option<TxnId> = None;
    let mut txn_count = 0usize;
    let mut txn_had_dml = false;

    for item in MetaScanner::new(epoch.bytes.clone()) {
        let (meta, range) = item?;
        match meta.table {
            None => {
                // BEGIN or COMMIT. The scanner cannot distinguish them, but
                // the protocol can: a marker for a txn we have not opened
                // is a BEGIN; for the open txn it is the COMMIT.
                match open_txn {
                    None => {
                        open_txn = Some(meta.txn_id);
                        txn_had_dml = false;
                        open_slots.fill(usize::MAX);
                    }
                    Some(t) if t == meta.txn_id => {
                        // COMMIT: stamp commit timestamps; place heartbeats.
                        let commit_ts = meta.ts;
                        if txn_had_dml {
                            for (gid, slot) in open_slots.iter().enumerate() {
                                if *slot != usize::MAX {
                                    let mt = &mut groups[gid].mini_txns[*slot];
                                    mt.commit_ts = commit_ts;
                                }
                            }
                        } else {
                            for g in groups.iter_mut() {
                                g.mini_txns.push(MiniTxn {
                                    txn_id: meta.txn_id,
                                    commit_ts,
                                    entry_ranges: Vec::new(),
                                    bytes: 0,
                                });
                            }
                        }
                        open_txn = None;
                        txn_count += 1;
                    }
                    Some(t) => {
                        return Err(Error::Protocol(format!(
                            "marker for {} inside transaction {}",
                            meta.txn_id, t
                        )));
                    }
                }
            }
            Some(table) => {
                let Some(t) = open_txn else {
                    return Err(Error::Protocol(format!(
                        "DML of {} outside BEGIN/COMMIT",
                        meta.txn_id
                    )));
                };
                if t != meta.txn_id {
                    return Err(Error::Protocol(format!(
                        "DML of {} inside transaction {t}",
                        meta.txn_id
                    )));
                }
                txn_had_dml = true;
                let gid = grouping.group_of(table).index();
                let len = (range.end - range.start) as u64;
                if open_slots[gid] == usize::MAX {
                    open_slots[gid] = groups[gid].mini_txns.len();
                    groups[gid].mini_txns.push(MiniTxn {
                        txn_id: t,
                        commit_ts: Timestamp::ZERO,
                        entry_ranges: Vec::new(),
                        bytes: 0,
                    });
                }
                let mt = &mut groups[gid].mini_txns[open_slots[gid]];
                mt.entry_ranges.push(range);
                mt.bytes += len;
                groups[gid].bytes += len;
                groups[gid].entries += 1;
            }
        }
    }
    if let Some(t) = open_txn {
        return Err(Error::Protocol(format!("transaction {t} never committed")));
    }

    Ok(DispatchedEpoch {
        bytes: epoch.bytes.clone(),
        groups,
        max_commit_ts: epoch.max_commit_ts,
        txn_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{ColumnId, DmlOp, EpochId, FxHashSet, Lsn, RowKey, TableId, Value};
    use aets_wal::{encode_epoch, DmlEntry, Epoch, TxnLog};

    fn entry(lsn: u64, txn: u64, table: u32, key: u64) -> DmlEntry {
        DmlEntry {
            lsn: Lsn::new(lsn),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(lsn),
            table: TableId::new(table),
            op: DmlOp::Insert,
            key: RowKey::new(key),
            row_version: 1,
            cols: vec![(ColumnId::new(0), Value::Int(7))],
            before: None,
        }
    }

    fn make_epoch(txns: Vec<TxnLog>) -> EncodedEpoch {
        encode_epoch(&Epoch { id: EpochId::new(0), txns })
    }

    fn grouping2() -> TableGrouping {
        // Tables 0,1 in group 0 (hot); table 2 in group 1 (cold).
        let hot: FxHashSet<TableId> = [TableId::new(0)].into_iter().collect();
        TableGrouping::new(
            3,
            vec![vec![TableId::new(0), TableId::new(1)], vec![TableId::new(2)]],
            vec![10.0, 0.0],
            &hot,
        )
        .unwrap()
    }

    #[test]
    fn splits_txn_across_groups() {
        let t1 = TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(100),
            entries: vec![entry(1, 1, 0, 5), entry(2, 1, 2, 6), entry(3, 1, 1, 7)],
        };
        let d = dispatch_epoch(&make_epoch(vec![t1]), &grouping2()).unwrap();
        assert_eq!(d.txn_count, 1);
        let g0 = d.group(GroupId::new(0));
        let g1 = d.group(GroupId::new(1));
        assert_eq!(g0.mini_txns.len(), 1);
        assert_eq!(g0.mini_txns[0].entry_ranges.len(), 2);
        assert_eq!(g0.entries, 2);
        assert_eq!(g1.mini_txns[0].entry_ranges.len(), 1);
        assert_eq!(g0.mini_txns[0].commit_ts, Timestamp::from_micros(100));
        assert!(g0.bytes > 0 && g1.bytes > 0);
    }

    #[test]
    fn txn_not_touching_group_is_absent_from_its_queue() {
        let t1 = TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(10),
            entries: vec![entry(1, 1, 0, 5)],
        };
        let t2 = TxnLog {
            txn_id: TxnId::new(2),
            commit_ts: Timestamp::from_micros(20),
            entries: vec![entry(2, 2, 2, 6)],
        };
        let d = dispatch_epoch(&make_epoch(vec![t1, t2]), &grouping2()).unwrap();
        assert_eq!(d.group(GroupId::new(0)).mini_txns.len(), 1);
        assert_eq!(d.group(GroupId::new(1)).mini_txns.len(), 1);
        assert_eq!(d.group(GroupId::new(1)).mini_txns[0].txn_id, TxnId::new(2));
    }

    #[test]
    fn heartbeats_land_in_every_group() {
        let hb = TxnLog {
            txn_id: TxnId::new(9),
            commit_ts: Timestamp::from_micros(99),
            entries: vec![],
        };
        let d = dispatch_epoch(&make_epoch(vec![hb]), &grouping2()).unwrap();
        for gid in 0..2 {
            let g = d.group(GroupId::new(gid));
            assert_eq!(g.mini_txns.len(), 1);
            assert!(g.mini_txns[0].entry_ranges.is_empty());
            assert_eq!(g.mini_txns[0].commit_ts, Timestamp::from_micros(99));
        }
    }

    #[test]
    fn commit_order_is_preserved_per_group() {
        let txns: Vec<TxnLog> = (1..=20)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: vec![entry(i, i, (i % 3) as u32, i)],
            })
            .collect();
        let d = dispatch_epoch(&make_epoch(txns), &grouping2()).unwrap();
        for g in &d.groups {
            assert!(g.mini_txns.windows(2).all(|w| w[0].txn_id < w[1].txn_id));
        }
        assert_eq!(d.txn_count, 20);
    }

    /// A feed that fails the first `faults` deliveries of every epoch in
    /// a configurable way, then delivers cleanly.
    struct FlakySource {
        epochs: Vec<EncodedEpoch>,
        faults: u32,
        mode: FlakyMode,
    }

    enum FlakyMode {
        Stall,
        Corrupt,
        WrongSeq,
    }

    impl aets_wal::EpochSource for FlakySource {
        fn num_epochs(&self) -> usize {
            self.epochs.len()
        }

        fn fetch(&mut self, seq: u64, attempt: u32) -> Option<EncodedEpoch> {
            let clean = self.epochs.get(seq as usize)?.clone();
            if attempt >= self.faults {
                return Some(clean);
            }
            match self.mode {
                FlakyMode::Stall => None,
                FlakyMode::Corrupt => Some(EncodedEpoch {
                    bytes: clean.bytes.slice(..clean.bytes.len().saturating_sub(1)),
                    ..clean
                }),
                FlakyMode::WrongSeq => {
                    Some(EncodedEpoch { id: aets_common::EpochId::new(seq + 1), ..clean })
                }
            }
        }
    }

    fn one_epoch() -> Vec<EncodedEpoch> {
        vec![make_epoch(vec![TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(10),
            entries: vec![entry(1, 1, 0, 5)],
        }])]
    }

    fn tiny_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy { max_retries, base_backoff_us: 1, max_backoff_us: 10 }
    }

    #[test]
    fn ingest_recovers_from_transient_faults() {
        for (mode, check) in [
            (FlakyMode::Stall, "stalls"),
            (FlakyMode::Corrupt, "checksum_failures"),
            (FlakyMode::WrongSeq, "epoch_gaps"),
        ] {
            let mut src = FlakySource { epochs: one_epoch(), faults: 2, mode };
            let mut stats = IngestStats::default();
            let e = ingest_epoch(&mut src, 0, &tiny_policy(3), &mut stats).unwrap();
            assert_eq!(e.id.raw(), 0);
            assert_eq!(stats.retries, 2, "{check}: two re-requests before healing");
            let observed = match check {
                "stalls" => stats.stalls,
                "checksum_failures" => stats.checksum_failures,
                _ => stats.epoch_gaps,
            };
            assert_eq!(observed, 2, "{check} counter");
        }
    }

    #[test]
    fn ingest_exhausts_retries_with_typed_errors() {
        let mut src =
            FlakySource { epochs: one_epoch(), faults: u32::MAX, mode: FlakyMode::Corrupt };
        let mut stats = IngestStats::default();
        let err = ingest_epoch(&mut src, 0, &tiny_policy(2), &mut stats).unwrap_err();
        assert_eq!(err, Error::CodecChecksum);
        assert_eq!(stats.retries, 2);

        let mut src =
            FlakySource { epochs: one_epoch(), faults: u32::MAX, mode: FlakyMode::WrongSeq };
        let mut stats = IngestStats::default();
        let err = ingest_epoch(&mut src, 0, &tiny_policy(1), &mut stats).unwrap_err();
        assert_eq!(err, Error::EpochGap { expected: 0, got: 1 });
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy { max_retries: 8, base_backoff_us: 100, max_backoff_us: 1_000 };
        assert_eq!(p.backoff(1), Duration::from_micros(100));
        assert_eq!(p.backoff(2), Duration::from_micros(200));
        assert_eq!(p.backoff(3), Duration::from_micros(400));
        assert_eq!(p.backoff(8), Duration::from_micros(1_000), "capped");
    }

    #[test]
    fn pending_bytes_match_group_totals() {
        let t1 = TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(10),
            entries: vec![entry(1, 1, 0, 1), entry(2, 1, 2, 2)],
        };
        let d = dispatch_epoch(&make_epoch(vec![t1]), &grouping2()).unwrap();
        let pb = d.pending_bytes();
        assert_eq!(pb.len(), 2);
        assert_eq!(pb[0], d.group(GroupId::new(0)).bytes);
    }
}
