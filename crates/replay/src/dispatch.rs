//! Log parser and dispatcher (component ① of the AETS architecture).
//!
//! The dispatcher scans an encoded epoch *metadata-only* (it never decodes
//! data images — that is the workers' job in phase 1), finds transaction
//! boundaries from BEGIN/COMMIT markers, and splits every transaction into
//! per-group *mini-transactions*: the subset of its entries that modify
//! tables of one group. Each group's mini-transactions, in primary commit
//! order, are simultaneously that group's `commit_order_queue`.

use crate::grouping::TableGrouping;
use aets_common::{Error, GroupId, Result, Timestamp, TxnId};
use aets_wal::{EncodedEpoch, MetaScanner};
use bytes::Bytes;
use std::ops::Range;

/// The part of one transaction that lands in one table group.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniTxn {
    /// Owning transaction.
    pub txn_id: TxnId,
    /// Commit timestamp of the owning transaction.
    pub commit_ts: Timestamp,
    /// Byte ranges of this group's DML entries within the epoch buffer,
    /// in LSN order. Empty for heartbeat placements.
    pub entry_ranges: Vec<Range<usize>>,
    /// Total encoded bytes of those entries (the mini-txn's share of
    /// `n_gi`).
    pub bytes: u64,
}

/// All work routed to one group for one epoch.
#[derive(Debug, Clone, Default)]
pub struct GroupWork {
    /// Mini-transactions in primary commit order (the group's
    /// `commit_order_queue`).
    pub mini_txns: Vec<MiniTxn>,
    /// Sum of entry bytes (`n_gi` for the allocation solver).
    pub bytes: u64,
    /// Total entries.
    pub entries: usize,
}

/// A dispatched epoch: shared byte buffer plus per-group work lists.
#[derive(Debug, Clone)]
pub struct DispatchedEpoch {
    /// The epoch's encoded bytes (entries are decoded lazily from ranges).
    pub bytes: Bytes,
    /// Work per group, indexed by `GroupId`.
    pub groups: Vec<GroupWork>,
    /// Commit timestamp of the epoch's last transaction.
    pub max_commit_ts: Timestamp,
    /// Number of transactions in the epoch.
    pub txn_count: usize,
}

impl DispatchedEpoch {
    /// Work of `group`.
    pub fn group(&self, g: GroupId) -> &GroupWork {
        &self.groups[g.index()]
    }

    /// Per-group pending byte volumes (input to the allocation solver).
    pub fn pending_bytes(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.bytes).collect()
    }
}

/// Scans `epoch` and routes every DML entry to its table group.
///
/// Heartbeat transactions (BEGIN/COMMIT with no DML) are placed into
/// *every* group as empty mini-transactions, per Section V-B, so each
/// group's commit timestamp advances even when the group gets no writes.
pub fn dispatch_epoch(epoch: &EncodedEpoch, grouping: &TableGrouping) -> Result<DispatchedEpoch> {
    let mut groups: Vec<GroupWork> = vec![GroupWork::default(); grouping.num_groups()];
    // Per-group index of the open mini-txn, or usize::MAX.
    let mut open_slots: Vec<usize> = vec![usize::MAX; grouping.num_groups()];
    let mut open_txn: Option<TxnId> = None;
    let mut txn_count = 0usize;
    let mut txn_had_dml = false;

    for item in MetaScanner::new(epoch.bytes.clone()) {
        let (meta, range) = item?;
        match meta.table {
            None => {
                // BEGIN or COMMIT. The scanner cannot distinguish them, but
                // the protocol can: a marker for a txn we have not opened
                // is a BEGIN; for the open txn it is the COMMIT.
                match open_txn {
                    None => {
                        open_txn = Some(meta.txn_id);
                        txn_had_dml = false;
                        open_slots.fill(usize::MAX);
                    }
                    Some(t) if t == meta.txn_id => {
                        // COMMIT: stamp commit timestamps; place heartbeats.
                        let commit_ts = meta.ts;
                        if txn_had_dml {
                            for (gid, slot) in open_slots.iter().enumerate() {
                                if *slot != usize::MAX {
                                    let mt = &mut groups[gid].mini_txns[*slot];
                                    mt.commit_ts = commit_ts;
                                }
                            }
                        } else {
                            for g in groups.iter_mut() {
                                g.mini_txns.push(MiniTxn {
                                    txn_id: meta.txn_id,
                                    commit_ts,
                                    entry_ranges: Vec::new(),
                                    bytes: 0,
                                });
                            }
                        }
                        open_txn = None;
                        txn_count += 1;
                    }
                    Some(t) => {
                        return Err(Error::Protocol(format!(
                            "marker for {} inside transaction {}",
                            meta.txn_id, t
                        )));
                    }
                }
            }
            Some(table) => {
                let Some(t) = open_txn else {
                    return Err(Error::Protocol(format!(
                        "DML of {} outside BEGIN/COMMIT",
                        meta.txn_id
                    )));
                };
                if t != meta.txn_id {
                    return Err(Error::Protocol(format!(
                        "DML of {} inside transaction {t}",
                        meta.txn_id
                    )));
                }
                txn_had_dml = true;
                let gid = grouping.group_of(table).index();
                let len = (range.end - range.start) as u64;
                if open_slots[gid] == usize::MAX {
                    open_slots[gid] = groups[gid].mini_txns.len();
                    groups[gid].mini_txns.push(MiniTxn {
                        txn_id: t,
                        commit_ts: Timestamp::ZERO,
                        entry_ranges: Vec::new(),
                        bytes: 0,
                    });
                }
                let mt = &mut groups[gid].mini_txns[open_slots[gid]];
                mt.entry_ranges.push(range);
                mt.bytes += len;
                groups[gid].bytes += len;
                groups[gid].entries += 1;
            }
        }
    }
    if let Some(t) = open_txn {
        return Err(Error::Protocol(format!("transaction {t} never committed")));
    }

    Ok(DispatchedEpoch {
        bytes: epoch.bytes.clone(),
        groups,
        max_commit_ts: epoch.max_commit_ts,
        txn_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{ColumnId, DmlOp, EpochId, FxHashSet, Lsn, RowKey, TableId, Value};
    use aets_wal::{encode_epoch, DmlEntry, Epoch, TxnLog};

    fn entry(lsn: u64, txn: u64, table: u32, key: u64) -> DmlEntry {
        DmlEntry {
            lsn: Lsn::new(lsn),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(lsn),
            table: TableId::new(table),
            op: DmlOp::Insert,
            key: RowKey::new(key),
            row_version: 1,
            cols: vec![(ColumnId::new(0), Value::Int(7))],
            before: None,
        }
    }

    fn make_epoch(txns: Vec<TxnLog>) -> EncodedEpoch {
        encode_epoch(&Epoch { id: EpochId::new(0), txns })
    }

    fn grouping2() -> TableGrouping {
        // Tables 0,1 in group 0 (hot); table 2 in group 1 (cold).
        let hot: FxHashSet<TableId> = [TableId::new(0)].into_iter().collect();
        TableGrouping::new(
            3,
            vec![vec![TableId::new(0), TableId::new(1)], vec![TableId::new(2)]],
            vec![10.0, 0.0],
            &hot,
        )
        .unwrap()
    }

    #[test]
    fn splits_txn_across_groups() {
        let t1 = TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(100),
            entries: vec![entry(1, 1, 0, 5), entry(2, 1, 2, 6), entry(3, 1, 1, 7)],
        };
        let d = dispatch_epoch(&make_epoch(vec![t1]), &grouping2()).unwrap();
        assert_eq!(d.txn_count, 1);
        let g0 = d.group(GroupId::new(0));
        let g1 = d.group(GroupId::new(1));
        assert_eq!(g0.mini_txns.len(), 1);
        assert_eq!(g0.mini_txns[0].entry_ranges.len(), 2);
        assert_eq!(g0.entries, 2);
        assert_eq!(g1.mini_txns[0].entry_ranges.len(), 1);
        assert_eq!(g0.mini_txns[0].commit_ts, Timestamp::from_micros(100));
        assert!(g0.bytes > 0 && g1.bytes > 0);
    }

    #[test]
    fn txn_not_touching_group_is_absent_from_its_queue() {
        let t1 = TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(10),
            entries: vec![entry(1, 1, 0, 5)],
        };
        let t2 = TxnLog {
            txn_id: TxnId::new(2),
            commit_ts: Timestamp::from_micros(20),
            entries: vec![entry(2, 2, 2, 6)],
        };
        let d = dispatch_epoch(&make_epoch(vec![t1, t2]), &grouping2()).unwrap();
        assert_eq!(d.group(GroupId::new(0)).mini_txns.len(), 1);
        assert_eq!(d.group(GroupId::new(1)).mini_txns.len(), 1);
        assert_eq!(d.group(GroupId::new(1)).mini_txns[0].txn_id, TxnId::new(2));
    }

    #[test]
    fn heartbeats_land_in_every_group() {
        let hb = TxnLog {
            txn_id: TxnId::new(9),
            commit_ts: Timestamp::from_micros(99),
            entries: vec![],
        };
        let d = dispatch_epoch(&make_epoch(vec![hb]), &grouping2()).unwrap();
        for gid in 0..2 {
            let g = d.group(GroupId::new(gid));
            assert_eq!(g.mini_txns.len(), 1);
            assert!(g.mini_txns[0].entry_ranges.is_empty());
            assert_eq!(g.mini_txns[0].commit_ts, Timestamp::from_micros(99));
        }
    }

    #[test]
    fn commit_order_is_preserved_per_group() {
        let txns: Vec<TxnLog> = (1..=20)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: vec![entry(i, i, (i % 3) as u32, i)],
            })
            .collect();
        let d = dispatch_epoch(&make_epoch(txns), &grouping2()).unwrap();
        for g in &d.groups {
            assert!(g.mini_txns.windows(2).all(|w| w[0].txn_id < w[1].txn_id));
        }
        assert_eq!(d.txn_count, 20);
    }

    #[test]
    fn pending_bytes_match_group_totals() {
        let t1 = TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(10),
            entries: vec![entry(1, 1, 0, 1), entry(2, 1, 2, 2)],
        };
        let d = dispatch_epoch(&make_epoch(vec![t1]), &grouping2()).unwrap();
        let pb = d.pending_bytes();
        assert_eq!(pb.len(), 2);
        assert_eq!(pb[0], d.group(GroupId::new(0)).bytes);
    }
}
