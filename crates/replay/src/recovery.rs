//! Restart recovery and the durable backup node.
//!
//! [`DurableBackup`] is the crash-consistent composition of the whole
//! stack: every ingested epoch is appended to the WAL segment store
//! *before* it is replayed, checkpoints of the Memtable are cut at epoch
//! barriers at a configurable cadence, and [`DurableBackup::open`] is the
//! recovery bootstrap — it loads the newest valid checkpoint manifest
//! (falling back across corrupt ones), seeds the visibility board from
//! the stored replay positions, and re-replays only the WAL *suffix*
//! from the checkpoint's `next_epoch_seq` through the normal two-stage
//! path. Recovery cost is therefore bounded by the checkpoint cadence,
//! not by the length of history.
//!
//! Degraded-mode interaction (the quarantine clamp): while any group is
//! quarantined its `tg_cmt_ts` is frozen but the *log suffix it has not
//! replayed is still in the WAL*. Cutting a checkpoint there — and
//! truncating the WAL behind it — would discard that suffix forever, so
//! checkpoints are skipped while degraded and the skip is counted in
//! `ReplayMetrics::checkpoints_skipped_degraded`. GC is clamped the same
//! way through [`VisibilityBoard::gc_watermark`].

use crate::checkpoint::{CheckpointMeta, CheckpointStore};
use crate::control::AdaptiveController;
use crate::dispatch::{ingest_epoch, IngestStats, RetryPolicy};
use crate::engines::aets::AetsEngine;
use crate::engines::ReplayEngine;
use crate::metrics::ReplayMetrics;
use crate::options::ServiceOptions;
use crate::service::{board_health, BackupNode, NodeOptions};
use crate::visibility::VisibilityBoard;
use aets_common::{Error, GroupId, Result, Timestamp};
use aets_memtable::{gc_db, MemDb, QueryFloor};
use aets_telemetry::trace::stages;
use aets_telemetry::{
    names, EventKind, FlightRecorder, FlightRecorderConfig, ObsServer, Telemetry,
};
use aets_wal::crash::CrashClock;
use aets_wal::{EncodedEpoch, EpochSource, SegmentConfig, SegmentStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Durability policy of a [`DurableBackup`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Cut a checkpoint every `checkpoint_every` ingested epochs
    /// (`0` = only on explicit [`DurableBackup::checkpoint_now`]).
    pub checkpoint_every: u64,
    /// Manifests to keep on disk (older ones are pruned after each
    /// successful checkpoint; at least one is always kept).
    pub keep_checkpoints: usize,
    /// WAL segment-store layout and fsync policy.
    pub segment: SegmentConfig,
    /// Run a version-chain GC pass right before cutting each checkpoint,
    /// pruning at [`VisibilityBoard::gc_watermark`] so the snapshot ships
    /// consolidated chains.
    pub gc_before_checkpoint: bool,
    /// Bind address of the node's live observability endpoint
    /// (`/metrics`, `/spans.json`, `/healthz`, …); `None` serves no HTTP.
    #[deprecated(note = "set `service.obs_addr` (ServiceOptions::builder().obs_addr(..)) instead")]
    pub obs_addr: Option<String>,
    /// Directory for degraded-mode flight-recorder bundles: every
    /// anomaly event (quarantine, failover, resync) dumps a bounded JSON
    /// bundle of recent spans + events + the metrics snapshot there.
    /// `None` disables the recorder.
    #[deprecated(
        note = "set `service.flight_dir` (ServiceOptions::builder().flight_dir(..)) instead"
    )]
    pub flight_dir: Option<PathBuf>,
    /// Consolidated service-layer knobs shared with the query node and
    /// the fleet: telemetry handle, observability endpoint, flight
    /// recorder, retry policy, and the adaptive control loop.
    pub service: ServiceOptions,
}

impl Default for DurableOptions {
    fn default() -> Self {
        #[allow(deprecated)]
        Self {
            checkpoint_every: 32,
            keep_checkpoints: 2,
            segment: SegmentConfig::default(),
            gc_before_checkpoint: true,
            obs_addr: None,
            flight_dir: None,
            service: ServiceOptions::default(),
        }
    }
}

impl DurableOptions {
    /// Effective observability bind address: the consolidated
    /// [`ServiceOptions::obs_addr`] wins; the deprecated per-struct field
    /// is honoured when the new one is unset.
    pub fn effective_obs_addr(&self) -> Option<&str> {
        #[allow(deprecated)]
        self.service.obs_addr.as_deref().or(self.obs_addr.as_deref())
    }

    /// Effective flight-recorder directory, resolved the same way.
    pub fn effective_flight_dir(&self) -> Option<&std::path::Path> {
        #[allow(deprecated)]
        self.service.flight_dir.as_deref().or(self.flight_dir.as_deref())
    }
}

/// What restart recovery actually did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// `next_epoch_seq` of the checkpoint the state was restored from;
    /// `None` for a cold start (no valid checkpoint on disk).
    pub restored_seq: Option<u64>,
    /// Corrupt manifests skipped before a valid one was found.
    pub manifest_fallbacks: u64,
    /// Epochs re-replayed from the WAL suffix.
    pub suffix_epochs: u64,
    /// Wall time of the whole bootstrap (load + suffix replay).
    pub recovery_wall: Duration,
}

/// A backup node with crash-consistent durability: WAL-first ingest,
/// epoch-aligned checkpoints, suffix-only restart recovery.
#[derive(Debug)]
pub struct DurableBackup {
    engine: Arc<AetsEngine>,
    db: Arc<MemDb>,
    board: Arc<VisibilityBoard>,
    wal: SegmentStore,
    ckpt: CheckpointStore,
    opts: DurableOptions,
    metrics: ReplayMetrics,
    report: RecoveryReport,
    /// Sequence the next ingested epoch must carry.
    next_seq: u64,
    /// `next_epoch_seq` of the last durable checkpoint (0 = none).
    last_ckpt_seq: u64,
    /// Manually published replica floor ([`DurableBackup::set_query_floor`]);
    /// clamps GC together with the pinned read sessions' floor.
    query_floor: Timestamp,
    /// Read sessions' GC floor, shared with every [`BackupNode`] started
    /// via [`DurableBackup::serve`]: a pinned session clamps the
    /// pre-checkpoint GC pass exactly like the manual floor.
    floor: Arc<QueryFloor>,
    /// The engine's telemetry (disabled unless the engine was built with
    /// one); durability events and counters land here too.
    telemetry: Arc<Telemetry>,
    /// Latest ingested epoch's `max_commit_ts` in micros — the "primary
    /// now" the visibility-lag clock reads. An un-paced ingest loop has no
    /// wall-clock relation to the primary, so within-epoch commit lag
    /// (publish ts vs the epoch's high-water mark) is the freshness
    /// measure.
    primary_watermark: Arc<AtomicU64>,
    /// The live observability endpoint, when `opts.obs_addr` asked for
    /// one; dropped (and unbound) with the node.
    obs: Option<ObsServer>,
    /// Live forecast-driven controller, when
    /// [`ServiceOptions::controller`] asked for one; ticked once per
    /// ingested epoch.
    controller: Option<AdaptiveController>,
}

impl DurableBackup {
    /// Recovery bootstrap: restores the newest valid checkpoint, seeds
    /// the visibility board from its replay positions, and re-replays
    /// the WAL suffix through the engine's normal two-stage path.
    ///
    /// `engine` must be fresh (nothing replayed, nothing quarantined) and
    /// grouped identically to the run that produced the on-disk state.
    /// `clock` meters every filesystem operation for crash injection;
    /// pass `None` in production.
    pub fn open(
        wal_dir: impl Into<PathBuf>,
        ckpt_dir: impl Into<PathBuf>,
        engine: AetsEngine,
        num_tables: usize,
        opts: DurableOptions,
        clock: Option<Arc<CrashClock>>,
    ) -> Result<Self> {
        let t0 = Instant::now();
        let num_groups = engine.grouping().num_groups();
        let mut metrics = ReplayMetrics { engine: engine.name(), ..Default::default() };

        let ckpt = CheckpointStore::open(ckpt_dir, clock.clone())?;
        let (loaded, fallbacks) = ckpt.load_latest()?;
        metrics.manifest_fallbacks += fallbacks;

        let telemetry = engine.telemetry().clone();
        // The flight recorder arms before anything replays, so an
        // anomaly during the recovery suffix itself already dumps a
        // bundle.
        if let Some(dir) = opts.effective_flight_dir() {
            let recorder = FlightRecorder::create(FlightRecorderConfig::new(dir))
                .map_err(|e| Error::Io(format!("flight recorder at {}: {e}", dir.display())))?;
            telemetry.set_flight_recorder(Some(recorder));
        }
        let primary_watermark = Arc::new(AtomicU64::new(0));
        let board = Arc::new({
            // The builder skips the instrumentation when telemetry is
            // disabled, so the one path covers both configurations.
            let wm = primary_watermark.clone();
            let primary_clock: aets_telemetry::ClockFn =
                Arc::new(move || wm.load(Ordering::Relaxed));
            VisibilityBoard::builder(num_groups).telemetry(&telemetry, primary_clock).build()
        });
        if fallbacks > 0 {
            telemetry.registry().counter(names::MANIFEST_FALLBACKS).add(fallbacks);
            telemetry.event(EventKind::RecoveryFallback { manifests_skipped: fallbacks });
        }
        let (db, start_seq, restored_seq) = match loaded {
            Some(c) => {
                if c.meta.tg_cmt_ts.len() != num_groups {
                    return Err(Error::Config(format!(
                        "checkpoint has {} groups, engine has {num_groups}: \
                         grouping changed between runs",
                        c.meta.tg_cmt_ts.len()
                    )));
                }
                // Seed the freshness clock at the restored high-water mark
                // so the board-seeding publishes below record zero lag
                // instead of a bogus warm-up sample.
                primary_watermark.store(c.meta.global_cmt_ts.as_micros(), Ordering::Relaxed);
                for (g, ts) in c.meta.tg_cmt_ts.iter().enumerate() {
                    board.publish_group(GroupId::new(g as u32), *ts);
                }
                board.publish_global(c.meta.global_cmt_ts);
                // Recovery replays the suffix through a fresh engine, so a
                // group the manifest recorded as quarantined is healthy
                // again (the policy today never writes one, but the format
                // carries the field).
                for &g in &c.meta.quarantined {
                    telemetry.event(EventKind::GroupUnquarantined { group: g as usize });
                }
                (c.db, c.meta.next_epoch_seq, Some(c.meta.next_epoch_seq))
            }
            None => (MemDb::new(num_tables), 0, None),
        };

        let mut wal = SegmentStore::open(wal_dir, opts.segment, clock)?;
        // Group-commit observability: every fsync point reports how many
        // frames it made durable (always 1 under `FsyncPolicy::EveryEpoch`).
        let fsync_hist = telemetry.registry().histogram(names::WAL_FSYNC_COALESCED_FRAMES);
        wal.set_sync_observer(Box::new(move |frames| fsync_hist.record_micros(frames)));
        // The WAL must cover everything past the checkpoint: a retained
        // prefix starting *after* `start_seq` means log was truncated
        // beyond the newest restorable checkpoint and recovery cannot be
        // gap-free.
        if let Some(first) = wal.first_retained_seq() {
            if first > start_seq {
                return Err(Error::Replay(format!(
                    "WAL starts at epoch {first} but checkpoint covers only \
                     up to {start_seq}: suffix has a gap"
                )));
            }
        }

        let mut suffix = wal.suffix_source(start_seq)?;
        let suffix_epochs = suffix.num_epochs() as u64;
        if suffix_epochs > 0 {
            let m = engine.replay_stream(&mut suffix, &db, &board)?;
            metrics.absorb(&m);
        }
        metrics.recovery_suffix_epochs += suffix_epochs;
        telemetry.registry().counter(names::RECOVERY_SUFFIX_EPOCHS).add(suffix_epochs);

        let next_seq = start_seq + suffix_epochs;
        let report = RecoveryReport {
            restored_seq,
            manifest_fallbacks: fallbacks,
            suffix_epochs,
            recovery_wall: t0.elapsed(),
        };
        let obs = match opts.effective_obs_addr() {
            Some(addr) => Some(
                ObsServer::bind(addr, telemetry.clone(), board_health(&board))
                    .map_err(|e| Error::Io(format!("bind obs endpoint {addr}: {e}")))?,
            ),
            None => None,
        };
        // The controller samples the registry the serving layer records
        // `aets_table_access_total` into — the engine's own instance, so
        // a node started via `serve` feeds it automatically.
        let controller = match &opts.service.controller {
            Some(cfg) => Some(AdaptiveController::new(
                cfg.clone(),
                engine.reconfigure_handle(),
                engine.grouping(),
                telemetry.clone(),
            )?),
            None => None,
        };
        let mut node = Self {
            engine: Arc::new(engine),
            db: Arc::new(db),
            board,
            wal,
            ckpt,
            opts,
            metrics,
            report,
            next_seq,
            last_ckpt_seq: restored_seq.unwrap_or(0),
            query_floor: Timestamp::MAX,
            floor: Arc::new(QueryFloor::new()),
            telemetry,
            primary_watermark,
            obs,
            controller,
        };
        // If the replayed suffix already spans a full cadence the
        // checkpoint is overdue: cut it now, before any new ingest, so a
        // repeated crash-during-checkpoint can never grow the suffix past
        // `checkpoint_every` across restarts.
        if node.opts.checkpoint_every > 0
            && node.next_seq - node.last_ckpt_seq >= node.opts.checkpoint_every
        {
            node.checkpoint_now()?;
        }
        Ok(node)
    }

    /// Ingests one epoch: durable WAL append first, then replay through
    /// the engine, then (at the configured cadence) a checkpoint.
    ///
    /// A [crash](aets_common::Error::Crash) error means the metered
    /// process died; on a real node the supervisor restarts via
    /// [`DurableBackup::open`], which recovers everything that was acked.
    pub fn ingest(&mut self, epoch: &EncodedEpoch) -> Result<()> {
        let seq = epoch.id.raw();
        let ring = self.telemetry.spans();
        // The append span includes any embedded fsync the policy takes;
        // when the durable watermark advanced, a child fsync point marks
        // the epoch as the one that paid for it.
        let synced_before = self.wal.synced_seq();
        let aspan = ring.begin(seq, stages::WAL_APPEND, None, None);
        self.wal.append(epoch)?;
        let append_id = aspan.map(|s| {
            let id = s.id();
            s.finish(ring);
            id
        });
        if self.wal.synced_seq() != synced_before {
            ring.point(seq, stages::WAL_FSYNC, None, append_id);
        }
        self.metrics.wal_epochs_appended += 1;
        self.telemetry.registry().counter(names::WAL_EPOCHS_APPENDED).inc();
        // Advance "primary now" to this epoch's high-water mark before
        // replaying it, so each group publish records its within-epoch
        // commit lag against the freshest known primary timestamp.
        self.primary_watermark.fetch_max(epoch.max_commit_ts.as_micros(), Ordering::Relaxed);
        let m = self.engine.replay(std::slice::from_ref(epoch), &self.db, &self.board)?;
        let wall_us = m.wall.as_micros() as u64;
        if let Some(bps) = m.bytes.saturating_mul(1_000_000).checked_div(wall_us) {
            self.telemetry.registry().gauge(names::INGEST_BYTES_PER_SEC).set(bps);
        }
        self.metrics.absorb(&m);
        self.next_seq = epoch.id.raw() + 1;
        if let Some(ctl) = &mut self.controller {
            // A planning error (e.g. a degenerate clustering) keeps the
            // current plan; the ingest itself already succeeded.
            let _ = ctl.on_epoch();
        }

        if self.opts.checkpoint_every > 0
            && self.next_seq - self.last_ckpt_seq >= self.opts.checkpoint_every
        {
            self.checkpoint_now()?;
        }
        Ok(())
    }

    /// Pulls every epoch the source currently advertises through the
    /// resync loop ([`ingest_epoch`]) and ingests each one durably via
    /// [`DurableBackup::ingest`]. Epochs the node has already ingested
    /// (below [`DurableBackup::next_seq`]) are skipped, so a resumed
    /// network stream that re-ships its in-flight window is absorbed
    /// idempotently. Returns the number of epochs ingested by this call.
    ///
    /// Delivery faults (stalls, checksum failures, gaps) are retried per
    /// `retry`; exhausted retries surface as an error after everything
    /// ingested so far has been made durable. Ingest-loop stats are
    /// folded into [`DurableBackup::metrics`] and the telemetry registry
    /// exactly like the streaming engine path.
    pub fn ingest_from(
        &mut self,
        source: &mut dyn EpochSource,
        retry: &RetryPolicy,
    ) -> Result<u64> {
        let end = source.first_seq() + source.num_epochs() as u64;
        let mut stats = IngestStats::default();
        let mut ingested = 0u64;
        let mut outcome = Ok(());
        while self.next_seq < end {
            match ingest_epoch(source, self.next_seq, retry, &mut stats) {
                Ok(epoch) => {
                    if let Err(e) = self.ingest(&epoch) {
                        outcome = Err(e);
                        break;
                    }
                    ingested += 1;
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.metrics.ingest_retries += stats.retries;
        self.metrics.checksum_failures += stats.checksum_failures;
        self.metrics.epoch_gaps += stats.epoch_gaps;
        self.metrics.ingest_stalls += stats.stalls;
        let reg = self.telemetry.registry();
        reg.counter(names::INGEST_RETRIES).add(stats.retries);
        reg.counter(names::CHECKSUM_FAILURES).add(stats.checksum_failures);
        reg.counter(names::EPOCH_GAPS).add(stats.epoch_gaps);
        reg.counter(names::INGEST_STALLS).add(stats.stalls);
        outcome.map(|()| ingested)
    }

    /// Cuts a checkpoint at the current epoch barrier, prunes old
    /// manifests, and retires WAL segments behind the new watermark.
    /// Returns `false` (and counts the skip) while any group is
    /// quarantined: truncating the WAL past a frozen group's watermark
    /// would lose the suffix it has not replayed.
    pub fn checkpoint_now(&mut self) -> Result<bool> {
        if !self.engine.quarantined_groups().is_empty() {
            self.metrics.checkpoints_skipped_degraded += 1;
            self.telemetry.registry().counter(names::CHECKPOINTS_SKIPPED).inc();
            self.telemetry.event(EventKind::CheckpointSkippedDegraded);
            return Ok(false);
        }
        if self.opts.gc_before_checkpoint {
            // Both floors clamp: the manually published replica floor and
            // the oldest read session pinned through a served node.
            let wm = self.board.gc_watermark(&[], self.query_floor.min(self.floor.floor()));
            let pass = gc_db(&self.db, wm);
            self.metrics.gc.merge(pass);
            self.metrics.gc_passes += 1;
            self.telemetry.registry().counter(names::GC_PASSES).inc();
            self.telemetry.registry().counter(names::GC_PRUNED).add(pass.pruned as u64);
            self.telemetry.event(EventKind::GcPass { nodes: pass.nodes, pruned: pass.pruned });
        }
        // Group-commit invariant: the WAL prefix below the checkpoint
        // barrier must be durable before the manifest is — otherwise a
        // crash could leave a checkpoint that outruns the durable log,
        // and the resumed stream would hit an epoch gap.
        self.wal.sync()?;
        let num_groups = self.engine.grouping().num_groups();
        let meta = CheckpointMeta {
            next_epoch_seq: self.next_seq,
            global_cmt_ts: self.board.global_cmt_ts(),
            tg_cmt_ts: (0..num_groups)
                .map(|g| self.board.tg_cmt_ts(GroupId::new(g as u32)))
                .collect(),
            quarantined: vec![],
        };
        self.ckpt.write(&meta, &self.db, Timestamp::MAX)?;
        self.metrics.checkpoints_written += 1;
        self.telemetry.registry().counter(names::CHECKPOINTS_WRITTEN).inc();
        self.telemetry.event(EventKind::CheckpointWritten { next_epoch_seq: self.next_seq });
        self.last_ckpt_seq = self.next_seq;
        self.ckpt.retain(self.opts.keep_checkpoints)?;
        // Retire WAL only behind the OLDEST retained manifest: if the
        // newest one is later found corrupt, recovery falls back to an
        // older checkpoint and still needs the log from that point on.
        let oldest = self.ckpt.list()?.first().map_or(self.next_seq, |(s, _)| *s);
        let retired = self.wal.truncate_before(oldest)? as u64;
        self.metrics.wal_segments_retired += retired;
        if retired > 0 {
            self.telemetry.registry().counter(names::WAL_SEGMENTS_RETIRED).add(retired);
            self.telemetry.event(EventKind::WalSegmentRetired { segments: retired });
        }
        Ok(true)
    }

    /// Publishes the oldest still-active analytical query's `qts` so GC
    /// never prunes a version an admitted query may read. Pass
    /// [`Timestamp::MAX`] when no query is active. Sessions opened
    /// through [`DurableBackup::serve`] pin the floor automatically; this
    /// manual override exists for externally coordinated readers.
    pub fn set_query_floor(&mut self, qts: Timestamp) {
        self.query_floor = qts;
    }

    /// Starts a query-serving [`BackupNode`] over this durable backup's
    /// live state: the node shares the engine, database, visibility
    /// board, telemetry, and GC floor, so sessions opened on it read the
    /// epochs ingested here — including everything recovered from the
    /// checkpoint + WAL suffix after a restart — and their pinned `qts`
    /// clamps the pre-checkpoint GC pass.
    pub fn serve(&self, opts: NodeOptions) -> Result<BackupNode> {
        BackupNode::builder()
            .engine(self.engine.clone())
            .db(self.db.clone())
            .board(self.board.clone())
            .floor(self.floor.clone())
            .telemetry(self.telemetry.clone())
            .options(opts)
            .build()
    }

    /// The Memtable.
    pub fn db(&self) -> &MemDb {
        &self.db
    }

    /// The visibility board queries wait on.
    pub fn board(&self) -> &Arc<VisibilityBoard> {
        &self.board
    }

    /// The replay engine.
    pub fn engine(&self) -> &AetsEngine {
        &self.engine
    }

    /// The node's telemetry instance (disabled unless the engine was
    /// built with `AetsEngine::builder(..).telemetry(..)`).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Accumulated metrics (replay + durability counters).
    pub fn metrics(&self) -> &ReplayMetrics {
        &self.metrics
    }

    /// What the bootstrap recovery did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// Sequence the next ingested epoch must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// `next_epoch_seq` of the last durable checkpoint.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_ckpt_seq
    }

    /// Complete control windows the adaptive controller has observed;
    /// `None` when [`ServiceOptions::controller`] was unset.
    pub fn adaptive_windows(&self) -> Option<usize> {
        self.controller.as_ref().map(AdaptiveController::windows_observed)
    }

    /// Bound address of the live observability endpoint, when
    /// [`DurableOptions::obs_addr`] asked for one.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(ObsServer::addr)
    }

    /// Highest epoch sequence the WAL knows durable (covered by an fsync
    /// point). Under [`aets_wal::FsyncPolicy::Coalesced`] this is the
    /// crash-loss bound: acknowledged epochs past it may be re-requested
    /// from the primary after a crash, but never epochs at or below it.
    pub fn wal_synced_seq(&self) -> Option<u64> {
        self.wal.synced_seq()
    }

    /// The read sessions' GC floor registry, shared with every
    /// [`BackupNode`] started via [`DurableBackup::serve`]. A fleet
    /// coordinator pins cross-shard session `qts` values here directly so
    /// the pins survive the serving node being torn down and rebuilt.
    pub fn floor(&self) -> &Arc<QueryFloor> {
        &self.floor
    }

    /// First epoch sequence the WAL still retains, or `None` for an empty
    /// store. Pair with [`DurableBackup::oldest_checkpoint_seq`] to check
    /// the retention invariant: the log always covers every retained
    /// manifest's suffix.
    pub fn wal_first_retained_seq(&self) -> Option<u64> {
        self.wal.first_retained_seq()
    }

    /// `next_epoch_seq` of the oldest checkpoint manifest still on disk,
    /// or `None` when no manifest exists. WAL segments are only ever
    /// retired behind this barrier — never behind just the newest one —
    /// so a corrupt newest manifest can still fall back and re-replay.
    pub fn oldest_checkpoint_seq(&self) -> Result<Option<u64>> {
        Ok(self.ckpt.list()?.first().map(|(s, _)| *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::aets::AetsConfig;
    use crate::grouping::TableGrouping;
    use aets_common::TableId;
    use aets_wal::{batch_into_epochs, encode_epoch};
    use aets_workloads::tpcc::{self, TpccConfig};

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("aets-rec-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tpcc_stream(num_txns: usize) -> (Vec<EncodedEpoch>, usize, TableGrouping) {
        let w = tpcc::generate(&TpccConfig {
            num_txns,
            warehouses: 2,
            oltp_tps: 20_000.0,
            ..Default::default()
        });
        let raw = batch_into_epochs(w.txns.clone(), 64).unwrap();
        let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
        let (groups, rates) = tpcc::paper_grouping();
        let grouping =
            TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
        (epochs, w.num_tables(), grouping)
    }

    fn fresh_engine(grouping: &TableGrouping) -> AetsEngine {
        AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap()
    }

    fn oracle_digest(epochs: &[EncodedEpoch], num_tables: usize, grouping: &TableGrouping) -> u64 {
        let engine = fresh_engine(grouping);
        let db = MemDb::new(num_tables);
        let board = VisibilityBoard::builder(grouping.num_groups()).build();
        engine.replay(epochs, &db, &board).unwrap();
        db.digest_at(Timestamp::MAX)
    }

    #[test]
    fn restart_resumes_from_checkpoint_and_replays_only_the_suffix() {
        let (epochs, num_tables, grouping) = tpcc_stream(2_000);
        let want = oracle_digest(&epochs, num_tables, &grouping);
        let wal_dir = scratch("resume-wal");
        let ckpt_dir = scratch("resume-ckpt");
        let opts = DurableOptions {
            checkpoint_every: 8,
            segment: SegmentConfig { epochs_per_segment: 4, ..Default::default() },
            ..Default::default()
        };

        // First life: ingest the whole stream, checkpointing as we go.
        let ckpts;
        {
            let mut node = DurableBackup::open(
                &wal_dir,
                &ckpt_dir,
                fresh_engine(&grouping),
                num_tables,
                opts.clone(),
                None,
            )
            .unwrap();
            assert!(node.recovery().restored_seq.is_none(), "cold start");
            for e in &epochs {
                node.ingest(e).unwrap();
            }
            ckpts = node.metrics().checkpoints_written;
            assert!(ckpts >= 2, "cadence must have cut checkpoints");
            assert!(node.metrics().wal_segments_retired > 0, "WAL must shrink");
            assert_eq!(node.db().digest_at(Timestamp::MAX), want);
        }

        // Second life: restart. Only the post-checkpoint suffix replays.
        let node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&grouping),
            num_tables,
            opts.clone(),
            None,
        )
        .unwrap();
        let rec = node.recovery();
        let restored = rec.restored_seq.expect("must restore from a checkpoint");
        assert_eq!(
            rec.suffix_epochs,
            epochs.len() as u64 - restored,
            "recovery must replay exactly the epochs after the checkpoint"
        );
        assert!(
            rec.suffix_epochs < epochs.len() as u64,
            "suffix replay must be shorter than full history"
        );
        assert_eq!(node.db().digest_at(Timestamp::MAX), want, "restored digest matches oracle");
        assert_eq!(node.next_seq(), epochs.len() as u64);
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn restart_after_restart_keeps_ingesting() {
        let (epochs, num_tables, grouping) = tpcc_stream(1_200);
        let want = oracle_digest(&epochs, num_tables, &grouping);
        let wal_dir = scratch("twice-wal");
        let ckpt_dir = scratch("twice-ckpt");
        let opts = DurableOptions {
            checkpoint_every: 5,
            segment: SegmentConfig { epochs_per_segment: 3, ..Default::default() },
            ..Default::default()
        };
        let mid = epochs.len() / 3;
        let later = 2 * epochs.len() / 3;
        {
            let mut node = DurableBackup::open(
                &wal_dir,
                &ckpt_dir,
                fresh_engine(&grouping),
                num_tables,
                opts.clone(),
                None,
            )
            .unwrap();
            for e in &epochs[..mid] {
                node.ingest(e).unwrap();
            }
        }
        {
            let mut node = DurableBackup::open(
                &wal_dir,
                &ckpt_dir,
                fresh_engine(&grouping),
                num_tables,
                opts.clone(),
                None,
            )
            .unwrap();
            assert_eq!(node.next_seq(), mid as u64);
            for e in &epochs[mid..later] {
                node.ingest(e).unwrap();
            }
        }
        let mut node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&grouping),
            num_tables,
            opts,
            None,
        )
        .unwrap();
        assert_eq!(node.next_seq(), later as u64);
        for e in &epochs[later..] {
            node.ingest(e).unwrap();
        }
        assert_eq!(node.db().digest_at(Timestamp::MAX), want);
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn quarantine_skips_checkpoints_and_preserves_the_frozen_suffix() {
        use aets_wal::{crc32, MetaScanner};

        let (mut epochs, num_tables, grouping) = tpcc_stream(600);
        // Corrupt one record of a cold table mid-stream so its group
        // quarantines: find a DML of the highest-numbered table.
        let victim = TableId::new((num_tables - 1) as u32);
        let eidx = epochs
            .iter()
            .position(|e| {
                MetaScanner::new(e.bytes.clone())
                    .filter_map(|i| i.ok())
                    .any(|(meta, _)| meta.table == Some(victim))
            })
            .expect("some epoch touches the victim table");
        let range = MetaScanner::new(epochs[eidx].bytes.clone())
            .filter_map(|i| i.ok())
            .find(|(meta, _)| meta.table == Some(victim))
            .map(|(_, r)| r)
            .unwrap();
        let mut v = epochs[eidx].bytes.to_vec();
        v[range.end - 1] ^= 0x01;
        epochs[eidx] = EncodedEpoch { crc32: crc32(&v), bytes: v.into(), ..epochs[eidx].clone() };

        let wal_dir = scratch("quar-wal");
        let ckpt_dir = scratch("quar-ckpt");
        let opts = DurableOptions { checkpoint_every: 3, ..Default::default() };
        let mut node = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&grouping),
            num_tables,
            opts,
            None,
        )
        .unwrap();
        for e in &epochs {
            node.ingest(e).unwrap();
        }
        assert!(node.metrics().degraded(), "the poisoned group must quarantine");
        let after_poison = node.metrics().checkpoints_skipped_degraded;
        assert!(after_poison > 0, "cadence hits while degraded must be skipped, not taken");
        // No checkpoint may cover epochs past the quarantine instant, and
        // the WAL must still hold the frozen group's unreplayed suffix.
        assert!(node.last_checkpoint_seq() <= eidx as u64);
        let first_retained = node.wal.first_retained_seq().expect("WAL must not be empty");
        assert!(
            first_retained <= eidx as u64,
            "WAL retains the suffix from the poisoned epoch on \
             (first retained {first_retained}, poisoned {eidx})"
        );
        // An explicit checkpoint request is also refused.
        assert!(!node.checkpoint_now().unwrap());
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn durable_node_emits_checkpoint_and_freshness_telemetry() {
        use aets_telemetry::{names, Telemetry};
        let (epochs, num_tables, grouping) = tpcc_stream(800);
        let wal_dir = scratch("tel-wal");
        let ckpt_dir = scratch("tel-ckpt");
        let tel = Arc::new(Telemetry::new());
        let engine = AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(tel.clone())
            .build()
            .unwrap();
        let opts = DurableOptions {
            checkpoint_every: 4,
            segment: SegmentConfig { epochs_per_segment: 2, ..Default::default() },
            ..Default::default()
        };
        let mut node =
            DurableBackup::open(&wal_dir, &ckpt_dir, engine, num_tables, opts, None).unwrap();
        for e in &epochs {
            node.ingest(e).unwrap();
        }
        let snap = tel.snapshot();
        // Durability counters mirror ReplayMetrics.
        assert_eq!(
            snap.counter_total(names::CHECKPOINTS_WRITTEN),
            node.metrics().checkpoints_written
        );
        assert_eq!(
            snap.counter_total(names::WAL_EPOCHS_APPENDED),
            node.metrics().wal_epochs_appended
        );
        assert_eq!(
            snap.counter_total(names::WAL_SEGMENTS_RETIRED),
            node.metrics().wal_segments_retired
        );
        assert!(snap.counter_total(names::GC_PASSES) > 0);
        // Freshness on the primary-watermark clock: lag samples exist and
        // every one is bounded by the epoch span (no wall-clock bleed).
        let lag = snap.histogram_summary_all(names::VISIBILITY_LAG_US).expect("lag histogram");
        assert!(lag.count > 0);
        let span = epochs.last().unwrap().max_commit_ts.as_micros();
        assert!(lag.max_us <= span, "lag {} exceeds primary span {span}", lag.max_us);
        // Lifecycle events: checkpoints and WAL retirement showed up.
        let evs = tel.drain_events();
        assert!(evs.iter().any(|e| e.kind.name() == "checkpoint_written"));
        assert!(evs.iter().any(|e| e.kind.name() == "wal_segment_retired"));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn restarted_backup_serves_pinned_read_sessions() {
        use crate::service::{QueryOutput, QuerySpec};
        use aets_memtable::Scan;

        let (epochs, num_tables, grouping) = tpcc_stream(1_000);
        let wal_dir = scratch("serve-wal");
        let ckpt_dir = scratch("serve-ckpt");
        let opts = DurableOptions { checkpoint_every: 6, ..Default::default() };
        {
            let mut node = DurableBackup::open(
                &wal_dir,
                &ckpt_dir,
                fresh_engine(&grouping),
                num_tables,
                opts.clone(),
                None,
            )
            .unwrap();
            for e in &epochs {
                node.ingest(e).unwrap();
            }
        }
        // Second life: recover, then serve queries from the recovered
        // state. The board was seeded from the checkpoint and advanced by
        // the suffix replay, so a session at the stream's high-water mark
        // admits without any further ingest.
        let backup = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&grouping),
            num_tables,
            opts,
            None,
        )
        .unwrap();
        assert!(backup.recovery().restored_seq.is_some());
        let node = backup.serve(crate::service::NodeOptions::default()).unwrap();
        let qts = epochs.last().unwrap().max_commit_ts;
        let table = TableId::new(0);
        let session = node.open_session(qts, &[table]);
        // A pinned session clamps the durable backup's GC floor too.
        assert!(backup.floor.floor() <= qts);
        let served = session.query(QuerySpec::count(table)).unwrap();
        let oracle = Scan::at(qts).count(backup.db().table(table));
        assert_eq!(served, QueryOutput::Count(oracle));
        assert!(oracle > 0, "recovered warehouse table must have rows");
        drop(session);
        assert_eq!(backup.floor.floor(), Timestamp::MAX);
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn grouping_mismatch_is_rejected_at_recovery() {
        let (epochs, num_tables, grouping) = tpcc_stream(300);
        let wal_dir = scratch("mismatch-wal");
        let ckpt_dir = scratch("mismatch-ckpt");
        {
            let mut node = DurableBackup::open(
                &wal_dir,
                &ckpt_dir,
                fresh_engine(&grouping),
                num_tables,
                DurableOptions { checkpoint_every: 2, ..Default::default() },
                None,
            )
            .unwrap();
            for e in &epochs {
                node.ingest(e).unwrap();
            }
            assert!(node.metrics().checkpoints_written > 0);
        }
        // An engine with a different group count must not silently adopt
        // the old board positions.
        let single = AetsEngine::tplr_baseline(2, num_tables, &Default::default()).unwrap();
        let err = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            single,
            num_tables,
            DurableOptions::default(),
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "config");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn wal_gap_after_checkpoint_is_fatal() {
        let (epochs, num_tables, grouping) = tpcc_stream(600);
        let wal_dir = scratch("gap-wal");
        let ckpt_dir = scratch("gap-ckpt");
        let opts = DurableOptions {
            checkpoint_every: 4,
            segment: SegmentConfig { epochs_per_segment: 2, ..Default::default() },
            ..Default::default()
        };
        {
            let mut node = DurableBackup::open(
                &wal_dir,
                &ckpt_dir,
                fresh_engine(&grouping),
                num_tables,
                opts.clone(),
                None,
            )
            .unwrap();
            for e in &epochs {
                node.ingest(e).unwrap();
            }
        }
        // Delete every checkpoint: the WAL has been truncated past epoch
        // 0, so a cold-start recovery would have a gap and must refuse.
        for f in std::fs::read_dir(&ckpt_dir).unwrap() {
            std::fs::remove_file(f.unwrap().path()).unwrap();
        }
        let err = DurableBackup::open(
            &wal_dir,
            &ckpt_dir,
            fresh_engine(&grouping),
            num_tables,
            opts,
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "replay");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }
}
