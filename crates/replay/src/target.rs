//! One generic query surface over every serving topology.
//!
//! Three near-duplicate query entry points grew alongside the serving
//! stack: the single-node [`BackupNode`] (session → submit → wait), the
//! sharded `Fleet` in `aets-fleet` (route → fan out → merge), and the
//! bare serial-oracle [`MemDb`] that chaos tests compare against (a
//! hand-rolled `Scan` per output kind, re-written in every test file).
//! [`QueryTarget`] folds them into one surface: `safe_ts()` names the
//! freshest timestamp the target admits without waiting, and
//! [`QueryTarget::query_at`] runs a batch of [`QuerySpec`]s as one
//! snapshot read. Benches, the trace replayer's sink, and the chaos
//! oracles all drive this trait instead of per-topology glue, so a
//! harness written against one target runs unchanged against the others.

use std::sync::Arc;

use aets_common::{Error, Result, TableId, Timestamp};
use aets_memtable::{MemDb, Scan};

use crate::service::{BackupNode, OutputKind, QueryHandle, QueryOutput, QuerySpec};

/// Something queries can be pointed at: a node, a fleet, or a plain
/// oracle database.
///
/// Implementations pin `qts` against GC for the duration of the read
/// (where GC exists) and surface admission failures — timeouts,
/// quarantined groups, dark shards — as errors rather than stale data.
pub trait QueryTarget {
    /// The freshest timestamp a query admits without waiting: `qts` at
    /// or below this is immediately visible everywhere the target serves
    /// from. Monotone.
    fn safe_ts(&self) -> Timestamp;

    /// Runs `specs` as one snapshot read at `qts`, returning outputs in
    /// spec order.
    fn query_at(&self, qts: Timestamp, specs: &[QuerySpec]) -> Result<Vec<QueryOutput>>;

    /// Single-spec convenience over [`QueryTarget::query_at`].
    fn query_one(&self, qts: Timestamp, spec: QuerySpec) -> Result<QueryOutput> {
        let mut outs = self.query_at(qts, std::slice::from_ref(&spec))?;
        outs.pop().ok_or_else(|| Error::Replay("query_at returned no output".into()))
    }
}

/// Evaluates `spec` directly against `db`'s MVCC snapshot at `qts` — the
/// shared oracle-answer path. No admission, no pinning: the caller
/// guarantees the snapshot is reachable (serial oracles never GC).
pub fn eval_spec(db: &MemDb, spec: &QuerySpec, qts: Timestamp) -> QueryOutput {
    let scan = Scan { ts: qts, key_range: spec.key_range, filters: spec.filters.clone() };
    let table = db.table(spec.table);
    match &spec.output {
        OutputKind::Rows => QueryOutput::Rows(scan.collect(table)),
        OutputKind::Count => QueryOutput::Count(scan.count(table)),
        OutputKind::AggregateCol { column, agg } => {
            QueryOutput::Aggregate(scan.aggregate(table, *column, *agg))
        }
    }
}

/// The serial oracle is a target too: every timestamp is safe (there is
/// no replay to wait on) and specs evaluate straight off version chains.
impl QueryTarget for MemDb {
    fn safe_ts(&self) -> Timestamp {
        Timestamp::MAX
    }

    fn query_at(&self, qts: Timestamp, specs: &[QuerySpec]) -> Result<Vec<QueryOutput>> {
        Ok(specs.iter().map(|s| eval_spec(self, s, qts)).collect())
    }
}

impl QueryTarget for BackupNode {
    fn safe_ts(&self) -> Timestamp {
        self.board().global_cmt_ts()
    }

    /// One session over the union footprint of `specs`: the pin holds
    /// GC below `qts` until every handle resolves, and each spec goes
    /// through the node's admission queue like any other query.
    fn query_at(&self, qts: Timestamp, specs: &[QuerySpec]) -> Result<Vec<QueryOutput>> {
        let mut tables: Vec<TableId> = specs.iter().map(|s| s.table).collect();
        tables.sort_unstable();
        tables.dedup();
        let session = self.open_session(qts, &tables);
        let handles: Vec<QueryHandle> =
            specs.iter().map(|s| session.submit(s.clone())).collect::<Result<_>>()?;
        handles.into_iter().map(|h| h.wait()).collect()
    }
}

/// `Arc`-wrapped targets forward, so shared ownership doesn't fall off
/// the generic surface.
impl<T: QueryTarget + ?Sized> QueryTarget for Arc<T> {
    fn safe_ts(&self) -> Timestamp {
        (**self).safe_ts()
    }

    fn query_at(&self, qts: Timestamp, specs: &[QuerySpec]) -> Result<Vec<QueryOutput>> {
        (**self).query_at(qts, specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::serial::SerialEngine;
    use crate::engines::ReplayEngine;
    use crate::grouping::TableGrouping;
    use crate::service::NodeOptions;
    use aets_common::{ColumnId, DmlOp, FxHashSet, Lsn, RowKey, TxnId, Value};
    use aets_memtable::Aggregate;
    use aets_wal::{batch_into_epochs, encode_epoch, DmlEntry, TxnLog};

    fn entry(table: u32, key: u64, ts: u64, txn: u64) -> DmlEntry {
        DmlEntry {
            lsn: Lsn::new(ts),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(ts),
            table: TableId::new(table),
            op: DmlOp::Insert,
            key: RowKey::new(key),
            row_version: 1,
            cols: vec![(ColumnId::new(0), Value::Int(ts as i64))],
            before: None,
        }
    }

    fn two_epochs() -> Vec<aets_wal::EncodedEpoch> {
        let txns: Vec<TxnLog> = (1..=2u64)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: vec![entry(0, i, i * 10, i), entry(1, i, i * 10, i)],
            })
            .collect();
        batch_into_epochs(txns, 1).unwrap().iter().map(encode_epoch).collect()
    }

    #[test]
    fn node_and_oracle_targets_agree() {
        let epochs = two_epochs();
        let oracle = MemDb::new(2);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();

        let hot: FxHashSet<TableId> = [TableId::new(0)].into_iter().collect();
        let grouping =
            TableGrouping::new(2, vec![vec![TableId::new(0), TableId::new(1)]], vec![1.0], &hot)
                .unwrap();
        let engine = crate::engines::aets::AetsEngine::builder(grouping).build().unwrap();
        let node = BackupNode::builder()
            .engine(Arc::new(engine))
            .num_tables(2)
            .options(NodeOptions { query_workers: 1, ..Default::default() })
            .build()
            .unwrap();
        node.replay(&epochs).unwrap();

        let qts = node.safe_ts();
        assert_eq!(qts, Timestamp::from_micros(20));
        let specs = vec![
            QuerySpec::count(TableId::new(0)),
            QuerySpec::rows(TableId::new(1)),
            QuerySpec::aggregate(TableId::new(0), ColumnId::new(0), Aggregate::Sum),
        ];
        let got = node.query_at(qts, &specs).unwrap();
        let want = oracle.query_at(qts, &specs).unwrap();
        assert_eq!(got, want, "node target must match the oracle target spec-for-spec");
        assert_eq!(got[0], QueryOutput::Count(2));
    }

    #[test]
    fn query_one_returns_the_single_output() {
        let epochs = two_epochs();
        let oracle = MemDb::new(2);
        SerialEngine.replay_all(&epochs, &oracle).unwrap();
        let out = oracle.query_one(Timestamp::from_micros(10), QuerySpec::count(TableId::new(0)));
        assert_eq!(out.unwrap(), QueryOutput::Count(1));
        assert_eq!(oracle.safe_ts(), Timestamp::MAX);
    }
}
