//! Epoch-aligned durable checkpoints of the backup's Memtable.
//!
//! A checkpoint is taken at an epoch barrier while the engine is healthy:
//! every transaction of every epoch below `next_epoch_seq` has been
//! replayed and published, and nothing beyond it has touched the store.
//! The manifest therefore needs no redo/undo machinery — it is a
//! consistent snapshot by construction, and restart recovery only
//! re-replays the WAL suffix from `next_epoch_seq` onward.
//!
//! ## On-disk format (`ckpt-<next_epoch_seq:020>.ack`)
//!
//! ```text
//! [magic   u32 = "ACKP"] [version u32 = 1]
//! [next_epoch_seq u64]   [global_cmt_ts u64]
//! [num_groups u32] [tg_cmt_ts u64 x num_groups]
//! [num_quarantined u32] [group u32 x num_quarantined]
//! [snapshot_len u64]
//! [meta_crc u32]              -- CRC32 over everything above
//! [snapshot bytes]            -- aets_memtable::encode_db
//! [snapshot_crc u32]          -- CRC32 over the snapshot bytes
//! ```
//!
//! The file is written to a `.tmp` sibling, fsynced, then renamed into
//! place and the directory fsynced — a crash at any instant leaves either
//! the old set of checkpoints or the old set plus a complete new one,
//! never a half-visible manifest. Loading walks newest-first and falls
//! back across manifests that fail any checksum.

use aets_common::{Error, Result, Timestamp};
use aets_memtable::{decode_db, encode_db, MemDb};
use aets_wal::crash::{charge, durable_write, CrashClock};
use aets_wal::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// `"ACKP"` — AETS checkpoint manifest.
const CKPT_MAGIC: u32 = 0x4143_4B50;
const CKPT_VERSION: u32 = 1;

/// Replay positions stored alongside the Memtable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// First epoch sequence NOT contained in the snapshot: recovery
    /// resumes WAL replay here.
    pub next_epoch_seq: u64,
    /// `global_cmt_ts` at the barrier.
    pub global_cmt_ts: Timestamp,
    /// Per-group `tg_cmt_ts` at the barrier (board order).
    pub tg_cmt_ts: Vec<Timestamp>,
    /// Quarantine ledger (board indices). Empty in practice: checkpoints
    /// are skipped while degraded, because truncating the WAL past a
    /// frozen group would lose its unreplayed suffix. The field exists so
    /// the format does not need a version bump if that policy changes.
    pub quarantined: Vec<u32>,
}

/// A checkpoint loaded back from disk.
#[derive(Debug)]
pub struct Checkpoint {
    /// Replay positions at the barrier.
    pub meta: CheckpointMeta,
    /// The restored Memtable.
    pub db: MemDb,
    /// Manifest this state came from.
    pub path: PathBuf,
}

/// Durable store of checkpoint manifests in one directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    clock: Option<Arc<CrashClock>>,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory and removes
    /// leftover `.tmp` files from checkpoints interrupted mid-write.
    pub fn open(dir: impl Into<PathBuf>, clock: Option<Arc<CrashClock>>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = Self { dir, clock };
        for entry in std::fs::read_dir(&store.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                charge(&store.clock, "remove stale checkpoint tmp")?;
                std::fs::remove_file(&path)?;
            }
        }
        Ok(store)
    }

    /// Checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Manifests present on disk, ascending by `next_epoch_seq`.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if let Some(seq) = parse_checkpoint_name(&path) {
                out.push((seq, path));
            }
        }
        out.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Writes a checkpoint atomically: encode, write + fsync a `.tmp`
    /// sibling, rename into place, fsync the directory.
    ///
    /// `watermark` bounds the snapshot (versions with `commit_ts` above it
    /// are excluded); pass [`Timestamp::MAX`] to snapshot everything at
    /// the barrier.
    pub fn write(
        &self,
        meta: &CheckpointMeta,
        db: &MemDb,
        watermark: Timestamp,
    ) -> Result<PathBuf> {
        let mut snapshot = BytesMut::new();
        encode_db(&mut snapshot, db, watermark);

        let mut buf = BytesMut::with_capacity(snapshot.len() + 128);
        buf.put_u32_le(CKPT_MAGIC);
        buf.put_u32_le(CKPT_VERSION);
        buf.put_u64_le(meta.next_epoch_seq);
        buf.put_u64_le(meta.global_cmt_ts.as_micros());
        buf.put_u32_le(meta.tg_cmt_ts.len() as u32);
        for ts in &meta.tg_cmt_ts {
            buf.put_u64_le(ts.as_micros());
        }
        buf.put_u32_le(meta.quarantined.len() as u32);
        for g in &meta.quarantined {
            buf.put_u32_le(*g);
        }
        buf.put_u64_le(snapshot.len() as u64);
        let meta_crc = crc32(&buf);
        buf.put_u32_le(meta_crc);
        let snap_crc = crc32(&snapshot);
        buf.put_slice(&snapshot);
        buf.put_u32_le(snap_crc);

        let final_path = self.dir.join(checkpoint_file_name(meta.next_epoch_seq));
        let tmp_path = final_path.with_extension("tmp");
        {
            charge(&self.clock, "create checkpoint tmp")?;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&tmp_path)?;
            durable_write(&mut f, &buf, &self.clock, "checkpoint manifest")?;
            charge(&self.clock, "fsync checkpoint tmp")?;
            f.sync_data()?;
        }
        charge(&self.clock, "rename checkpoint into place")?;
        std::fs::rename(&tmp_path, &final_path)?;
        charge(&self.clock, "fsync checkpoint dir")?;
        std::fs::File::open(&self.dir)?.sync_all()?;
        Ok(final_path)
    }

    /// Loads the newest valid checkpoint, falling back across manifests
    /// that fail validation (torn writes, checksum mismatches, decode
    /// errors). Returns the checkpoint (or `None` for a cold start) and
    /// the number of manifests skipped on the way.
    pub fn load_latest(&self) -> Result<(Option<Checkpoint>, u64)> {
        let mut fallbacks = 0u64;
        for (seq, path) in self.list()?.into_iter().rev() {
            charge(&self.clock, "read checkpoint manifest")?;
            match std::fs::read(&path) {
                Ok(raw) => match parse_checkpoint(&raw, seq) {
                    Ok((meta, db)) => return Ok((Some(Checkpoint { meta, db, path }), fallbacks)),
                    Err(_) => fallbacks += 1,
                },
                Err(_) => fallbacks += 1,
            }
        }
        Ok((None, fallbacks))
    }

    /// Deletes all but the newest `keep` manifests. Returns how many were
    /// removed.
    pub fn retain(&self, keep: usize) -> Result<usize> {
        let manifests = self.list()?;
        let excess = manifests.len().saturating_sub(keep.max(1));
        let mut removed = 0usize;
        for (_, path) in manifests.into_iter().take(excess) {
            charge(&self.clock, "remove retired checkpoint")?;
            std::fs::remove_file(&path)?;
            removed += 1;
        }
        Ok(removed)
    }
}

/// `ckpt-<next_epoch_seq:020>.ack`.
fn checkpoint_file_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.ack")
}

/// Parses a manifest file name back to its sequence, `None` for foreign
/// files.
fn parse_checkpoint_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let seq = name.strip_prefix("ckpt-")?.strip_suffix(".ack")?;
    seq.parse().ok()
}

/// Validates and decodes one manifest. `named_seq` is the sequence from
/// the file name; a mismatch with the header means the file was tampered
/// with or misplaced and is treated as invalid.
fn parse_checkpoint(raw: &[u8], named_seq: u64) -> Result<(CheckpointMeta, MemDb)> {
    // Fixed prelude through num_groups.
    let fail = || Error::CodecChecksum;
    if raw.len() < 32 {
        return Err(fail());
    }
    let mut cur: &[u8] = raw;
    if cur.get_u32_le() != CKPT_MAGIC || cur.get_u32_le() != CKPT_VERSION {
        return Err(fail());
    }
    let next_epoch_seq = cur.get_u64_le();
    let global_cmt_ts = Timestamp::from_micros(cur.get_u64_le());
    if next_epoch_seq != named_seq {
        return Err(fail());
    }
    if cur.remaining() < 4 {
        return Err(fail());
    }
    let num_groups = cur.get_u32_le() as usize;
    if cur.remaining() < num_groups * 8 + 4 {
        return Err(fail());
    }
    let tg_cmt_ts: Vec<Timestamp> =
        (0..num_groups).map(|_| Timestamp::from_micros(cur.get_u64_le())).collect();
    let num_quarantined = cur.get_u32_le() as usize;
    if cur.remaining() < num_quarantined * 4 + 12 {
        return Err(fail());
    }
    let quarantined: Vec<u32> = (0..num_quarantined).map(|_| cur.get_u32_le()).collect();
    let snapshot_len = cur.get_u64_le() as usize;
    let meta_len = raw.len() - cur.remaining();
    let meta_crc = cur.get_u32_le();
    if crc32(&raw[..meta_len]) != meta_crc {
        return Err(fail());
    }
    if cur.remaining() != snapshot_len + 4 {
        return Err(fail());
    }
    let snapshot = &raw[raw.len() - cur.remaining()..raw.len() - 4];
    let stored_snap_crc = {
        let mut tail: &[u8] = &raw[raw.len() - 4..];
        tail.get_u32_le()
    };
    if crc32(snapshot) != stored_snap_crc {
        return Err(fail());
    }
    let mut snap_buf: Bytes = Bytes::copy_from_slice(snapshot);
    let db = decode_db(&mut snap_buf)?;
    Ok((CheckpointMeta { next_epoch_seq, global_cmt_ts, tg_cmt_ts, quarantined }, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{ColumnId, RowKey, TableId, TxnId, Value};

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("aets-ckpt-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> MemDb {
        let db = MemDb::new(2);
        for t in 0..2u32 {
            for k in 0..20u64 {
                db.table(TableId::new(t)).apply_version(
                    RowKey::new(k),
                    aets_memtable::Version {
                        txn_id: TxnId::new(k + 1),
                        commit_ts: Timestamp::from_micros((k + 1) * 10),
                        op: aets_memtable::OpType::Insert,
                        cols: vec![(ColumnId::new(0), Value::Int(k as i64))],
                    },
                );
            }
        }
        db
    }

    fn sample_meta(seq: u64) -> CheckpointMeta {
        CheckpointMeta {
            next_epoch_seq: seq,
            global_cmt_ts: Timestamp::from_micros(200),
            tg_cmt_ts: vec![Timestamp::from_micros(200), Timestamp::from_micros(180)],
            quarantined: vec![],
        }
    }

    #[test]
    fn write_load_round_trips() {
        let dir = scratch("round");
        let store = CheckpointStore::open(&dir, None).unwrap();
        let db = sample_db();
        let meta = sample_meta(7);
        store.write(&meta, &db, Timestamp::MAX).unwrap();

        let (ckpt, fallbacks) = store.load_latest().unwrap();
        let ckpt = ckpt.expect("checkpoint must load");
        assert_eq!(fallbacks, 0);
        assert_eq!(ckpt.meta, meta);
        assert_eq!(ckpt.db.digest_at(Timestamp::MAX), db.digest_at(Timestamp::MAX));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_wins_and_corrupt_falls_back() {
        let dir = scratch("fallback");
        let store = CheckpointStore::open(&dir, None).unwrap();
        let db = sample_db();
        store.write(&sample_meta(3), &db, Timestamp::MAX).unwrap();
        let newest = store.write(&sample_meta(9), &db, Timestamp::MAX).unwrap();

        // Flip a byte in the newest manifest's snapshot body.
        let mut raw = std::fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&newest, &raw).unwrap();

        let (ckpt, fallbacks) = store.load_latest().unwrap();
        let ckpt = ckpt.expect("older checkpoint must be found");
        assert_eq!(fallbacks, 1, "the corrupt newest manifest is skipped");
        assert_eq!(ckpt.meta.next_epoch_seq, 3);
        assert_eq!(ckpt.db.digest_at(Timestamp::MAX), db.digest_at(Timestamp::MAX));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_of_a_manifest_is_rejected() {
        let dir = scratch("trunc");
        let store = CheckpointStore::open(&dir, None).unwrap();
        let path = store.write(&sample_meta(1), &sample_db(), Timestamp::MAX).unwrap();
        let raw = std::fs::read(&path).unwrap();
        for cut in 0..raw.len() {
            assert!(
                parse_checkpoint(&raw[..cut], 1).is_err(),
                "prefix of {cut}/{} bytes must not validate",
                raw.len()
            );
        }
        assert!(parse_checkpoint(&raw, 1).is_ok());
        assert!(parse_checkpoint(&raw, 2).is_err(), "name/header seq mismatch rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retain_prunes_oldest_and_tmp_files_are_cleared() {
        let dir = scratch("retain");
        let store = CheckpointStore::open(&dir, None).unwrap();
        let db = sample_db();
        for seq in [2u64, 5, 8, 11] {
            store.write(&sample_meta(seq), &db, Timestamp::MAX).unwrap();
        }
        assert_eq!(store.retain(2).unwrap(), 2);
        let seqs: Vec<u64> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![8, 11]);
        // retain(0) still keeps one.
        assert_eq!(store.retain(0).unwrap(), 1);
        assert_eq!(store.list().unwrap().len(), 1);

        // A stale tmp from a crashed write is removed on reopen.
        std::fs::write(dir.join("ckpt-00000000000000000099.tmp"), b"half").unwrap();
        let store = CheckpointStore::open(&dir, None).unwrap();
        assert!(!dir.join("ckpt-00000000000000000099.tmp").exists());
        assert_eq!(store.list().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_write_never_corrupts_existing_checkpoints() {
        let dir = scratch("crash");
        let db = sample_db();
        {
            let store = CheckpointStore::open(&dir, None).unwrap();
            store.write(&sample_meta(4), &db, Timestamp::MAX).unwrap();
        }
        // Probe the op cost of one checkpoint write, then crash at every
        // budget inside it.
        let probe = CrashClock::unlimited();
        {
            let store = CheckpointStore::open(&dir, Some(probe.clone())).unwrap();
            store.write(&sample_meta(9), &db, Timestamp::MAX).unwrap();
            for p in store.list().unwrap() {
                if p.0 == 9 {
                    std::fs::remove_file(&p.1).unwrap();
                }
            }
        }
        let total = probe.used();
        for budget in 1..=total {
            let clock = CrashClock::with_budget(budget);
            if let Ok(store) = CheckpointStore::open(&dir, Some(clock)) {
                let _ = store.write(&sample_meta(9), &db, Timestamp::MAX);
            }
            // Restart: no clock. Either the old checkpoint alone or both
            // must load cleanly; fallbacks stay zero because torn tmps are
            // swept, not parsed.
            let store = CheckpointStore::open(&dir, None).unwrap();
            let (ckpt, fallbacks) = store.load_latest().unwrap();
            let ckpt = ckpt.expect("seq-4 checkpoint must always survive");
            assert_eq!(fallbacks, 0, "budget {budget}: no torn manifest may be visible");
            assert!(ckpt.meta.next_epoch_seq == 4 || ckpt.meta.next_epoch_seq == 9);
            assert_eq!(ckpt.db.digest_at(Timestamp::MAX), db.digest_at(Timestamp::MAX));
            // Clean up a committed seq-9 so the next budget starts equal.
            for p in store.list().unwrap() {
                if p.0 == 9 {
                    std::fs::remove_file(&p.1).unwrap();
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
