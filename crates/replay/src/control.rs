//! The adaptive control loop (Sections IV-A/IV-B, closed live).
//!
//! Offline, the paper's pipeline is: observe table access rates →
//! forecast the next interval → DBSCAN-group tables by predicted rate →
//! solve `λ_gi · n_gi / t_gi = const` for the thread split. This module
//! runs that pipeline *online* against a replaying engine:
//!
//! 1. every `epoch_window` epochs, [`AdaptiveController::on_epoch`]
//!    samples the cumulative `aets_table_access_total` counters out of
//!    the shared telemetry registry and diffs them into per-window
//!    access rates ([`aets_forecast::RateTracker`]);
//! 2. the configured [`ForecastModel`] predicts the next window's rates;
//! 3. tables above `hot_min_rate` form the predicted hot set — when it
//!    shifts, [`plan_grouping`] re-clusters the tables (count-preserving
//!    DBSCAN) and the controller queues a [`Reconfigure::Regroup`];
//! 4. otherwise, if predicted rates drifted past `resplit_threshold`,
//!    the controller re-solves the thread split with the paper's
//!    allocator and queues a [`Reconfigure::SetThreadSplit`] pin.
//!
//! Commands land through the engine's [`ReconfigureHandle`] and take
//! effect at the next epoch boundary (the drain-move-resume point — see
//! the handle's docs). The controller is deliberately passive: it owns
//! no thread; the serving loop (`BackupNode::replay`,
//! `DurableBackup::ingest`) ticks it once per replayed epoch.

use crate::engines::aets::{Reconfigure, ReconfigureHandle};
use crate::grouping::TableGrouping;
use crate::{allocate_threads, UrgencyMode};
use aets_common::{Error, FxHashSet, Result, TableId};
use aets_forecast::{ForecastModel, RateTracker};
use aets_telemetry::{names, table_label, Counter, Gauge, Histogram, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs of the adaptive control loop.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Epochs per control window: how often the registry is sampled and
    /// a new plan considered.
    pub epoch_window: usize,
    /// Complete rate windows observed before the first plan (the
    /// forecaster needs history; planning off one noisy window thrashes).
    pub min_history: usize,
    /// The online forecasting model.
    pub model: ForecastModel,
    /// Total replay threads the split is solved over. Must match the
    /// engine's `AetsConfig::threads` for the pin to mean anything.
    pub threads: usize,
    /// Urgency mode of the split solver (Log = paper).
    pub urgency: UrgencyMode,
    /// Relative rate distance for the DBSCAN re-clustering.
    pub eps: f64,
    /// Predicted accesses/sec above which a table is considered hot
    /// (enters a stage-1 group).
    pub hot_min_rate: f64,
    /// Queue `Regroup` commands when the predicted hot set shifts.
    pub regroup: bool,
    /// Queue `SetThreadSplit` pins when predicted rates drift.
    pub resplit: bool,
    /// Relative per-group rate drift (vs the last planned rates) that
    /// triggers a re-split without a regroup.
    pub resplit_threshold: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            epoch_window: 4,
            min_history: 2,
            model: ForecastModel::default(),
            threads: 4,
            urgency: UrgencyMode::Log,
            eps: 0.3,
            hot_min_rate: 1.0,
            regroup: true,
            resplit: true,
            resplit_threshold: 0.25,
        }
    }
}

/// Telemetry handles of the control loop, cached at construction like
/// the engine's.
#[derive(Debug)]
struct ControllerStats {
    windows: Counter,
    plan_us: Histogram,
    hot_tables: Gauge,
}

/// The live forecast-driven controller. See the module docs for the
/// loop it closes; one instance drives one engine.
#[derive(Debug)]
pub struct AdaptiveController {
    cfg: ControllerConfig,
    handle: ReconfigureHandle,
    telemetry: Arc<Telemetry>,
    grouping: Arc<TableGrouping>,
    tracker: RateTracker,
    stats: ControllerStats,
    epochs_seen: usize,
    /// Monotone count of complete rate windows (the tracker's history is
    /// bounded, so its length alone undercounts long runs).
    windows_seen: usize,
    last_sample: Instant,
    /// Hot set of the last plan (None until the first plan).
    planned_hot: Option<FxHashSet<TableId>>,
    /// Per-group predicted rates the last split was solved against.
    planned_group_rates: Option<Vec<f64>>,
}

impl AdaptiveController {
    /// Builds a controller for an engine: `handle` from
    /// [`crate::ReplayEngine::reconfigure`], `grouping` the engine's
    /// current grouping, `telemetry` the instance whose registry the
    /// serving layer records `aets_table_access_total` into (it must be
    /// the engine's, or the counters never move).
    pub fn new(
        cfg: ControllerConfig,
        handle: ReconfigureHandle,
        grouping: Arc<TableGrouping>,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self> {
        if cfg.epoch_window == 0 {
            return Err(Error::Config("epoch_window must be positive".into()));
        }
        if cfg.threads == 0 {
            return Err(Error::Config("controller needs at least one thread to split".into()));
        }
        let history = match &cfg.model {
            ForecastModel::Ha { window } => (*window).max(cfg.min_history).max(1),
            ForecastModel::Naive => cfg.min_history.max(1),
        };
        let tracker = RateTracker::new(grouping.num_tables(), history);
        let reg = telemetry.registry();
        let stats = ControllerStats {
            windows: reg.counter(names::ADAPT_WINDOWS),
            plan_us: reg.histogram(names::ADAPT_PLAN_US),
            hot_tables: reg.gauge(names::ADAPT_HOT_TABLES),
        };
        Ok(Self {
            cfg,
            handle,
            grouping,
            telemetry,
            tracker,
            stats,
            epochs_seen: 0,
            windows_seen: 0,
            last_sample: Instant::now(),
            planned_hot: None,
            planned_group_rates: None,
        })
    }

    /// Complete control windows observed so far.
    pub fn windows_observed(&self) -> usize {
        self.windows_seen
    }

    /// Ticks the loop after one replayed epoch. Cheap off-window (one
    /// increment); on-window it samples the registry, forecasts, and may
    /// queue reconfiguration commands. Errors are planning errors (e.g.
    /// a degenerate clustering) — the engine keeps replaying under its
    /// current plan regardless.
    pub fn on_epoch(&mut self) -> Result<()> {
        self.epochs_seen += 1;
        if !self.epochs_seen.is_multiple_of(self.cfg.epoch_window) {
            return Ok(());
        }
        let elapsed = self.last_sample.elapsed();
        self.last_sample = Instant::now();
        let snap = self.telemetry.snapshot();
        let counts: Vec<u64> = (0..self.grouping.num_tables())
            .map(|t| snap.counter(names::TABLE_ACCESS, &table_label(t)).unwrap_or(0))
            .collect();
        self.stats.windows.inc();
        if self.tracker.observe(&counts, elapsed)?.is_none() {
            return Ok(());
        }
        self.windows_seen += 1;
        if self.tracker.len() < self.cfg.min_history {
            return Ok(());
        }
        let Some(predicted) = self.tracker.forecast(&self.cfg.model)? else {
            return Ok(());
        };
        let t_plan = Instant::now();
        let out = self.plan(&predicted);
        self.stats.plan_us.record_micros(t_plan.elapsed().as_micros() as u64);
        out
    }

    /// Considers one plan against the predicted per-table rates.
    fn plan(&mut self, predicted: &[f64]) -> Result<()> {
        let hot: FxHashSet<TableId> = (0..predicted.len())
            .filter(|&t| predicted[t] >= self.cfg.hot_min_rate)
            .map(|t| TableId::new(t as u32))
            .collect();
        self.stats.hot_tables.set(hot.len() as u64);
        if predicted.iter().all(|r| *r <= 0.0) {
            // Nothing observed this window (idle stream): keep the plan.
            return Ok(());
        }

        let hot_shifted = self.planned_hot.as_ref() != Some(&hot);
        if self.cfg.regroup && hot_shifted {
            let next = plan_grouping(
                self.grouping.num_tables(),
                self.grouping.num_groups(),
                &hot,
                predicted,
                self.cfg.eps,
            )?;
            let next = Arc::new(next);
            let group_rates = group_rates(&next, predicted);
            self.handle.send(Reconfigure::Regroup((*next).clone()))?;
            if self.cfg.resplit {
                let split = self.solve_split(&group_rates)?;
                self.handle.send(Reconfigure::SetThreadSplit(split))?;
            }
            self.grouping = next;
            self.planned_hot = Some(hot);
            self.planned_group_rates = Some(group_rates);
            return Ok(());
        }

        if self.cfg.resplit {
            let rates = group_rates(&self.grouping, predicted);
            let drifted = match &self.planned_group_rates {
                None => true,
                Some(prev) => rates.iter().zip(prev).any(|(now, before)| {
                    (now - before).abs() / before.max(1e-9) > self.cfg.resplit_threshold
                }),
            };
            if drifted {
                let split = self.solve_split(&rates)?;
                self.handle.send(Reconfigure::SetThreadSplit(split))?;
                self.planned_hot = Some(hot);
                self.planned_group_rates = Some(rates);
            }
        }
        Ok(())
    }

    /// Solves the paper's `λ·n` split over predicted group rates. Volume
    /// is not yet known for the *next* window, so unit volumes make the
    /// weights pure `λ` (rate × urgency) — exactly the term the pin is
    /// meant to fix between windows.
    fn solve_split(&self, rates: &[f64]) -> Result<Vec<usize>> {
        allocate_threads(self.cfg.threads, &vec![1u64; rates.len()], rates, self.cfg.urgency)
    }
}

/// Sums predicted per-table rates into per-group rates under `grouping`.
fn group_rates(grouping: &TableGrouping, predicted: &[f64]) -> Vec<f64> {
    let mut rates = vec![0.0f64; grouping.num_groups()];
    for (t, r) in predicted.iter().enumerate() {
        rates[grouping.group_of(TableId::new(t as u32)).index()] += *r;
    }
    rates
}

/// Count-preserving DBSCAN regrouping: clusters `hot` tables by
/// predicted rate into exactly `num_groups - 1` stage-1 groups plus one
/// cold catch-all (or all `num_groups` among hot tables when nothing is
/// cold). The engine's board, quarantine ledger and cell pools are sized
/// to `num_groups` at construction, so unlike the offline
/// [`TableGrouping::dbscan`] the group count is a hard constraint:
/// natural clusters are merged (nearest means first) or split (at the
/// widest internal rate gap) until the count fits. When fewer hot tables
/// exist than hot slots, the highest-rate cold tables are promoted so no
/// group is empty.
pub fn plan_grouping(
    num_tables: usize,
    num_groups: usize,
    hot_tables: &FxHashSet<TableId>,
    predicted: &[f64],
    eps: f64,
) -> Result<TableGrouping> {
    if predicted.len() != num_tables {
        return Err(Error::Config(format!(
            "{} predicted rates for {num_tables} tables",
            predicted.len()
        )));
    }
    if num_tables < num_groups {
        return Err(Error::Config(format!(
            "cannot split {num_tables} tables into {num_groups} non-empty groups"
        )));
    }
    if let Some(t) = (0..num_tables).find(|&t| predicted[t].is_nan()) {
        return Err(Error::Config(format!("NaN predicted rate for table {t}")));
    }
    let rate_of = |t: TableId| predicted[t.index()];
    if num_groups == 1 {
        return Ok(TableGrouping::single(num_tables, hot_tables));
    }

    // Hot tables sorted descending by predicted rate, cold ascending so
    // promotions pop the hottest cold table.
    let mut hot: Vec<TableId> =
        (0..num_tables as u32).map(TableId::new).filter(|t| hot_tables.contains(t)).collect();
    let mut cold: Vec<TableId> =
        (0..num_tables as u32).map(TableId::new).filter(|t| !hot_tables.contains(t)).collect();
    hot.sort_by(|a, b| rate_of(*b).total_cmp(&rate_of(*a)));
    cold.sort_by(|a, b| rate_of(*a).total_cmp(&rate_of(*b)));

    // Promote the hottest cold tables until every hot slot can be filled
    // (each hot group needs at least one table; one group stays cold
    // while any cold table remains).
    let mut hot_set: FxHashSet<TableId> = hot_tables.clone();
    loop {
        let hot_slots = if cold.is_empty() { num_groups } else { num_groups - 1 };
        if hot.len() >= hot_slots {
            break;
        }
        let t = cold
            .pop()
            .ok_or_else(|| Error::Config("not enough tables to fill every group".into()))?;
        hot_set.insert(t);
        hot.push(t);
        hot.sort_by(|a, b| rate_of(*b).total_cmp(&rate_of(*a)));
    }
    let hot_slots = if cold.is_empty() { num_groups } else { num_groups - 1 };

    // Natural clusters over ascending log rates, then merge/split to the
    // exact slot count.
    hot.sort_by(|a, b| rate_of(*a).total_cmp(&rate_of(*b)));
    let logs: Vec<f64> = hot.iter().map(|t| rate_of(*t).max(0.0).ln_1p()).collect();
    let labels = crate::grouping::dbscan_1d(&logs, eps, 1);
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (i, l) in labels.iter().enumerate() {
        match l {
            Some(l) => {
                while clusters.len() <= *l {
                    clusters.push(Vec::new());
                }
                clusters[*l].push(i);
            }
            None => clusters.push(vec![i]),
        }
    }
    clusters.retain(|c| !c.is_empty());
    // The input is sorted, so each cluster is a contiguous ascending run;
    // order clusters by their first member to keep adjacency meaningful.
    clusters.sort_by_key(|c| c[0]);

    // Merge nearest-mean adjacent clusters down to the slot count.
    while clusters.len() > hot_slots {
        let mean = |c: &[usize]| c.iter().map(|&i| logs[i]).sum::<f64>() / c.len() as f64;
        let (at, _) = clusters
            .windows(2)
            .enumerate()
            .map(|(i, w)| (i, mean(&w[1]) - mean(&w[0])))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or_else(|| Error::Replay("merge step on a single cluster".into()))?;
        let tail = clusters.remove(at + 1);
        clusters[at].extend(tail);
    }
    // Split at the widest internal gap up to the slot count.
    while clusters.len() < hot_slots {
        let mut best: Option<(usize, usize, f64)> = None; // (cluster, cut, gap)
        for (ci, c) in clusters.iter().enumerate() {
            for cut in 1..c.len() {
                let gap = logs[c[cut]] - logs[c[cut - 1]];
                if best.is_none_or(|(_, _, g)| gap > g) {
                    best = Some((ci, cut, gap));
                }
            }
        }
        let (ci, cut, _) =
            best.ok_or_else(|| Error::Replay("no splittable cluster left".into()))?;
        let tail = clusters[ci].split_off(cut);
        clusters.insert(ci + 1, tail);
    }

    let mut groups: Vec<Vec<TableId>> =
        clusters.iter().map(|c| c.iter().map(|&i| hot[i]).collect::<Vec<_>>()).collect();
    let mut rates: Vec<f64> = groups
        .iter()
        .map(|g| g.iter().map(|t| rate_of(*t)).sum::<f64>() / g.len() as f64)
        .collect();
    if !cold.is_empty() {
        rates.push(cold.iter().map(|t| rate_of(*t)).sum::<f64>() / cold.len() as f64);
        groups.push(cold);
    }
    TableGrouping::new(num_tables, groups, rates, &hot_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::aets::{AetsConfig, AetsEngine};
    use crate::engines::ReplayEngine;
    use aets_telemetry::Telemetry;
    use std::time::Duration;

    fn hs(tables: &[u32]) -> FxHashSet<TableId> {
        tables.iter().copied().map(TableId::new).collect()
    }

    fn check_partition(g: &TableGrouping, num_tables: usize, num_groups: usize) {
        assert_eq!(g.num_groups(), num_groups);
        assert_eq!(g.num_tables(), num_tables);
        for t in 0..num_tables as u32 {
            let gid = g.group_of(TableId::new(t));
            assert!(g.members(gid).contains(&TableId::new(t)));
        }
    }

    #[test]
    fn plan_grouping_preserves_group_count() {
        let rates: Vec<f64> = (0..10).map(|t| if t < 3 { 100.0 + t as f64 } else { 0.1 }).collect();
        for k in 1..=5usize {
            let g = plan_grouping(10, k, &hs(&[0, 1, 2]), &rates, 0.3).unwrap();
            check_partition(&g, 10, k);
        }
    }

    #[test]
    fn hot_tables_land_in_stage1_groups() {
        let mut rates = vec![0.1f64; 8];
        rates[2] = 500.0;
        rates[5] = 40.0;
        let g = plan_grouping(8, 3, &hs(&[2, 5]), &rates, 0.3).unwrap();
        check_partition(&g, 8, 3);
        assert!(g.is_hot(g.group_of(TableId::new(2))));
        assert!(g.is_hot(g.group_of(TableId::new(5))));
        // Widely separated rates must not share a group.
        assert_ne!(g.group_of(TableId::new(2)), g.group_of(TableId::new(5)));
        // The cold catch-all exists and is cold.
        assert_eq!(g.hot_groups().len(), 2);
    }

    #[test]
    fn too_few_hot_tables_promotes_the_hottest_cold_ones() {
        let mut rates = vec![1.0f64; 6];
        rates[0] = 100.0; // the only declared-hot table
        rates[3] = 50.0; // hottest cold table: must be promoted
        let g = plan_grouping(6, 3, &hs(&[0]), &rates, 0.3).unwrap();
        check_partition(&g, 6, 3);
        assert!(g.is_hot(g.group_of(TableId::new(0))));
        assert!(g.is_hot(g.group_of(TableId::new(3))), "promoted table must be stage-1");
    }

    #[test]
    fn empty_hot_set_still_fills_every_group() {
        let rates = vec![2.0f64; 5];
        let g = plan_grouping(5, 3, &FxHashSet::default(), &rates, 0.3).unwrap();
        check_partition(&g, 5, 3);
    }

    #[test]
    fn plan_grouping_rejects_degenerate_inputs() {
        assert!(plan_grouping(2, 3, &FxHashSet::default(), &[1.0, 1.0], 0.3).is_err());
        assert!(plan_grouping(3, 2, &FxHashSet::default(), &[1.0, 1.0], 0.3).is_err());
        assert!(plan_grouping(2, 2, &FxHashSet::default(), &[f64::NAN, 1.0], 0.3).is_err());
    }

    #[test]
    fn controller_regroups_when_the_hot_set_shifts() {
        // 4 tables, 2 groups; the serving layer "records" accesses by
        // bumping the registry counters directly. First the hot mass
        // sits on table 0; then it rotates to table 3 — the controller
        // must queue a regroup moving table 3 into a stage-1 group.
        let telemetry = Arc::new(Telemetry::new());
        let grouping = Arc::new(
            TableGrouping::new(
                4,
                vec![
                    vec![TableId::new(0), TableId::new(1)],
                    vec![TableId::new(2), TableId::new(3)],
                ],
                vec![10.0, 0.1],
                &hs(&[0]),
            )
            .unwrap(),
        );
        let eng = AetsEngine::builder((*grouping).clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(telemetry.clone())
            .build()
            .unwrap();
        let cfg = ControllerConfig {
            epoch_window: 1,
            min_history: 1,
            model: aets_forecast::ForecastModel::Naive,
            threads: 2,
            hot_min_rate: 0.5,
            ..Default::default()
        };
        let mut ctl =
            AdaptiveController::new(cfg, eng.reconfigure_handle(), grouping, telemetry.clone())
                .unwrap();
        let reg = telemetry.registry();
        let touch = |t: usize, n: u64| reg.counter_with(names::TABLE_ACCESS, table_label(t)).add(n);

        touch(0, 1000);
        ctl.on_epoch().unwrap(); // baseline sample
        std::thread::sleep(Duration::from_millis(5));
        touch(0, 1000);
        ctl.on_epoch().unwrap(); // first window: hot = {0}
        let after_first = eng.reconfigure_handle().pending();
        std::thread::sleep(Duration::from_millis(5));
        touch(3, 5000);
        ctl.on_epoch().unwrap(); // hot set shifts to include table 3
        assert!(
            eng.reconfigure_handle().pending() > after_first,
            "hot-set shift must queue commands"
        );
        assert!(ctl.windows_observed() >= 2);
    }

    #[test]
    fn controller_resplits_on_rate_drift_without_hot_shift() {
        let telemetry = Arc::new(Telemetry::new());
        let grouping = Arc::new(
            TableGrouping::new(
                2,
                vec![vec![TableId::new(0)], vec![TableId::new(1)]],
                vec![5.0, 5.0],
                &hs(&[0, 1]),
            )
            .unwrap(),
        );
        let eng = AetsEngine::builder((*grouping).clone())
            .config(AetsConfig { threads: 4, ..Default::default() })
            .telemetry(telemetry.clone())
            .build()
            .unwrap();
        let cfg = ControllerConfig {
            epoch_window: 1,
            min_history: 1,
            model: aets_forecast::ForecastModel::Naive,
            threads: 4,
            hot_min_rate: 0.5,
            resplit_threshold: 0.2,
            ..Default::default()
        };
        let handle = eng.reconfigure_handle();
        let mut ctl =
            AdaptiveController::new(cfg, handle.clone(), grouping, telemetry.clone()).unwrap();
        let reg = telemetry.registry();
        let touch = |t: usize, n: u64| reg.counter_with(names::TABLE_ACCESS, table_label(t)).add(n);

        touch(0, 100);
        touch(1, 100);
        ctl.on_epoch().unwrap(); // baseline
        std::thread::sleep(Duration::from_millis(5));
        touch(0, 100);
        touch(1, 100);
        ctl.on_epoch().unwrap(); // first plan (hot set {0,1}, balanced)
        let before = handle.pending();
        std::thread::sleep(Duration::from_millis(5));
        // Same hot set, but table 0 now dominates: drift > threshold.
        touch(0, 100_000);
        touch(1, 100);
        ctl.on_epoch().unwrap();
        assert!(handle.pending() > before, "rate drift must queue a re-split");
    }

    #[test]
    fn controller_rejects_degenerate_configs() {
        let telemetry = Arc::new(Telemetry::disabled());
        let grouping = Arc::new(TableGrouping::single(2, &FxHashSet::default()));
        let eng = AetsEngine::builder((*grouping).clone()).build().unwrap();
        for cfg in [
            ControllerConfig { epoch_window: 0, ..Default::default() },
            ControllerConfig { threads: 0, ..Default::default() },
        ] {
            assert!(AdaptiveController::new(
                cfg,
                eng.reconfigure_handle(),
                grouping.clone(),
                telemetry.clone()
            )
            .is_err());
        }
    }

    #[test]
    fn planned_regroup_drains_through_a_live_engine() {
        // End-to-end: controller plans off registry counters, engine
        // applies at the epoch boundary, and the new grouping routes the
        // rotated-hot table into stage 1.
        use aets_common::Timestamp;
        let telemetry = Arc::new(Telemetry::new());
        let grouping = Arc::new(
            TableGrouping::new(
                3,
                vec![vec![TableId::new(0), TableId::new(1)], vec![TableId::new(2)]],
                vec![10.0, 0.1],
                &hs(&[0]),
            )
            .unwrap(),
        );
        let eng = AetsEngine::builder((*grouping).clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(telemetry.clone())
            .build()
            .unwrap();
        let cfg = ControllerConfig {
            epoch_window: 1,
            min_history: 1,
            model: aets_forecast::ForecastModel::Naive,
            threads: 2,
            hot_min_rate: 0.5,
            ..Default::default()
        };
        let mut ctl =
            AdaptiveController::new(cfg, eng.reconfigure_handle(), grouping, telemetry.clone())
                .unwrap();
        let reg = telemetry.registry();
        let touch = |t: usize, n: u64| reg.counter_with(names::TABLE_ACCESS, table_label(t)).add(n);

        touch(0, 100);
        ctl.on_epoch().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        touch(2, 10_000); // the hot mass rotates to table 2
        ctl.on_epoch().unwrap();
        assert!(eng.reconfigure_handle().pending() > 0);

        // One epoch through the engine applies the plan.
        use aets_common::{ColumnId, DmlOp, Lsn, RowKey, TxnId, Value};
        use aets_wal::{DmlEntry, TxnLog};
        let txns = vec![TxnLog {
            txn_id: TxnId::new(1),
            commit_ts: Timestamp::from_micros(10),
            entries: vec![DmlEntry {
                lsn: Lsn::new(1),
                txn_id: TxnId::new(1),
                ts: Timestamp::from_micros(10),
                table: TableId::new(0),
                op: DmlOp::Insert,
                key: RowKey::new(1),
                row_version: 1,
                cols: vec![(ColumnId::new(0), Value::Int(1))],
                before: None,
            }],
        }];
        let epochs: Vec<_> = aets_wal::batch_into_epochs(txns, 4)
            .unwrap()
            .iter()
            .map(aets_wal::encode_epoch)
            .collect();
        let db = aets_memtable::MemDb::new(3);
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert!(m.regroups_applied >= 1);
        assert!(eng.grouping_gen() >= 1);
        let g = eng.grouping();
        assert!(g.is_hot(g.group_of(TableId::new(2))), "rotated-hot table must be stage-1");
        assert_eq!(g.num_groups(), 2);
    }
}
