//! The query-serving backup node (the paper's reason to exist).
//!
//! [`BackupNode`] is the facade tying the replay side to a real read
//! side: it owns the engine, the [`VisibilityBoard`], the [`MemDb`], the
//! GC floor, and telemetry, and serves concurrent snapshot reads while
//! epochs stream in. Independent clients call
//! [`BackupNode::open_session`] with a snapshot timestamp `qts`; the
//! returned [`ReadSession`] pins `qts` into the GC floor for its
//! lifetime (RAII — dropping the session releases the pin), admits via
//! Algorithm 3 with event-driven parking, and executes [`QuerySpec`]s on
//! a bounded worker pool:
//!
//! * **Backpressure** — submissions land in a bounded admission queue;
//!   a full queue rejects with [`Error::Overloaded`] instead of queueing
//!   unboundedly.
//! * **Deadlines** — every query carries a timeout covering admission
//!   *and* execution; expiry yields [`Error::QueryTimeout`]. A
//!   [`QueryHandle`] can also cancel cooperatively.
//! * **Degraded mode** — a query needing a quarantined group whose
//!   frozen watermark is below its `qts` is refused with
//!   [`Error::Degraded`] as soon as the quarantine is known, rather than
//!   sleeping out its timeout.
//!
//! Telemetry is wired throughout: latency / queue-wait / admission-wait
//! histograms, in-flight and queue-depth gauges, served / timed-out /
//! overloaded / refused / cancelled counters, and session open/close
//! events.

use crate::control::AdaptiveController;
use crate::engines::ReplayEngine;
use crate::metrics::ReplayMetrics;
use crate::options::ServiceOptions;
use crate::visibility::{VisibilityBoard, WaitOutcome};
use aets_common::{Error, GroupId, Result, Row, RowKey, TableId, Timestamp};
use aets_memtable::{gc_db, Aggregate, Filter, FloorTicket, GcStats, MemDb, QueryFloor, Scan};
use aets_telemetry::trace::stages;
use aets_telemetry::{
    names, table_label, ClockFn, Counter, EventKind, FlightRecorder, FlightRecorderConfig, Gauge,
    HealthFn, HealthReport, Histogram, ObsServer, Telemetry,
};
use aets_wal::EncodedEpoch;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How queries wait for Algorithm 3 admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Park the thread; `publish_group` / `publish_global` wake exactly
    /// the waiters each publish decides. The default.
    #[default]
    EventDriven,
    /// Re-check the predicate on a fixed interval
    /// ([`NodeOptions::poll_interval`]). The pre-redesign behaviour, kept
    /// for the admission benchmark.
    SleepPoll,
}

/// Tunables of the query-serving layer.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Query worker threads.
    pub query_workers: usize,
    /// Bounded admission-queue capacity; submissions beyond it are
    /// rejected with [`Error::Overloaded`].
    pub queue_depth: usize,
    /// Per-query deadline (admission + execution) when the
    /// [`QuerySpec`] carries none.
    pub default_timeout: Duration,
    /// Admission wait strategy.
    pub admission: AdmissionMode,
    /// Re-check interval of [`AdmissionMode::SleepPoll`].
    pub poll_interval: Duration,
    /// Bind address of the live observability endpoint (e.g.
    /// `"127.0.0.1:0"`); `None` serves no HTTP. The endpoint exposes
    /// `/metrics`, `/snapshot.json`, `/spans.json`, `/events.json`, and a
    /// `/healthz` that reports 503 with the quarantined groups while the
    /// node is degraded.
    #[deprecated(note = "set `service.obs_addr` (ServiceOptions::builder().obs_addr(..)) instead")]
    pub obs_addr: Option<String>,
    /// Consolidated service-layer knobs shared with the durable backup
    /// and the fleet: telemetry handle, observability endpoint, flight
    /// recorder, retry policy, and the adaptive control loop.
    pub service: ServiceOptions,
}

impl Default for NodeOptions {
    fn default() -> Self {
        #[allow(deprecated)]
        Self {
            query_workers: 4,
            queue_depth: 64,
            default_timeout: Duration::from_secs(30),
            admission: AdmissionMode::EventDriven,
            poll_interval: Duration::from_millis(2),
            obs_addr: None,
            service: ServiceOptions::default(),
        }
    }
}

impl NodeOptions {
    /// Effective observability bind address: the consolidated
    /// [`ServiceOptions::obs_addr`] wins; the deprecated per-struct field
    /// is honoured when the new one is unset.
    pub fn effective_obs_addr(&self) -> Option<&str> {
        #[allow(deprecated)]
        self.service.obs_addr.as_deref().or(self.obs_addr.as_deref())
    }
}

/// What a query computes over its table's snapshot at the session `qts`.
#[derive(Debug, Clone)]
pub enum OutputKind {
    /// Materialize every matching `(key, row)` in key order.
    Rows,
    /// Count matching rows.
    Count,
    /// Numeric aggregate over a column of the matching rows.
    AggregateCol {
        /// Aggregated column.
        column: aets_common::ColumnId,
        /// Aggregate kind.
        agg: Aggregate,
    },
}

/// One analytical query against a [`ReadSession`]'s snapshot.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Table to scan.
    pub table: TableId,
    /// Optional inclusive key range (ordered B+Tree scan).
    pub key_range: Option<(RowKey, RowKey)>,
    /// Conjunction of column filters.
    pub filters: Vec<Filter>,
    /// What to compute.
    pub output: OutputKind,
    /// Per-query deadline override
    /// ([`NodeOptions::default_timeout`] when `None`).
    pub timeout: Option<Duration>,
}

impl QuerySpec {
    /// A full-table row scan.
    pub fn rows(table: TableId) -> Self {
        Self {
            table,
            key_range: None,
            filters: Vec::new(),
            output: OutputKind::Rows,
            timeout: None,
        }
    }

    /// A row count.
    pub fn count(table: TableId) -> Self {
        Self {
            table,
            key_range: None,
            filters: Vec::new(),
            output: OutputKind::Count,
            timeout: None,
        }
    }

    /// A numeric aggregate over `column`.
    pub fn aggregate(table: TableId, column: aets_common::ColumnId, agg: Aggregate) -> Self {
        Self {
            table,
            key_range: None,
            filters: Vec::new(),
            output: OutputKind::AggregateCol { column, agg },
            timeout: None,
        }
    }

    /// Restricts to an inclusive key range.
    pub fn keys(mut self, lo: RowKey, hi: RowKey) -> Self {
        self.key_range = Some((lo, hi));
        self
    }

    /// Adds a filter.
    pub fn filter(mut self, f: Filter) -> Self {
        self.filters.push(f);
        self
    }

    /// Overrides the node's default deadline for this query.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }
}

/// A completed query's result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Matching rows in key order.
    Rows(Vec<(RowKey, Row)>),
    /// Matching row count.
    Count(usize),
    /// Aggregate value (`None` when no row contributed).
    Aggregate(Option<f64>),
}

/// Handle to an in-flight query submitted with [`ReadSession::submit`].
#[derive(Debug)]
pub struct QueryHandle {
    rx: mpsc::Receiver<Result<QueryOutput>>,
    cancel: Arc<AtomicBool>,
}

impl QueryHandle {
    /// Requests cooperative cancellation: the query fails with
    /// [`Error::Cancelled`] at its next check point (before admission,
    /// or every few hundred scanned rows).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// Blocks until the query completes.
    pub fn wait(self) -> Result<QueryOutput> {
        self.rx.recv().unwrap_or_else(|_| Err(Error::Replay("query worker disappeared".into())))
    }

    /// Returns the result if already available.
    pub fn try_wait(&self) -> Option<Result<QueryOutput>> {
        self.rx.try_recv().ok()
    }
}

/// One submission travelling through the admission queue to a worker.
struct Job {
    gids: Vec<GroupId>,
    /// Grouping generation `gids` was computed under; a live regroup in
    /// flight demotes the admission wait to the global-watermark path.
    gen: u64,
    qts: Timestamp,
    spec: QuerySpec,
    enqueued: Instant,
    deadline: Instant,
    cancel: Arc<AtomicBool>,
    reply: mpsc::Sender<Result<QueryOutput>>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded MPMC admission queue: sessions push (rejecting when full),
/// workers pop (blocking), `close` drains the pool at node drop.
struct AdmissionQueue {
    cap: usize,
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl AdmissionQueue {
    fn new(cap: usize) -> Self {
        Self { cap, state: Mutex::new(QueueState::default()), cv: Condvar::new() }
    }

    /// Enqueues unless full or closed; returns the job back on rejection.
    // The large `Err` is the point: rejection hands the job back so the
    // caller can fail it with `Overloaded` without boxing the hot path.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> std::result::Result<(), Job> {
        let mut s = self.state.lock();
        if s.closed || s.jobs.len() >= self.cap {
            return Err(job);
        }
        s.jobs.push_back(job);
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock();
        loop {
            if let Some(job) = s.jobs.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            self.cv.wait(&mut s);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

/// Telemetry handles cached at node construction so the per-query path
/// never touches the registry map.
struct ServiceStats {
    latency: Histogram,
    queue_wait: Histogram,
    admission_wait: Histogram,
    served: Counter,
    timed_out: Counter,
    overloaded: Counter,
    refused_degraded: Counter,
    cancelled: Counter,
    inflight: Gauge,
    queue_depth: Gauge,
    sessions_opened: Counter,
    sessions_closed: Counter,
    sessions_active: Gauge,
    gc_passes: Counter,
    gc_pruned: Counter,
    /// Per-table `aets_table_access_total` counters, indexed by table id;
    /// bumped once per footprint table at session open. This is the
    /// signal the adaptive controller samples into its rate tracker.
    table_access: Vec<Counter>,
}

impl ServiceStats {
    fn new(tel: &Telemetry, num_tables: usize) -> Self {
        let reg = tel.registry();
        Self {
            table_access: (0..num_tables)
                .map(|t| reg.counter_with(names::TABLE_ACCESS, table_label(t)))
                .collect(),
            latency: reg.histogram(names::QUERY_LATENCY_US),
            queue_wait: reg.histogram(names::QUERY_QUEUE_WAIT_US),
            admission_wait: reg.histogram(names::QUERY_ADMISSION_WAIT_US),
            served: reg.counter(names::QUERIES_SERVED),
            timed_out: reg.counter(names::QUERIES_TIMED_OUT),
            overloaded: reg.counter(names::QUERIES_OVERLOADED),
            refused_degraded: reg.counter(names::QUERIES_REFUSED_DEGRADED),
            cancelled: reg.counter(names::QUERIES_CANCELLED),
            inflight: reg.gauge(names::QUERIES_INFLIGHT),
            queue_depth: reg.gauge(names::QUERY_QUEUE_DEPTH),
            sessions_opened: reg.counter(names::SESSIONS_OPENED),
            sessions_closed: reg.counter(names::SESSIONS_CLOSED),
            sessions_active: reg.gauge(names::SESSIONS_ACTIVE),
            gc_passes: reg.counter(names::GC_PASSES),
            gc_pruned: reg.counter(names::GC_PRUNED),
        }
    }
}

/// Everything a worker thread needs, shared by `Arc`.
struct WorkerCtx {
    queue: Arc<AdmissionQueue>,
    db: Arc<MemDb>,
    board: Arc<VisibilityBoard>,
    stats: Arc<ServiceStats>,
    telemetry: Arc<Telemetry>,
    admission: AdmissionMode,
    poll_interval: Duration,
}

/// Health view of a visibility board for the `/healthz` endpoint: OK
/// while no group is quarantined, 503 naming the frozen groups after.
pub(crate) fn board_health(board: &Arc<VisibilityBoard>) -> HealthFn {
    let board = board.clone();
    Arc::new(move || {
        let quarantined = board.quarantined();
        if quarantined.is_empty() {
            HealthReport::ok()
        } else {
            HealthReport::degraded(quarantined, "group(s) quarantined, watermark frozen")
        }
    })
}

/// Builds a [`BackupNode`]. Obtained from [`BackupNode::builder`].
#[derive(Default)]
pub struct BackupNodeBuilder {
    engine: Option<Arc<dyn ReplayEngine>>,
    db: Option<Arc<MemDb>>,
    num_tables: Option<usize>,
    board: Option<Arc<VisibilityBoard>>,
    floor: Option<Arc<QueryFloor>>,
    telemetry: Option<Arc<Telemetry>>,
    clock: Option<ClockFn>,
    opts: NodeOptions,
}

impl BackupNodeBuilder {
    /// The replay engine the node serves from. Required.
    pub fn engine(mut self, engine: Arc<dyn ReplayEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// An existing database to serve (e.g. one recovered from a
    /// checkpoint). Mutually exclusive with
    /// [`BackupNodeBuilder::num_tables`]; the latter wins if both are
    /// set.
    pub fn db(mut self, db: Arc<MemDb>) -> Self {
        self.db = Some(db);
        self
    }

    /// Creates a fresh empty database with `n` tables.
    pub fn num_tables(mut self, n: usize) -> Self {
        self.num_tables = Some(n);
        self
    }

    /// An existing visibility board to serve from (e.g. the durable
    /// backup's). Must have the engine's group count. Built fresh —
    /// instrumented when telemetry is enabled — when not provided.
    pub fn board(mut self, board: Arc<VisibilityBoard>) -> Self {
        self.board = Some(board);
        self
    }

    /// An existing GC floor registry to pin sessions into (shared with
    /// the durable backup's checkpoint clamp). Fresh when not provided.
    pub fn floor(mut self, floor: Arc<QueryFloor>) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Telemetry instance for the query-service metrics. Defaults to the
    /// engine's handle, or a disabled instance.
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Primary clock for the board's freshness instrumentation (micros).
    /// Defaults to the telemetry instance's own clock. Ignored when an
    /// existing board is supplied.
    pub fn clock(mut self, clock: ClockFn) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Query-service tunables.
    pub fn options(mut self, opts: NodeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Finishes the node and spawns its query worker pool.
    pub fn build(self) -> Result<BackupNode> {
        let engine =
            self.engine.ok_or_else(|| Error::Config("BackupNode needs an engine".into()))?;
        if self.opts.query_workers == 0 {
            return Err(Error::Config("query_workers must be positive".into()));
        }
        if self.opts.queue_depth == 0 {
            return Err(Error::Config("queue_depth must be positive".into()));
        }
        let db = match (self.num_tables, self.db) {
            (Some(n), _) => Arc::new(MemDb::new(n)),
            (None, Some(db)) => db,
            (None, None) => {
                return Err(Error::Config("BackupNode needs a db or num_tables".into()))
            }
        };
        let telemetry = self
            .telemetry
            .or_else(|| self.opts.service.telemetry.clone())
            .or_else(|| engine.telemetry_handle())
            .unwrap_or_else(|| Arc::new(Telemetry::disabled()));
        if let Some(dir) = &self.opts.service.flight_dir {
            let recorder = FlightRecorder::create(FlightRecorderConfig::new(dir))
                .map_err(|e| Error::Io(format!("flight recorder at {}: {e}", dir.display())))?;
            telemetry.set_flight_recorder(Some(recorder));
        }
        let board = match self.board {
            Some(b) => {
                if b.num_groups() != engine.board_groups() {
                    return Err(Error::Config("board group count mismatch".into()));
                }
                b
            }
            None => {
                let clock = self.clock.unwrap_or_else(|| telemetry.clock());
                Arc::new(
                    VisibilityBoard::builder(engine.board_groups())
                        .telemetry(&telemetry, clock)
                        .build(),
                )
            }
        };
        let floor = self.floor.unwrap_or_else(|| Arc::new(QueryFloor::new()));
        let stats = Arc::new(ServiceStats::new(&telemetry, db.num_tables()));
        // The adaptive loop needs both a reconfiguration channel and a
        // live grouping to plan against; engines with a fixed datapath
        // (the baselines) simply run without one.
        let controller = match &self.opts.service.controller {
            Some(cfg) => match (engine.reconfigure(), engine.current_grouping()) {
                (Some(handle), Some(grouping)) => Some(Mutex::new(AdaptiveController::new(
                    cfg.clone(),
                    handle,
                    grouping,
                    telemetry.clone(),
                )?)),
                _ => None,
            },
            None => None,
        };
        let queue = Arc::new(AdmissionQueue::new(self.opts.queue_depth));
        let workers = (0..self.opts.query_workers)
            .map(|i| {
                let ctx = WorkerCtx {
                    queue: queue.clone(),
                    db: db.clone(),
                    board: board.clone(),
                    stats: stats.clone(),
                    telemetry: telemetry.clone(),
                    admission: self.opts.admission,
                    poll_interval: self.opts.poll_interval,
                };
                std::thread::Builder::new()
                    .name(format!("aets-query-{i}"))
                    .spawn(move || worker_loop(&ctx))
                    .map_err(|e| Error::Io(format!("spawn query worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        // Mounted last; a bind failure must drain the already-spawned
        // worker pool before surfacing (no node exists yet to Drop).
        let obs = match self.opts.effective_obs_addr() {
            Some(addr) => match ObsServer::bind(addr, telemetry.clone(), board_health(&board)) {
                Ok(srv) => Some(srv),
                Err(e) => {
                    queue.close();
                    for h in workers {
                        let _ = h.join();
                    }
                    return Err(Error::Io(format!("bind obs endpoint {addr}: {e}")));
                }
            },
            None => None,
        };
        Ok(BackupNode {
            engine,
            db,
            board,
            telemetry,
            floor,
            opts: self.opts,
            stats,
            queue,
            workers,
            obs,
            controller,
        })
    }
}

/// The query-serving backup node: replay in, snapshot reads out.
///
/// See the [module docs](self) for the full protocol. Dropping the node
/// closes the admission queue and joins the worker pool; open
/// [`ReadSession`]s borrow the node, so all sessions end first.
pub struct BackupNode {
    engine: Arc<dyn ReplayEngine>,
    db: Arc<MemDb>,
    board: Arc<VisibilityBoard>,
    telemetry: Arc<Telemetry>,
    floor: Arc<QueryFloor>,
    opts: NodeOptions,
    stats: Arc<ServiceStats>,
    queue: Arc<AdmissionQueue>,
    workers: Vec<JoinHandle<()>>,
    obs: Option<ObsServer>,
    /// Live forecast-driven controller, when [`ServiceOptions::controller`]
    /// asked for one and the engine is reconfigurable; ticked once per
    /// replayed epoch.
    controller: Option<Mutex<AdaptiveController>>,
}

impl std::fmt::Debug for BackupNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackupNode")
            .field("engine", &self.engine.name())
            .field("groups", &self.board.num_groups())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl BackupNode {
    /// Starts building a node.
    pub fn builder() -> BackupNodeBuilder {
        BackupNodeBuilder::default()
    }

    /// Opens a snapshot read session at `qts` over `tables`, pinning
    /// `qts` into the GC floor until the session drops. Each footprint
    /// table bumps its `aets_table_access_total` counter — the signal the
    /// adaptive controller forecasts from.
    pub fn open_session(&self, qts: Timestamp, tables: &[TableId]) -> ReadSession<'_> {
        let gids = self.engine.board_groups_for(tables);
        for t in tables {
            if let Some(c) = self.stats.table_access.get(t.index()) {
                c.inc();
            }
        }
        let ticket = self.floor.pin(qts);
        self.stats.sessions_opened.inc();
        self.stats.sessions_active.add(1);
        self.telemetry.event(EventKind::SessionOpened { qts_us: qts.as_micros() });
        ReadSession { node: self, qts, tables: tables.to_vec(), gids, ticket }
    }

    /// Feeds epochs to the replay engine, publishing visibility on the
    /// node's board (and waking admission waiters as watermarks advance).
    /// With an adaptive controller configured, the control loop ticks
    /// once per epoch after the batch replays.
    pub fn replay(&self, epochs: &[EncodedEpoch]) -> Result<ReplayMetrics> {
        let m = self.engine.replay(epochs, &self.db, &self.board)?;
        if let Some(ctl) = &self.controller {
            let mut ctl = ctl.lock();
            for _ in 0..epochs.len() {
                // A planning error (e.g. a degenerate clustering) keeps
                // the current plan; the replay itself already succeeded.
                let _ = ctl.on_epoch();
            }
        }
        Ok(m)
    }

    /// Complete control windows the node's adaptive controller has
    /// observed; `None` when no controller runs.
    pub fn adaptive_windows(&self) -> Option<usize> {
        self.controller.as_ref().map(|c| c.lock().windows_observed())
    }

    /// Runs one version-chain GC pass at the safe watermark: the oldest
    /// open session's `qts`, the global commit mark, and every
    /// quarantined group's frozen watermark all clamp it.
    pub fn gc(&self) -> GcStats {
        self.gc_clamped(Timestamp::MAX)
    }

    /// [`BackupNode::gc`] with an additional external floor (e.g. the
    /// durable backup's manually-set replica floor).
    pub fn gc_clamped(&self, extra_floor: Timestamp) -> GcStats {
        let wm = self.gc_watermark(extra_floor);
        let pass = gc_db(&self.db, wm);
        self.stats.gc_passes.inc();
        self.stats.gc_pruned.add(pass.pruned as u64);
        self.telemetry.event(EventKind::GcPass { nodes: pass.nodes, pruned: pass.pruned });
        pass
    }

    /// The watermark [`BackupNode::gc_clamped`] would prune at.
    pub fn gc_watermark(&self, extra_floor: Timestamp) -> Timestamp {
        self.board.gc_watermark(&self.board.quarantined(), self.floor.floor().min(extra_floor))
    }

    /// Whether any group is quarantined (the node is degraded: reads
    /// needing a frozen group past its watermark are refused).
    pub fn is_degraded(&self) -> bool {
        self.board.any_quarantined()
    }

    /// The node's database.
    pub fn db(&self) -> &Arc<MemDb> {
        &self.db
    }

    /// The node's visibility board.
    pub fn board(&self) -> &Arc<VisibilityBoard> {
        &self.board
    }

    /// The node's telemetry instance.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The node's GC floor registry.
    pub fn floor(&self) -> &Arc<QueryFloor> {
        &self.floor
    }

    /// The node's replay engine.
    pub fn engine(&self) -> &Arc<dyn ReplayEngine> {
        &self.engine
    }

    /// The query-service tunables the node runs with.
    pub fn options(&self) -> &NodeOptions {
        &self.opts
    }

    /// Bound address of the live observability endpoint, when
    /// [`NodeOptions::obs_addr`] asked for one. With a `:0` bind this is
    /// where the ephemeral port landed.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(ObsServer::addr)
    }
}

impl Drop for BackupNode {
    fn drop(&mut self) {
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A pinned snapshot read session (see [`BackupNode::open_session`]).
///
/// Holds the GC floor at its `qts` for its lifetime; drop releases the
/// pin. Queries submitted through the session read the MVCC snapshot at
/// exactly `qts` once Algorithm 3 admits it.
///
/// The session's table footprint is re-resolved to board groups under
/// the engine's *live* grouping at every wait and submission, tagged
/// with the grouping generation it was resolved under. A live regroup
/// racing the wait can therefore only make the resolution stale — which
/// demotes admission to the always-correct global-watermark path — never
/// wrongly fresh.
#[derive(Debug)]
pub struct ReadSession<'a> {
    node: &'a BackupNode,
    qts: Timestamp,
    tables: Vec<TableId>,
    gids: Vec<GroupId>,
    ticket: FloorTicket,
}

impl ReadSession<'_> {
    /// The session's snapshot timestamp.
    pub fn qts(&self) -> Timestamp {
        self.qts
    }

    /// Board groups the session's footprint mapped to when it opened
    /// (later waits re-resolve against the live grouping).
    pub fn groups(&self) -> &[GroupId] {
        &self.gids
    }

    /// Blocks the *calling* thread until Algorithm 3 admits the session
    /// or `timeout` elapses. Returns the admission wait on success;
    /// [`Error::QueryTimeout`] on expiry, [`Error::Degraded`] when the
    /// wait is hopeless (quarantined group frozen below `qts`).
    ///
    /// Optional: [`ReadSession::submit`] admits on the worker pool
    /// anyway; this exists for callers that want the pure visibility
    /// delay on their own thread (the realtime runner's measurement).
    pub fn wait_admitted(&self, timeout: Duration) -> Result<Duration> {
        let t0 = Instant::now();
        // Query spans attach to the most recently committed epoch (the
        // one whose visibility flip this wait is gated on).
        let ring = self.node.telemetry.spans();
        let span = ring.begin(ring.epoch_hint().unwrap_or(0), stages::QUERY_ADMISSION, None, None);
        // Fresh resolution per wait: the footprint maps to groups under
        // the engine's current grouping, generation-tagged for the board.
        let (gen, gids) = self.node.engine.board_groups_for_at(&self.tables);
        let outcome = match self.node.opts.admission {
            AdmissionMode::EventDriven => {
                self.node.board.wait_admission_at(&gids, gen, self.qts, timeout)
            }
            AdmissionMode::SleepPoll => self.node.board.wait_admission_polling_at(
                &gids,
                gen,
                self.qts,
                timeout,
                self.node.opts.poll_interval,
            ),
        };
        let waited = t0.elapsed();
        self.node.stats.admission_wait.record(waited);
        if let Some(s) = span {
            s.finish(ring);
        }
        match outcome {
            WaitOutcome::Visible => Ok(waited),
            WaitOutcome::TimedOut => {
                self.node.stats.timed_out.inc();
                Err(Error::QueryTimeout)
            }
            WaitOutcome::Quarantined => {
                self.node.stats.refused_degraded.inc();
                Err(Error::Degraded)
            }
        }
    }

    /// Submits a query to the worker pool. Fails immediately with
    /// [`Error::Overloaded`] when the admission queue is full.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryHandle> {
        let timeout = spec.timeout.unwrap_or(self.node.opts.default_timeout);
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        let (gen, gids) = self.node.engine.board_groups_for_at(&self.tables);
        let job = Job {
            gids,
            gen,
            qts: self.qts,
            spec,
            enqueued: now,
            deadline: now + timeout,
            cancel: cancel.clone(),
            reply: tx,
        };
        match self.node.queue.try_push(job) {
            Ok(()) => {
                self.node.stats.queue_depth.add(1);
                Ok(QueryHandle { rx, cancel })
            }
            Err(_) => {
                self.node.stats.overloaded.inc();
                Err(Error::Overloaded)
            }
        }
    }

    /// Submits and waits: the blocking convenience path.
    pub fn query(&self, spec: QuerySpec) -> Result<QueryOutput> {
        self.submit(spec)?.wait()
    }
}

impl Drop for ReadSession<'_> {
    fn drop(&mut self) {
        self.node.floor.release(self.ticket);
        self.node.stats.sessions_closed.inc();
        self.node.stats.sessions_active.sub(1);
        self.node.telemetry.event(EventKind::SessionClosed { qts_us: self.qts.as_micros() });
    }
}

/// Decrements a level gauge on drop, so worker panics cannot leak an
/// in-flight count.
struct GaugeGuard<'a>(&'a Gauge);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Shutdown responsiveness: a parked admission wait re-checks for queue
/// closure at most this often (publish wakeups are still immediate).
const SHUTDOWN_SLICE: Duration = Duration::from_millis(100);

fn worker_loop(ctx: &WorkerCtx) {
    while let Some(job) = ctx.queue.pop() {
        ctx.stats.queue_depth.sub(1);
        ctx.stats.queue_wait.record(job.enqueued.elapsed());
        let res = catch_unwind(AssertUnwindSafe(|| serve_one(ctx, &job)))
            .unwrap_or_else(|_| Err(Error::Replay("query worker panicked".into())));
        match &res {
            Ok(_) => {
                ctx.stats.served.inc();
                ctx.stats.latency.record(job.enqueued.elapsed());
            }
            Err(Error::QueryTimeout) => ctx.stats.timed_out.inc(),
            Err(Error::Degraded) => ctx.stats.refused_degraded.inc(),
            Err(Error::Cancelled) => ctx.stats.cancelled.inc(),
            Err(_) => {}
        }
        // A dropped handle just discards the result.
        let _ = job.reply.send(res);
    }
}

/// Admission + execution of one job on a worker thread.
fn serve_one(ctx: &WorkerCtx, job: &Job) -> Result<QueryOutput> {
    if job.cancel.load(Ordering::Acquire) {
        return Err(Error::Cancelled);
    }
    let t_adm = Instant::now();
    // The admission span pins the query onto the latest committed
    // epoch's timeline: merged with the engine's spans, it shows the gap
    // between that epoch's visibility flip and its first admitted read.
    let ring = ctx.telemetry.spans();
    let adm_span = ring.begin(ring.epoch_hint().unwrap_or(0), stages::QUERY_ADMISSION, None, None);
    let outcome = loop {
        let now = Instant::now();
        if now >= job.deadline {
            break WaitOutcome::TimedOut;
        }
        let slice = (job.deadline - now).min(SHUTDOWN_SLICE);
        let o = match ctx.admission {
            AdmissionMode::EventDriven => {
                ctx.board.wait_admission_at(&job.gids, job.gen, job.qts, slice)
            }
            AdmissionMode::SleepPoll => ctx.board.wait_admission_polling_at(
                &job.gids,
                job.gen,
                job.qts,
                slice,
                ctx.poll_interval,
            ),
        };
        match o {
            WaitOutcome::TimedOut => {
                if job.cancel.load(Ordering::Acquire) {
                    return Err(Error::Cancelled);
                }
                if ctx.queue.is_closed() {
                    return Err(Error::Cancelled);
                }
            }
            decided => break decided,
        }
    };
    ctx.stats.admission_wait.record(t_adm.elapsed());
    let adm_parent = adm_span.map(|s| {
        let id = s.id();
        s.finish(ring);
        id
    });
    match outcome {
        WaitOutcome::Visible => {}
        WaitOutcome::TimedOut => return Err(Error::QueryTimeout),
        WaitOutcome::Quarantined => return Err(Error::Degraded),
    }
    ctx.stats.inflight.add(1);
    let _guard = GaugeGuard(&ctx.stats.inflight);
    let exec_span =
        ring.begin(ring.epoch_hint().unwrap_or(0), stages::QUERY_EXEC, None, adm_parent);
    let res = run_query(&ctx.db, job);
    if let Some(s) = exec_span {
        s.finish(ring);
    }
    res
}

/// Executes the scan, checking cancellation and the deadline every 256
/// visited rows (`Scan::for_each` has no early exit, so the checks stop
/// accumulation and the error is surfaced after the pass).
fn run_query(db: &MemDb, job: &Job) -> Result<QueryOutput> {
    let scan =
        Scan { ts: job.qts, key_range: job.spec.key_range, filters: job.spec.filters.clone() };
    let table = db.table(job.spec.table);
    let mut err: Option<Error> = None;
    let mut seen = 0usize;
    let mut check = move |cancel: &AtomicBool, deadline: Instant| -> Option<Error> {
        seen += 1;
        if seen & 0xFF != 0 {
            return None;
        }
        if cancel.load(Ordering::Acquire) {
            return Some(Error::Cancelled);
        }
        if Instant::now() >= deadline {
            return Some(Error::QueryTimeout);
        }
        None
    };
    let out = match &job.spec.output {
        OutputKind::Rows => {
            let mut rows = Vec::new();
            scan.for_each(table, |k, row| {
                if err.is_some() {
                    return;
                }
                err = check(&job.cancel, job.deadline);
                if err.is_none() {
                    rows.push((k, row));
                }
            });
            QueryOutput::Rows(rows)
        }
        OutputKind::Count => {
            let mut n = 0usize;
            scan.for_each(table, |_, _| {
                if err.is_some() {
                    return;
                }
                err = check(&job.cancel, job.deadline);
                if err.is_none() {
                    n += 1;
                }
            });
            QueryOutput::Count(n)
        }
        OutputKind::AggregateCol { column, agg } => {
            let (column, agg) = (*column, *agg);
            let mut acc: Option<(f64, usize)> = None;
            scan.for_each(table, |_, row| {
                if err.is_some() {
                    return;
                }
                err = check(&job.cancel, job.deadline);
                if err.is_some() {
                    return;
                }
                let v = row.iter().find(|(c, _)| *c == column).and_then(|(_, v)| match v {
                    aets_common::Value::Int(i) => Some(*i as f64),
                    aets_common::Value::Float(f) => Some(*f),
                    _ => None,
                });
                let Some(v) = v else { return };
                acc = Some(match (acc, agg) {
                    (None, _) => (v, 1),
                    (Some((a, n)), Aggregate::Sum | Aggregate::Avg) => (a + v, n + 1),
                    (Some((a, n)), Aggregate::Min) => (a.min(v), n + 1),
                    (Some((a, n)), Aggregate::Max) => (a.max(v), n + 1),
                });
            });
            QueryOutput::Aggregate(acc.map(|(a, n)| match agg {
                Aggregate::Avg => a / n as f64,
                _ => a,
            }))
        }
    };
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::aets::{AetsConfig, AetsEngine};
    use crate::grouping::TableGrouping;
    use aets_common::{ColumnId, FxHashSet, TxnId, Value};
    use aets_memtable::{OpType, Version};

    /// A 1-group node over `n` empty tables; visibility is driven by
    /// publishing on `node.board()` directly.
    fn tiny_node(opts: NodeOptions) -> BackupNode {
        let hot: FxHashSet<TableId> = FxHashSet::default();
        let engine = Arc::new(
            AetsEngine::builder(TableGrouping::single(2, &hot))
                .config(AetsConfig { threads: 1, ..Default::default() })
                .telemetry(Arc::new(Telemetry::new()))
                .build()
                .unwrap(),
        );
        BackupNode::builder().engine(engine).num_tables(2).options(opts).build().unwrap()
    }

    fn insert_rows(node: &BackupNode, table: u32, n: u64, ts: u64) {
        for k in 0..n {
            node.db().table(TableId::new(table)).apply_version(
                RowKey::new(k),
                Version {
                    txn_id: TxnId::new(k + 1),
                    commit_ts: Timestamp::from_micros(ts),
                    op: OpType::Insert,
                    cols: vec![(ColumnId::new(0), Value::Int(k as i64))],
                },
            );
        }
    }

    #[test]
    fn builder_validates_inputs() {
        assert!(BackupNode::builder().build().is_err(), "engine required");
        let hot: FxHashSet<TableId> = FxHashSet::default();
        let engine: Arc<dyn ReplayEngine> =
            Arc::new(AetsEngine::builder(TableGrouping::single(1, &hot)).build().unwrap());
        assert!(
            BackupNode::builder().engine(engine.clone()).build().is_err(),
            "db or num_tables required"
        );
        assert!(BackupNode::builder()
            .engine(engine.clone())
            .num_tables(1)
            .options(NodeOptions { query_workers: 0, ..Default::default() })
            .build()
            .is_err());
        let wrong_board = Arc::new(VisibilityBoard::builder(5).build());
        assert!(BackupNode::builder()
            .engine(engine)
            .num_tables(1)
            .board(wrong_board)
            .build()
            .is_err());
    }

    #[test]
    fn query_serves_snapshot_after_admission() {
        let node = tiny_node(NodeOptions { query_workers: 2, ..Default::default() });
        insert_rows(&node, 0, 100, 50);
        let qts = Timestamp::from_micros(60);
        let session = node.open_session(qts, &[TableId::new(0)]);
        // Not yet visible: submit, then publish, and the parked worker
        // must be woken to serve it.
        let handle = session.submit(QuerySpec::count(TableId::new(0))).unwrap();
        node.board().publish_global(Timestamp::from_micros(60));
        assert_eq!(handle.wait().unwrap(), QueryOutput::Count(100));
        // Rows and aggregate paths over the now-visible snapshot.
        let rows =
            session.query(QuerySpec::rows(TableId::new(0)).keys(RowKey::new(10), RowKey::new(19)));
        match rows.unwrap() {
            QueryOutput::Rows(r) => assert_eq!(r.len(), 10),
            other => panic!("expected rows, got {other:?}"),
        }
        let agg = session
            .query(QuerySpec::aggregate(TableId::new(0), ColumnId::new(0), Aggregate::Sum))
            .unwrap();
        assert_eq!(agg, QueryOutput::Aggregate(Some((0..100).sum::<i64>() as f64)));
        drop(session);
        let snap = node.telemetry().snapshot();
        assert_eq!(snap.counter_total(names::QUERIES_SERVED), 3);
        assert_eq!(snap.counter_total(names::SESSIONS_OPENED), 1);
        assert_eq!(snap.counter_total(names::SESSIONS_CLOSED), 1);
        assert_eq!(snap.gauge(names::SESSIONS_ACTIVE, ""), Some(0));
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // One worker, queue of one: the worker parks on an inadmissible
        // query, a second fills the queue, the third must be shed.
        let node = tiny_node(NodeOptions {
            query_workers: 1,
            queue_depth: 1,
            default_timeout: Duration::from_secs(10),
            ..Default::default()
        });
        let qts = Timestamp::from_micros(100);
        let session = node.open_session(qts, &[TableId::new(0)]);
        let h1 = session.submit(QuerySpec::count(TableId::new(0))).unwrap();
        // Wait for the worker to take job 1 off the queue (park on
        // admission), freeing the single slot for job 2.
        let t0 = Instant::now();
        let h2 = loop {
            match session.submit(QuerySpec::count(TableId::new(0))) {
                Ok(h) => break h,
                Err(Error::Overloaded) if t0.elapsed() < Duration::from_secs(5) => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected {e}"),
            }
        };
        let err = session.submit(QuerySpec::count(TableId::new(0))).unwrap_err();
        assert_eq!(err, Error::Overloaded);
        node.board().publish_global(qts);
        assert_eq!(h1.wait().unwrap(), QueryOutput::Count(0));
        assert_eq!(h2.wait().unwrap(), QueryOutput::Count(0));
        drop(session);
        let snap = node.telemetry().snapshot();
        assert!(snap.counter_total(names::QUERIES_OVERLOADED) >= 1);
        assert_eq!(snap.counter_total(names::QUERIES_SERVED), 2);
    }

    #[test]
    fn deadline_expires_as_query_timeout() {
        let node = tiny_node(NodeOptions::default());
        let session = node.open_session(Timestamp::from_micros(1_000), &[TableId::new(0)]);
        let err = session
            .query(QuerySpec::count(TableId::new(0)).timeout(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err, Error::QueryTimeout);
        assert_eq!(node.telemetry().snapshot().counter_total(names::QUERIES_TIMED_OUT), 1);
    }

    #[test]
    fn quarantined_group_refuses_with_degraded() {
        let node = tiny_node(NodeOptions::default());
        node.board().publish_group(GroupId::new(0), Timestamp::from_micros(10));
        node.board().set_quarantined(&[0]);
        assert!(node.is_degraded());
        let session = node.open_session(Timestamp::from_micros(100), &[TableId::new(0)]);
        let t0 = Instant::now();
        let err = session.query(QuerySpec::count(TableId::new(0))).unwrap_err();
        assert_eq!(err, Error::Degraded);
        assert!(t0.elapsed() < Duration::from_secs(5), "refusal must not sleep out the timeout");
        // A session at a qts the frozen watermark covers still reads.
        let old = node.open_session(Timestamp::from_micros(5), &[TableId::new(0)]);
        assert_eq!(old.query(QuerySpec::count(TableId::new(0))).unwrap(), QueryOutput::Count(0));
        let snap = node.telemetry().snapshot();
        assert_eq!(snap.counter_total(names::QUERIES_REFUSED_DEGRADED), 1);
    }

    #[test]
    fn cancellation_before_admission() {
        let node = tiny_node(NodeOptions::default());
        let session = node.open_session(Timestamp::from_micros(1_000), &[TableId::new(0)]);
        let handle = session.submit(QuerySpec::count(TableId::new(0))).unwrap();
        handle.cancel();
        // The worker observes the flag at its next admission slice.
        let err = handle.wait().unwrap_err();
        assert_eq!(err, Error::Cancelled);
        assert_eq!(node.telemetry().snapshot().counter_total(names::QUERIES_CANCELLED), 1);
    }

    #[test]
    fn sessions_pin_the_gc_floor_raii() {
        let node = tiny_node(NodeOptions::default());
        insert_rows(&node, 0, 10, 50);
        node.board().publish_global(Timestamp::from_micros(500));
        assert_eq!(node.floor().floor(), Timestamp::MAX);
        {
            let _s1 = node.open_session(Timestamp::from_micros(80), &[TableId::new(0)]);
            let _s2 = node.open_session(Timestamp::from_micros(200), &[TableId::new(0)]);
            assert_eq!(node.floor().floor(), Timestamp::from_micros(80));
            assert_eq!(node.gc_watermark(Timestamp::MAX), Timestamp::from_micros(80));
        }
        // RAII: both pins released.
        assert_eq!(node.floor().floor(), Timestamp::MAX);
        assert_eq!(node.gc_watermark(Timestamp::MAX), Timestamp::from_micros(500));
        let pass = node.gc();
        assert_eq!(pass.nodes, 10);
        let snap = node.telemetry().snapshot();
        assert_eq!(snap.counter_total(names::GC_PASSES), 1);
    }

    #[test]
    fn wait_admitted_measures_visibility_delay_on_caller_thread() {
        let node = Arc::new(tiny_node(NodeOptions::default()));
        let qts = Timestamp::from_micros(100);
        let n2 = node.clone();
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            n2.board().publish_global(Timestamp::from_micros(100));
        });
        let session = node.open_session(qts, &[TableId::new(0)]);
        let waited = session.wait_admitted(Duration::from_secs(5)).unwrap();
        assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
        publisher.join().unwrap();
        drop(session);
        let short = node.open_session(Timestamp::from_micros(9_999), &[TableId::new(0)]);
        assert_eq!(
            short.wait_admitted(Duration::from_millis(15)).unwrap_err(),
            Error::QueryTimeout
        );
    }
}
