//! The AETS engine: adaptive epoch-based two-stage log replay with TPLR.
//!
//! Per epoch (Section III-D):
//!
//! 1. the dispatcher routes entries into per-group mini-transactions
//!    (metadata-only parse). With `pipeline_depth > 0` this runs on its
//!    own thread, feeding dispatched epochs to the replay loop through a
//!    bounded channel so the metadata scan of epoch `e+1` overlaps the
//!    stage-1/stage-2 replay of epoch `e` (see DESIGN.md, "Replay
//!    datapath");
//! 2. threads are allocated to groups by `λ·n` weights
//!    (Section IV-B), optionally refreshed from a per-epoch rate provider
//!    (the DTGM predictor in the full system);
//! 3. **stage 1** replays all hot groups: per group, workers run TPLR
//!    phase 1 (translate entries to uncommitted cells, no locks, no
//!    dependency tracking) while the group's single commit thread runs
//!    phase 2 (append cells in `commit_order_queue` order, publish
//!    `tg_cmt_ts`);
//! 4. **stage 2** replays the cold groups the same way;
//! 5. `global_cmt_ts` advances to the epoch's last commit.
//!
//! With `two_stage = false` and a single group this is exactly the
//! ungrouped TPLR baseline of Section VI-A5.
//!
//! # Supervision and quarantine
//!
//! Replay is *supervised*: phase-1 workers and the per-group commit
//! threads propagate [`Result`]s instead of panicking, and any panic that
//! does occur inside a replay thread is contained with `catch_unwind`. A
//! group whose replay hits an unrecoverable fault (e.g. a record that
//! passes the epoch frame CRC but fails its own record CRC) is
//! *quarantined*: its `tg_cmt_ts` freezes at the last consistent commit,
//! `global_cmt_ts` stops advancing (so Algorithm 3's global shortcut can
//! never admit a query past the frozen group), and every healthy group
//! keeps replaying. The degraded state is surfaced through
//! `ReplayMetrics::quarantined_groups`; no thread panic ever escapes
//! [`ReplayEngine::replay`].

use crate::alloc::{allocate_threads, UrgencyMode};
use crate::dispatch::{dispatch_epoch, ingest_epoch, DispatchedEpoch, IngestStats, RetryPolicy};
use crate::engines::pool::CellPool;
use crate::engines::{commit_cell, translate_entry, Cell, ReplayEngine};
use crate::grouping::TableGrouping;
use crate::metrics::ReplayMetrics;
use crate::visibility::VisibilityBoard;
use aets_common::{Error, GroupId, Result, TableId};
use aets_memtable::MemDb;
use aets_telemetry::trace::stages;
use aets_telemetry::{names, Counter, EventKind, Gauge, Histogram, OpenSpan, SpanId, Telemetry};
use aets_wal::{EncodedEpoch, EpochSource, SliceSource};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-epoch group access rates, e.g. from the DTGM predictor.
pub type RateFn = Arc<dyn Fn(usize) -> Vec<f64> + Send + Sync>;

/// Configuration of the AETS engine.
#[derive(Clone)]
pub struct AetsConfig {
    /// Total replay worker threads `T`.
    pub threads: usize,
    /// Urgency factor mode (Log = paper, Ignore = AETS-NOAC ablation).
    pub urgency: UrgencyMode,
    /// Replay hot groups in stage 1 before cold groups (the paper's
    /// two-stage design). `false` collapses to a single stage.
    pub two_stage: bool,
    /// Recompute the thread allocation each epoch from pending bytes and
    /// rates. `false` splits threads evenly across groups with work.
    pub adaptive: bool,
    /// Optional per-epoch group-rate provider (predicted access rates);
    /// when absent, the grouping's static rates are used.
    pub rate_fn: Option<RateFn>,
    /// Depth of the dispatch pipeline: how many dispatched epochs may sit
    /// between the dispatcher thread and the replay loop. `0` disables
    /// pipelining (epochs are dispatched inline, the pre-pipeline serial
    /// datapath); `n > 0` runs the dispatcher on its own thread behind a
    /// bounded channel of capacity `n`, overlapping the metadata scan of
    /// epoch `e+1` with the replay of epoch `e`. The epoch-barrier
    /// invariant is unaffected: the replay loop consumes epochs strictly
    /// in order and only ever commits the epoch at the channel head.
    pub pipeline_depth: usize,
    /// Bounded-retry policy of the ingest resync loop: how often a failed
    /// epoch delivery (torn tail, bit flip, sequence gap, stall) is
    /// re-requested, and with what backoff, before the error is fatal.
    pub retry: RetryPolicy,
}

impl std::fmt::Debug for AetsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AetsConfig")
            .field("threads", &self.threads)
            .field("urgency", &self.urgency)
            .field("two_stage", &self.two_stage)
            .field("adaptive", &self.adaptive)
            .field("rate_fn", &self.rate_fn.as_ref().map(|_| "<fn>"))
            .field("pipeline_depth", &self.pipeline_depth)
            .field("retry", &self.retry)
            .finish()
    }
}

impl Default for AetsConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            urgency: UrgencyMode::Log,
            two_stage: true,
            adaptive: true,
            rate_fn: None,
            pipeline_depth: 2,
            retry: RetryPolicy::default(),
        }
    }
}

/// A live reconfiguration command for a running [`AetsEngine`], sent
/// through a [`ReconfigureHandle`] and applied at the next epoch
/// boundary (see DESIGN.md §15 "Adaptive control loop").
#[derive(Debug, Clone)]
pub enum Reconfigure {
    /// Pin the per-group worker allocation, bypassing the per-epoch
    /// `λ·n` solver until the next `SetThreadSplit`. One slot per group;
    /// zero means the group's commit thread translates inline.
    SetThreadSplit(Vec<usize>),
    /// Replace the table grouping. Must preserve the group count (the
    /// visibility board, quarantine ledger and cell pools are sized to
    /// it) and the table count. Rejected — dropped and counted in
    /// `aets_adapt_rejected_total` — while any group is quarantined: a
    /// frozen group's watermark describes its *old* table set, and
    /// moving tables would silently change what the freeze protects.
    Regroup(TableGrouping),
}

/// Clonable sender half of an engine's reconfiguration channel.
///
/// Commands are validated at send time against the engine's immutable
/// group/table counts, queued, and drained by the *dispatching* side of
/// the replay datapath at the next epoch boundary. Epoch boundaries are
/// exactly the paper's "drain, move, resume" migration points: commit
/// queues are per-epoch objects fully drained at the stage barriers, and
/// every healthy group's watermark equals the epoch's `max_commit_ts`,
/// so a regroup never moves a table with in-flight work and is
/// watermark-neutral.
#[derive(Clone, Debug)]
pub struct ReconfigureHandle {
    inner: Arc<ReconfShared>,
}

#[derive(Debug)]
struct ReconfShared {
    queue: Mutex<VecDeque<Reconfigure>>,
    /// Commands applied so far (monotone; rejected commands excluded).
    applied: AtomicU64,
    num_groups: usize,
    num_tables: usize,
}

impl ReconfigureHandle {
    fn new(num_groups: usize, num_tables: usize) -> Self {
        Self {
            inner: Arc::new(ReconfShared {
                queue: Mutex::new(VecDeque::new()),
                applied: AtomicU64::new(0),
                num_groups,
                num_tables,
            }),
        }
    }

    /// Queues `cmd` for the next epoch boundary. Fails fast on a command
    /// that can never be applied (wrong split length, wrong group or
    /// table count) so the caller's bug surfaces at the send site.
    pub fn send(&self, cmd: Reconfigure) -> Result<()> {
        match &cmd {
            Reconfigure::SetThreadSplit(split) => {
                if split.len() != self.inner.num_groups {
                    return Err(Error::Config(format!(
                        "thread split has {} slots for {} groups",
                        split.len(),
                        self.inner.num_groups
                    )));
                }
            }
            Reconfigure::Regroup(g) => {
                if g.num_groups() != self.inner.num_groups {
                    return Err(Error::Config(format!(
                        "regroup has {} groups, engine is sized for {}",
                        g.num_groups(),
                        self.inner.num_groups
                    )));
                }
                if g.num_tables() != self.inner.num_tables {
                    return Err(Error::Config(format!(
                        "regroup covers {} tables, engine replays {}",
                        g.num_tables(),
                        self.inner.num_tables
                    )));
                }
            }
        }
        self.inner.queue.lock().push_back(cmd);
        Ok(())
    }

    /// Commands applied so far (rejected commands excluded). Lets a
    /// controller confirm a command took effect before planning atop it.
    pub fn applied(&self) -> u64 {
        self.inner.applied.load(Ordering::Acquire)
    }

    /// Commands queued but not yet drained by an epoch boundary.
    pub fn pending(&self) -> usize {
        self.inner.queue.lock().len()
    }
}

/// The grouping (and pinned split) an epoch is dispatched *and* replayed
/// under. Captured once per epoch when the dispatching side drains the
/// reconfiguration queue, and shipped through the pipeline channel with
/// the dispatched work so both halves of the datapath always agree —
/// epoch `e+1` may be dispatched under a newer grouping while epoch `e`
/// is still replaying under the old one.
#[derive(Clone)]
struct EpochPlan {
    /// Grouping generation; the consumer side publishes it to the
    /// visibility board before replaying the first epoch planned under
    /// it (at that point the previous epoch is fully replayed, so every
    /// healthy watermark covers the whole database).
    gen: u64,
    grouping: Arc<TableGrouping>,
    split: Option<Vec<usize>>,
    regroups: u64,
    resplits: u64,
    rejected: u64,
}

/// Converts a contained panic payload into a typed replay error, so a
/// panicking replay thread poisons its group like any other failure
/// instead of tearing the process down.
fn panic_error(who: &str, payload: Box<dyn std::any::Any + Send>) -> Error {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    Error::Replay(format!("{who} panicked: {msg}"))
}

/// Per-group quarantine ledger. Lives on the engine (not one `replay`
/// call) because the realtime runner replays one epoch per call through
/// the same engine: once a group is poisoned, every later epoch skips it
/// and its `tg_cmt_ts` stays frozen at the last consistent commit.
#[derive(Debug)]
struct Quarantine {
    groups: Mutex<Vec<Option<Error>>>,
}

impl Quarantine {
    fn new(n: usize) -> Self {
        Self { groups: Mutex::new((0..n).map(|_| None).collect()) }
    }

    /// Records the first failure of `gid`; later failures keep the
    /// original root cause.
    fn poison(&self, gid: GroupId, err: Error) {
        let mut g = self.groups.lock();
        let slot = &mut g[gid.index()];
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    fn is_poisoned(&self, gid: GroupId) -> bool {
        self.groups.lock()[gid.index()].is_some()
    }

    fn any(&self) -> bool {
        self.groups.lock().iter().any(Option::is_some)
    }

    fn poisoned(&self) -> Vec<usize> {
        self.groups.lock().iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect()
    }
}

/// Telemetry handles cached at engine construction so the replay hot path
/// never touches the registry map: each record is an atomic op (or a
/// single relaxed load when telemetry is disabled).
#[derive(Debug)]
struct EngineStats {
    epochs: Counter,
    txns: Counter,
    entries: Counter,
    bytes: Counter,
    dispatch_us: Histogram,
    stage1_us: Histogram,
    stage2_us: Histogram,
    replay_busy_us: Counter,
    commit_busy_us: Counter,
    ingest_retries: Counter,
    checksum_failures: Counter,
    epoch_gaps: Counter,
    ingest_stalls: Counter,
    quarantined: Gauge,
    ingest_bps: Gauge,
    cell_recycled: Counter,
    cell_allocated: Counter,
    regroups: Counter,
    resplits: Counter,
    reconf_rejected: Counter,
}

impl EngineStats {
    fn new(tel: &Telemetry) -> Self {
        let reg = tel.registry();
        Self {
            epochs: reg.counter(names::EPOCHS),
            txns: reg.counter(names::TXNS),
            entries: reg.counter(names::ENTRIES),
            bytes: reg.counter(names::BYTES),
            dispatch_us: reg.histogram(names::DISPATCH_US),
            stage1_us: reg.histogram(names::STAGE1_US),
            stage2_us: reg.histogram(names::STAGE2_US),
            replay_busy_us: reg.counter(names::REPLAY_BUSY_US),
            commit_busy_us: reg.counter(names::COMMIT_BUSY_US),
            ingest_retries: reg.counter(names::INGEST_RETRIES),
            checksum_failures: reg.counter(names::CHECKSUM_FAILURES),
            epoch_gaps: reg.counter(names::EPOCH_GAPS),
            ingest_stalls: reg.counter(names::INGEST_STALLS),
            quarantined: reg.gauge(names::QUARANTINED_GROUPS),
            ingest_bps: reg.gauge(names::INGEST_BYTES_PER_SEC),
            cell_recycled: reg.counter(names::CELL_RECYCLED),
            cell_allocated: reg.counter(names::CELL_ALLOCATED),
            regroups: reg.counter(names::ADAPT_REGROUPS),
            resplits: reg.counter(names::ADAPT_RESPLITS),
            reconf_rejected: reg.counter(names::ADAPT_REJECTED),
        }
    }
}

/// The engine's current grouping, paired with the generation it was
/// installed under so admission gids can carry their provenance.
#[derive(Debug)]
struct VersionedGrouping {
    gen: u64,
    grouping: Arc<TableGrouping>,
}

/// The AETS replay engine.
#[derive(Debug)]
pub struct AetsEngine {
    cfg: AetsConfig,
    grouping: RwLock<VersionedGrouping>,
    /// A `SetThreadSplit` pin; `None` restores the per-epoch solver.
    pinned_split: Mutex<Option<Vec<usize>>>,
    reconf: ReconfigureHandle,
    quarantine: Quarantine,
    telemetry: Arc<Telemetry>,
    stats: EngineStats,
}

/// Builds an [`AetsEngine`]: the single construction path —
/// `AetsEngine::builder(grouping).config(cfg).build()`, with
/// `.telemetry(..)` chained for an instrumented engine.
pub struct AetsEngineBuilder {
    cfg: AetsConfig,
    grouping: TableGrouping,
    telemetry: Option<Arc<Telemetry>>,
}

impl AetsEngineBuilder {
    /// Replaces the default [`AetsConfig`].
    pub fn config(mut self, cfg: AetsConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attaches a telemetry instance the replay path feeds: epoch / txn /
    /// entry / byte counters, per-epoch dispatch and stage-wall
    /// histograms, ingest-resync counters, quarantine gauge and events.
    /// Share the same instance with the visibility board (via
    /// [`crate::VisibilityBoard::builder`]) so freshness lands in the
    /// same registry.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Finishes the engine. Fails on an invalid config (zero threads).
    pub fn build(self) -> Result<AetsEngine> {
        if self.cfg.threads == 0 {
            return Err(Error::Config("threads must be positive".into()));
        }
        let telemetry = self.telemetry.unwrap_or_else(|| Arc::new(Telemetry::disabled()));
        let quarantine = Quarantine::new(self.grouping.num_groups());
        let stats = EngineStats::new(&telemetry);
        let reconf = ReconfigureHandle::new(self.grouping.num_groups(), self.grouping.num_tables());
        Ok(AetsEngine {
            cfg: self.cfg,
            grouping: RwLock::new(VersionedGrouping { gen: 0, grouping: Arc::new(self.grouping) }),
            pinned_split: Mutex::new(None),
            reconf,
            quarantine,
            telemetry,
            stats,
        })
    }
}

impl AetsEngine {
    /// Starts building an engine over `grouping` (default config,
    /// telemetry disabled).
    pub fn builder(grouping: TableGrouping) -> AetsEngineBuilder {
        AetsEngineBuilder { cfg: AetsConfig::default(), grouping, telemetry: None }
    }

    /// The engine's telemetry instance (disabled unless one was attached
    /// via [`AetsEngineBuilder::telemetry`]).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Board indices of the groups quarantined so far (ascending); empty
    /// while the engine is healthy.
    pub fn quarantined_groups(&self) -> Vec<usize> {
        self.quarantine.poisoned()
    }

    /// The ungrouped TPLR baseline: one group, no staging.
    pub fn tplr_baseline(
        threads: usize,
        num_tables: usize,
        hot_tables: &aets_common::FxHashSet<TableId>,
    ) -> Result<Self> {
        let grouping = TableGrouping::single(num_tables, hot_tables);
        let mut eng = Self::builder(grouping)
            .config(AetsConfig { threads, two_stage: false, ..Default::default() })
            .build()?;
        eng.cfg.adaptive = false;
        Ok(eng)
    }

    /// A snapshot of the engine's current table grouping. Live
    /// reconfiguration means the grouping can change between calls; a
    /// caller that maps tables to groups for admission must pair the
    /// snapshot with its generation via
    /// [`AetsEngine::grouping_versioned`].
    pub fn grouping(&self) -> Arc<TableGrouping> {
        self.grouping.read().grouping.clone()
    }

    /// The current grouping together with the generation it was
    /// installed under, read atomically. Admission gids computed from
    /// the snapshot should be waited on with
    /// [`crate::VisibilityBoard::wait_admission_at`] carrying this
    /// generation: if a regroup lands in between, the stale generation
    /// demotes the wait to the (always-correct) global-watermark path.
    pub fn grouping_versioned(&self) -> (u64, Arc<TableGrouping>) {
        let g = self.grouping.read();
        (g.gen, g.grouping.clone())
    }

    /// The generation of the currently installed grouping (0 until the
    /// first live regroup).
    pub fn grouping_gen(&self) -> u64 {
        self.grouping.read().gen
    }

    /// The sender half of the engine's live reconfiguration channel.
    pub fn reconfigure_handle(&self) -> ReconfigureHandle {
        self.reconf.clone()
    }

    /// Drains the reconfiguration queue at an epoch boundary and returns
    /// the plan — grouping, generation, pinned split — the next epoch is
    /// dispatched and replayed under. Runs on the dispatching side of
    /// the datapath, which is the only place a grouping swap is safe:
    /// between epochs no commit queue holds work and every healthy
    /// watermark sits at the previous epoch's `max_commit_ts`.
    fn apply_pending(&self, at_seq: u64) -> EpochPlan {
        let drained: Vec<Reconfigure> = {
            let mut q = self.reconf.inner.queue.lock();
            if q.is_empty() {
                Vec::new()
            } else {
                q.drain(..).collect()
            }
        };
        let (mut regroups, mut resplits, mut rejected) = (0u64, 0u64, 0u64);
        for cmd in drained {
            match cmd {
                Reconfigure::SetThreadSplit(split) => {
                    self.telemetry.event(EventKind::ThreadSplit { at_seq, split: split.clone() });
                    *self.pinned_split.lock() = Some(split);
                    resplits += 1;
                }
                Reconfigure::Regroup(g) => {
                    if self.quarantine.any() {
                        // Dropped, not deferred: the controller re-plans
                        // from fresh telemetry every window, so a stale
                        // plan must not fire when quarantine lifts.
                        rejected += 1;
                        continue;
                    }
                    let mut cur = self.grouping.write();
                    let moved = (0..g.num_tables())
                        .map(|t| TableId::new(t as u32))
                        .filter(|&t| g.group_of(t) != cur.grouping.group_of(t))
                        .count();
                    cur.gen += 1;
                    cur.grouping = Arc::new(g);
                    let groups = cur.grouping.num_groups();
                    drop(cur);
                    self.telemetry.event(EventKind::Regroup {
                        at_seq,
                        groups,
                        moved_tables: moved,
                    });
                    regroups += 1;
                }
            }
        }
        if regroups + resplits + rejected > 0 {
            self.telemetry.spans().point(at_seq, stages::RECONFIGURE, None, None);
            self.reconf.inner.applied.fetch_add(regroups + resplits, Ordering::Release);
            self.stats.regroups.add(regroups);
            self.stats.resplits.add(resplits);
            self.stats.reconf_rejected.add(rejected);
        }
        let cur = self.grouping.read();
        EpochPlan {
            gen: cur.gen,
            grouping: cur.grouping.clone(),
            split: self.pinned_split.lock().clone(),
            regroups,
            resplits,
            rejected,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stage(
        &self,
        seq: u64,
        parent: Option<SpanId>,
        work: &DispatchedEpoch,
        stage_groups: &[GroupId],
        alloc: &[usize],
        pools: &[CellPool],
        db: &MemDb,
        board: &VisibilityBoard,
        replay_busy_ns: &AtomicU64,
        commit_busy_ns: &AtomicU64,
    ) {
        let quarantine = &self.quarantine;
        let ring = self.telemetry.spans();
        std::thread::scope(|scope| {
            for &gid in stage_groups {
                // A quarantined group gets no further work: its watermark
                // stays frozen at the last consistent commit.
                if quarantine.is_poisoned(gid) {
                    continue;
                }
                let gw = work.group(gid);
                if gw.mini_txns.is_empty() {
                    continue;
                }
                let workers = alloc[gid.index()];
                let pool = &pools[gid.index()];
                let queue = Arc::new(CommitQueue::new(gw.mini_txns.len()));
                for _ in 0..workers {
                    let queue = queue.clone();
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        // One translate span per worker per (stage, group):
                        // the merged timeline shows how long each worker
                        // spent in phase 1 for this epoch.
                        let tspan = ring.begin(seq, stages::TRANSLATE, Some(gid.index()), parent);
                        while let Some(i) = queue.claim() {
                            let mt = &gw.mini_txns[i];
                            // Contained per mini-txn so a failure (or
                            // panic) still fills this slot and the worker
                            // keeps claiming later ones — every slot gets
                            // an outcome, so the commit thread never
                            // blocks on a task nobody will finish.
                            let res = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Cell>> {
                                let mut cells = pool.take(mt.entry_ranges.len());
                                for r in &mt.entry_ranges {
                                    cells.push(translate_entry(db, &work.bytes, r.clone())?);
                                }
                                Ok(cells)
                            }))
                            .unwrap_or_else(|p| Err(panic_error("phase-1 worker", p)));
                            queue.finish(i, res);
                        }
                        if let Some(s) = tspan {
                            s.finish(ring);
                        }
                        replay_busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
                // The group's single commit thread (phase 2).
                let state_c = queue.clone();
                scope.spawn(move || {
                    // Busy time excludes blocking on phase-1 workers: the
                    // Table II breakdown measures work, not waiting.
                    let mut busy_ns = 0u64;
                    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                        // Head-of-line commit-queue wait, then the ordered
                        // apply: the wait span closes when the first
                        // slot's cells are in hand and the apply span
                        // covers the rest of the commit loop. A failure
                        // mid-loop drops the open span — only completed
                        // steps are recorded.
                        let mut wait_span =
                            ring.begin(seq, stages::COMMIT_WAIT, Some(gid.index()), parent);
                        let mut apply_span: Option<OpenSpan> = None;
                        for i in 0..gw.mini_txns.len() {
                            let mt = &gw.mini_txns[i];
                            let mut cells = if workers == 0 {
                                // Degenerate path under thread scarcity:
                                // the commit thread translates inline.
                                let mut cells = pool.take(mt.entry_ranges.len());
                                for r in &mt.entry_ranges {
                                    cells.push(translate_entry(db, &work.bytes, r.clone())?);
                                }
                                cells
                            } else {
                                state_c.wait_take(i)?
                            };
                            if let Some(w) = wait_span.take() {
                                w.finish(ring);
                                apply_span =
                                    ring.begin(seq, stages::APPLY, Some(gid.index()), parent);
                            }
                            let t0 = Instant::now();
                            for cell in cells.drain(..) {
                                commit_cell(cell, mt.commit_ts);
                            }
                            board.publish_group(gid, mt.commit_ts);
                            busy_ns += t0.elapsed().as_nanos() as u64;
                            // The drained buffer goes back to the group's
                            // free list for the next epoch's workers.
                            pool.put(cells);
                        }
                        if let Some(a) = apply_span.take() {
                            a.finish(ring);
                        }
                        Ok(())
                    }));
                    commit_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
                    // An error or contained panic quarantines this group;
                    // no watermark it already published is retracted (the
                    // committed prefix is fully installed and consistent),
                    // it just never advances again.
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => quarantine.poison(gid, e),
                        Err(p) => quarantine.poison(gid, panic_error("commit thread", p)),
                    }
                });
            }
        });
        // Stage barrier passed: every write this epoch routed to a healthy
        // group is installed, so each healthy group is complete up to the
        // epoch's high-water mark. Groups poisoned during the stage stay
        // at their last consistent commit.
        for &gid in stage_groups {
            if !quarantine.is_poisoned(gid) {
                board.publish_group(gid, work.max_commit_ts);
                // Point span at the barrier publish (not the hot
                // per-mini-txn watermark bumps): the timeline shows when
                // the group's epoch-final `tg_cmt_ts` became visible.
                ring.point(seq, stages::FLIP_GROUP, Some(gid.index()), parent);
            }
        }
    }

    /// Replays one dispatched epoch: rate refresh, thread allocation, the
    /// two replay stages, and the global visibility publish. This is the
    /// consumer side of the dispatch pipeline; calling it strictly in
    /// epoch order is what upholds the epoch-barrier invariant.
    #[allow(clippy::too_many_arguments)]
    fn replay_epoch(
        &self,
        eidx: usize,
        seq: u64,
        parent: Option<SpanId>,
        plan: &EpochPlan,
        work: &DispatchedEpoch,
        pools: &[CellPool],
        db: &MemDb,
        board: &VisibilityBoard,
        replay_busy: &AtomicU64,
        commit_busy: &AtomicU64,
        m: &mut ReplayMetrics,
    ) -> Result<()> {
        let grouping = &plan.grouping;
        // The previous epoch is fully replayed (this loop is strictly
        // in-order), so every healthy watermark covers the whole
        // database: now is the safe moment to tell the board that gids
        // computed under older groupings are stale. `fetch_max` makes
        // replays of old plans harmless.
        board.advance_grouping_gen(plan.gen);
        m.regroups_applied += plan.regroups;
        m.resplits_applied += plan.resplits;
        m.reconf_rejected += plan.rejected;

        // Refresh group rates if a predictor drives them.
        let rates: Vec<f64> = match &self.cfg.rate_fn {
            Some(f) => f(eidx),
            None => {
                (0..grouping.num_groups() as u32).map(|g| grouping.rate(GroupId::new(g))).collect()
            }
        };
        if rates.len() != grouping.num_groups() {
            return Err(Error::Config("rate_fn returned wrong length".into()));
        }

        let pending = work.pending_bytes();
        let alloc = if let Some(split) = &plan.split {
            // A live `SetThreadSplit` pins the allocation; the λ·n
            // solver resumes when the pin is replaced or the controller
            // clears it.
            split.clone()
        } else if self.cfg.adaptive {
            allocate_threads(self.cfg.threads, &pending, &rates, self.cfg.urgency)?
        } else {
            even_allocation(self.cfg.threads, &pending)
        };

        let stages: Vec<Vec<GroupId>> = if self.cfg.two_stage {
            vec![grouping.hot_groups(), grouping.cold_groups()]
        } else {
            vec![(0..grouping.num_groups() as u32).map(GroupId::new).collect()]
        };

        // Quarantine set before the stages run, so newly poisoned groups
        // can be diffed into events afterwards. Skipped entirely when
        // telemetry is off — this is the only per-epoch lock it adds.
        let pre_quarantine =
            if self.telemetry.is_enabled() { Some(self.quarantine.poisoned()) } else { None };

        for (sidx, stage_groups) in stages.iter().enumerate() {
            if stage_groups.is_empty() {
                continue;
            }
            let t_stage = Instant::now();
            self.run_stage(
                seq,
                parent,
                work,
                stage_groups,
                &alloc,
                pools,
                db,
                board,
                replay_busy,
                commit_busy,
            );
            let elapsed = t_stage.elapsed();
            if self.cfg.two_stage && sidx == 0 {
                m.stage1_wall += elapsed;
                self.stats.stage1_us.record_micros(elapsed.as_micros() as u64);
            } else {
                m.stage2_wall += elapsed;
                self.stats.stage2_us.record_micros(elapsed.as_micros() as u64);
            }
        }

        if let Some(before) = pre_quarantine {
            let after = self.quarantine.poisoned();
            if after.len() > before.len() {
                for &g in after.iter().filter(|g| !before.contains(g)) {
                    self.telemetry.event(EventKind::GroupQuarantined { group: g });
                }
                if before.is_empty() {
                    self.telemetry.event(EventKind::DegradedEntered { groups: after.clone() });
                }
            }
            self.stats.quarantined.set(after.len() as u64);
        }

        // Mirror the quarantine ledger onto the board so admission waiters
        // over a frozen group fail fast instead of sleeping out their
        // timeout (the board wakes exactly the waiters this decides).
        if self.quarantine.any() {
            board.set_quarantined(&self.quarantine.poisoned());
        }

        // Algorithm 3 admits a query when `global_cmt_ts >= qts` *without*
        // consulting per-group watermarks, so the global may only advance
        // while every group is healthy: with any group quarantined it
        // freezes at the last fully-consistent epoch, and queries over the
        // frozen group block (or time out) instead of reading past it.
        if !self.quarantine.any() {
            board.publish_global(work.max_commit_ts);
            self.telemetry.spans().point(seq, stages::FLIP_GLOBAL, None, parent);
        }
        let entries = work.groups.iter().map(|g| g.entries).sum::<usize>();
        m.txns += work.txn_count;
        m.entries += entries;
        m.bytes += work.bytes.len() as u64;
        m.epochs += 1;
        self.stats.txns.add(work.txn_count as u64);
        self.stats.entries.add(entries as u64);
        self.stats.bytes.add(work.bytes.len() as u64);
        self.stats.epochs.inc();
        Ok(())
    }

    /// Replays every epoch `source` delivers, running the ingest resync
    /// loop in front of the dispatcher: each delivery is CRC- and
    /// sequence-checked and re-requested under `cfg.retry` before it
    /// reaches replay. [`ReplayEngine::replay`] is this over a faithful
    /// in-memory source; pass a `FaultInjector` to exercise recovery.
    ///
    /// Returns an error when ingest or dispatch cannot make progress
    /// (retries exhausted on a fatal delivery fault). Group-level replay
    /// failures do *not* error: the group is quarantined, the run
    /// completes degraded, and `ReplayMetrics::quarantined_groups` /
    /// [`AetsEngine::quarantined_groups`] report it.
    pub fn replay_stream(
        &self,
        source: &mut dyn EpochSource,
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics> {
        // The group count is a construction-time invariant: live regroups
        // move tables between groups but never change how many there are.
        let num_groups = self.grouping.read().grouping.num_groups();
        if board.num_groups() != num_groups {
            return Err(Error::Config("board group count mismatch".into()));
        }
        let start = Instant::now();
        let mut m = ReplayMetrics { engine: self.name(), ..Default::default() };
        let mut ingest = IngestStats::default();
        let replay_busy = AtomicU64::new(0);
        let commit_busy = AtomicU64::new(0);
        let pools: Vec<CellPool> = (0..num_groups).map(|_| CellPool::new()).collect();
        let first_seq = source.first_seq();
        let n = source.num_epochs();

        if self.cfg.pipeline_depth == 0 {
            // Serial datapath: ingest and dispatch each epoch inline before
            // replaying it. Kept as the oracle the pipelined path is tested
            // against.
            for eidx in 0..n {
                let seq = first_seq + eidx as u64;
                // Epoch boundary: drain pending reconfigurations before
                // this epoch is dispatched, so dispatch and replay see
                // the same grouping.
                let plan = self.apply_pending(seq);
                let epoch = ingest_epoch(source, seq, &self.cfg.retry, &mut ingest)?;
                let t_dispatch = Instant::now();
                // The dispatch span roots the epoch's engine-side trace
                // tree: every translate/commit/flip span below parents to
                // it, so one epoch id pulls out the whole causal chain.
                let dspan = self.telemetry.spans().begin(seq, stages::DISPATCH, None, None);
                let work = dispatch_epoch(&epoch, &plan.grouping)?;
                let parent = dspan.map(|s| {
                    let id = s.id();
                    s.finish(self.telemetry.spans());
                    id
                });
                let dispatch_time = t_dispatch.elapsed();
                m.dispatch_busy += dispatch_time;
                self.stats.dispatch_us.record_micros(dispatch_time.as_micros() as u64);
                self.telemetry.event(EventKind::EpochDispatched { seq });
                self.replay_epoch(
                    eidx,
                    seq,
                    parent,
                    &plan,
                    &work,
                    &pools,
                    db,
                    board,
                    &replay_busy,
                    &commit_busy,
                    &mut m,
                )?;
                self.telemetry.event(EventKind::EpochCommitted {
                    seq,
                    max_commit_ts_us: work.max_commit_ts.as_micros(),
                });
                self.telemetry.spans().set_epoch_hint(seq);
            }
        } else {
            // Pipelined datapath: a dispatcher thread ingests and scans
            // epochs ahead of the replay loop, bounded by `pipeline_depth`
            // in-flight dispatched epochs. The channel is FIFO and the loop
            // below finishes epoch e (both stages + global publish) before
            // receiving e+1's work, so no entry of epoch e+1 can commit
            // before epoch e is fully replayed — the dispatcher overlap
            // never weakens the epoch barrier.
            let retry = self.cfg.retry.clone();
            let mut result: Result<()> = Ok(());
            std::thread::scope(|scope| {
                let (tx, rx) = crossbeam::channel::bounded(self.cfg.pipeline_depth);
                let engine = self;
                let ring = self.telemetry.spans();
                scope.spawn(move || {
                    for eidx in 0..n {
                        let seq = first_seq + eidx as u64;
                        // Epoch boundary on the dispatching side: the plan
                        // crosses the channel with the work, so epoch e+1
                        // can be dispatched under a newer grouping while
                        // epoch e still replays under the old one.
                        let plan = engine.apply_pending(seq);
                        let mut stats = IngestStats::default();
                        let t_dispatch = Instant::now();
                        // The dispatch span is recorded on the dispatcher
                        // thread and its id crosses the channel with the
                        // work, so downstream replay spans parent to it
                        // exactly as on the serial path.
                        let mut parent: Option<SpanId> = None;
                        // Contained so a dispatcher panic surfaces to the
                        // replay loop as an error instead of escaping
                        // through the scope join.
                        let grouping = plan.grouping.clone();
                        let work = catch_unwind(AssertUnwindSafe(|| {
                            ingest_epoch(&mut *source, seq, &retry, &mut stats).and_then(|epoch| {
                                let dspan = ring.begin(seq, stages::DISPATCH, None, None);
                                let out = dispatch_epoch(&epoch, &grouping);
                                if out.is_ok() {
                                    parent = dspan.map(|s| {
                                        let id = s.id();
                                        s.finish(ring);
                                        id
                                    });
                                }
                                out
                            })
                        }))
                        .unwrap_or_else(|p| Err(panic_error("dispatcher", p)));
                        let stop = work.is_err();
                        // A send error means the replay loop bailed out and
                        // dropped the receiver; a dispatch error is
                        // forwarded first, then the dispatcher stops.
                        if tx.send((work, stats, t_dispatch.elapsed(), parent, plan)).is_err()
                            || stop
                        {
                            break;
                        }
                    }
                });
                for (eidx, (work, stats, dispatch_time, parent, plan)) in rx.iter().enumerate() {
                    // Dispatcher busy time is now overlapped with replay;
                    // it still counts as busy time in the Table II
                    // breakdown, which measures work, not the critical
                    // path.
                    ingest.merge(&stats);
                    m.dispatch_busy += dispatch_time;
                    self.stats.dispatch_us.record_micros(dispatch_time.as_micros() as u64);
                    let seq = first_seq + eidx as u64;
                    if work.is_ok() {
                        self.telemetry.event(EventKind::EpochDispatched { seq });
                    }
                    let step = work.and_then(|work| {
                        self.replay_epoch(
                            eidx,
                            seq,
                            parent,
                            &plan,
                            &work,
                            &pools,
                            db,
                            board,
                            &replay_busy,
                            &commit_busy,
                            &mut m,
                        )
                        .map(|()| work.max_commit_ts)
                    });
                    match step {
                        Ok(max_commit_ts) => {
                            self.telemetry.event(EventKind::EpochCommitted {
                                seq,
                                max_commit_ts_us: max_commit_ts.as_micros(),
                            });
                            self.telemetry.spans().set_epoch_hint(seq);
                        }
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                // Dropping the receiver (scope end) unblocks a dispatcher
                // stuck in `send` after an early exit above.
            });
            result?;
        }

        m.ingest_retries = ingest.retries;
        m.checksum_failures = ingest.checksum_failures;
        m.epoch_gaps = ingest.epoch_gaps;
        m.ingest_stalls = ingest.stalls;
        m.quarantined_groups = self.quarantine.poisoned();
        m.cell_buffers_recycled = pools.iter().map(|p| p.recycled()).sum();
        m.cell_buffers_allocated = pools.iter().map(|p| p.allocated()).sum();
        m.replay_busy = std::time::Duration::from_nanos(replay_busy.load(Ordering::Relaxed));
        m.commit_busy = std::time::Duration::from_nanos(commit_busy.load(Ordering::Relaxed));
        m.wall = start.elapsed();
        // Wall-normalised throughput of this call; single-epoch calls from
        // the realtime runner overwrite it each tick, so the gauge always
        // reads the most recent ingest rate.
        let wall_us = m.wall.as_micros() as u64;
        if let Some(bps) = m.bytes.saturating_mul(1_000_000).checked_div(wall_us) {
            self.stats.ingest_bps.set(bps);
        }
        // Per-call deltas feed the cumulative registry counters: the
        // realtime runner calls `replay` once per epoch through the same
        // engine, so the registry integrates what ReplayMetrics reports
        // per call.
        self.stats.ingest_retries.add(ingest.retries);
        self.stats.checksum_failures.add(ingest.checksum_failures);
        self.stats.epoch_gaps.add(ingest.epoch_gaps);
        self.stats.ingest_stalls.add(ingest.stalls);
        self.stats.cell_recycled.add(m.cell_buffers_recycled);
        self.stats.cell_allocated.add(m.cell_buffers_allocated);
        self.stats.replay_busy_us.add(m.replay_busy.as_micros() as u64);
        self.stats.commit_busy_us.add(m.commit_busy.as_micros() as u64);
        Ok(m)
    }
}

/// Pads a value to its own cache line so the producer- and consumer-side
/// cursors of a [`CommitQueue`] never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

const SLOT_EMPTY: u8 = 0;
const SLOT_READY: u8 = 1;

/// How long the commit thread spins on the head slot before parking on
/// the condvar. Translating one mini-txn is a few µs of work, so a short
/// spin absorbs almost every wait without burning a futex syscall.
const SPIN_LIMIT: u32 = 128;

/// Lock-free in-order commit queue of one group's replay within a stage
/// (the phase-1→phase-2 edge; DESIGN.md §11 "Ingest hot path").
///
/// Phase-1 workers claim mini-txn indices from the cache-line-padded
/// `tail` cursor and publish each translation outcome into its slot with
/// a single release-store; the group's single commit thread — the unique
/// consumer — walks the padded `head` cursor strictly in mini-txn order
/// with acquire-loads. The hand-off hot path is entirely atomic: no
/// mutex, no condvar. The condvar only backs the consumer's *parked*
/// fallback after a bounded spin, preserving the blocking semantics of
/// the mutexed slot protocol this replaces (and its integration with
/// quarantine supervision: failed or panic-contained translations travel
/// through the slots as `Err` outcomes exactly as before).
///
/// Safety of the `UnsafeCell` payloads: slot `i` is written exactly
/// once, by the unique worker whose `claim()` returned `i`, strictly
/// before its `SLOT_READY` release-store; the consumer reads it exactly
/// once, strictly after acquire-loading `SLOT_READY`, and `head` never
/// revisits an index. The release/acquire pair on `state` orders the
/// payload write before the payload read.
#[doc(hidden)] // public only for `examples/ingest_bench.rs`
pub struct CommitQueue {
    /// Producer claim cursor: workers hammer it with `fetch_add`.
    tail: CachePadded<AtomicUsize>,
    /// Consumer position, padded away from `tail` and the slots.
    head: CachePadded<AtomicUsize>,
    slots: Box<[CommitSlot]>,
    /// 1 while the consumer is parked on `cv`; producers skip the mutex
    /// entirely whenever it is 0 (the common case).
    parked: AtomicUsize,
    mx: Mutex<()>,
    cv: Condvar,
}

struct CommitSlot {
    state: AtomicU8,
    /// The translation outcome: cells on success, the worker's (typed or
    /// panic-contained) failure otherwise.
    cells: UnsafeCell<Result<Vec<Cell>>>,
}

// SAFETY: cross-thread access to `cells` is mediated by `state` as
// described on [`CommitQueue`].
unsafe impl Sync for CommitSlot {}

impl CommitQueue {
    #[doc(hidden)]
    pub fn new(n: usize) -> Self {
        Self {
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
            slots: (0..n)
                .map(|_| CommitSlot {
                    state: AtomicU8::new(SLOT_EMPTY),
                    cells: UnsafeCell::new(Ok(Vec::new())),
                })
                .collect(),
            parked: AtomicUsize::new(0),
            mx: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Worker: claims the next untranslated mini-txn index, or `None`
    /// once the stage is exhausted.
    pub fn claim(&self) -> Option<usize> {
        let i = self.tail.0.fetch_add(1, Ordering::Relaxed);
        (i < self.slots.len()).then_some(i)
    }

    /// Worker: publishes the translation outcome of mini-txn `i`.
    pub fn finish(&self, i: usize, cells: Result<Vec<Cell>>) {
        let slot = &self.slots[i];
        // SAFETY: unique writer of slot `i` (see type docs); the consumer
        // is excluded until the release-store below.
        unsafe { *slot.cells.get() = cells };
        slot.state.store(SLOT_READY, Ordering::Release);
        // Dekker hand-off with `wait_take`'s park path: the fences order
        // this READY store against the consumer's `parked` store, so
        // either this load observes the consumer parked (and takes the
        // mutex to wake it), or the consumer's re-check after its own
        // fence observes READY and never sleeps. Without the fences both
        // loads could see stale values and the wakeup would be lost.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) != 0 {
            let _g = self.mx.lock();
            self.cv.notify_all();
        }
    }

    /// Commit thread: blocks until mini-txn `i` — which must be the next
    /// in-order index — is translated, then takes its outcome.
    pub fn wait_take(&self, i: usize) -> Result<Vec<Cell>> {
        debug_assert_eq!(self.head.0.load(Ordering::Relaxed), i, "single in-order consumer");
        let slot = &self.slots[i];
        let mut spins = 0u32;
        while slot.state.load(Ordering::Acquire) != SLOT_READY {
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let mut g = self.mx.lock();
            self.parked.store(1, Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::SeqCst);
            while slot.state.load(Ordering::Acquire) != SLOT_READY {
                self.cv.wait(&mut g);
            }
            self.parked.store(0, Ordering::Relaxed);
            break;
        }
        self.head.0.store(i + 1, Ordering::Relaxed);
        // SAFETY: `SLOT_READY` acquired above; `head` has moved past `i`,
        // so this is the slot's unique (and final) reader.
        unsafe { std::mem::replace(&mut *slot.cells.get(), Ok(Vec::new())) }
    }
}

impl ReplayEngine for AetsEngine {
    fn name(&self) -> &'static str {
        if self.grouping.read().grouping.num_groups() == 1 && !self.cfg.two_stage {
            "tplr"
        } else {
            "aets"
        }
    }

    fn board_groups(&self) -> usize {
        self.grouping.read().grouping.num_groups()
    }

    fn board_groups_for(&self, tables: &[TableId]) -> Vec<GroupId> {
        self.grouping.read().grouping.groups_of(tables)
    }

    fn board_groups_for_at(&self, tables: &[TableId]) -> (u64, Vec<GroupId>) {
        let g = self.grouping.read();
        (g.gen, g.grouping.groups_of(tables))
    }

    fn reconfigure(&self) -> Option<ReconfigureHandle> {
        Some(self.reconf.clone())
    }

    fn current_grouping(&self) -> Option<Arc<TableGrouping>> {
        Some(self.grouping())
    }

    fn replay(
        &self,
        epochs: &[EncodedEpoch],
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics> {
        // A faithful in-memory feed: re-requests redeliver the same bytes,
        // so the resync loop in front of dispatch sees no faults.
        let mut source = SliceSource::new(epochs);
        self.replay_stream(&mut source, db, board)
    }

    fn telemetry_handle(&self) -> Option<Arc<Telemetry>> {
        Some(self.telemetry.clone())
    }
}

/// Even split of threads across groups with pending work (the
/// non-adaptive baseline allocation).
fn even_allocation(total: usize, pending: &[u64]) -> Vec<usize> {
    let working: Vec<usize> = (0..pending.len()).filter(|i| pending[*i] > 0).collect();
    let mut out = vec![0usize; pending.len()];
    if working.is_empty() {
        return out;
    }
    let per = (total / working.len()).max(1);
    let mut left = total;
    for &i in &working {
        let n = per.min(left);
        out[i] = n;
        left -= n;
        if left == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::serial::SerialEngine;
    use aets_common::{FxHashSet, Timestamp};
    use aets_workloads::tpcc::{self, TpccConfig};
    use aets_workloads::Workload;

    fn encode(w: &Workload, epoch_size: usize) -> Vec<EncodedEpoch> {
        aets_wal::batch_into_epochs(w.txns.clone(), epoch_size)
            .unwrap()
            .iter()
            .map(aets_wal::encode_epoch)
            .collect()
    }

    fn tpcc_grouping(w: &Workload) -> TableGrouping {
        let (groups, rates) = tpcc::paper_grouping();
        TableGrouping::new(w.table_names.len(), groups, rates, &w.analytic_tables).unwrap()
    }

    #[test]
    fn aets_matches_serial_oracle() {
        let w = tpcc::generate(&TpccConfig { num_txns: 800, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 128);

        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 4, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();

        assert_eq!(m.txns, w.txns.len());
        assert!(db.all_chains_ordered());
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
        // Snapshot equality must hold at intermediate timestamps too.
        let mid = w.txns[w.txns.len() / 2].commit_ts;
        assert_eq!(db.digest_at(mid), db_serial.digest_at(mid));
    }

    #[test]
    fn tplr_baseline_matches_serial() {
        let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 200);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let eng = AetsEngine::tplr_baseline(4, w.table_names.len(), &w.analytic_tables).unwrap();
        assert_eq!(eng.name(), "tplr");
        let db = MemDb::new(w.table_names.len());
        eng.replay_all(&epochs, &db).unwrap();
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
    }

    #[test]
    fn hot_groups_become_visible_before_epoch_ends() {
        // With two-stage replay, after replay the hot groups' tg_cmt_ts
        // must equal the last epoch's max commit ts.
        let w = tpcc::generate(&TpccConfig { num_txns: 400, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 100);
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let board = VisibilityBoard::builder(eng.board_groups()).build();
        eng.replay(&epochs, &db, &board).unwrap();
        let last = epochs.last().unwrap().max_commit_ts;
        for g in 0..eng.board_groups() as u32 {
            assert!(board.tg_cmt_ts(GroupId::new(g)) >= last, "group {g} lagging");
        }
        assert_eq!(board.global_cmt_ts(), last);
    }

    #[test]
    fn single_thread_still_completes() {
        let w = tpcc::generate(&TpccConfig { num_txns: 300, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 1, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len());
        assert!(db.all_chains_ordered());
    }

    #[test]
    fn non_adaptive_and_single_stage_paths_work() {
        let w = tpcc::generate(&TpccConfig { num_txns: 300, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();
        for (two_stage, adaptive) in [(false, true), (true, false), (false, false)] {
            let eng = AetsEngine::builder(tpcc_grouping(&w))
                .config(AetsConfig { threads: 3, two_stage, adaptive, ..Default::default() })
                .build()
                .unwrap();
            let db = MemDb::new(w.table_names.len());
            eng.replay_all(&epochs, &db).unwrap();
            assert_eq!(
                db.digest_at(Timestamp::MAX),
                db_serial.digest_at(Timestamp::MAX),
                "two_stage={two_stage} adaptive={adaptive}"
            );
        }
    }

    #[test]
    fn rate_fn_drives_allocation() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let n_groups = tpcc_grouping(&w).num_groups();
        let rate_fn: RateFn = Arc::new(move |_eidx| vec![5.0; n_groups]);
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 2, rate_fn: Some(rate_fn), ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert!(m.entries > 0);
    }

    #[test]
    fn rejects_bad_configs() {
        let hot: FxHashSet<TableId> = FxHashSet::default();
        let g = TableGrouping::single(2, &hot);
        assert!(AetsEngine::builder(g)
            .config(AetsConfig { threads: 0, ..Default::default() })
            .build()
            .is_err());
    }

    #[test]
    fn pipelined_and_serial_datapaths_match() {
        // The pipelined dispatcher (any depth) must produce state
        // identical to the inline-dispatch serial datapath and to the
        // serial oracle.
        let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 96);
        let db_oracle = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_oracle).unwrap();
        let oracle = db_oracle.digest_at(Timestamp::MAX);

        for depth in [0usize, 1, 4] {
            let eng = AetsEngine::builder(tpcc_grouping(&w))
                .config(AetsConfig { threads: 3, pipeline_depth: depth, ..Default::default() })
                .build()
                .unwrap();
            let db = MemDb::new(w.table_names.len());
            let m = eng.replay_all(&epochs, &db).unwrap();
            assert_eq!(m.txns, w.txns.len(), "depth={depth}");
            assert!(db.all_chains_ordered(), "depth={depth}");
            assert_eq!(db.digest_at(Timestamp::MAX), oracle, "depth={depth}");
        }
    }

    #[test]
    fn cell_pool_recycles_buffers_across_epochs() {
        // With many epochs, steady-state phase 1 must be served from the
        // free list: recycled takes dominate fresh allocations.
        let w = tpcc::generate(&TpccConfig { num_txns: 1200, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        assert!(epochs.len() > 10);
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert!(m.cell_buffers_allocated > 0);
        assert!(
            m.cell_buffers_recycled > m.cell_buffers_allocated,
            "recycled {} should exceed allocated {}",
            m.cell_buffers_recycled,
            m.cell_buffers_allocated
        );
    }

    #[test]
    fn pipelined_dispatch_surfaces_decode_errors() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let mut epochs = encode(&w, 64);
        // Truncate the last epoch mid-record: the dispatcher must forward
        // the decode error through the pipeline instead of hanging.
        let last = epochs.last().unwrap();
        let mut b = last.bytes.clone();
        let cut = b.split_to(b.len() - 3);
        let corrupt = aets_wal::EncodedEpoch { bytes: cut, ..last.clone() };
        *epochs.last_mut().unwrap() = corrupt;
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let err = eng.replay_all(&epochs, &db).unwrap_err();
        assert!(matches!(err.kind(), "codec" | "protocol"), "got {err}");
    }

    fn two_group_grouping() -> TableGrouping {
        let hot: FxHashSet<TableId> = [TableId::new(0)].into_iter().collect();
        TableGrouping::new(
            3,
            vec![vec![TableId::new(0), TableId::new(1)], vec![TableId::new(2)]],
            vec![10.0, 1.0],
            &hot,
        )
        .unwrap()
    }

    /// 12 transactions, each writing table 0 (group 0, hot) and table 2
    /// (group 1, cold), batched into 3 epochs of 4.
    fn two_group_epochs() -> Vec<EncodedEpoch> {
        use aets_common::{ColumnId, DmlOp, Lsn, RowKey, TxnId, Value};
        use aets_wal::{DmlEntry, TxnLog};
        let txns: Vec<TxnLog> = (1..=12u64)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: [0u32, 2]
                    .iter()
                    .enumerate()
                    .map(|(j, &table)| DmlEntry {
                        lsn: Lsn::new(i * 10 + j as u64),
                        txn_id: TxnId::new(i),
                        ts: Timestamp::from_micros(i * 10),
                        table: TableId::new(table),
                        op: DmlOp::Insert,
                        key: RowKey::new(i),
                        row_version: 1,
                        cols: vec![(ColumnId::new(0), Value::Int(i as i64))],
                        before: None,
                    })
                    .collect(),
            })
            .collect();
        aets_wal::batch_into_epochs(txns, 4).unwrap().iter().map(aets_wal::encode_epoch).collect()
    }

    /// Flips a bit in the record-CRC trailer of `table`'s first DML and
    /// restamps the frame CRC — the `FaultKind::RecordCorruption` shape:
    /// invisible at ingest, fatal at full record decode.
    fn corrupt_first_dml_of(epoch: &EncodedEpoch, table: TableId) -> EncodedEpoch {
        let range = aets_wal::MetaScanner::new(epoch.bytes.clone())
            .filter_map(|i| i.ok())
            .find(|(meta, _)| meta.table == Some(table))
            .map(|(_, r)| r)
            .expect("epoch holds a DML of the table");
        let mut v = epoch.bytes.to_vec();
        v[range.end - 1] ^= 0x01;
        let bytes = bytes::Bytes::from(v);
        EncodedEpoch { crc32: aets_wal::crc32(&bytes), bytes, ..epoch.clone() }
    }

    #[test]
    fn persistent_corruption_quarantines_group_and_freezes_watermarks() {
        for depth in [0usize, 2] {
            let mut epochs = two_group_epochs();
            epochs[1] = corrupt_first_dml_of(&epochs[1], TableId::new(2));
            let eng = AetsEngine::builder(two_group_grouping())
                .config(AetsConfig { threads: 2, pipeline_depth: depth, ..Default::default() })
                .build()
                .unwrap();
            let db = MemDb::new(3);
            let board = VisibilityBoard::builder(2).build();
            let last_consistent = epochs[0].max_commit_ts;

            let m = eng.replay(&epochs[..2], &db, &board).unwrap();
            assert!(m.degraded(), "depth={depth}");
            assert_eq!(m.quarantined_groups, vec![1], "depth={depth}");
            assert_eq!(eng.quarantined_groups(), vec![1]);
            // The corrupt record sits in group 1's first mini-txn of epoch
            // 1, so nothing of that epoch commits there: tg freezes at the
            // last consistent epoch, and so does the global (else
            // Algorithm 3's global shortcut would admit queries over the
            // quarantined group).
            assert_eq!(board.tg_cmt_ts(GroupId::new(1)), last_consistent, "depth={depth}");
            assert_eq!(board.global_cmt_ts(), last_consistent, "depth={depth}");
            // The healthy group replayed the corrupt epoch in full.
            assert_eq!(board.tg_cmt_ts(GroupId::new(0)), epochs[1].max_commit_ts);

            // Quarantine persists across replay calls on the same engine
            // (the realtime runner replays one epoch per call): the frozen
            // group never advances, healthy groups keep going.
            let m = eng.replay(&epochs[2..], &db, &board).unwrap();
            assert!(m.degraded());
            assert_eq!(
                board.tg_cmt_ts(GroupId::new(1)),
                last_consistent,
                "quarantined group advanced past its last consistent epoch (depth={depth})"
            );
            assert_eq!(board.global_cmt_ts(), last_consistent);
            assert_eq!(board.tg_cmt_ts(GroupId::new(0)), epochs[2].max_commit_ts);
            assert!(db.all_chains_ordered());
        }
    }

    /// The two-group layout after a live regroup: table 1 moves from the
    /// hot group 0 to the cold group 1. Same group and table counts.
    fn regrouped_two_groups() -> TableGrouping {
        let hot: FxHashSet<TableId> = [TableId::new(0)].into_iter().collect();
        TableGrouping::new(
            3,
            vec![vec![TableId::new(0)], vec![TableId::new(1), TableId::new(2)]],
            vec![10.0, 1.0],
            &hot,
        )
        .unwrap()
    }

    #[test]
    fn live_regroup_matches_serial_oracle_and_bumps_generation() {
        // Drive the engine one epoch per replay call (the realtime
        // runner's shape) and regroup between epochs: the end state must
        // stay byte-equivalent to the serial oracle, the board must learn
        // the new generation, and the metrics must count the regroup.
        for depth in [0usize, 2] {
            let epochs = two_group_epochs();
            let db_oracle = MemDb::new(3);
            SerialEngine.replay_all(&epochs, &db_oracle).unwrap();

            let eng = AetsEngine::builder(two_group_grouping())
                .config(AetsConfig { threads: 2, pipeline_depth: depth, ..Default::default() })
                .build()
                .unwrap();
            let db = MemDb::new(3);
            let board = VisibilityBoard::builder(2).build();

            eng.replay(&epochs[..1], &db, &board).unwrap();
            assert_eq!(board.grouping_gen(), 0);

            let handle = eng.reconfigure_handle();
            handle.send(Reconfigure::Regroup(regrouped_two_groups())).unwrap();
            assert_eq!(handle.pending(), 1);
            let m = eng.replay(&epochs[1..], &db, &board).unwrap();
            assert_eq!(m.regroups_applied, 1, "depth={depth}");
            assert_eq!(handle.applied(), 1);
            assert_eq!(handle.pending(), 0);
            assert_eq!(eng.grouping_gen(), 1);
            assert_eq!(board.grouping_gen(), 1, "depth={depth}");
            // Table 1 now maps to group 1 under the installed grouping.
            assert_eq!(eng.grouping().group_of(TableId::new(1)), GroupId::new(1));

            assert!(db.all_chains_ordered());
            assert_eq!(
                db.digest_at(Timestamp::MAX),
                db_oracle.digest_at(Timestamp::MAX),
                "depth={depth}"
            );
            // All groups replayed everything: watermarks at the tail.
            let last = epochs.last().unwrap().max_commit_ts;
            assert_eq!(board.global_cmt_ts(), last);
        }
    }

    #[test]
    fn thread_split_pin_overrides_solver() {
        let epochs = two_group_epochs();
        let db_oracle = MemDb::new(3);
        SerialEngine.replay_all(&epochs, &db_oracle).unwrap();

        let eng = AetsEngine::builder(two_group_grouping())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        eng.reconfigure_handle().send(Reconfigure::SetThreadSplit(vec![1, 1])).unwrap();
        let db = MemDb::new(3);
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert_eq!(m.resplits_applied, 1);
        assert_eq!(db.digest_at(Timestamp::MAX), db_oracle.digest_at(Timestamp::MAX));
    }

    #[test]
    fn regroup_rejected_while_quarantined() {
        let mut epochs = two_group_epochs();
        epochs[1] = corrupt_first_dml_of(&epochs[1], TableId::new(2));
        let eng = AetsEngine::builder(two_group_grouping())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(3);
        let board = VisibilityBoard::builder(2).build();
        let m = eng.replay(&epochs[..2], &db, &board).unwrap();
        assert_eq!(m.quarantined_groups, vec![1]);

        // A regroup while group 1's watermark is frozen must be dropped:
        // moving tables would change what the freeze protects.
        let handle = eng.reconfigure_handle();
        handle.send(Reconfigure::Regroup(regrouped_two_groups())).unwrap();
        let m = eng.replay(&epochs[2..], &db, &board).unwrap();
        assert_eq!(m.reconf_rejected, 1);
        assert_eq!(m.regroups_applied, 0);
        assert_eq!(handle.applied(), 0);
        assert_eq!(eng.grouping_gen(), 0);
        assert_eq!(board.grouping_gen(), 0);
        assert_eq!(eng.grouping().group_of(TableId::new(1)), GroupId::new(0));
    }

    #[test]
    fn reconfigure_handle_validates_commands() {
        let eng = AetsEngine::builder(two_group_grouping())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        let handle = eng.reconfigure_handle();
        // Wrong split arity.
        assert!(handle.send(Reconfigure::SetThreadSplit(vec![1, 1, 1])).is_err());
        // Wrong group count (engine is sized for 2 groups).
        let hot: FxHashSet<TableId> = FxHashSet::default();
        assert!(handle
            .send(Reconfigure::Regroup(TableGrouping::per_table(3, &hot, |_| 1.0)))
            .is_err());
        // Wrong table count.
        assert!(handle
            .send(Reconfigure::Regroup(
                TableGrouping::new(
                    2,
                    vec![vec![TableId::new(0)], vec![TableId::new(1)]],
                    vec![1.0, 1.0],
                    &hot,
                )
                .unwrap()
            ))
            .is_err());
        assert_eq!(handle.pending(), 0);
    }

    #[test]
    fn commit_queue_delivers_every_outcome_in_order_under_contention() {
        // Pinned-seed stress of the lock-free hand-off: several producer
        // workers claim and fill slots out of order (with splitmix-driven
        // jitter so interleavings vary but reproduce), while the single
        // consumer takes outcomes strictly in index order — the
        // linearization the old mutexed slot protocol guaranteed. Each
        // outcome carries its index as an `Err` payload so delivery is
        // checked for identity, order, and exactly-once.
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let n = 4_000usize;
        let producers = 4usize;
        let seed: u64 =
            std::env::var("AETS_TEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xA375);
        let queue = Arc::new(CommitQueue::new(n));
        std::thread::scope(|scope| {
            for p in 0..producers {
                let queue = queue.clone();
                let mut rng = seed.wrapping_add(p as u64);
                scope.spawn(move || {
                    while let Some(i) = queue.claim() {
                        // Jitter: sometimes yield so slots complete out of
                        // claim order and the consumer races ahead/behind.
                        if splitmix(&mut rng).is_multiple_of(7) {
                            std::thread::yield_now();
                        }
                        queue.finish(i, Err(Error::Replay(i.to_string())));
                    }
                });
            }
            for i in 0..n {
                match queue.wait_take(i) {
                    Err(Error::Replay(tag)) => {
                        assert_eq!(tag, i.to_string(), "slot {i} delivered a foreign outcome")
                    }
                    other => panic!("slot {i}: unexpected outcome {other:?}"),
                }
            }
        });
    }

    #[test]
    fn worker_panic_is_contained_and_quarantines_the_group() {
        let epochs = two_group_epochs();
        let eng = AetsEngine::builder(two_group_grouping())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        // A db sized below the workload's table span makes the replay
        // workers panic when they touch table 2. The panic must be
        // contained (no propagation out of replay), poison group 1 from
        // the first epoch on, and leave group 0 fully replayed.
        let db = MemDb::new(2);
        let board = VisibilityBoard::builder(2).build();
        let m = eng.replay(&epochs, &db, &board).unwrap();
        assert_eq!(m.quarantined_groups, vec![1]);
        assert_eq!(board.tg_cmt_ts(GroupId::new(0)), epochs.last().unwrap().max_commit_ts);
        assert_eq!(board.tg_cmt_ts(GroupId::new(1)), Timestamp::ZERO);
        assert_eq!(board.global_cmt_ts(), Timestamp::ZERO);
    }

    #[test]
    fn replay_stream_resyncs_through_transient_faults() {
        use aets_wal::{FaultInjector, FaultKind, FaultPlan};
        let w = tpcc::generate(&TpccConfig { num_txns: 400, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let kinds = vec![
            FaultKind::TornTail,
            FaultKind::BitFlip,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Drop,
            FaultKind::Stall,
        ];
        let retry = RetryPolicy { max_retries: 4, base_backoff_us: 1, max_backoff_us: 50 };
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 2, retry, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let board = VisibilityBoard::builder(eng.board_groups()).build();
        let mut source = FaultInjector::new(epochs, FaultPlan::new(42, 0.6, kinds));
        let m = eng.replay_stream(&mut source, &db, &board).unwrap();
        assert!(!m.degraded(), "transient faults must fully heal");
        assert!(m.ingest_retries > 0, "seed 42 at rate 0.6 must fault some epoch");
        assert_eq!(m.ingest_faults(), m.checksum_failures + m.epoch_gaps + m.ingest_stalls);
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
    }

    #[test]
    fn metrics_breakdown_is_replay_dominated() {
        let w = tpcc::generate(&TpccConfig { num_txns: 2000, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 512);
        let eng = AetsEngine::builder(tpcc_grouping(&w))
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        let (d, r, _c) = m.breakdown();
        assert!(r > 0.5, "replay phase should dominate, got {r}");
        assert!(d < 0.4, "dispatch should be a small share, got {d}");
    }
}
