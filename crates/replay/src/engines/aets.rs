//! The AETS engine: adaptive epoch-based two-stage log replay with TPLR.
//!
//! Per epoch (Section III-D):
//!
//! 1. the dispatcher routes entries into per-group mini-transactions
//!    (metadata-only parse). With `pipeline_depth > 0` this runs on its
//!    own thread, feeding dispatched epochs to the replay loop through a
//!    bounded channel so the metadata scan of epoch `e+1` overlaps the
//!    stage-1/stage-2 replay of epoch `e` (see DESIGN.md, "Replay
//!    datapath");
//! 2. threads are allocated to groups by `λ·n` weights
//!    (Section IV-B), optionally refreshed from a per-epoch rate provider
//!    (the DTGM predictor in the full system);
//! 3. **stage 1** replays all hot groups: per group, workers run TPLR
//!    phase 1 (translate entries to uncommitted cells, no locks, no
//!    dependency tracking) while the group's single commit thread runs
//!    phase 2 (append cells in `commit_order_queue` order, publish
//!    `tg_cmt_ts`);
//! 4. **stage 2** replays the cold groups the same way;
//! 5. `global_cmt_ts` advances to the epoch's last commit.
//!
//! With `two_stage = false` and a single group this is exactly the
//! ungrouped TPLR baseline of Section VI-A5.

use crate::alloc::{allocate_threads, UrgencyMode};
use crate::dispatch::{dispatch_epoch, DispatchedEpoch};
use crate::engines::pool::CellPool;
use crate::engines::{commit_cell, translate_entry, Cell, ReplayEngine};
use crate::grouping::TableGrouping;
use crate::metrics::ReplayMetrics;
use crate::visibility::VisibilityBoard;
use aets_common::{Error, GroupId, Result, TableId};
use aets_memtable::MemDb;
use aets_wal::EncodedEpoch;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-epoch group access rates, e.g. from the DTGM predictor.
pub type RateFn = Arc<dyn Fn(usize) -> Vec<f64> + Send + Sync>;

/// Configuration of the AETS engine.
#[derive(Clone)]
pub struct AetsConfig {
    /// Total replay worker threads `T`.
    pub threads: usize,
    /// Urgency factor mode (Log = paper, Ignore = AETS-NOAC ablation).
    pub urgency: UrgencyMode,
    /// Replay hot groups in stage 1 before cold groups (the paper's
    /// two-stage design). `false` collapses to a single stage.
    pub two_stage: bool,
    /// Recompute the thread allocation each epoch from pending bytes and
    /// rates. `false` splits threads evenly across groups with work.
    pub adaptive: bool,
    /// Optional per-epoch group-rate provider (predicted access rates);
    /// when absent, the grouping's static rates are used.
    pub rate_fn: Option<RateFn>,
    /// Depth of the dispatch pipeline: how many dispatched epochs may sit
    /// between the dispatcher thread and the replay loop. `0` disables
    /// pipelining (epochs are dispatched inline, the pre-pipeline serial
    /// datapath); `n > 0` runs the dispatcher on its own thread behind a
    /// bounded channel of capacity `n`, overlapping the metadata scan of
    /// epoch `e+1` with the replay of epoch `e`. The epoch-barrier
    /// invariant is unaffected: the replay loop consumes epochs strictly
    /// in order and only ever commits the epoch at the channel head.
    pub pipeline_depth: usize,
}

impl std::fmt::Debug for AetsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AetsConfig")
            .field("threads", &self.threads)
            .field("urgency", &self.urgency)
            .field("two_stage", &self.two_stage)
            .field("adaptive", &self.adaptive)
            .field("rate_fn", &self.rate_fn.as_ref().map(|_| "<fn>"))
            .field("pipeline_depth", &self.pipeline_depth)
            .finish()
    }
}

impl Default for AetsConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            urgency: UrgencyMode::Log,
            two_stage: true,
            adaptive: true,
            rate_fn: None,
            pipeline_depth: 2,
        }
    }
}

/// The AETS replay engine.
#[derive(Debug)]
pub struct AetsEngine {
    cfg: AetsConfig,
    grouping: TableGrouping,
}

impl AetsEngine {
    /// Creates an engine over `grouping`.
    pub fn new(cfg: AetsConfig, grouping: TableGrouping) -> Result<Self> {
        if cfg.threads == 0 {
            return Err(Error::Config("threads must be positive".into()));
        }
        Ok(Self { cfg, grouping })
    }

    /// The ungrouped TPLR baseline: one group, no staging.
    pub fn tplr_baseline(
        threads: usize,
        num_tables: usize,
        hot_tables: &aets_common::FxHashSet<TableId>,
    ) -> Result<Self> {
        let grouping = TableGrouping::single(num_tables, hot_tables);
        let mut eng =
            Self::new(AetsConfig { threads, two_stage: false, ..Default::default() }, grouping)?;
        eng.cfg.adaptive = false;
        Ok(eng)
    }

    /// The engine's table grouping.
    pub fn grouping(&self) -> &TableGrouping {
        &self.grouping
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stage(
        &self,
        work: &DispatchedEpoch,
        stage_groups: &[GroupId],
        alloc: &[usize],
        pools: &[CellPool],
        db: &MemDb,
        board: &VisibilityBoard,
        replay_busy_ns: &AtomicU64,
        commit_busy_ns: &AtomicU64,
    ) {
        std::thread::scope(|scope| {
            for &gid in stage_groups {
                let gw = work.group(gid);
                if gw.mini_txns.is_empty() {
                    continue;
                }
                let workers = alloc[gid.index()];
                let pool = &pools[gid.index()];
                let state = Arc::new(GroupRunState::new(gw.mini_txns.len()));
                for _ in 0..workers {
                    let state = state.clone();
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        loop {
                            let i = state.next_task.fetch_add(1, Ordering::Relaxed);
                            if i >= gw.mini_txns.len() {
                                break;
                            }
                            let mt = &gw.mini_txns[i];
                            let mut cells = pool.take(mt.entry_ranges.len());
                            for r in &mt.entry_ranges {
                                cells.push(
                                    translate_entry(db, &work.bytes, r.clone())
                                        .expect("dispatched range decodes"),
                                );
                            }
                            state.finish(i, cells);
                        }
                        replay_busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
                // The group's single commit thread (phase 2).
                let state_c = state.clone();
                scope.spawn(move || {
                    // Busy time excludes blocking on phase-1 workers: the
                    // Table II breakdown measures work, not waiting.
                    let mut busy_ns = 0u64;
                    for i in 0..gw.mini_txns.len() {
                        let mt = &gw.mini_txns[i];
                        let mut cells = if workers == 0 {
                            // Degenerate path under thread scarcity: the
                            // commit thread translates inline.
                            let mut cells = pool.take(mt.entry_ranges.len());
                            for r in &mt.entry_ranges {
                                cells.push(
                                    translate_entry(db, &work.bytes, r.clone())
                                        .expect("dispatched range decodes"),
                                );
                            }
                            cells
                        } else {
                            state_c.wait_take(i)
                        };
                        let t0 = Instant::now();
                        for cell in cells.drain(..) {
                            commit_cell(cell, mt.commit_ts);
                        }
                        board.publish_group(gid, mt.commit_ts);
                        busy_ns += t0.elapsed().as_nanos() as u64;
                        // The drained buffer goes back to the group's free
                        // list for the next epoch's phase-1 workers.
                        pool.put(cells);
                    }
                    commit_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
                });
            }
        });
        // Stage barrier passed: every write this epoch routed to these
        // groups is installed, so each group is complete up to the epoch's
        // high-water mark.
        for &gid in stage_groups {
            board.publish_group(gid, work.max_commit_ts);
        }
    }

    /// Replays one dispatched epoch: rate refresh, thread allocation, the
    /// two replay stages, and the global visibility publish. This is the
    /// consumer side of the dispatch pipeline; calling it strictly in
    /// epoch order is what upholds the epoch-barrier invariant.
    #[allow(clippy::too_many_arguments)]
    fn replay_epoch(
        &self,
        eidx: usize,
        work: &DispatchedEpoch,
        pools: &[CellPool],
        db: &MemDb,
        board: &VisibilityBoard,
        replay_busy: &AtomicU64,
        commit_busy: &AtomicU64,
        m: &mut ReplayMetrics,
    ) -> Result<()> {
        // Refresh group rates if a predictor drives them.
        let rates: Vec<f64> = match &self.cfg.rate_fn {
            Some(f) => f(eidx),
            None => (0..self.grouping.num_groups() as u32)
                .map(|g| self.grouping.rate(GroupId::new(g)))
                .collect(),
        };
        if rates.len() != self.grouping.num_groups() {
            return Err(Error::Config("rate_fn returned wrong length".into()));
        }

        let pending = work.pending_bytes();
        let alloc = if self.cfg.adaptive {
            allocate_threads(self.cfg.threads, &pending, &rates, self.cfg.urgency)?
        } else {
            even_allocation(self.cfg.threads, &pending)
        };

        let stages: Vec<Vec<GroupId>> = if self.cfg.two_stage {
            vec![self.grouping.hot_groups(), self.grouping.cold_groups()]
        } else {
            vec![(0..self.grouping.num_groups() as u32).map(GroupId::new).collect()]
        };

        for (sidx, stage_groups) in stages.iter().enumerate() {
            if stage_groups.is_empty() {
                continue;
            }
            let t_stage = Instant::now();
            self.run_stage(work, stage_groups, &alloc, pools, db, board, replay_busy, commit_busy);
            if self.cfg.two_stage && sidx == 0 {
                m.stage1_wall += t_stage.elapsed();
            } else {
                m.stage2_wall += t_stage.elapsed();
            }
        }

        board.publish_global(work.max_commit_ts);
        m.txns += work.txn_count;
        m.entries += work.groups.iter().map(|g| g.entries).sum::<usize>();
        m.bytes += work.bytes.len() as u64;
        m.epochs += 1;
        Ok(())
    }
}

/// Shared state of one group's replay within a stage.
struct GroupRunState {
    next_task: AtomicUsize,
    slots: Vec<Slot>,
    mx: Mutex<()>,
    cv: Condvar,
}

struct Slot {
    ready: AtomicBool,
    cells: Mutex<Vec<Cell>>,
}

impl GroupRunState {
    fn new(n: usize) -> Self {
        Self {
            next_task: AtomicUsize::new(0),
            slots: (0..n)
                .map(|_| Slot { ready: AtomicBool::new(false), cells: Mutex::new(Vec::new()) })
                .collect(),
            mx: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Worker: store translated cells for mini-txn `i` and mark ready.
    fn finish(&self, i: usize, cells: Vec<Cell>) {
        *self.slots[i].cells.lock() = cells;
        self.slots[i].ready.store(true, Ordering::Release);
        let _g = self.mx.lock();
        self.cv.notify_all();
    }

    /// Commit thread: block until mini-txn `i` is translated, then take
    /// its cells.
    fn wait_take(&self, i: usize) -> Vec<Cell> {
        if !self.slots[i].ready.load(Ordering::Acquire) {
            let mut g = self.mx.lock();
            while !self.slots[i].ready.load(Ordering::Acquire) {
                self.cv.wait(&mut g);
            }
        }
        std::mem::take(&mut *self.slots[i].cells.lock())
    }
}

impl ReplayEngine for AetsEngine {
    fn name(&self) -> &'static str {
        if self.grouping.num_groups() == 1 && !self.cfg.two_stage {
            "tplr"
        } else {
            "aets"
        }
    }

    fn board_groups(&self) -> usize {
        self.grouping.num_groups()
    }

    fn board_groups_for(&self, tables: &[TableId]) -> Vec<GroupId> {
        self.grouping.groups_of(tables)
    }

    fn replay(
        &self,
        epochs: &[EncodedEpoch],
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics> {
        if board.num_groups() != self.grouping.num_groups() {
            return Err(Error::Config("board group count mismatch".into()));
        }
        let start = Instant::now();
        let mut m = ReplayMetrics { engine: self.name(), ..Default::default() };
        let replay_busy = AtomicU64::new(0);
        let commit_busy = AtomicU64::new(0);
        let pools: Vec<CellPool> =
            (0..self.grouping.num_groups()).map(|_| CellPool::new()).collect();

        if self.cfg.pipeline_depth == 0 {
            // Serial datapath: dispatch each epoch inline before replaying
            // it. Kept as the oracle the pipelined path is tested against.
            for (eidx, epoch) in epochs.iter().enumerate() {
                let t_dispatch = Instant::now();
                let work = dispatch_epoch(epoch, &self.grouping)?;
                m.dispatch_busy += t_dispatch.elapsed();
                self.replay_epoch(
                    eidx,
                    &work,
                    &pools,
                    db,
                    board,
                    &replay_busy,
                    &commit_busy,
                    &mut m,
                )?;
            }
        } else {
            // Pipelined datapath: a dispatcher thread scans epochs ahead of
            // the replay loop, bounded by `pipeline_depth` in-flight
            // dispatched epochs. The channel is FIFO and the loop below
            // finishes epoch e (both stages + global publish) before
            // receiving e+1's work, so no entry of epoch e+1 can commit
            // before epoch e is fully replayed — the dispatcher overlap
            // never weakens the epoch barrier.
            let mut result: Result<()> = Ok(());
            std::thread::scope(|scope| {
                let (tx, rx) = crossbeam::channel::bounded(self.cfg.pipeline_depth);
                scope.spawn(move || {
                    for epoch in epochs {
                        let t_dispatch = Instant::now();
                        let work = dispatch_epoch(epoch, &self.grouping);
                        let stop = work.is_err();
                        // A send error means the replay loop bailed out and
                        // dropped the receiver; a dispatch error is
                        // forwarded first, then the dispatcher stops.
                        if tx.send((work, t_dispatch.elapsed())).is_err() || stop {
                            break;
                        }
                    }
                });
                for (eidx, (work, dispatch_time)) in rx.iter().enumerate() {
                    // Dispatcher busy time is now overlapped with replay;
                    // it still counts as busy time in the Table II
                    // breakdown, which measures work, not the critical
                    // path.
                    m.dispatch_busy += dispatch_time;
                    let step = work.and_then(|work| {
                        self.replay_epoch(
                            eidx,
                            &work,
                            &pools,
                            db,
                            board,
                            &replay_busy,
                            &commit_busy,
                            &mut m,
                        )
                    });
                    if let Err(e) = step {
                        result = Err(e);
                        break;
                    }
                }
                // Dropping the receiver (scope end) unblocks a dispatcher
                // stuck in `send` after an early exit above.
            });
            result?;
        }

        m.cell_buffers_recycled = pools.iter().map(|p| p.recycled()).sum();
        m.cell_buffers_allocated = pools.iter().map(|p| p.allocated()).sum();
        m.replay_busy = std::time::Duration::from_nanos(replay_busy.load(Ordering::Relaxed));
        m.commit_busy = std::time::Duration::from_nanos(commit_busy.load(Ordering::Relaxed));
        m.wall = start.elapsed();
        Ok(m)
    }
}

/// Even split of threads across groups with pending work (the
/// non-adaptive baseline allocation).
fn even_allocation(total: usize, pending: &[u64]) -> Vec<usize> {
    let working: Vec<usize> = (0..pending.len()).filter(|i| pending[*i] > 0).collect();
    let mut out = vec![0usize; pending.len()];
    if working.is_empty() {
        return out;
    }
    let per = (total / working.len()).max(1);
    let mut left = total;
    for &i in &working {
        let n = per.min(left);
        out[i] = n;
        left -= n;
        if left == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::serial::SerialEngine;
    use aets_common::{FxHashSet, Timestamp};
    use aets_workloads::tpcc::{self, TpccConfig};
    use aets_workloads::Workload;

    fn encode(w: &Workload, epoch_size: usize) -> Vec<EncodedEpoch> {
        aets_wal::batch_into_epochs(w.txns.clone(), epoch_size)
            .unwrap()
            .iter()
            .map(aets_wal::encode_epoch)
            .collect()
    }

    fn tpcc_grouping(w: &Workload) -> TableGrouping {
        let (groups, rates) = tpcc::paper_grouping();
        TableGrouping::new(w.table_names.len(), groups, rates, &w.analytic_tables).unwrap()
    }

    #[test]
    fn aets_matches_serial_oracle() {
        let w = tpcc::generate(&TpccConfig { num_txns: 800, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 128);

        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let eng =
            AetsEngine::new(AetsConfig { threads: 4, ..Default::default() }, tpcc_grouping(&w))
                .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();

        assert_eq!(m.txns, w.txns.len());
        assert!(db.all_chains_ordered());
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
        // Snapshot equality must hold at intermediate timestamps too.
        let mid = w.txns[w.txns.len() / 2].commit_ts;
        assert_eq!(db.digest_at(mid), db_serial.digest_at(mid));
    }

    #[test]
    fn tplr_baseline_matches_serial() {
        let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 200);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let eng = AetsEngine::tplr_baseline(4, w.table_names.len(), &w.analytic_tables).unwrap();
        assert_eq!(eng.name(), "tplr");
        let db = MemDb::new(w.table_names.len());
        eng.replay_all(&epochs, &db).unwrap();
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
    }

    #[test]
    fn hot_groups_become_visible_before_epoch_ends() {
        // With two-stage replay, after replay the hot groups' tg_cmt_ts
        // must equal the last epoch's max commit ts.
        let w = tpcc::generate(&TpccConfig { num_txns: 400, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 100);
        let eng =
            AetsEngine::new(AetsConfig { threads: 2, ..Default::default() }, tpcc_grouping(&w))
                .unwrap();
        let db = MemDb::new(w.table_names.len());
        let board = VisibilityBoard::new(eng.board_groups());
        eng.replay(&epochs, &db, &board).unwrap();
        let last = epochs.last().unwrap().max_commit_ts;
        for g in 0..eng.board_groups() as u32 {
            assert!(board.tg_cmt_ts(GroupId::new(g)) >= last, "group {g} lagging");
        }
        assert_eq!(board.global_cmt_ts(), last);
    }

    #[test]
    fn single_thread_still_completes() {
        let w = tpcc::generate(&TpccConfig { num_txns: 300, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let eng =
            AetsEngine::new(AetsConfig { threads: 1, ..Default::default() }, tpcc_grouping(&w))
                .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len());
        assert!(db.all_chains_ordered());
    }

    #[test]
    fn non_adaptive_and_single_stage_paths_work() {
        let w = tpcc::generate(&TpccConfig { num_txns: 300, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();
        for (two_stage, adaptive) in [(false, true), (true, false), (false, false)] {
            let eng = AetsEngine::new(
                AetsConfig { threads: 3, two_stage, adaptive, ..Default::default() },
                tpcc_grouping(&w),
            )
            .unwrap();
            let db = MemDb::new(w.table_names.len());
            eng.replay_all(&epochs, &db).unwrap();
            assert_eq!(
                db.digest_at(Timestamp::MAX),
                db_serial.digest_at(Timestamp::MAX),
                "two_stage={two_stage} adaptive={adaptive}"
            );
        }
    }

    #[test]
    fn rate_fn_drives_allocation() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        let n_groups = tpcc_grouping(&w).num_groups();
        let rate_fn: RateFn = Arc::new(move |_eidx| vec![5.0; n_groups]);
        let eng = AetsEngine::new(
            AetsConfig { threads: 2, rate_fn: Some(rate_fn), ..Default::default() },
            tpcc_grouping(&w),
        )
        .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert!(m.entries > 0);
    }

    #[test]
    fn rejects_bad_configs() {
        let hot: FxHashSet<TableId> = FxHashSet::default();
        let g = TableGrouping::single(2, &hot);
        assert!(AetsEngine::new(AetsConfig { threads: 0, ..Default::default() }, g).is_err());
    }

    #[test]
    fn pipelined_and_serial_datapaths_match() {
        // The pipelined dispatcher (any depth) must produce state
        // identical to the inline-dispatch serial datapath and to the
        // serial oracle.
        let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 96);
        let db_oracle = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_oracle).unwrap();
        let oracle = db_oracle.digest_at(Timestamp::MAX);

        for depth in [0usize, 1, 4] {
            let eng = AetsEngine::new(
                AetsConfig { threads: 3, pipeline_depth: depth, ..Default::default() },
                tpcc_grouping(&w),
            )
            .unwrap();
            let db = MemDb::new(w.table_names.len());
            let m = eng.replay_all(&epochs, &db).unwrap();
            assert_eq!(m.txns, w.txns.len(), "depth={depth}");
            assert!(db.all_chains_ordered(), "depth={depth}");
            assert_eq!(db.digest_at(Timestamp::MAX), oracle, "depth={depth}");
        }
    }

    #[test]
    fn cell_pool_recycles_buffers_across_epochs() {
        // With many epochs, steady-state phase 1 must be served from the
        // free list: recycled takes dominate fresh allocations.
        let w = tpcc::generate(&TpccConfig { num_txns: 1200, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 64);
        assert!(epochs.len() > 10);
        let eng =
            AetsEngine::new(AetsConfig { threads: 2, ..Default::default() }, tpcc_grouping(&w))
                .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        assert!(m.cell_buffers_allocated > 0);
        assert!(
            m.cell_buffers_recycled > m.cell_buffers_allocated,
            "recycled {} should exceed allocated {}",
            m.cell_buffers_recycled,
            m.cell_buffers_allocated
        );
    }

    #[test]
    fn pipelined_dispatch_surfaces_decode_errors() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let mut epochs = encode(&w, 64);
        // Truncate the last epoch mid-record: the dispatcher must forward
        // the decode error through the pipeline instead of hanging.
        let last = epochs.last().unwrap();
        let mut b = last.bytes.clone();
        let cut = b.split_to(b.len() - 3);
        let corrupt = aets_wal::EncodedEpoch { bytes: cut, ..last.clone() };
        *epochs.last_mut().unwrap() = corrupt;
        let eng =
            AetsEngine::new(AetsConfig { threads: 2, ..Default::default() }, tpcc_grouping(&w))
                .unwrap();
        let db = MemDb::new(w.table_names.len());
        let err = eng.replay_all(&epochs, &db).unwrap_err();
        assert!(matches!(err.kind(), "codec" | "protocol"), "got {err}");
    }

    #[test]
    fn metrics_breakdown_is_replay_dominated() {
        let w = tpcc::generate(&TpccConfig { num_txns: 2000, warehouses: 2, ..Default::default() });
        let epochs = encode(&w, 512);
        let eng =
            AetsEngine::new(AetsConfig { threads: 2, ..Default::default() }, tpcc_grouping(&w))
                .unwrap();
        let db = MemDb::new(w.table_names.len());
        let m = eng.replay_all(&epochs, &db).unwrap();
        let (d, r, _c) = m.breakdown();
        assert!(r > 0.5, "replay phase should dominate, got {r}");
        assert!(d < 0.4, "dispatch should be a small share, got {d}");
    }
}
