//! Replay engines: AETS and the baselines it is evaluated against.
//!
//! All engines implement [`ReplayEngine`]: they consume the same encoded
//! epoch stream, install versions into the same [`MemDb`], and publish
//! visibility through a [`VisibilityBoard`]. They differ exactly where the
//! paper says they differ:
//!
//! * [`serial::SerialEngine`] — single-threaded oracle, used as ground
//!   truth in correctness tests.
//! * [`aets::AetsEngine`] — epoch-based two-stage replay with table
//!   grouping, adaptive thread allocation, TPLR phase-1/phase-2, and
//!   per-group parallel commit. With a single group and staging disabled
//!   it *is* the TPLR baseline.
//! * [`atr::AtrEngine`] — transaction-ID-based dispatch, RVID
//!   operation-sequence check at apply time, single visibility thread.
//! * [`c5::C5Engine`] — row-based dispatch with full data-image parsing in
//!   the dispatcher, per-row dedicated queues, periodic snapshot
//!   publication.

pub mod aets;
pub mod atr;
pub mod c5;
pub mod pool;
pub mod serial;

use crate::metrics::ReplayMetrics;
use crate::visibility::VisibilityBoard;
use aets_common::{Error, GroupId, Result, TableId};
use aets_memtable::{MemDb, RecordNode, Version};
use aets_wal::{decode_at, DmlEntry, EncodedEpoch, LogRecord};
use bytes::Bytes;
use std::ops::Range;
use std::sync::Arc;

/// A log-replay engine for the backup node.
pub trait ReplayEngine: Send + Sync {
    /// Engine name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Number of visibility groups the engine publishes (1 for ungrouped
    /// engines).
    fn board_groups(&self) -> usize;

    /// Maps a query's table footprint to the board groups it must wait on.
    fn board_groups_for(&self, tables: &[TableId]) -> Vec<GroupId>;

    /// [`ReplayEngine::board_groups_for`] paired with the grouping
    /// generation the mapping was computed under, read atomically. Pass
    /// the generation to
    /// [`VisibilityBoard::wait_admission_at`] so a live
    /// regroup landing in between demotes the wait to the always-correct
    /// global-watermark path instead of trusting stale group indices.
    /// Engines whose grouping never changes are always generation 0.
    fn board_groups_for_at(&self, tables: &[TableId]) -> (u64, Vec<GroupId>) {
        (0, self.board_groups_for(tables))
    }

    /// The engine's live reconfiguration channel, when it has one.
    /// Controllers use this to apply new thread splits and groupings at
    /// epoch boundaries; engines with a fixed datapath (the baselines)
    /// return `None`.
    fn reconfigure(&self) -> Option<aets::ReconfigureHandle> {
        None
    }

    /// The engine's current table grouping, when it has one. A live
    /// controller seeds itself from this (hot set, group count) before
    /// planning changes through [`ReplayEngine::reconfigure`]; ungrouped
    /// engines return `None`.
    fn current_grouping(&self) -> Option<Arc<crate::grouping::TableGrouping>> {
        None
    }

    /// Replays the epoch stream into `db`, publishing visibility on
    /// `board`. `board` must have [`ReplayEngine::board_groups`] groups.
    fn replay(
        &self,
        epochs: &[EncodedEpoch],
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics>;

    /// Convenience: replay with a throwaway board.
    fn replay_all(&self, epochs: &[EncodedEpoch], db: &MemDb) -> Result<ReplayMetrics> {
        let board = VisibilityBoard::builder(self.board_groups()).build();
        self.replay(epochs, db, &board)
    }

    /// The engine's live telemetry instance, when it carries one. The
    /// runner and the durable backup use this to share one registry with
    /// the visibility board and to render exposition snapshots; engines
    /// without instrumentation (the baselines) return `None`.
    fn telemetry_handle(&self) -> Option<Arc<aets_telemetry::Telemetry>> {
        None
    }
}

/// An uncommitted cell produced by TPLR phase 1: the target Memtable node
/// plus the decoded column payload, held in the transaction context until
/// the commit phase appends it (Figure 6).
#[derive(Debug)]
pub struct Cell {
    /// Target record node (stable address).
    pub node: Arc<RecordNode>,
    /// Decoded entry (op, columns, row version).
    pub entry: DmlEntry,
}

impl Cell {
    /// Builds the version this cell will append at commit.
    pub fn to_version(&self) -> Version {
        Version {
            txn_id: self.entry.txn_id,
            commit_ts: self.entry.ts,
            op: self.entry.op,
            cols: self.entry.cols.clone(),
        }
    }
}

/// Decodes the DML entry at `range` of `buf` and resolves its Memtable
/// node — the phase-1 *translate* step. Performs no locking beyond the
/// index read/insert; nothing becomes visible.
pub fn translate_entry(db: &MemDb, buf: &Bytes, range: Range<usize>) -> Result<Cell> {
    match decode_at(buf, range)? {
        LogRecord::Dml(entry) => {
            let node = db.table(entry.table).node_or_insert(entry.key);
            Ok(Cell { node, entry })
        }
        other => Err(Error::Replay(format!("expected DML entry in range, found {other:?}"))),
    }
}

/// Appends a cell's version with the *commit* timestamp of its owning
/// transaction (the entry's create `ts` is superseded by the transaction's
/// commit timestamp, which defines visibility order).
///
/// Consumes the cell: the commit phase only *links* the materialized
/// payload into the version chain — no copying — which is why the paper's
/// Table II measures commit at well under 1 % of replay time.
pub fn commit_cell(cell: Cell, commit_ts: aets_common::Timestamp) {
    let Cell { node, entry } = cell;
    node.append_version(Version {
        txn_id: entry.txn_id,
        commit_ts,
        op: entry.op,
        cols: entry.cols,
    });
}

/// Applies a fully-decoded entry directly (used by the serial oracle, ATR,
/// and C5, which do not stage cells).
pub fn apply_entry(db: &MemDb, entry: &DmlEntry, commit_ts: aets_common::Timestamp) {
    let node = db.table(entry.table).node_or_insert(entry.key);
    node.append_version(Version {
        txn_id: entry.txn_id,
        commit_ts,
        op: entry.op,
        cols: entry.cols.clone(),
    });
}
