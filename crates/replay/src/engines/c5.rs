//! The C5 baseline (Helt et al., VLDB'22): row-based dispatch with full
//! data-image parsing, per-row dedicated queues, and a periodic snapshot
//! publisher.
//!
//! The dispatcher decodes *entire* records (the extra parsing cost the
//! paper measures against ATR/AETS) and routes every row's modifications,
//! in transaction order, to the worker that owns the row (hash
//! partition). A worker applies its queue sequentially, so per-row order
//! is free. A single commit thread periodically (5 ms in the paper)
//! publishes the snapshot timestamp up to which every queue has been
//! drained, which is what readers see.

use crate::engines::{apply_entry, ReplayEngine};
use crate::metrics::ReplayMetrics;
use crate::visibility::VisibilityBoard;
use aets_common::{Error, GroupId, Result, TableId, Timestamp};
use aets_memtable::MemDb;
use aets_wal::{decode_record, DmlEntry, EncodedEpoch, LogRecord};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One dispatched unit: a decoded entry plus the commit timestamp and
/// global sequence number of its owning transaction.
#[derive(Debug)]
struct RowTask {
    entry: DmlEntry,
    commit_ts: Timestamp,
    txn_seq: usize,
}

/// The C5 replay engine.
#[derive(Debug)]
pub struct C5Engine {
    threads: usize,
    /// Snapshot publication period (paper: 5 ms).
    pub snapshot_interval: Duration,
}

impl C5Engine {
    /// Creates a C5 engine with `threads` queue workers.
    pub fn new(threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(Error::Config("threads must be positive".into()));
        }
        Ok(Self { threads, snapshot_interval: Duration::from_millis(5) })
    }

    fn route(&self, table: TableId, key: aets_common::RowKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = aets_common::FxHasher::default();
        (table, key).hash(&mut h);
        h.finish() as usize % self.threads
    }
}

impl ReplayEngine for C5Engine {
    fn name(&self) -> &'static str {
        "c5"
    }

    fn board_groups(&self) -> usize {
        1
    }

    fn board_groups_for(&self, _tables: &[TableId]) -> Vec<GroupId> {
        vec![GroupId::new(0)]
    }

    fn replay(
        &self,
        epochs: &[EncodedEpoch],
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics> {
        let start = Instant::now();
        let mut m = ReplayMetrics { engine: self.name(), ..Default::default() };
        let replay_busy = AtomicU64::new(0);
        let commit_busy = AtomicU64::new(0);

        for epoch in epochs {
            // Row-based dispatch: full decode of every record (C5's higher
            // parsing cost lives here, on the single dispatcher thread).
            let t_dispatch = Instant::now();
            let mut queues: Vec<Vec<RowTask>> = (0..self.threads).map(|_| Vec::new()).collect();
            let mut commit_ts_by_seq: Vec<Timestamp> = Vec::new();
            let mut buf = epoch.bytes.clone();
            let mut open: Vec<DmlEntry> = Vec::new();
            let mut txn_open = false;
            let mut entries = 0usize;
            while !buf.is_empty() {
                match decode_record(&mut buf)? {
                    LogRecord::Begin { .. } => {
                        if txn_open {
                            return Err(Error::Protocol("nested BEGIN".into()));
                        }
                        txn_open = true;
                        open.clear();
                    }
                    LogRecord::Dml(d) => {
                        if !txn_open {
                            return Err(Error::Protocol("DML outside txn".into()));
                        }
                        open.push(d);
                    }
                    LogRecord::Commit { ts, .. } => {
                        if !txn_open {
                            return Err(Error::Protocol("COMMIT without BEGIN".into()));
                        }
                        let seq = commit_ts_by_seq.len();
                        for d in open.drain(..) {
                            let w = self.route(d.table, d.key);
                            entries += 1;
                            queues[w].push(RowTask { entry: d, commit_ts: ts, txn_seq: seq });
                        }
                        commit_ts_by_seq.push(ts);
                        txn_open = false;
                    }
                }
            }
            if txn_open {
                return Err(Error::Protocol("transaction never committed".into()));
            }
            m.dispatch_busy += t_dispatch.elapsed();

            // Per-worker frontier: the txn seq of its next pending task
            // (usize::MAX when drained). All tasks of txns < min frontier
            // are applied.
            let frontiers: Vec<AtomicUsize> =
                (0..self.threads).map(|_| AtomicUsize::new(0)).collect();
            let total_txns = commit_ts_by_seq.len();

            std::thread::scope(|scope| {
                for (wid, queue) in queues.iter().enumerate() {
                    let frontiers = &frontiers;
                    let replay_busy = &replay_busy;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        for task in queue {
                            frontiers[wid].store(task.txn_seq, Ordering::Release);
                            apply_entry(db, &task.entry, task.commit_ts);
                        }
                        frontiers[wid].store(usize::MAX, Ordering::Release);
                        replay_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
                // Snapshot publisher: runs until every queue is drained.
                let frontiers = &frontiers;
                let commit_busy = &commit_busy;
                let commit_ts_by_seq = &commit_ts_by_seq;
                let interval = self.snapshot_interval;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    loop {
                        let min_frontier = frontiers
                            .iter()
                            .map(|f| f.load(Ordering::Acquire))
                            .min()
                            .unwrap_or(usize::MAX);
                        if min_frontier > 0 {
                            let upto = min_frontier.min(total_txns);
                            if upto > 0 {
                                board.publish_group(GroupId::new(0), commit_ts_by_seq[upto - 1]);
                            }
                        }
                        if min_frontier == usize::MAX {
                            break;
                        }
                        std::thread::sleep(interval);
                    }
                    commit_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            });

            board.publish_group(GroupId::new(0), epoch.max_commit_ts);
            board.publish_global(epoch.max_commit_ts);
            m.txns += total_txns;
            m.entries += entries;
            m.bytes += epoch.bytes.len() as u64;
            m.epochs += 1;
        }

        m.replay_busy = std::time::Duration::from_nanos(replay_busy.load(Ordering::Relaxed));
        m.commit_busy = std::time::Duration::from_nanos(commit_busy.load(Ordering::Relaxed));
        m.wall = start.elapsed();
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::serial::SerialEngine;
    use aets_workloads::tpcc::{self, TpccConfig};

    fn encode(txns: Vec<aets_wal::TxnLog>, sz: usize) -> Vec<EncodedEpoch> {
        aets_wal::batch_into_epochs(txns, sz).unwrap().iter().map(aets_wal::encode_epoch).collect()
    }

    #[test]
    fn c5_matches_serial_oracle() {
        let w = tpcc::generate(&TpccConfig { num_txns: 800, warehouses: 2, ..Default::default() });
        let epochs = encode(w.txns.clone(), 128);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let db = MemDb::new(w.table_names.len());
        let m = C5Engine::new(4).unwrap().replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len());
        assert!(db.all_chains_ordered(), "per-row queues must preserve order");
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
        let mid = w.txns[w.txns.len() / 2].commit_ts;
        assert_eq!(db.digest_at(mid), db_serial.digest_at(mid));
    }

    #[test]
    fn c5_final_visibility_reaches_last_commit() {
        let w = tpcc::generate(&TpccConfig { num_txns: 300, warehouses: 2, ..Default::default() });
        let last = w.txns.last().unwrap().commit_ts;
        let epochs = encode(w.txns.clone(), 100);
        let db = MemDb::new(w.table_names.len());
        let board = VisibilityBoard::builder(1).build();
        C5Engine::new(2).unwrap().replay(&epochs, &db, &board).unwrap();
        assert!(board.is_visible(&[GroupId::new(0)], last));
    }

    #[test]
    fn c5_single_thread_works() {
        let w = tpcc::generate(&TpccConfig { num_txns: 150, warehouses: 2, ..Default::default() });
        let epochs = encode(w.txns.clone(), 50);
        let db = MemDb::new(w.table_names.len());
        let m = C5Engine::new(1).unwrap().replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len());
    }

    #[test]
    fn rejects_zero_threads() {
        assert!(C5Engine::new(0).is_err());
    }
}
