//! Serial oracle engine: single-threaded, trivially correct replay used as
//! ground truth when testing the parallel engines.

use crate::engines::{apply_entry, ReplayEngine};
use crate::metrics::ReplayMetrics;
use crate::visibility::VisibilityBoard;
use aets_common::{GroupId, Result, TableId};
use aets_memtable::MemDb;
use aets_wal::{assemble_txns, EncodedEpoch, LogRecord};
use std::time::Instant;

/// Decodes and applies everything in primary commit order on the calling
/// thread.
#[derive(Debug, Default)]
pub struct SerialEngine;

impl ReplayEngine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn board_groups(&self) -> usize {
        1
    }

    fn board_groups_for(&self, _tables: &[TableId]) -> Vec<GroupId> {
        vec![GroupId::new(0)]
    }

    fn replay(
        &self,
        epochs: &[EncodedEpoch],
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics> {
        let start = Instant::now();
        let mut m = ReplayMetrics { engine: self.name(), ..Default::default() };
        // One scratch record vector reused across every epoch frame.
        let mut records: Vec<LogRecord> = Vec::new();
        for epoch in epochs {
            epoch.decode_records_into(&mut records)?;
            let txns = assemble_txns(&records)?;
            for t in &txns {
                for e in &t.entries {
                    apply_entry(db, e, t.commit_ts);
                    m.entries += 1;
                }
                m.txns += 1;
                board.publish_group(GroupId::new(0), t.commit_ts);
            }
            m.epochs += 1;
            m.bytes += epoch.bytes.len() as u64;
            board.publish_global(epoch.max_commit_ts);
        }
        m.wall = start.elapsed();
        m.replay_busy = m.wall;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::Timestamp;
    use aets_workloads::tpcc::{self, TpccConfig};

    #[test]
    fn serial_replay_installs_every_entry() {
        let w = tpcc::generate(&TpccConfig { num_txns: 500, warehouses: 2, ..Default::default() });
        let txn_count = w.txns.len();
        let entry_count: usize = w.txns.iter().map(|t| t.entries.len()).sum();
        let epochs: Vec<EncodedEpoch> = aets_wal::batch_into_epochs(w.txns, 128)
            .unwrap()
            .iter()
            .map(aets_wal::encode_epoch)
            .collect();
        let db = MemDb::new(w.table_names.len());
        let m = SerialEngine.replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, txn_count);
        assert_eq!(m.entries, entry_count);
        assert_eq!(db.total_versions(), entry_count);
        assert!(db.all_chains_ordered());
    }

    #[test]
    fn serial_publishes_visibility_in_order() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let last_ts = w.txns.last().unwrap().commit_ts;
        let epochs: Vec<EncodedEpoch> = aets_wal::batch_into_epochs(w.txns, 64)
            .unwrap()
            .iter()
            .map(aets_wal::encode_epoch)
            .collect();
        let db = MemDb::new(w.table_names.len());
        let board = VisibilityBoard::builder(1).build();
        SerialEngine.replay(&epochs, &db, &board).unwrap();
        assert_eq!(board.global_cmt_ts(), last_ts);
        assert!(board.tg_cmt_ts(GroupId::new(0)) >= last_ts);
        assert!(board.is_visible(&[GroupId::new(0)], last_ts));
        assert!(!board.is_visible(&[GroupId::new(0)], Timestamp::MAX));
    }
}
