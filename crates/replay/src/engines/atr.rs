//! The ATR baseline (Lee et al., VLDB'17): transaction-ID-based dispatch
//! with an RVID operation-sequence check and a single visibility thread.
//!
//! Dispatch parses metadata only and assigns whole transactions to workers
//! round-robin by transaction id. A worker applies its transactions'
//! entries directly to the Memtable; before applying a modification with
//! row version `v > 1` it spins until the backup has applied `v - 1` for
//! that row — SAP HANA's "RVID-based dynamic detection of operation
//! sequence error", which is exactly the thread-synchronization cost the
//! paper attributes to ATR at high thread counts. A single commit thread
//! walks transactions in primary commit order and publishes visibility.

use crate::dispatch::{dispatch_epoch, MiniTxn};
use crate::engines::{apply_entry, ReplayEngine};
use crate::grouping::TableGrouping;
use crate::metrics::ReplayMetrics;
use crate::visibility::VisibilityBoard;
use aets_common::{Error, FxHashMap, FxHashSet, GroupId, Result, RowKey, TableId};
use aets_memtable::MemDb;
use aets_wal::{decode_at, EncodedEpoch, LogRecord};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Sharded map of applied row versions (the backup-side RVID table).
///
/// Persists across epochs: a row updated in epoch 9 may have received its
/// previous version in epoch 2.
#[derive(Debug)]
struct RvidTable {
    shards: Vec<Mutex<FxHashMap<(TableId, RowKey), u64>>>,
}

impl RvidTable {
    fn new(shards: usize) -> Self {
        Self { shards: (0..shards).map(|_| Mutex::new(FxHashMap::default())).collect() }
    }

    fn shard(&self, t: TableId, k: RowKey) -> &Mutex<FxHashMap<(TableId, RowKey), u64>> {
        use std::hash::{Hash, Hasher};
        let mut h = aets_common::FxHasher::default();
        (t, k).hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    fn applied(&self, t: TableId, k: RowKey) -> u64 {
        self.shard(t, k).lock().get(&(t, k)).copied().unwrap_or(0)
    }

    fn set(&self, t: TableId, k: RowKey, v: u64) {
        self.shard(t, k).lock().insert((t, k), v);
    }
}

/// The ATR replay engine.
#[derive(Debug)]
pub struct AtrEngine {
    threads: usize,
}

impl AtrEngine {
    /// Creates an ATR engine with `threads` replay workers.
    pub fn new(threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(Error::Config("threads must be positive".into()));
        }
        Ok(Self { threads })
    }
}

impl ReplayEngine for AtrEngine {
    fn name(&self) -> &'static str {
        "atr"
    }

    fn board_groups(&self) -> usize {
        1
    }

    fn board_groups_for(&self, _tables: &[TableId]) -> Vec<GroupId> {
        vec![GroupId::new(0)]
    }

    fn replay(
        &self,
        epochs: &[EncodedEpoch],
        db: &MemDb,
        board: &VisibilityBoard,
    ) -> Result<ReplayMetrics> {
        let start = Instant::now();
        let mut m = ReplayMetrics { engine: self.name(), ..Default::default() };
        let rvids = RvidTable::new(64);
        let replay_busy = AtomicU64::new(0);
        let commit_busy = AtomicU64::new(0);

        // ATR has no table groups: dispatch against a single group to
        // reuse the metadata-only scanner.
        let single = TableGrouping::single(db.num_tables(), &FxHashSet::default());

        for epoch in epochs {
            let t_dispatch = Instant::now();
            let work = dispatch_epoch(epoch, &single)?;
            m.dispatch_busy += t_dispatch.elapsed();
            let txns: &[MiniTxn] = &work.group(GroupId::new(0)).mini_txns;
            let done: Vec<AtomicBool> = (0..txns.len()).map(|_| AtomicBool::new(false)).collect();

            std::thread::scope(|scope| {
                for wid in 0..self.threads {
                    let bytes = work.bytes.clone();
                    let done = &done;
                    let rvids = &rvids;
                    let replay_busy = &replay_busy;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        // Transaction-ID-based dispatch: worker `wid` owns
                        // transactions with index ≡ wid (mod threads).
                        for (i, mt) in txns.iter().enumerate() {
                            if i % self.threads != wid {
                                continue;
                            }
                            for r in &mt.entry_ranges {
                                let LogRecord::Dml(entry) =
                                    decode_at(&bytes, r.clone()).expect("range decodes")
                                else {
                                    unreachable!("dispatched ranges are DML")
                                };
                                // Operation-sequence check: wait until the
                                // row's previous version has been applied.
                                if entry.row_version > 1 {
                                    while rvids.applied(entry.table, entry.key)
                                        < entry.row_version - 1
                                    {
                                        std::thread::yield_now();
                                    }
                                }
                                apply_entry(db, &entry, mt.commit_ts);
                                rvids.set(entry.table, entry.key, entry.row_version);
                            }
                            done[i].store(true, Ordering::Release);
                        }
                        replay_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
                // Single visibility thread: publish in commit order.
                let done = &done;
                let commit_busy = &commit_busy;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    for (i, mt) in txns.iter().enumerate() {
                        while !done[i].load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                        board.publish_group(GroupId::new(0), mt.commit_ts);
                    }
                    commit_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            });

            board.publish_group(GroupId::new(0), work.max_commit_ts);
            board.publish_global(work.max_commit_ts);
            m.txns += work.txn_count;
            m.entries += work.groups[0].entries;
            m.bytes += epoch.bytes.len() as u64;
            m.epochs += 1;
        }

        m.replay_busy = std::time::Duration::from_nanos(replay_busy.load(Ordering::Relaxed));
        m.commit_busy = std::time::Duration::from_nanos(commit_busy.load(Ordering::Relaxed));
        m.wall = start.elapsed();
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::serial::SerialEngine;
    use aets_common::Timestamp;
    use aets_workloads::tpcc::{self, TpccConfig};

    fn encode(txns: Vec<aets_wal::TxnLog>, sz: usize) -> Vec<EncodedEpoch> {
        aets_wal::batch_into_epochs(txns, sz).unwrap().iter().map(aets_wal::encode_epoch).collect()
    }

    #[test]
    fn atr_matches_serial_oracle() {
        let w = tpcc::generate(&TpccConfig { num_txns: 800, warehouses: 2, ..Default::default() });
        let epochs = encode(w.txns.clone(), 128);
        let db_serial = MemDb::new(w.table_names.len());
        SerialEngine.replay_all(&epochs, &db_serial).unwrap();

        let db = MemDb::new(w.table_names.len());
        let m = AtrEngine::new(4).unwrap().replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len());
        assert!(db.all_chains_ordered(), "RVID gating must order version chains");
        assert_eq!(db.digest_at(Timestamp::MAX), db_serial.digest_at(Timestamp::MAX));
        let mid = w.txns[w.txns.len() / 2].commit_ts;
        assert_eq!(db.digest_at(mid), db_serial.digest_at(mid));
    }

    #[test]
    fn atr_single_thread_works() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let epochs = encode(w.txns.clone(), 64);
        let db = MemDb::new(w.table_names.len());
        let m = AtrEngine::new(1).unwrap().replay_all(&epochs, &db).unwrap();
        assert_eq!(m.txns, w.txns.len());
    }

    #[test]
    fn atr_publishes_final_visibility() {
        let w = tpcc::generate(&TpccConfig { num_txns: 200, warehouses: 2, ..Default::default() });
        let last = w.txns.last().unwrap().commit_ts;
        let epochs = encode(w.txns.clone(), 64);
        let db = MemDb::new(w.table_names.len());
        let board = VisibilityBoard::builder(1).build();
        AtrEngine::new(2).unwrap().replay(&epochs, &db, &board).unwrap();
        assert!(board.is_visible(&[GroupId::new(0)], last));
    }

    #[test]
    fn rejects_zero_threads() {
        assert!(AtrEngine::new(0).is_err());
    }
}
