//! Free-list arena for TPLR phase-1 cell buffers.
//!
//! Phase 1 materializes each mini-transaction's cells into a `Vec<Cell>`
//! that travels to the group's commit thread, which drains it in phase 2.
//! Without pooling every mini-transaction pays one heap allocation (and
//! the growth reallocations behind it) per epoch. A [`CellPool`] keeps the
//! drained buffers on a per-group free list so steady-state replay reuses
//! the same handful of allocations across epochs: the pool reaches its
//! high-water capacity during the first epochs and stops touching the
//! allocator afterwards.
//!
//! One pool per group keeps the free list local to the threads that
//! actually produce and consume the buffers, so the lock is only ever
//! contended between one group's workers and its commit thread.

use crate::engines::Cell;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on the free list. Buffers returned beyond this are dropped
/// rather than cached, so a burst epoch cannot pin its peak footprint
/// forever. In-flight buffers per group are bounded by the group's worker
/// count plus the slots of one epoch, far below this in practice.
const MAX_POOLED: usize = 256;

/// A per-group free list of emptied `Vec<Cell>` buffers.
#[derive(Debug, Default)]
pub struct CellPool {
    free: Mutex<Vec<Vec<Cell>>>,
    recycled: AtomicU64,
    allocated: AtomicU64,
}

impl CellPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a cleared buffer with room for `cap` cells, reusing a
    /// pooled allocation when one is available.
    pub fn take(&self, cap: usize) -> Vec<Cell> {
        if let Some(mut v) = self.free.lock().pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            if v.capacity() < cap {
                v.reserve(cap - v.len());
            }
            return v;
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(cap)
    }

    /// Returns a drained buffer to the free list. Buffers with no backing
    /// allocation (heartbeat mini-txns) and overflow beyond `MAX_POOLED`
    /// are simply dropped.
    pub fn put(&self, mut v: Vec<Cell>) {
        v.clear();
        if v.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            free.push(v);
        }
    }

    /// Number of `take` calls served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Number of `take` calls that had to allocate fresh.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_allocates_then_reuses() {
        let pool = CellPool::new();
        let v = pool.take(8);
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.recycled(), 0);
        let cap = v.capacity();
        assert!(cap >= 8);
        pool.put(v);
        let v2 = pool.take(4);
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.allocated(), 1);
        // The recycled buffer keeps its original capacity.
        assert_eq!(v2.capacity(), cap);
    }

    #[test]
    fn take_grows_undersized_recycled_buffers() {
        let pool = CellPool::new();
        pool.put(Vec::with_capacity(2));
        let v = pool.take(64);
        assert!(v.capacity() >= 64);
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = CellPool::new();
        pool.put(Vec::new());
        let _ = pool.take(1);
        assert_eq!(pool.recycled(), 0);
        assert_eq!(pool.allocated(), 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = CellPool::new();
        for _ in 0..(MAX_POOLED + 10) {
            pool.put(Vec::with_capacity(1));
        }
        assert_eq!(pool.free.lock().len(), MAX_POOLED);
    }
}
