//! Visibility at the backup (Algorithm 3).
//!
//! Each table group publishes `tg_cmt_ts` — the commit timestamp of its
//! latest committed transaction — and the engine publishes a global
//! `global_cmt_ts` high-water mark. A query with arrival timestamp `qts`
//! over groups `G` proceeds once `min_{g in G} tg_cmt_ts(g) >= qts` or
//! `global_cmt_ts >= qts`; otherwise it waits for replay to catch up.

use aets_common::{GroupId, Timestamp};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared visibility state between the replay engine (writer) and query
/// threads (waiters).
#[derive(Debug)]
pub struct VisibilityBoard {
    groups: Vec<AtomicU64>,
    global: AtomicU64,
    gate: Mutex<()>,
    cv: Condvar,
}

impl VisibilityBoard {
    /// Creates a board for `num_groups` groups, all at timestamp zero.
    pub fn new(num_groups: usize) -> Self {
        Self {
            groups: (0..num_groups).map(|_| AtomicU64::new(0)).collect(),
            global: AtomicU64::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of groups on the board.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Publishes a (monotone) group commit timestamp and wakes waiters.
    /// Called by the group's commit thread at the end of Algorithm 1.
    pub fn publish_group(&self, g: GroupId, ts: Timestamp) {
        self.groups[g.index()].fetch_max(ts.as_micros(), Ordering::Release);
        let _guard = self.gate.lock();
        self.cv.notify_all();
    }

    /// Publishes the global commit high-water mark.
    pub fn publish_global(&self, ts: Timestamp) {
        self.global.fetch_max(ts.as_micros(), Ordering::Release);
        let _guard = self.gate.lock();
        self.cv.notify_all();
    }

    /// Current `tg_cmt_ts` of `g`.
    pub fn tg_cmt_ts(&self, g: GroupId) -> Timestamp {
        Timestamp::from_micros(self.groups[g.index()].load(Ordering::Acquire))
    }

    /// Current `global_cmt_ts`.
    pub fn global_cmt_ts(&self) -> Timestamp {
        Timestamp::from_micros(self.global.load(Ordering::Acquire))
    }

    /// `min_tg_cmt_ts` over a set of groups (`Timestamp::MAX` if empty).
    pub fn min_over(&self, gids: &[GroupId]) -> Timestamp {
        gids.iter().map(|g| self.tg_cmt_ts(*g)).min().unwrap_or(Timestamp::MAX)
    }

    /// The Algorithm 3 admission condition for a query at `qts` over
    /// `gids`.
    pub fn is_visible(&self, gids: &[GroupId], qts: Timestamp) -> bool {
        self.min_over(gids) >= qts || self.global_cmt_ts() >= qts
    }

    /// The safe version-chain GC / checkpoint watermark given the current
    /// quarantine set and the oldest still-active query's `qts`
    /// (`Timestamp::MAX` when no query is active).
    ///
    /// Three clamps compose: (a) no version an admitted query may still
    /// read can be pruned, so the oldest active `qts` bounds it; (b) the
    /// global high-water mark bounds it, because versions above
    /// `global_cmt_ts` may still be reorganised by in-flight commits; and
    /// (c) a quarantined group's *frozen* `tg_cmt_ts` bounds it — the
    /// group's suffix past the freeze was never replayed, so state above
    /// that timestamp is incomplete and must not be consolidated into
    /// full images or checkpointed as truth.
    pub fn gc_watermark(&self, quarantined: &[usize], query_floor: Timestamp) -> Timestamp {
        let mut wm = query_floor.min(self.global_cmt_ts());
        for &q in quarantined {
            if q < self.groups.len() {
                wm = wm.min(Timestamp::from_micros(self.groups[q].load(Ordering::Acquire)));
            }
        }
        wm
    }

    /// Blocks until [`VisibilityBoard::is_visible`] holds or `timeout`
    /// elapses. Returns `true` if visibility was reached.
    pub fn wait_visible(&self, gids: &[GroupId], qts: Timestamp, timeout: Duration) -> bool {
        if self.is_visible(gids, qts) {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.gate.lock();
        while !self.is_visible(gids, qts) {
            if self.cv.wait_until(&mut guard, deadline).timed_out() {
                return self.is_visible(gids, qts);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn g(i: u32) -> GroupId {
        GroupId::new(i)
    }

    #[test]
    fn publishes_are_monotone() {
        let b = VisibilityBoard::new(2);
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(0), Timestamp::from_micros(50)); // stale, ignored
        assert_eq!(b.tg_cmt_ts(g(0)), Timestamp::from_micros(100));
        b.publish_global(Timestamp::from_micros(70));
        b.publish_global(Timestamp::from_micros(60));
        assert_eq!(b.global_cmt_ts(), Timestamp::from_micros(70));
    }

    #[test]
    fn min_over_takes_the_laggard() {
        let b = VisibilityBoard::new(3);
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(1), Timestamp::from_micros(10));
        b.publish_group(g(2), Timestamp::from_micros(200));
        assert_eq!(b.min_over(&[g(0), g(1)]), Timestamp::from_micros(10));
        assert_eq!(b.min_over(&[g(0), g(2)]), Timestamp::from_micros(100));
    }

    #[test]
    fn global_watermark_unblocks_idle_groups() {
        let b = VisibilityBoard::new(2);
        b.publish_group(g(0), Timestamp::from_micros(5)); // group 1 never updated
        let qts = Timestamp::from_micros(50);
        assert!(!b.is_visible(&[g(0), g(1)], qts));
        b.publish_global(Timestamp::from_micros(60));
        assert!(b.is_visible(&[g(0), g(1)], qts), "global_cmt_ts must admit the query");
    }

    #[test]
    fn wait_visible_blocks_until_publish() {
        let b = Arc::new(VisibilityBoard::new(1));
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_visible(&[g(0)], Timestamp::from_micros(100), Duration::from_secs(5))
            })
        };
        thread::sleep(Duration::from_millis(20));
        b.publish_group(g(0), Timestamp::from_micros(150));
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_visible_times_out() {
        let b = VisibilityBoard::new(1);
        let ok = b.wait_visible(&[g(0)], Timestamp::from_micros(100), Duration::from_millis(30));
        assert!(!ok);
    }

    #[test]
    fn empty_group_set_is_immediately_visible() {
        let b = VisibilityBoard::new(1);
        assert!(b.is_visible(&[], Timestamp::MAX));
    }

    #[test]
    fn gc_watermark_is_clamped_by_global_query_floor_and_quarantine() {
        let b = VisibilityBoard::new(3);
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(1), Timestamp::from_micros(40)); // frozen by quarantine
        b.publish_group(g(2), Timestamp::from_micros(90));
        b.publish_global(Timestamp::from_micros(80));

        // Healthy: min(query_floor, global).
        assert_eq!(b.gc_watermark(&[], Timestamp::MAX), Timestamp::from_micros(80));
        assert_eq!(b.gc_watermark(&[], Timestamp::from_micros(60)), Timestamp::from_micros(60));
        // A quarantined group's frozen tg_cmt_ts clamps below both.
        assert_eq!(b.gc_watermark(&[1], Timestamp::MAX), Timestamp::from_micros(40));
        assert_eq!(
            b.gc_watermark(&[1], Timestamp::from_micros(20)),
            Timestamp::from_micros(20),
            "query floor below the frozen group still wins"
        );
        // Out-of-range quarantine indices are ignored, not a panic.
        assert_eq!(b.gc_watermark(&[7], Timestamp::MAX), Timestamp::from_micros(80));
    }
}
