//! Visibility at the backup (Algorithm 3).
//!
//! Each table group publishes `tg_cmt_ts` — the commit timestamp of its
//! latest committed transaction — and the engine publishes a global
//! `global_cmt_ts` high-water mark. A query with arrival timestamp `qts`
//! over groups `G` proceeds once `min_{g in G} tg_cmt_ts(g) >= qts` or
//! `global_cmt_ts >= qts`; otherwise it waits for replay to catch up.

use aets_common::{GroupId, Timestamp};
use aets_telemetry::{names, ClockFn, Gauge, Histogram, Telemetry};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Freshness instrumentation attached to a board: on every group
/// publish, the visibility lag `now − primary_commit_ts` is recorded
/// into the group's histogram and the live watermark gauges advance.
/// `clock` returns "now" on the *primary* clock in microseconds — the
/// realtime runner maps wall time through its `time_scale`, the durable
/// backup uses the latest ingested epoch's high-water mark.
struct BoardTelemetry {
    lag: Vec<Histogram>,
    tg_gauge: Vec<Gauge>,
    global_gauge: Gauge,
    clock: ClockFn,
}

impl std::fmt::Debug for BoardTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoardTelemetry").field("groups", &self.lag.len()).finish()
    }
}

/// Shared visibility state between the replay engine (writer) and query
/// threads (waiters).
#[derive(Debug)]
pub struct VisibilityBoard {
    groups: Vec<AtomicU64>,
    global: AtomicU64,
    gate: Mutex<()>,
    cv: Condvar,
    tel: Option<BoardTelemetry>,
}

impl VisibilityBoard {
    /// Creates a board for `num_groups` groups, all at timestamp zero.
    pub fn new(num_groups: usize) -> Self {
        Self {
            groups: (0..num_groups).map(|_| AtomicU64::new(0)).collect(),
            global: AtomicU64::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            tel: None,
        }
    }

    /// Creates a board whose publishes feed `telemetry`: per-group
    /// `aets_visibility_lag_us` histograms (freshness, Figures 8b/9b
    /// live), `aets_tg_cmt_ts_us{group}` gauges, and the
    /// `aets_global_cmt_ts_us` gauge. `clock` must return "now" on the
    /// primary clock in microseconds (see [`BoardTelemetry`] above).
    pub fn with_telemetry(num_groups: usize, telemetry: &Telemetry, clock: ClockFn) -> Self {
        let reg = telemetry.registry();
        let mut board = Self::new(num_groups);
        board.tel = Some(BoardTelemetry {
            lag: (0..num_groups)
                .map(|g| {
                    reg.histogram_with(names::VISIBILITY_LAG_US, aets_telemetry::group_label(g))
                })
                .collect(),
            tg_gauge: (0..num_groups)
                .map(|g| reg.gauge_with(names::TG_CMT_TS_US, aets_telemetry::group_label(g)))
                .collect(),
            global_gauge: reg.gauge(names::GLOBAL_CMT_TS_US),
            clock,
        });
        board
    }

    /// Number of groups on the board.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Publishes a (monotone) group commit timestamp and wakes waiters.
    /// Called by the group's commit thread at the end of Algorithm 1.
    pub fn publish_group(&self, g: GroupId, ts: Timestamp) {
        self.groups[g.index()].fetch_max(ts.as_micros(), Ordering::Release);
        if let Some(t) = &self.tel {
            let now = (t.clock)();
            t.lag[g.index()].record_micros(now.saturating_sub(ts.as_micros()));
            t.tg_gauge[g.index()].set_max(ts.as_micros());
        }
        let _guard = self.gate.lock();
        self.cv.notify_all();
    }

    /// Publishes the global commit high-water mark.
    pub fn publish_global(&self, ts: Timestamp) {
        self.global.fetch_max(ts.as_micros(), Ordering::Release);
        if let Some(t) = &self.tel {
            t.global_gauge.set_max(ts.as_micros());
        }
        let _guard = self.gate.lock();
        self.cv.notify_all();
    }

    /// Current `tg_cmt_ts` of `g`.
    pub fn tg_cmt_ts(&self, g: GroupId) -> Timestamp {
        Timestamp::from_micros(self.groups[g.index()].load(Ordering::Acquire))
    }

    /// Current `global_cmt_ts`.
    pub fn global_cmt_ts(&self) -> Timestamp {
        Timestamp::from_micros(self.global.load(Ordering::Acquire))
    }

    /// `min_tg_cmt_ts` over a set of groups (`Timestamp::MAX` if empty).
    pub fn min_over(&self, gids: &[GroupId]) -> Timestamp {
        gids.iter().map(|g| self.tg_cmt_ts(*g)).min().unwrap_or(Timestamp::MAX)
    }

    /// The Algorithm 3 admission condition for a query at `qts` over
    /// `gids`.
    pub fn is_visible(&self, gids: &[GroupId], qts: Timestamp) -> bool {
        self.min_over(gids) >= qts || self.global_cmt_ts() >= qts
    }

    /// The safe version-chain GC / checkpoint watermark given the current
    /// quarantine set and the oldest still-active query's `qts`
    /// (`Timestamp::MAX` when no query is active).
    ///
    /// Three clamps compose: (a) no version an admitted query may still
    /// read can be pruned, so the oldest active `qts` bounds it; (b) the
    /// global high-water mark bounds it, because versions above
    /// `global_cmt_ts` may still be reorganised by in-flight commits; and
    /// (c) a quarantined group's *frozen* `tg_cmt_ts` bounds it — the
    /// group's suffix past the freeze was never replayed, so state above
    /// that timestamp is incomplete and must not be consolidated into
    /// full images or checkpointed as truth.
    pub fn gc_watermark(&self, quarantined: &[usize], query_floor: Timestamp) -> Timestamp {
        let mut wm = query_floor.min(self.global_cmt_ts());
        for &q in quarantined {
            if q < self.groups.len() {
                wm = wm.min(Timestamp::from_micros(self.groups[q].load(Ordering::Acquire)));
            }
        }
        wm
    }

    /// Blocks until [`VisibilityBoard::is_visible`] holds or `timeout`
    /// elapses. Returns `true` if visibility was reached.
    pub fn wait_visible(&self, gids: &[GroupId], qts: Timestamp, timeout: Duration) -> bool {
        if self.is_visible(gids, qts) {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.gate.lock();
        while !self.is_visible(gids, qts) {
            if self.cv.wait_until(&mut guard, deadline).timed_out() {
                return self.is_visible(gids, qts);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn g(i: u32) -> GroupId {
        GroupId::new(i)
    }

    #[test]
    fn publishes_are_monotone() {
        let b = VisibilityBoard::new(2);
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(0), Timestamp::from_micros(50)); // stale, ignored
        assert_eq!(b.tg_cmt_ts(g(0)), Timestamp::from_micros(100));
        b.publish_global(Timestamp::from_micros(70));
        b.publish_global(Timestamp::from_micros(60));
        assert_eq!(b.global_cmt_ts(), Timestamp::from_micros(70));
    }

    #[test]
    fn min_over_takes_the_laggard() {
        let b = VisibilityBoard::new(3);
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(1), Timestamp::from_micros(10));
        b.publish_group(g(2), Timestamp::from_micros(200));
        assert_eq!(b.min_over(&[g(0), g(1)]), Timestamp::from_micros(10));
        assert_eq!(b.min_over(&[g(0), g(2)]), Timestamp::from_micros(100));
    }

    #[test]
    fn global_watermark_unblocks_idle_groups() {
        let b = VisibilityBoard::new(2);
        b.publish_group(g(0), Timestamp::from_micros(5)); // group 1 never updated
        let qts = Timestamp::from_micros(50);
        assert!(!b.is_visible(&[g(0), g(1)], qts));
        b.publish_global(Timestamp::from_micros(60));
        assert!(b.is_visible(&[g(0), g(1)], qts), "global_cmt_ts must admit the query");
    }

    #[test]
    fn wait_visible_blocks_until_publish() {
        let b = Arc::new(VisibilityBoard::new(1));
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_visible(&[g(0)], Timestamp::from_micros(100), Duration::from_secs(5))
            })
        };
        thread::sleep(Duration::from_millis(20));
        b.publish_group(g(0), Timestamp::from_micros(150));
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_visible_times_out() {
        let b = VisibilityBoard::new(1);
        let ok = b.wait_visible(&[g(0)], Timestamp::from_micros(100), Duration::from_millis(30));
        assert!(!ok);
    }

    #[test]
    fn empty_group_set_is_immediately_visible() {
        let b = VisibilityBoard::new(1);
        assert!(b.is_visible(&[], Timestamp::MAX));
    }

    #[test]
    fn telemetry_board_records_lag_and_gauges() {
        use aets_telemetry::{names, Telemetry};
        let tel = Telemetry::new();
        // Primary "now" is pinned at 1000us: a publish at 400us has
        // 600us of visibility lag.
        let clock: aets_telemetry::ClockFn = Arc::new(|| 1_000);
        let b = VisibilityBoard::with_telemetry(2, &tel, clock);
        b.publish_group(g(0), Timestamp::from_micros(400));
        b.publish_group(g(1), Timestamp::from_micros(990));
        b.publish_global(Timestamp::from_micros(990));
        let snap = tel.snapshot();
        let lag0 = snap
            .histogram_summary(names::VISIBILITY_LAG_US, &aets_telemetry::group_label(0))
            .expect("group 0 lag histogram");
        assert_eq!(lag0.count, 1);
        // 600us lands in the [512, 1024) log bucket; max is exact.
        assert_eq!(lag0.max_us, 600);
        assert_eq!(snap.gauge(names::TG_CMT_TS_US, &aets_telemetry::group_label(1)), Some(990));
        assert_eq!(snap.gauge(names::GLOBAL_CMT_TS_US, ""), Some(990));
        // Stale publish: watermark gauge must not regress.
        b.publish_group(g(1), Timestamp::from_micros(100));
        let snap = tel.snapshot();
        assert_eq!(snap.gauge(names::TG_CMT_TS_US, &aets_telemetry::group_label(1)), Some(990));
    }

    #[test]
    fn gc_watermark_is_clamped_by_global_query_floor_and_quarantine() {
        let b = VisibilityBoard::new(3);
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(1), Timestamp::from_micros(40)); // frozen by quarantine
        b.publish_group(g(2), Timestamp::from_micros(90));
        b.publish_global(Timestamp::from_micros(80));

        // Healthy: min(query_floor, global).
        assert_eq!(b.gc_watermark(&[], Timestamp::MAX), Timestamp::from_micros(80));
        assert_eq!(b.gc_watermark(&[], Timestamp::from_micros(60)), Timestamp::from_micros(60));
        // A quarantined group's frozen tg_cmt_ts clamps below both.
        assert_eq!(b.gc_watermark(&[1], Timestamp::MAX), Timestamp::from_micros(40));
        assert_eq!(
            b.gc_watermark(&[1], Timestamp::from_micros(20)),
            Timestamp::from_micros(20),
            "query floor below the frozen group still wins"
        );
        // Out-of-range quarantine indices are ignored, not a panic.
        assert_eq!(b.gc_watermark(&[7], Timestamp::MAX), Timestamp::from_micros(80));
    }
}
