//! Visibility at the backup (Algorithm 3).
//!
//! Each table group publishes `tg_cmt_ts` — the commit timestamp of its
//! latest committed transaction — and the engine publishes a global
//! `global_cmt_ts` high-water mark. A query with arrival timestamp `qts`
//! over groups `G` proceeds once `min_{g in G} tg_cmt_ts(g) >= qts` or
//! `global_cmt_ts >= qts`; otherwise it waits for replay to catch up.
//!
//! Waiting is event-driven: each blocked query registers a wait cell and
//! parks its thread; [`VisibilityBoard::publish_group`] and
//! [`VisibilityBoard::publish_global`] evaluate the admission predicate
//! per registered waiter and unpark exactly the threads whose condition
//! just became decidable (admitted, or provably hopeless because a
//! quarantined group froze below the waiter's `qts`). Publishes take no
//! lock when nobody waits — one relaxed load guards the slow path.

use aets_common::{GroupId, Timestamp};
use aets_telemetry::{names, ClockFn, Gauge, Histogram, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Freshness instrumentation attached to a board: on every group
/// publish, the visibility lag `now − primary_commit_ts` is recorded
/// into the group's histogram and the live watermark gauges advance.
/// `clock` returns "now" on the *primary* clock in microseconds — the
/// realtime runner maps wall time through its `time_scale`, the durable
/// backup uses the latest ingested epoch's high-water mark.
struct BoardTelemetry {
    lag: Vec<Histogram>,
    tg_gauge: Vec<Gauge>,
    global_gauge: Gauge,
    clock: ClockFn,
}

impl std::fmt::Debug for BoardTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoardTelemetry").field("groups", &self.lag.len()).finish()
    }
}

/// How a wait for Algorithm 3 admission ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The admission condition holds: the snapshot at `qts` is readable.
    Visible,
    /// The timeout elapsed before the condition held.
    TimedOut,
    /// The wait is hopeless: a group the query needs is quarantined with
    /// its watermark frozen below `qts`, and the global high-water mark
    /// (which also freezes under quarantine) is below `qts` too. The
    /// snapshot can never become consistent without operator recovery.
    Quarantined,
}

/// One parked admission waiter. Registered under the board's waiter lock;
/// publishers evaluate the predicate against these fields and unpark the
/// owning thread when it becomes decidable.
struct WaitCell {
    qts: u64,
    gids: Vec<usize>,
    /// Grouping generation the waiter's `gids` were computed under. When
    /// it trails the board's, the per-group shortcut is disabled for this
    /// waiter (see [`VisibilityBoard::wait_admission_at`]).
    gen: u64,
    thread: Thread,
}

/// Builds a [`VisibilityBoard`], optionally instrumented. The single
/// construction path: `VisibilityBoard::builder(n).build()` for a bare
/// board, with `.telemetry(..)` chained for an instrumented one.
#[derive(Default)]
pub struct VisibilityBoardBuilder {
    num_groups: usize,
    tel: Option<BoardTelemetry>,
}

impl VisibilityBoardBuilder {
    /// Attaches freshness instrumentation: per-group
    /// `aets_visibility_lag_us` histograms, `aets_tg_cmt_ts_us{group}`
    /// gauges, and the `aets_global_cmt_ts_us` gauge. `clock` must return
    /// "now" on the primary clock in microseconds (see `BoardTelemetry`).
    /// A disabled `Telemetry` leaves the board uninstrumented.
    pub fn telemetry(mut self, telemetry: &Telemetry, clock: ClockFn) -> Self {
        if !telemetry.is_enabled() {
            return self;
        }
        let reg = telemetry.registry();
        self.tel = Some(BoardTelemetry {
            lag: (0..self.num_groups)
                .map(|g| {
                    reg.histogram_with(names::VISIBILITY_LAG_US, aets_telemetry::group_label(g))
                })
                .collect(),
            tg_gauge: (0..self.num_groups)
                .map(|g| reg.gauge_with(names::TG_CMT_TS_US, aets_telemetry::group_label(g)))
                .collect(),
            global_gauge: reg.gauge(names::GLOBAL_CMT_TS_US),
            clock,
        });
        self
    }

    /// Finishes the board: `num_groups` groups, all at timestamp zero.
    pub fn build(self) -> VisibilityBoard {
        VisibilityBoard {
            groups: (0..self.num_groups).map(|_| AtomicU64::new(0)).collect(),
            quarantined: (0..self.num_groups).map(|_| AtomicBool::new(false)).collect(),
            global: AtomicU64::new(0),
            grouping_gen: AtomicU64::new(0),
            n_waiters: AtomicUsize::new(0),
            waiters: Mutex::new(Vec::new()),
            tel: self.tel,
        }
    }
}

/// Shared visibility state between the replay engine (writer) and query
/// threads (waiters).
#[derive(Debug)]
pub struct VisibilityBoard {
    groups: Vec<AtomicU64>,
    quarantined: Vec<AtomicBool>,
    global: AtomicU64,
    /// Generation of the table grouping the group watermarks are indexed
    /// by; the engine bumps it when it applies a live `Regroup` at an
    /// epoch boundary. Admission checks carrying an older generation fall
    /// back to the global watermark only (their `gids` may be stale).
    grouping_gen: AtomicU64,
    n_waiters: AtomicUsize,
    waiters: Mutex<Vec<Arc<WaitCell>>>,
    tel: Option<BoardTelemetry>,
}

impl std::fmt::Debug for WaitCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitCell").field("qts", &self.qts).field("gids", &self.gids).finish()
    }
}

impl VisibilityBoard {
    /// Starts building a board for `num_groups` groups.
    pub fn builder(num_groups: usize) -> VisibilityBoardBuilder {
        VisibilityBoardBuilder { num_groups, tel: None }
    }

    /// Number of groups on the board.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Publishes a (monotone) group commit timestamp and wakes exactly
    /// the waiters whose admission condition this publish decides.
    /// Called by the group's commit thread at the end of Algorithm 1.
    pub fn publish_group(&self, g: GroupId, ts: Timestamp) {
        self.groups[g.index()].fetch_max(ts.as_micros(), Ordering::Release);
        if let Some(t) = &self.tel {
            let now = (t.clock)();
            t.lag[g.index()].record_micros(now.saturating_sub(ts.as_micros()));
            t.tg_gauge[g.index()].set_max(ts.as_micros());
        }
        self.wake_decided();
    }

    /// Publishes the global commit high-water mark.
    pub fn publish_global(&self, ts: Timestamp) {
        self.global.fetch_max(ts.as_micros(), Ordering::Release);
        if let Some(t) = &self.tel {
            t.global_gauge.set_max(ts.as_micros());
        }
        self.wake_decided();
    }

    /// Marks `groups` (board indices) quarantined: their watermarks are
    /// frozen and waiters needing them past the freeze are woken to fail
    /// fast instead of sleeping out their timeout. Called by the engine
    /// when its quarantine ledger grows; never un-sets within a run
    /// (recovery builds a fresh board).
    pub fn set_quarantined(&self, groups: &[usize]) {
        let mut changed = false;
        for &g in groups {
            if let Some(flag) = self.quarantined.get(g) {
                changed |= !flag.swap(true, Ordering::Release);
            }
        }
        if changed {
            self.wake_decided();
        }
    }

    /// Whether group `g` (board index) is quarantined.
    pub fn is_quarantined(&self, g: usize) -> bool {
        self.quarantined.get(g).map(|f| f.load(Ordering::Acquire)).unwrap_or(false)
    }

    /// Board indices of every quarantined group, ascending — the set the
    /// GC/checkpoint clamp and degraded-mode health checks consult.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.quarantined.len()).filter(|&g| self.is_quarantined(g)).collect()
    }

    /// Whether any group is quarantined (degraded mode: reads needing a
    /// frozen group past its watermark are refused).
    pub fn any_quarantined(&self) -> bool {
        self.quarantined.iter().any(|f| f.load(Ordering::Acquire))
    }

    /// Unparks every registered waiter whose wait became decidable —
    /// admitted or provably hopeless. Lock-free when nobody waits.
    fn wake_decided(&self) {
        if self.n_waiters.load(Ordering::Acquire) == 0 {
            return;
        }
        let waiters = self.waiters.lock();
        for cell in waiters.iter() {
            let qts = Timestamp::from_micros(cell.qts);
            if self.is_visible_cell(&cell.gids, cell.gen, qts)
                || self.is_hopeless_cell(&cell.gids, cell.gen, qts)
            {
                cell.thread.unpark();
            }
        }
    }

    /// The grouping generation the board currently trusts per-group
    /// admission against. Starts at 0; the engine advances it when a live
    /// `Regroup` takes effect.
    pub fn grouping_gen(&self) -> u64 {
        self.grouping_gen.load(Ordering::Acquire)
    }

    /// Records that the engine applied a regroup: admission checks whose
    /// `gids` were computed under an older generation lose the per-group
    /// shortcut and admit via `global_cmt_ts` only (always correct, since
    /// the global only advances when every group has fully replayed the
    /// epoch). Monotone; waiters are re-evaluated because the predicate
    /// narrows for stale cells.
    pub fn advance_grouping_gen(&self, gen: u64) {
        self.grouping_gen.fetch_max(gen, Ordering::Release);
    }

    /// Current `tg_cmt_ts` of `g`.
    pub fn tg_cmt_ts(&self, g: GroupId) -> Timestamp {
        Timestamp::from_micros(self.groups[g.index()].load(Ordering::Acquire))
    }

    /// Current `global_cmt_ts`.
    pub fn global_cmt_ts(&self) -> Timestamp {
        Timestamp::from_micros(self.global.load(Ordering::Acquire))
    }

    /// `min_tg_cmt_ts` over a set of groups (`Timestamp::MAX` if empty).
    pub fn min_over(&self, gids: &[GroupId]) -> Timestamp {
        gids.iter().map(|g| self.tg_cmt_ts(*g)).min().unwrap_or(Timestamp::MAX)
    }

    /// The Algorithm 3 admission condition for a query at `qts` over
    /// `gids`.
    pub fn is_visible(&self, gids: &[GroupId], qts: Timestamp) -> bool {
        self.min_over(gids) >= qts || self.global_cmt_ts() >= qts
    }

    fn is_visible_idx(&self, gids: &[usize], qts: Timestamp) -> bool {
        let min =
            gids.iter().map(|&g| self.groups[g].load(Ordering::Acquire)).min().unwrap_or(u64::MAX);
        min >= qts.as_micros() || self.global.load(Ordering::Acquire) >= qts.as_micros()
    }

    /// Generation-aware visibility: a cell whose `gids` predate the
    /// current grouping may only be admitted by the global watermark —
    /// after a regroup its group indices can name groups that no longer
    /// own its tables, so the per-group minimum proves nothing.
    fn is_visible_cell(&self, gids: &[usize], gen: u64, qts: Timestamp) -> bool {
        if gen == self.grouping_gen.load(Ordering::Acquire) {
            self.is_visible_idx(gids, qts)
        } else {
            self.global.load(Ordering::Acquire) >= qts.as_micros()
        }
    }

    /// A wait at `qts` over `gids` (board indices) is hopeless when some
    /// needed group is quarantined with its frozen watermark below `qts`
    /// and the global mark — frozen too, since quarantine stops global
    /// publishes — is also below `qts`.
    fn is_hopeless_idx(&self, gids: &[usize], qts: Timestamp) -> bool {
        self.global.load(Ordering::Acquire) < qts.as_micros()
            && gids.iter().any(|&g| {
                self.quarantined[g].load(Ordering::Acquire)
                    && self.groups[g].load(Ordering::Acquire) < qts.as_micros()
            })
    }

    /// Generation-aware hopelessness: a stale cell's `gids` cannot prove
    /// its tables sit behind a frozen group, so the wait is never declared
    /// hopeless early — it admits via the global or runs out its timeout.
    fn is_hopeless_cell(&self, gids: &[usize], gen: u64, qts: Timestamp) -> bool {
        gen == self.grouping_gen.load(Ordering::Acquire) && self.is_hopeless_idx(gids, qts)
    }

    /// The safe version-chain GC / checkpoint watermark given the current
    /// quarantine set and the oldest still-active query's `qts`
    /// (`Timestamp::MAX` when no query is active).
    ///
    /// Three clamps compose: (a) no version an admitted query may still
    /// read can be pruned, so the oldest active `qts` bounds it; (b) the
    /// global high-water mark bounds it, because versions above
    /// `global_cmt_ts` may still be reorganised by in-flight commits; and
    /// (c) a quarantined group's *frozen* `tg_cmt_ts` bounds it — the
    /// group's suffix past the freeze was never replayed, so state above
    /// that timestamp is incomplete and must not be consolidated into
    /// full images or checkpointed as truth.
    pub fn gc_watermark(&self, quarantined: &[usize], query_floor: Timestamp) -> Timestamp {
        let mut wm = query_floor.min(self.global_cmt_ts());
        for &q in quarantined {
            if q < self.groups.len() {
                wm = wm.min(Timestamp::from_micros(self.groups[q].load(Ordering::Acquire)));
            }
        }
        wm
    }

    /// Parks the calling thread until the Algorithm 3 condition for
    /// (`gids`, `qts`) is decided or `timeout` elapses.
    ///
    /// Event-driven: no polling — the thread sleeps until a publish (or
    /// quarantine) makes its wait decidable. Returns
    /// [`WaitOutcome::Quarantined`] as soon as the wait is provably
    /// hopeless (see [`VisibilityBoard::set_quarantined`]) instead of
    /// sleeping out the timeout.
    pub fn wait_admission(
        &self,
        gids: &[GroupId],
        qts: Timestamp,
        timeout: Duration,
    ) -> WaitOutcome {
        self.wait_admission_at(gids, self.grouping_gen(), qts, timeout)
    }

    /// [`VisibilityBoard::wait_admission`] for callers that computed
    /// `gids` under an explicit grouping generation (see
    /// [`VisibilityBoard::grouping_gen`] — load the generation *before*
    /// mapping tables to groups, so a concurrent regroup can only make
    /// the cell stale, never wrongly fresh). A stale cell is admitted via
    /// the global watermark only.
    pub fn wait_admission_at(
        &self,
        gids: &[GroupId],
        gen: u64,
        qts: Timestamp,
        timeout: Duration,
    ) -> WaitOutcome {
        let idx: Vec<usize> = gids.iter().map(|g| g.index()).collect();
        if self.is_visible_cell(&idx, gen, qts) {
            return WaitOutcome::Visible;
        }
        if self.is_hopeless_cell(&idx, gen, qts) {
            return WaitOutcome::Quarantined;
        }
        let deadline = Instant::now() + timeout;
        let cell = Arc::new(WaitCell {
            qts: qts.as_micros(),
            gids: idx,
            gen,
            thread: std::thread::current(),
        });
        {
            let mut waiters = self.waiters.lock();
            waiters.push(cell.clone());
            self.n_waiters.store(waiters.len(), Ordering::Release);
        }
        // Re-check after registering: a publish between the first check
        // and registration would otherwise be a lost wakeup.
        let outcome = loop {
            if self.is_visible_cell(&cell.gids, gen, qts) {
                break WaitOutcome::Visible;
            }
            if self.is_hopeless_cell(&cell.gids, gen, qts) {
                break WaitOutcome::Quarantined;
            }
            let now = Instant::now();
            if now >= deadline {
                break WaitOutcome::TimedOut;
            }
            std::thread::park_timeout(deadline - now);
        };
        {
            let mut waiters = self.waiters.lock();
            waiters.retain(|w| !Arc::ptr_eq(w, &cell));
            self.n_waiters.store(waiters.len(), Ordering::Release);
        }
        outcome
    }

    /// The pre-redesign sleep-poll admission loop, kept as the baseline
    /// the event-driven path is benchmarked against
    /// (`examples/query_service_bench.rs`): re-checks the predicate every
    /// `interval` instead of parking on publishes.
    pub fn wait_admission_polling(
        &self,
        gids: &[GroupId],
        qts: Timestamp,
        timeout: Duration,
        interval: Duration,
    ) -> WaitOutcome {
        self.wait_admission_polling_at(gids, self.grouping_gen(), qts, timeout, interval)
    }

    /// [`VisibilityBoard::wait_admission_polling`] for callers that
    /// computed `gids` under an explicit grouping generation — the
    /// sleep-poll counterpart of [`VisibilityBoard::wait_admission_at`].
    /// A regroup landing mid-poll makes the cell stale, demoting every
    /// later re-check to the global-watermark path.
    pub fn wait_admission_polling_at(
        &self,
        gids: &[GroupId],
        gen: u64,
        qts: Timestamp,
        timeout: Duration,
        interval: Duration,
    ) -> WaitOutcome {
        let idx: Vec<usize> = gids.iter().map(|g| g.index()).collect();
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_visible_cell(&idx, gen, qts) {
                return WaitOutcome::Visible;
            }
            if self.is_hopeless_cell(&idx, gen, qts) {
                return WaitOutcome::Quarantined;
            }
            let now = Instant::now();
            if now >= deadline {
                return WaitOutcome::TimedOut;
            }
            std::thread::sleep(interval.min(deadline - now));
        }
    }

    /// Blocks until [`VisibilityBoard::is_visible`] holds or `timeout`
    /// elapses. Returns `true` if visibility was reached. Thin wrapper
    /// over [`VisibilityBoard::wait_admission`] for callers that do not
    /// distinguish timeout from quarantine.
    pub fn wait_visible(&self, gids: &[GroupId], qts: Timestamp, timeout: Duration) -> bool {
        self.wait_admission(gids, qts, timeout) == WaitOutcome::Visible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn g(i: u32) -> GroupId {
        GroupId::new(i)
    }

    #[test]
    fn publishes_are_monotone() {
        let b = VisibilityBoard::builder(2).build();
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(0), Timestamp::from_micros(50)); // stale, ignored
        assert_eq!(b.tg_cmt_ts(g(0)), Timestamp::from_micros(100));
        b.publish_global(Timestamp::from_micros(70));
        b.publish_global(Timestamp::from_micros(60));
        assert_eq!(b.global_cmt_ts(), Timestamp::from_micros(70));
    }

    #[test]
    fn min_over_takes_the_laggard() {
        let b = VisibilityBoard::builder(3).build();
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(1), Timestamp::from_micros(10));
        b.publish_group(g(2), Timestamp::from_micros(200));
        assert_eq!(b.min_over(&[g(0), g(1)]), Timestamp::from_micros(10));
        assert_eq!(b.min_over(&[g(0), g(2)]), Timestamp::from_micros(100));
    }

    #[test]
    fn global_watermark_unblocks_idle_groups() {
        let b = VisibilityBoard::builder(2).build();
        b.publish_group(g(0), Timestamp::from_micros(5)); // group 1 never updated
        let qts = Timestamp::from_micros(50);
        assert!(!b.is_visible(&[g(0), g(1)], qts));
        b.publish_global(Timestamp::from_micros(60));
        assert!(b.is_visible(&[g(0), g(1)], qts), "global_cmt_ts must admit the query");
    }

    #[test]
    fn wait_visible_blocks_until_publish() {
        let b = Arc::new(VisibilityBoard::builder(1).build());
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_visible(&[g(0)], Timestamp::from_micros(100), Duration::from_secs(5))
            })
        };
        thread::sleep(Duration::from_millis(20));
        b.publish_group(g(0), Timestamp::from_micros(150));
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_visible_times_out() {
        let b = VisibilityBoard::builder(1).build();
        let ok = b.wait_visible(&[g(0)], Timestamp::from_micros(100), Duration::from_millis(30));
        assert!(!ok);
    }

    #[test]
    fn empty_group_set_is_immediately_visible() {
        let b = VisibilityBoard::builder(1).build();
        assert!(b.is_visible(&[], Timestamp::MAX));
    }

    #[test]
    fn stale_generation_admits_via_global_only() {
        let b = VisibilityBoard::builder(2).build();
        let qts = Timestamp::from_micros(100);
        b.publish_group(g(0), Timestamp::from_micros(150));
        // Fresh generation: the per-group shortcut admits.
        assert_eq!(
            b.wait_admission_at(&[g(0)], 0, qts, Duration::from_millis(5)),
            WaitOutcome::Visible
        );
        // A regroup lands: gids computed under generation 0 no longer
        // prove anything about group 0's tables, so the same wait must
        // fall back to the global watermark — and time out without it.
        b.advance_grouping_gen(1);
        assert_eq!(b.grouping_gen(), 1);
        assert_eq!(
            b.wait_admission_at(&[g(0)], 0, qts, Duration::from_millis(10)),
            WaitOutcome::TimedOut
        );
        // The global publishes only at full-epoch completion, so it
        // admits any generation.
        b.publish_global(Timestamp::from_micros(150));
        assert_eq!(
            b.wait_admission_at(&[g(0)], 0, qts, Duration::from_millis(5)),
            WaitOutcome::Visible
        );
    }

    #[test]
    fn stale_generation_is_never_hopeless() {
        // A quarantined group fails fresh-generation waiters fast, but a
        // stale waiter's gids may name the wrong group entirely — it must
        // keep waiting on the global rather than be failed early.
        let b = VisibilityBoard::builder(2).build();
        let qts = Timestamp::from_micros(100);
        b.set_quarantined(&[0]);
        assert_eq!(
            b.wait_admission_at(&[g(0)], 0, qts, Duration::from_millis(5)),
            WaitOutcome::Quarantined
        );
        b.advance_grouping_gen(1);
        assert_eq!(
            b.wait_admission_at(&[g(0)], 0, qts, Duration::from_millis(10)),
            WaitOutcome::TimedOut
        );
    }

    #[test]
    fn parked_stale_waiter_wakes_on_global_publish() {
        let b = Arc::new(VisibilityBoard::builder(2).build());
        b.advance_grouping_gen(3);
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_admission_at(&[g(0)], 2, Timestamp::from_micros(100), Duration::from_secs(5))
            })
        };
        thread::sleep(Duration::from_millis(20));
        // A group publish alone must not admit the stale waiter...
        b.publish_group(g(0), Timestamp::from_micros(150));
        thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "stale waiter admitted by a per-group publish");
        // ...the global publish does.
        b.publish_global(Timestamp::from_micros(150));
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Visible);
    }

    #[test]
    fn parked_waiters_deregister_after_wake() {
        let b = Arc::new(VisibilityBoard::builder(2).build());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = b.clone();
                thread::spawn(move || {
                    b.wait_admission(
                        &[g(i % 2)],
                        Timestamp::from_micros(100),
                        Duration::from_secs(5),
                    )
                })
            })
            .collect();
        // Let the waiters park, then satisfy only group 0.
        thread::sleep(Duration::from_millis(20));
        b.publish_group(g(0), Timestamp::from_micros(100));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(b.n_waiters.load(Ordering::Acquire), 2, "group-1 waiters still parked");
        b.publish_group(g(1), Timestamp::from_micros(100));
        for h in handles {
            assert_eq!(h.join().unwrap(), WaitOutcome::Visible);
        }
        assert_eq!(b.n_waiters.load(Ordering::Acquire), 0, "all waiters deregistered");
    }

    #[test]
    fn publish_racing_registration_is_not_a_lost_wakeup() {
        // Hammer the register/publish race: the waiter re-checks after
        // registering, so a publish that lands in between must still
        // admit it promptly.
        for ts in 1..50u64 {
            let b = Arc::new(VisibilityBoard::builder(1).build());
            let waiter = {
                let b = b.clone();
                thread::spawn(move || {
                    b.wait_admission(&[g(0)], Timestamp::from_micros(ts), Duration::from_secs(5))
                })
            };
            b.publish_group(g(0), Timestamp::from_micros(ts));
            assert_eq!(waiter.join().unwrap(), WaitOutcome::Visible);
        }
    }

    #[test]
    fn quarantine_fails_hopeless_waiters_fast() {
        let b = Arc::new(VisibilityBoard::builder(2).build());
        b.publish_group(g(0), Timestamp::from_micros(10));
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_admission(&[g(0)], Timestamp::from_micros(100), Duration::from_secs(30))
            })
        };
        thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        b.set_quarantined(&[0]);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Quarantined);
        assert!(start.elapsed() < Duration::from_secs(5), "no sleeping out the 30s timeout");
        assert!(b.is_quarantined(0));
        assert!(!b.is_quarantined(1));
        // A fresh wait on the frozen group fails immediately.
        assert_eq!(
            b.wait_admission(&[g(0)], Timestamp::from_micros(100), Duration::from_secs(30)),
            WaitOutcome::Quarantined
        );
    }

    #[test]
    fn quarantined_group_below_qts_still_admits_via_global() {
        let b = VisibilityBoard::builder(2).build();
        b.set_quarantined(&[1]);
        b.publish_global(Timestamp::from_micros(200));
        assert_eq!(
            b.wait_admission(&[g(1)], Timestamp::from_micros(100), Duration::from_millis(10)),
            WaitOutcome::Visible,
            "global high-water mark still admits"
        );
    }

    #[test]
    fn quarantined_group_at_or_past_qts_is_readable() {
        let b = VisibilityBoard::builder(1).build();
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.set_quarantined(&[0]);
        assert_eq!(
            b.wait_admission(&[g(0)], Timestamp::from_micros(80), Duration::from_millis(10)),
            WaitOutcome::Visible,
            "frozen watermark already covers the snapshot"
        );
    }

    #[test]
    fn polling_admission_matches_event_driven_outcomes() {
        let b = Arc::new(VisibilityBoard::builder(1).build());
        let tick = Duration::from_millis(2);
        assert_eq!(
            b.wait_admission_polling(&[g(0)], Timestamp::from_micros(10), tick * 5, tick),
            WaitOutcome::TimedOut
        );
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_admission_polling(
                    &[g(0)],
                    Timestamp::from_micros(10),
                    Duration::from_secs(5),
                    tick,
                )
            })
        };
        b.publish_group(g(0), Timestamp::from_micros(10));
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Visible);
        b.set_quarantined(&[0]);
        assert_eq!(
            b.wait_admission_polling(&[g(0)], Timestamp::from_micros(99), tick * 5, tick),
            WaitOutcome::Quarantined
        );
    }

    #[test]
    fn telemetry_board_records_lag_and_gauges() {
        use aets_telemetry::{names, Telemetry};
        let tel = Telemetry::new();
        // Primary "now" is pinned at 1000us: a publish at 400us has
        // 600us of visibility lag.
        let clock: aets_telemetry::ClockFn = Arc::new(|| 1_000);
        let b = VisibilityBoard::builder(2).telemetry(&tel, clock).build();
        b.publish_group(g(0), Timestamp::from_micros(400));
        b.publish_group(g(1), Timestamp::from_micros(990));
        b.publish_global(Timestamp::from_micros(990));
        let snap = tel.snapshot();
        let lag0 = snap
            .histogram_summary(names::VISIBILITY_LAG_US, &aets_telemetry::group_label(0))
            .expect("group 0 lag histogram");
        assert_eq!(lag0.count, 1);
        // 600us lands in the [512, 1024) log bucket; max is exact.
        assert_eq!(lag0.max_us, 600);
        assert_eq!(snap.gauge(names::TG_CMT_TS_US, &aets_telemetry::group_label(1)), Some(990));
        assert_eq!(snap.gauge(names::GLOBAL_CMT_TS_US, ""), Some(990));
        // Stale publish: watermark gauge must not regress.
        b.publish_group(g(1), Timestamp::from_micros(100));
        let snap = tel.snapshot();
        assert_eq!(snap.gauge(names::TG_CMT_TS_US, &aets_telemetry::group_label(1)), Some(990));
    }

    #[test]
    fn deprecated_constructor_still_builds_an_instrumented_board() {
        use aets_telemetry::Telemetry;
        let tel = Telemetry::new();
        let clock: aets_telemetry::ClockFn = Arc::new(|| 0);
        #[allow(deprecated)]
        let b = VisibilityBoard::builder(2).telemetry(&tel, clock).build();
        b.publish_group(g(0), Timestamp::from_micros(1));
        assert_eq!(b.num_groups(), 2);
        assert!(tel
            .snapshot()
            .histogram_summary(names::VISIBILITY_LAG_US, &aets_telemetry::group_label(0))
            .is_some());
    }

    #[test]
    fn gc_watermark_is_clamped_by_global_query_floor_and_quarantine() {
        let b = VisibilityBoard::builder(3).build();
        b.publish_group(g(0), Timestamp::from_micros(100));
        b.publish_group(g(1), Timestamp::from_micros(40)); // frozen by quarantine
        b.publish_group(g(2), Timestamp::from_micros(90));
        b.publish_global(Timestamp::from_micros(80));

        // Healthy: min(query_floor, global).
        assert_eq!(b.gc_watermark(&[], Timestamp::MAX), Timestamp::from_micros(80));
        assert_eq!(b.gc_watermark(&[], Timestamp::from_micros(60)), Timestamp::from_micros(60));
        // A quarantined group's frozen tg_cmt_ts clamps below both.
        assert_eq!(b.gc_watermark(&[1], Timestamp::MAX), Timestamp::from_micros(40));
        assert_eq!(
            b.gc_watermark(&[1], Timestamp::from_micros(20)),
            Timestamp::from_micros(20),
            "query floor below the frozen group still wins"
        );
        // Out-of-range quarantine indices are ignored, not a panic.
        assert_eq!(b.gc_watermark(&[7], Timestamp::MAX), Timestamp::from_micros(80));
    }
}
