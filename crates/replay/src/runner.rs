//! Real-time HTAP runner for the threaded engines.
//!
//! A thin client of the query-serving [`BackupNode`]: the runner builds a
//! node around the engine, releases epochs according to the replication
//! timeline (an epoch only becomes available after its last transaction
//! committed on the primary, plus network latency), and issues each
//! analytical query at its arrival timestamp through a pinned
//! [`crate::service::ReadSession`], blocking on Algorithm 3 until its
//! data is visible. Measured per-query waits are *wall-clock* visibility
//! delays on the real engine — the hardware-independent counterpart lives
//! in `aets-simulator`.

use crate::engines::ReplayEngine;
use crate::metrics::ReplayMetrics;
use crate::service::{AdmissionMode, BackupNode, NodeOptions};
use aets_common::{Error, Result, TableId, Timestamp};
use aets_memtable::MemDb;
use aets_wal::EncodedEpoch;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One analytical query to serve during the run.
#[derive(Debug, Clone)]
pub struct RunnerQuery {
    /// Arrival timestamp `qts` on the primary clock.
    pub arrival: Timestamp,
    /// Tables the query reads.
    pub tables: Vec<TableId>,
}

/// The paced input of a real-time run: the epoch stream with its
/// replication-timeline arrivals, plus the analytical query mix.
#[derive(Debug, Clone, Copy, Default)]
pub struct Workload<'a> {
    /// Encoded epochs, in commit order.
    pub epochs: &'a [EncodedEpoch],
    /// Replication-timeline arrival of each epoch (`epochs[k]` is released
    /// to the engine at wall time `arrivals[k] / time_scale`).
    pub arrivals: &'a [Timestamp],
    /// Analytical queries, issued at their own arrival timestamps.
    pub queries: &'a [RunnerQuery],
}

/// Result of one real-time run.
#[derive(Debug)]
pub struct RunnerOutcome {
    /// Replay engine metrics.
    pub metrics: ReplayMetrics,
    /// Wall-clock visibility delay per query, in the order submitted.
    pub delays: Vec<Duration>,
    /// Queries that timed out waiting for visibility (or were refused
    /// because their data sits behind a quarantined group's frozen
    /// watermark).
    pub timed_out: usize,
    /// Prometheus-text telemetry snapshots taken every
    /// [`RunnerConfig::telemetry_every`] epochs (empty when the cadence is
    /// `0` or the engine carries no enabled telemetry).
    pub telemetry_snapshots: Vec<String>,
    /// The snapshot rendered at the moment the run entered degraded mode
    /// (first group quarantined) — the flight recorder for postmortems.
    pub degraded_snapshot: Option<String>,
}

impl RunnerOutcome {
    /// Mean visibility delay.
    pub fn mean_delay(&self) -> Duration {
        if self.delays.is_empty() {
            Duration::ZERO
        } else {
            self.delays.iter().sum::<Duration>() / self.delays.len() as u32
        }
    }

    /// Whether the run ended degraded: at least one group was quarantined
    /// and its visibility watermark frozen. Queries over a quarantined
    /// group show up in `timed_out` rather than reading inconsistent data.
    pub fn degraded(&self) -> bool {
        self.metrics.degraded()
    }
}

/// Configuration of a real-time run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Compresses primary time: a primary microsecond takes
    /// `1 / time_scale` wall microseconds (e.g. `10.0` replays a
    /// 10-second log in one second).
    pub time_scale: f64,
    /// Per-query visibility timeout.
    pub query_timeout: Duration,
    /// Run a version-chain GC pass after every `gc_every` released epochs
    /// (`0` disables GC). The pass prunes at [`BackupNode::gc_watermark`]:
    /// the oldest open session's `qts` (queries still to arrive count —
    /// they will read at their arrival snapshot), the global commit
    /// high-water mark, and any quarantined group's frozen `tg_cmt_ts`
    /// all clamp the watermark.
    pub gc_every: usize,
    /// Render a telemetry exposition snapshot after every
    /// `telemetry_every` released epochs into
    /// [`RunnerOutcome::telemetry_snapshots`] (`0` disables the cadence).
    /// Has effect only when the engine carries an enabled telemetry
    /// instance (built via `AetsEngine::builder().telemetry(..)`).
    pub telemetry_every: usize,
    /// Worker threads of the node's query pool (the runner's own
    /// visibility waits run on the issuing threads, so the pool only
    /// serves explicitly submitted [`crate::service::QuerySpec`]s).
    pub query_workers: usize,
    /// Admission-queue depth of the node.
    pub queue_depth: usize,
    /// How visibility waits park (event-driven by default).
    pub admission: AdmissionMode,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            time_scale: 1.0,
            query_timeout: Duration::from_secs(30),
            gc_every: 64,
            telemetry_every: 0,
            query_workers: 2,
            queue_depth: 64,
            admission: AdmissionMode::EventDriven,
        }
    }
}

/// Runs `engine` against the paced [`Workload`] while serving its queries.
///
/// Epoch `k` is released to the engine at wall time
/// `arrival_k / time_scale` after the run starts, where `arrival_k` is the
/// epoch's replication-timeline arrival. Queries are issued the same way:
/// each holds a pinned read session from the start of the run (it will
/// read at its arrival snapshot, so GC must not prune past it), sleeps to
/// its arrival instant, then blocks on Algorithm 3 admission.
pub fn run_realtime(
    engine: Arc<dyn ReplayEngine>,
    db: Arc<MemDb>,
    workload: &Workload<'_>,
    cfg: &RunnerConfig,
) -> Result<RunnerOutcome> {
    let Workload { epochs, arrivals, queries } = *workload;
    if epochs.len() != arrivals.len() {
        return Err(Error::Config("one arrival per epoch required".into()));
    }
    if cfg.time_scale <= 0.0 {
        return Err(Error::Config("time_scale must be positive".into()));
    }
    let start = Instant::now();
    let telemetry = engine.telemetry_handle().filter(|t| t.is_enabled());
    // Freshness clock: map wall time back onto the primary clock through
    // the pacing compression, so the recorded visibility lag
    // (`now − primary_commit_ts`) is in primary microseconds regardless
    // of `time_scale`.
    let time_scale = cfg.time_scale;
    let clock: aets_telemetry::ClockFn =
        Arc::new(move || (start.elapsed().as_secs_f64() * time_scale * 1e6) as u64);
    let node = BackupNode::builder()
        .engine(engine.clone())
        .db(db.clone())
        .clock(clock)
        .options(NodeOptions {
            query_workers: cfg.query_workers,
            queue_depth: cfg.queue_depth,
            default_timeout: cfg.query_timeout,
            admission: cfg.admission,
            ..Default::default()
        })
        .build()?;
    let to_wall =
        |ts: Timestamp| -> Duration { Duration::from_secs_f64(ts.as_secs_f64() / cfg.time_scale) };

    // Pin every query's snapshot before the stream starts: a session's
    // RAII floor pin is what keeps GC from pruning past a query that has
    // not arrived yet.
    let sessions: Vec<_> =
        queries.iter().map(|q| node.open_session(q.arrival, &q.tables)).collect();

    std::thread::scope(|scope| -> Result<RunnerOutcome> {
        // Query threads: sleep until arrival, then block on Algorithm 3
        // on their own thread (pure visibility delay, no queueing noise).
        let mut waiters = Vec::with_capacity(queries.len());
        for (q, session) in queries.iter().zip(sessions) {
            let offset = to_wall(q.arrival);
            let timeout = cfg.query_timeout;
            waiters.push(scope.spawn(move || {
                let target = start + offset;
                if let Some(sleep) = target.checked_duration_since(Instant::now()) {
                    std::thread::sleep(sleep);
                }
                // Dropping the session here (end of scope) releases the
                // GC floor pin the moment the query completes.
                session.wait_admitted(timeout)
            }));
        }

        // Feeder + replay on this thread: release epochs one at a time at
        // their arrival instants and replay each as it lands (the engine
        // processes epochs strictly in order anyway).
        let mut metrics = ReplayMetrics { engine: engine.name(), ..Default::default() };
        let mut telemetry_snapshots = Vec::new();
        let mut degraded_snapshot: Option<String> = None;
        for (eidx, (epoch, arrival)) in epochs.iter().zip(arrivals).enumerate() {
            let target = start + to_wall(*arrival);
            if let Some(sleep) = target.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            let m = node.replay(std::slice::from_ref(epoch))?;
            // Quarantine state is cumulative on the engine; the latest
            // epoch's snapshot is the union of everything poisoned so far.
            metrics.absorb(&m);

            if cfg.gc_every > 0 && (eidx + 1) % cfg.gc_every == 0 {
                let pass = node.gc();
                metrics.gc.merge(pass);
                metrics.gc_passes += 1;
            }

            if let Some(tel) = &telemetry {
                // Flight recorder: dump the full exposition at the moment
                // the run first turns degraded, while the registry still
                // reflects the healthy-to-degraded transition.
                if degraded_snapshot.is_none() && metrics.degraded() {
                    degraded_snapshot = Some(tel.snapshot().render_prometheus());
                }
                if cfg.telemetry_every > 0 && (eidx + 1) % cfg.telemetry_every == 0 {
                    telemetry_snapshots.push(tel.snapshot().render_prometheus());
                }
            }
        }
        metrics.wall = start.elapsed();

        let mut delays = Vec::with_capacity(waiters.len());
        let mut timed_out = 0usize;
        for w in waiters {
            match w.join().map_err(|_| Error::Replay("query thread panicked".into()))? {
                Ok(delay) => delays.push(delay),
                Err(Error::QueryTimeout | Error::Degraded) => timed_out += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(RunnerOutcome { metrics, delays, timed_out, telemetry_snapshots, degraded_snapshot })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::aets::{AetsConfig, AetsEngine};
    use crate::grouping::TableGrouping;
    use aets_wal::{batch_into_epochs, encode_epoch, ReplicationTimeline};
    use aets_workloads::tpcc::{self, TpccConfig};

    fn setup(
        num_txns: usize,
    ) -> (aets_workloads::Workload, Vec<EncodedEpoch>, Vec<Timestamp>, Arc<dyn ReplayEngine>) {
        let w = tpcc::generate(&TpccConfig {
            num_txns,
            warehouses: 2,
            oltp_tps: 20_000.0,
            ..Default::default()
        });
        let raw = batch_into_epochs(w.txns.clone(), 256).unwrap();
        let tl = ReplicationTimeline::default();
        let arrivals = tl.arrivals(&raw);
        let epochs: Vec<_> = raw.iter().map(encode_epoch).collect();
        let (groups, rates) = tpcc::paper_grouping();
        let grouping =
            TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
        let engine = AetsEngine::builder(grouping)
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        (w, epochs, arrivals, Arc::new(engine))
    }

    #[test]
    fn realtime_run_serves_all_queries() {
        let (w, epochs, arrivals, engine) = setup(1_000);
        let db = Arc::new(MemDb::new(w.num_tables()));
        let queries: Vec<RunnerQuery> = w
            .queries
            .iter()
            .take(10)
            .map(|q| RunnerQuery { arrival: q.arrival, tables: q.tables.clone() })
            .collect();
        let outcome = run_realtime(
            engine,
            db.clone(),
            &Workload { epochs: &epochs, arrivals: &arrivals, queries: &queries },
            &RunnerConfig { time_scale: 20.0, ..Default::default() },
        )
        .unwrap();
        assert_eq!(outcome.metrics.txns, w.txns.len());
        assert_eq!(outcome.timed_out, 0, "no query may time out");
        assert_eq!(outcome.delays.len(), queries.len());
        assert!(outcome.mean_delay() < Duration::from_secs(5));
        assert!(db.all_chains_ordered());
    }

    #[test]
    fn pacing_spreads_replay_over_the_timeline() {
        let (w, epochs, arrivals, engine) = setup(600);
        let db = Arc::new(MemDb::new(w.num_tables()));
        // 10x compression: a ~30ms primary window takes >= ~3ms wall.
        let cfg = RunnerConfig { time_scale: 10.0, ..Default::default() };
        let expected_min = Duration::from_secs_f64(arrivals.last().unwrap().as_secs_f64() / 10.0);
        let outcome = run_realtime(
            engine,
            db,
            &Workload { epochs: &epochs, arrivals: &arrivals, queries: &[] },
            &cfg,
        )
        .unwrap();
        assert!(
            outcome.metrics.wall >= expected_min,
            "run finished before the last epoch could arrive: {:?} < {:?}",
            outcome.metrics.wall,
            expected_min
        );
        assert_eq!(outcome.metrics.txns, w.txns.len());
    }

    #[test]
    fn periodic_gc_prunes_and_surfaces_stats() {
        let (w, epochs, arrivals, engine) = setup(2_000);
        let db = Arc::new(MemDb::new(w.num_tables()));
        let cfg = RunnerConfig { time_scale: 50.0, gc_every: 2, ..Default::default() };
        let outcome = run_realtime(
            engine,
            db.clone(),
            &Workload { epochs: &epochs, arrivals: &arrivals, queries: &[] },
            &cfg,
        )
        .unwrap();
        assert_eq!(outcome.metrics.gc_passes as usize, epochs.len() / 2);
        assert!(outcome.metrics.gc.nodes > 0, "GC passes must visit chains");
        assert!(outcome.metrics.gc.pruned > 0, "hot TPC-C rows must shed versions");
        assert_eq!(outcome.metrics.txns, w.txns.len());
        assert!(db.all_chains_ordered());
    }

    #[test]
    fn pending_queries_hold_the_gc_floor() {
        // A query with a very early arrival completes immediately, but
        // while any query is outstanding the floor equals the minimum
        // live qts — exercised here end-to-end by running GC with an
        // active query set and checking reads at the query snapshot
        // still succeed afterwards.
        let (w, epochs, arrivals, engine) = setup(1_000);
        let db = Arc::new(MemDb::new(w.num_tables()));
        let q_arrival = epochs[0].max_commit_ts;
        let queries = vec![RunnerQuery { arrival: q_arrival, tables: vec![TableId::new(0)] }];
        let cfg = RunnerConfig { time_scale: 50.0, gc_every: 1, ..Default::default() };
        let outcome = run_realtime(
            engine,
            db.clone(),
            &Workload { epochs: &epochs, arrivals: &arrivals, queries: &queries },
            &cfg,
        )
        .unwrap();
        assert_eq!(outcome.timed_out, 0);
        assert!(outcome.metrics.gc_passes as usize >= epochs.len());
        assert!(db.all_chains_ordered());
    }

    #[test]
    fn telemetry_cadence_renders_parseable_snapshots() {
        use aets_telemetry::{names, parse_exposition, Telemetry};
        let (w, epochs, arrivals, _) = setup(1_000);
        let (groups, rates) = tpcc::paper_grouping();
        let grouping =
            TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
        let tel = Arc::new(Telemetry::new());
        let engine = AetsEngine::builder(grouping)
            .config(AetsConfig { threads: 2, ..Default::default() })
            .telemetry(tel.clone())
            .build()
            .unwrap();
        let db = Arc::new(MemDb::new(w.num_tables()));
        let cfg = RunnerConfig { time_scale: 50.0, telemetry_every: 2, ..Default::default() };
        let outcome = run_realtime(
            Arc::new(engine),
            db,
            &Workload { epochs: &epochs, arrivals: &arrivals, queries: &[] },
            &cfg,
        )
        .unwrap();
        assert_eq!(outcome.telemetry_snapshots.len(), epochs.len() / 2);
        assert!(outcome.degraded_snapshot.is_none(), "healthy run");
        for text in &outcome.telemetry_snapshots {
            parse_exposition(text).expect("snapshot must parse");
        }
        // The registry integrated exactly what the per-call metrics sum to.
        let snap = tel.snapshot();
        assert_eq!(snap.counter_total(names::TXNS) as usize, outcome.metrics.txns);
        assert_eq!(snap.counter_total(names::EPOCHS) as usize, outcome.metrics.epochs);
        // Freshness: the paced run recorded a visibility-lag sample per
        // group publish, on the primary clock.
        let lag = snap.histogram_summary_all(names::VISIBILITY_LAG_US).expect("lag histogram");
        assert!(lag.count > 0, "publishes must record freshness");
        // Epoch lifecycle events came out in dispatch→commit order.
        let evs = tel.drain_events();
        assert!(evs.iter().any(|e| e.kind.name() == "epoch_committed"));
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq), "monotone seqs");
    }

    #[test]
    fn config_validation() {
        let (w, epochs, arrivals, engine) = setup(100);
        let db = Arc::new(MemDb::new(w.num_tables()));
        assert!(run_realtime(
            engine.clone(),
            db.clone(),
            &Workload { epochs: &epochs, arrivals: &arrivals[..arrivals.len() - 1], queries: &[] },
            &RunnerConfig::default(),
        )
        .is_err());
        assert!(run_realtime(
            engine,
            db,
            &Workload { epochs: &epochs, arrivals: &arrivals, queries: &[] },
            &RunnerConfig { time_scale: 0.0, ..Default::default() },
        )
        .is_err());
    }
}
