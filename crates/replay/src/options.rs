//! Shared service-layer configuration.
//!
//! [`NodeOptions`](crate::service::NodeOptions),
//! [`DurableOptions`](crate::DurableOptions), and the fleet's
//! `FleetOptions` each grew the same knobs independently — a telemetry
//! handle, an observability bind address, a flight-recorder directory, a
//! retry policy. [`ServiceOptions`] is the one struct they all embed
//! now; the old per-struct fields remain as `#[deprecated]` shims that
//! are honoured when the consolidated field is unset, so existing
//! configs keep working while call sites migrate.
//!
//! The consolidated struct is also where the adaptive control loop is
//! switched on: setting [`ServiceOptions::controller`] makes the serving
//! layer construct an [`AdaptiveController`](crate::AdaptiveController)
//! over the engine's reconfiguration channel and tick it once per
//! replayed epoch. Enable it on exactly one owner per engine (the
//! durable backup *or* its serving node, not both) — two controllers
//! sampling the same registry would fight over the plan.

use crate::control::ControllerConfig;
use crate::dispatch::RetryPolicy;
use aets_telemetry::Telemetry;
use std::path::PathBuf;
use std::sync::Arc;

/// Knobs shared by every service-layer composition (query node, durable
/// backup, fleet coordinator). Build with [`ServiceOptions::builder`].
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Telemetry instance for the service's metrics and events. `None`
    /// falls back to the owner's historical source (the engine's handle
    /// for nodes and backups, disabled for fleets).
    pub telemetry: Option<Arc<Telemetry>>,
    /// Bind address of the live observability endpoint (`/metrics`,
    /// `/spans.json`, `/healthz`, …); `None` serves no HTTP.
    pub obs_addr: Option<String>,
    /// Directory for degraded-mode flight-recorder bundles; `None`
    /// disables the recorder.
    pub flight_dir: Option<PathBuf>,
    /// Bounded retry/backoff for retryable service operations (routed
    /// submissions, ingest resync). `None` uses the owner's default.
    pub retry: Option<RetryPolicy>,
    /// Adaptive control loop configuration. `Some` makes the owning
    /// service drive a live [`AdaptiveController`](crate::AdaptiveController)
    /// against its engine (a no-op for engines without a reconfiguration
    /// channel); `None` runs the static plan.
    pub controller: Option<ControllerConfig>,
}

impl ServiceOptions {
    /// Starts building a [`ServiceOptions`].
    pub fn builder() -> ServiceOptionsBuilder {
        ServiceOptionsBuilder::default()
    }
}

/// Builder for [`ServiceOptions`].
#[derive(Debug, Default)]
pub struct ServiceOptionsBuilder {
    inner: ServiceOptions,
}

impl ServiceOptionsBuilder {
    /// Telemetry instance for the service's metrics and events.
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.inner.telemetry = Some(tel);
        self
    }

    /// Bind address of the live observability endpoint.
    pub fn obs_addr(mut self, addr: impl Into<String>) -> Self {
        self.inner.obs_addr = Some(addr.into());
        self
    }

    /// Directory for degraded-mode flight-recorder bundles.
    pub fn flight_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.inner.flight_dir = Some(dir.into());
        self
    }

    /// Bounded retry/backoff for retryable service operations.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.inner.retry = Some(retry);
        self
    }

    /// Enables the adaptive control loop with `cfg`.
    pub fn controller(mut self, cfg: ControllerConfig) -> Self {
        self.inner.controller = Some(cfg);
        self
    }

    /// Finishes the options.
    pub fn build(self) -> ServiceOptions {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_field() {
        let tel = Arc::new(Telemetry::new());
        let opts = ServiceOptions::builder()
            .telemetry(tel.clone())
            .obs_addr("127.0.0.1:0")
            .flight_dir("/tmp/bundles")
            .retry(RetryPolicy { max_retries: 7, ..Default::default() })
            .controller(ControllerConfig::default())
            .build();
        assert!(Arc::ptr_eq(opts.telemetry.as_ref().unwrap(), &tel));
        assert_eq!(opts.obs_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.flight_dir.as_deref(), Some(std::path::Path::new("/tmp/bundles")));
        assert_eq!(opts.retry.unwrap().max_retries, 7);
        assert!(opts.controller.is_some());
    }

    #[test]
    fn default_is_all_unset() {
        let opts = ServiceOptions::default();
        assert!(opts.telemetry.is_none());
        assert!(opts.obs_addr.is_none());
        assert!(opts.flight_dir.is_none());
        assert!(opts.retry.is_none());
        assert!(opts.controller.is_none());
    }
}
