//! Adaptive thread resource allocation (Section IV-B).
//!
//! Given `T` replay workers and per-group un-replayed log volume `n_gi`
//! and urgency `λ_gi`, the paper's equilibrium `λ_gi · n_gi / t_gi = const`
//! with `Σ t_gi = T` has the closed form `t_gi ∝ λ_gi · n_gi`. Integer
//! thread counts come from largest-remainder apportionment, with every
//! group that has pending work guaranteed at least one thread whenever
//! `T >= #groups-with-work`.

use aets_common::{Error, Result};

/// How the urgency factor `λ` is derived from a group's access rate `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UrgencyMode {
    /// `λ = log(1 + r)` — the paper's choice ("λ is the log(r)", with the
    /// +1 guard for rates below one). Numerically stable and interpretable.
    #[default]
    Log,
    /// `λ = r` — the naive proportional alternative the paper argues
    /// against (a rate of 1000 would grab 1000× the threads).
    Linear,
    /// `λ = 1` — ignore access rates entirely; allocate purely by log
    /// volume. This is the paper's **AETS-NOAC** ablation.
    Ignore,
}

impl UrgencyMode {
    /// Computes `λ` for access rate `r >= 0`.
    pub fn lambda(self, rate: f64) -> f64 {
        match self {
            UrgencyMode::Log => (1.0 + rate.max(0.0)).ln(),
            UrgencyMode::Linear => rate.max(0.0),
            UrgencyMode::Ignore => 1.0,
        }
    }
}

/// Allocates `total_threads` across groups.
///
/// * `pending_bytes[i]` — un-replayed log volume `n_gi` of group `i`.
/// * `rates[i]` — table access rate `r_gi` of group `i`.
///
/// Groups with zero pending work get zero threads. Every group with work
/// gets at least one thread when `total_threads` allows; remaining threads
/// follow the `λ·n` weights by largest remainder. If there are more
/// working groups than threads, the groups with the largest weights win a
/// thread each and the rest get zero (the engine then lets its commit
/// thread drain them).
pub fn allocate_threads(
    total_threads: usize,
    pending_bytes: &[u64],
    rates: &[f64],
    mode: UrgencyMode,
) -> Result<Vec<usize>> {
    if pending_bytes.len() != rates.len() {
        return Err(Error::Config("pending/rates length mismatch".into()));
    }
    if total_threads == 0 {
        return Err(Error::Config("need at least one replay thread".into()));
    }
    let n = pending_bytes.len();
    let weights: Vec<f64> = pending_bytes
        .iter()
        .zip(rates)
        .map(|(b, r)| {
            if *b == 0 {
                0.0
            } else {
                // A group with pending work always has positive weight so
                // apportionment can see it, even at rate 0.
                (*b as f64) * mode.lambda(*r).max(1e-9)
            }
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut out = vec![0usize; n];
    if total_weight <= 0.0 {
        return Ok(out);
    }

    let working: Vec<usize> = (0..n).filter(|i| weights[*i] > 0.0).collect();
    if working.len() >= total_threads {
        // Scarce threads: give one to each of the top-weight groups.
        let mut by_weight = working.clone();
        by_weight.sort_by(|a, b| weights[*b].partial_cmp(&weights[*a]).expect("no NaN"));
        for i in by_weight.into_iter().take(total_threads) {
            out[i] = 1;
        }
        return Ok(out);
    }

    // One thread per working group, then largest remainder on the rest.
    for &i in &working {
        out[i] = 1;
    }
    let spare = total_threads - working.len();
    let quotas: Vec<f64> = weights.iter().map(|w| w / total_weight * spare as f64).collect();
    let mut assigned = 0usize;
    for &i in &working {
        out[i] += quotas[i].floor() as usize;
        assigned += quotas[i].floor() as usize;
    }
    let mut rema: Vec<(usize, f64)> =
        working.iter().map(|&i| (i, quotas[i] - quotas[i].floor())).collect();
    rema.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    for (i, _) in rema.into_iter().take(spare - assigned) {
        out[i] += 1;
    }
    debug_assert_eq!(out.iter().sum::<usize>(), total_threads.min(out.iter().sum()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_modes_behave_as_documented() {
        assert!((UrgencyMode::Log.lambda(1000.0) - 1001f64.ln()).abs() < 1e-12);
        assert_eq!(UrgencyMode::Linear.lambda(7.0), 7.0);
        assert_eq!(UrgencyMode::Ignore.lambda(7.0), 1.0);
        // The paper's example: log urgency turns a 1000x rate into ~3x
        // (natural log of 1001 ≈ 6.9; with log10 it is 3 — either way the
        // compression property holds).
        assert!(UrgencyMode::Log.lambda(1000.0) < 10.0);
    }

    #[test]
    fn proportional_to_weight() {
        // Equal rates: allocation follows bytes 3:1.
        let t = allocate_threads(8, &[300, 100], &[10.0, 10.0], UrgencyMode::Log).unwrap();
        assert_eq!(t.iter().sum::<usize>(), 8);
        assert_eq!(t, vec![6, 2]);
    }

    #[test]
    fn urgency_shifts_threads_to_hot_groups() {
        let bytes = [100u64, 100];
        let base = allocate_threads(10, &bytes, &[1.0, 1.0], UrgencyMode::Log).unwrap();
        assert_eq!(base, vec![5, 5]);
        let skew = allocate_threads(10, &bytes, &[1000.0, 1.0], UrgencyMode::Log).unwrap();
        assert!(skew[0] > skew[1], "hot group must get more threads: {skew:?}");
        assert_eq!(skew.iter().sum::<usize>(), 10);
    }

    #[test]
    fn noac_ignores_rates() {
        let a = allocate_threads(6, &[100, 200], &[999.0, 1.0], UrgencyMode::Ignore).unwrap();
        assert_eq!(a, vec![2, 4]);
    }

    #[test]
    fn zero_pending_groups_get_zero_threads() {
        let t = allocate_threads(4, &[0, 100, 0], &[5.0, 5.0, 5.0], UrgencyMode::Log).unwrap();
        assert_eq!(t, vec![0, 4, 0]);
    }

    #[test]
    fn every_working_group_gets_a_thread_when_possible() {
        let t = allocate_threads(4, &[1_000_000, 1, 1, 1], &[1.0; 4], UrgencyMode::Log).unwrap();
        assert!(t.iter().all(|&x| x >= 1), "{t:?}");
        assert_eq!(t.iter().sum::<usize>(), 4);
    }

    #[test]
    fn scarce_threads_prefer_heavy_groups() {
        let t = allocate_threads(2, &[10, 1000, 500, 20], &[1.0; 4], UrgencyMode::Log).unwrap();
        assert_eq!(t.iter().sum::<usize>(), 2);
        assert_eq!(t[1], 1);
        assert_eq!(t[2], 1);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(allocate_threads(0, &[1], &[1.0], UrgencyMode::Log).is_err());
        assert!(allocate_threads(1, &[1, 2], &[1.0], UrgencyMode::Log).is_err());
    }

    #[test]
    fn all_zero_pending_is_all_zero_threads() {
        let t = allocate_threads(8, &[0, 0], &[1.0, 1.0], UrgencyMode::Log).unwrap();
        assert_eq!(t, vec![0, 0]);
    }
}
