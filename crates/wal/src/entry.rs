//! The replicated value-log record format (Figure 2 of the paper).
//!
//! Every entry carries the common fields of Section III-A: log type, LSN,
//! transaction ID, creation timestamp, and — for DML entries — the table
//! ID, the row key, and the concatenation of (column id, new value) pairs.
//! Updates optionally carry the before-image of the modified columns; the
//! ATR baseline needs it for its operation-sequence check, while AETS and
//! C5 ignore it.

use aets_common::{value::row_wire_size, DmlOp, Lsn, Row, RowKey, TableId, Timestamp, TxnId};

/// A DML log entry (insert/update/delete of one row).
#[derive(Debug, Clone, PartialEq)]
pub struct DmlEntry {
    /// Unique, sequential identifier of the log entry.
    pub lsn: Lsn,
    /// Producing transaction (primary commit order).
    pub txn_id: TxnId,
    /// Creation time of the log entry on the primary.
    pub ts: Timestamp,
    /// Table the operation applies to.
    pub table: TableId,
    /// Row operation kind.
    pub op: DmlOp,
    /// Primary key of the modified row.
    pub key: RowKey,
    /// Row version (RVID) *after* this operation: the primary stamps each
    /// row with a counter incremented by every modification. An insert has
    /// `row_version == 1`; an update/delete of a row at version `v` ships
    /// `row_version == v + 1`. The ATR baseline's operation-sequence check
    /// (SAP HANA's "RVID-based dynamic detection") gates an apply on the
    /// backup having seen `row_version - 1`.
    pub row_version: u64,
    /// New values: pairs of column id and value (full row for inserts,
    /// modified columns for updates, empty for deletes).
    pub cols: Row,
    /// Before-image of the modified columns, when the primary ships one.
    pub before: Option<Row>,
}

impl DmlEntry {
    /// Approximate encoded size in bytes; used to weigh un-replayed log
    /// volume (`n_gi` in the thread-allocation equation) and to model the
    /// dispatch parsing cost.
    pub fn wire_size(&self) -> usize {
        // tag + lsn + txn + ts + table + op + key + row_version + payloads
        1 + 8
            + 8
            + 8
            + 4
            + 1
            + 8
            + 8
            + row_wire_size(&self.cols)
            + self.before.as_ref().map_or(0, row_wire_size)
    }
}

/// One replicated log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction begin marker.
    Begin {
        /// LSN of the marker.
        lsn: Lsn,
        /// Transaction id.
        txn_id: TxnId,
        /// Begin time on the primary.
        ts: Timestamp,
    },
    /// Transaction commit marker. `ts` is the commit timestamp that
    /// determines visibility on the backup.
    Commit {
        /// LSN of the marker.
        lsn: Lsn,
        /// Transaction id.
        txn_id: TxnId,
        /// Commit timestamp.
        ts: Timestamp,
    },
    /// A row modification.
    Dml(DmlEntry),
}

impl LogRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> Lsn {
        match self {
            LogRecord::Begin { lsn, .. } | LogRecord::Commit { lsn, .. } => *lsn,
            LogRecord::Dml(d) => d.lsn,
        }
    }

    /// The record's transaction id.
    pub fn txn_id(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn_id, .. } | LogRecord::Commit { txn_id, .. } => *txn_id,
            LogRecord::Dml(d) => d.txn_id,
        }
    }
}

/// All log entries of one committed transaction, as assembled by the log
/// parser from its BEGIN/COMMIT bracket.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnLog {
    /// Transaction id (primary commit order).
    pub txn_id: TxnId,
    /// Commit timestamp on the primary.
    pub commit_ts: Timestamp,
    /// The transaction's DML entries in LSN order.
    pub entries: Vec<DmlEntry>,
}

impl TxnLog {
    /// Sum of entry wire sizes.
    pub fn wire_size(&self) -> usize {
        self.entries.iter().map(DmlEntry::wire_size).sum()
    }

    /// Whether this is a heartbeat transaction (no DML): the dispatcher
    /// inserts these to keep `global_cmt_ts` advancing when the primary is
    /// idle (Section V-B).
    pub fn is_heartbeat(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{ColumnId, Value};

    pub(crate) fn dml(lsn: u64, txn: u64, table: u32, key: u64) -> DmlEntry {
        DmlEntry {
            lsn: Lsn::new(lsn),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(lsn),
            table: TableId::new(table),
            op: DmlOp::Update,
            key: RowKey::new(key),
            row_version: 2,
            cols: vec![(ColumnId::new(0), Value::Int(1))],
            before: None,
        }
    }

    #[test]
    fn lsn_and_txn_accessors() {
        let b = LogRecord::Begin { lsn: Lsn::new(1), txn_id: TxnId::new(9), ts: Timestamp::ZERO };
        assert_eq!(b.lsn(), Lsn::new(1));
        assert_eq!(b.txn_id(), TxnId::new(9));
        let d = LogRecord::Dml(dml(5, 9, 0, 1));
        assert_eq!(d.lsn(), Lsn::new(5));
    }

    #[test]
    fn wire_size_counts_before_image() {
        let mut e = dml(1, 1, 0, 1);
        let base = e.wire_size();
        e.before = Some(vec![(ColumnId::new(0), Value::Int(0))]);
        assert!(e.wire_size() > base);
    }

    #[test]
    fn heartbeat_detection() {
        let t = TxnLog { txn_id: TxnId::new(1), commit_ts: Timestamp::ZERO, entries: vec![] };
        assert!(t.is_heartbeat());
        assert_eq!(t.wire_size(), 0);
    }
}
