//! Binary codec for the replicated value log.
//!
//! A deliberately simple little-endian framing: each record starts with a
//! one-byte type tag. DML payloads are length-prefixed. The codec is the
//! boundary between the "primary" (workload generators) and the backup's
//! log parser; the dispatch-cost distinction the paper draws between
//! metadata-only parsing (ATR/AETS) and full-data-image parsing (C5) maps
//! onto [`decode_meta`] vs [`decode_record`].
//!
//! Every record carries a trailing CRC32 over its encoded body.
//! [`decode_record`] verifies it (so full decoding — the workers' phase-1
//! translate, C5's dispatcher, the serial oracle — catches corruption that
//! slipped past the epoch frame check), while [`decode_meta`] *skips* it:
//! the metadata-only dispatch path never touches data images, and its
//! integrity is covered by the per-epoch CRC verified once at ingest.

use crate::crc::crc32;
use crate::entry::{DmlEntry, LogRecord};
use aets_common::{
    ColumnId, DmlOp, Error, Lsn, Result, Row, RowKey, TableId, Timestamp, TxnId, Value,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_BEGIN: u8 = 0xB0;
const TAG_COMMIT: u8 = 0xC0;
const TAG_DML: u8 = 0xD0;

const VTAG_NULL: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_FLOAT: u8 = 2;
const VTAG_TEXT: u8 = 3;
const VTAG_BYTES: u8 = 4;

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(VTAG_NULL),
        Value::Int(i) => {
            buf.put_u8(VTAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(VTAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(VTAG_TEXT);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(VTAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(Error::CodecTruncated);
    }
    match buf.get_u8() {
        VTAG_NULL => Ok(Value::Null),
        VTAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        VTAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        VTAG_TEXT => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n)?;
            // Zero-copy: the value is a refcounted slice of the epoch
            // buffer; only UTF-8 validation touches the payload.
            aets_common::Utf8Bytes::from_utf8(buf.split_to(n))
                .map(Value::Text)
                .map_err(|_| Error::Codec("invalid utf-8 in text value".into()))
        }
        VTAG_BYTES => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n)?;
            Ok(Value::Bytes(buf.split_to(n)))
        }
        _ => Err(Error::CodecBadTag),
    }
}

fn put_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u16_le(row.len() as u16);
    for (cid, v) in row {
        buf.put_u16_le(cid.raw());
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> Result<Row> {
    need(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 2)?;
        let cid = ColumnId::new(buf.get_u16_le());
        row.push((cid, get_value(buf)?));
    }
    Ok(row)
}

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::CodecTruncated)
    } else {
        Ok(())
    }
}

/// Encodes one row (column/value pairs) in the log's wire format,
/// appending to `buf`. Shared with the Memtable snapshot codec so
/// checkpoints reuse the same battle-tested value encoding as the log.
pub fn encode_row(buf: &mut BytesMut, row: &Row) {
    put_row(buf, row);
}

/// Decodes one row from the front of `buf`, consuming it. Inverse of
/// [`encode_row`].
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    get_row(buf)
}

/// Encodes one record, appending to `buf`: the record body followed by a
/// CRC32 over the body's bytes.
pub fn encode_record(buf: &mut BytesMut, rec: &LogRecord) {
    let start = buf.len();
    encode_body(buf, rec);
    let crc = crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

fn encode_body(buf: &mut BytesMut, rec: &LogRecord) {
    match rec {
        LogRecord::Begin { lsn, txn_id, ts } => {
            buf.put_u8(TAG_BEGIN);
            buf.put_u64_le(lsn.raw());
            buf.put_u64_le(txn_id.raw());
            buf.put_u64_le(ts.as_micros());
        }
        LogRecord::Commit { lsn, txn_id, ts } => {
            buf.put_u8(TAG_COMMIT);
            buf.put_u64_le(lsn.raw());
            buf.put_u64_le(txn_id.raw());
            buf.put_u64_le(ts.as_micros());
        }
        LogRecord::Dml(d) => {
            buf.put_u8(TAG_DML);
            buf.put_u64_le(d.lsn.raw());
            buf.put_u64_le(d.txn_id.raw());
            buf.put_u64_le(d.ts.as_micros());
            buf.put_u32_le(d.table.raw());
            buf.put_u8(d.op.tag());
            buf.put_u64_le(d.key.raw());
            buf.put_u64_le(d.row_version);
            buf.put_u8(u8::from(d.before.is_some()));
            put_row(buf, &d.cols);
            if let Some(before) = &d.before {
                put_row(buf, before);
            }
        }
    }
}

/// Decodes one record from the front of `buf`, consuming it, and verifies
/// its trailing CRC32 against the body bytes actually read.
pub fn decode_record(buf: &mut Bytes) -> Result<LogRecord> {
    let snapshot = buf.clone();
    let rec = decode_body(buf)?;
    let body_len = snapshot.remaining() - buf.remaining();
    need(buf, 4)?;
    if buf.get_u32_le() != crc32(&snapshot[..body_len]) {
        return Err(Error::CodecChecksum);
    }
    Ok(rec)
}

fn decode_body(buf: &mut Bytes) -> Result<LogRecord> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    match tag {
        TAG_BEGIN | TAG_COMMIT => {
            need(buf, 24)?;
            let lsn = Lsn::new(buf.get_u64_le());
            let txn_id = TxnId::new(buf.get_u64_le());
            let ts = Timestamp::from_micros(buf.get_u64_le());
            Ok(if tag == TAG_BEGIN {
                LogRecord::Begin { lsn, txn_id, ts }
            } else {
                LogRecord::Commit { lsn, txn_id, ts }
            })
        }
        TAG_DML => {
            // lsn(8) + txn(8) + ts(8) + table(4) + op(1) + key(8) +
            // row_version(8) + before-flag(1)
            need(buf, 46)?;
            let lsn = Lsn::new(buf.get_u64_le());
            let txn_id = TxnId::new(buf.get_u64_le());
            let ts = Timestamp::from_micros(buf.get_u64_le());
            let table = TableId::new(buf.get_u32_le());
            let op = DmlOp::from_tag(buf.get_u8()).ok_or(Error::CodecBadTag)?;
            let key = RowKey::new(buf.get_u64_le());
            let row_version = buf.get_u64_le();
            let has_before = buf.get_u8() != 0;
            let cols = get_row(buf)?;
            let before = if has_before { Some(get_row(buf)?) } else { None };
            Ok(LogRecord::Dml(DmlEntry {
                lsn,
                txn_id,
                ts,
                table,
                op,
                key,
                row_version,
                cols,
                before,
            }))
        }
        _ => Err(Error::CodecBadTag),
    }
}

/// Metadata of a DML entry decoded without touching the data image.
///
/// This is what ATR and AETS parse at dispatch time ("only need to parse
/// the log metadata", Section VI-B); C5 must decode the full record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Record LSN.
    pub lsn: Lsn,
    /// Producing transaction.
    pub txn_id: TxnId,
    /// Entry creation timestamp.
    pub ts: Timestamp,
    /// Table id for DML records; `None` for BEGIN/COMMIT markers.
    pub table: Option<TableId>,
}

/// Decodes only the metadata of the record at the front of `buf`, skipping
/// the data image, and consumes the full record.
///
/// The trailing record CRC32 is skipped, *not* verified: verifying it
/// would force reading the data image, defeating metadata-only parsing.
/// The dispatch path instead relies on the per-epoch CRC checked once at
/// ingest; record CRCs are verified wherever full records are decoded.
pub fn decode_meta(buf: &mut Bytes) -> Result<RecordMeta> {
    let (meta, consumed) = meta_at(buf.as_ref(), 0)?;
    buf.advance(consumed);
    Ok(meta)
}

/// Advances `pos` past `n` bytes of `data`, returning the skipped slice.
#[inline]
fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = pos.checked_add(n).ok_or(Error::CodecTruncated)?;
    let slice = data.get(*pos..end).ok_or(Error::CodecTruncated)?;
    *pos = end;
    Ok(slice)
}

#[inline]
fn take_u16(data: &[u8], pos: &mut usize) -> Result<u16> {
    let b = take(data, pos, 2)?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

#[inline]
fn take_u32(data: &[u8], pos: &mut usize) -> Result<u32> {
    let b = take(data, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[inline]
fn take_u64(data: &[u8], pos: &mut usize) -> Result<u64> {
    let b = take(data, pos, 8)?;
    Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

/// Parses the metadata of the record starting at byte `start` of `data`
/// and returns it with the record's total consumed length (CRC trailer
/// included). Pure offset arithmetic over the borrowed frame — the
/// scanner's hot loop calls this once per record, so a metadata pass
/// never touches the `Bytes` refcount or materializes sub-slices.
fn meta_at(data: &[u8], start: usize) -> Result<(RecordMeta, usize)> {
    let mut pos = start;
    let tag = take(data, &mut pos, 1)?[0];
    let lsn = Lsn::new(take_u64(data, &mut pos)?);
    let txn_id = TxnId::new(take_u64(data, &mut pos)?);
    let ts = Timestamp::from_micros(take_u64(data, &mut pos)?);
    let meta = match tag {
        TAG_BEGIN | TAG_COMMIT => RecordMeta { lsn, txn_id, ts, table: None },
        TAG_DML => {
            let table = TableId::new(take_u32(data, &mut pos)?);
            take(data, &mut pos, 17)?; // op(1) + key(8) + row_version(8)
            let has_before = take(data, &mut pos, 1)?[0] != 0;
            skip_row_at(data, &mut pos)?;
            if has_before {
                skip_row_at(data, &mut pos)?;
            }
            RecordMeta { lsn, txn_id, ts, table: Some(table) }
        }
        _ => return Err(Error::CodecBadTag),
    };
    take(data, &mut pos, 4)?; // record CRC32 trailer
    Ok((meta, pos - start))
}

fn skip_row_at(data: &[u8], pos: &mut usize) -> Result<()> {
    let n = take_u16(data, pos)? as usize;
    for _ in 0..n {
        take(data, pos, 2)?; // column id
        let vtag = take(data, pos, 1)?[0];
        let skip = match vtag {
            VTAG_NULL => 0,
            VTAG_INT | VTAG_FLOAT => 8,
            VTAG_TEXT | VTAG_BYTES => take_u32(data, pos)? as usize,
            _ => return Err(Error::CodecBadTag),
        };
        take(data, pos, skip)?;
    }
    Ok(())
}

/// Scans a buffer record-by-record, yielding each record's metadata and
/// its byte range, without decoding data images.
///
/// This is the dispatcher's view in ATR and AETS: route on metadata, let a
/// replay worker decode the full record later from the recorded range.
#[derive(Debug, Clone)]
pub struct MetaScanner {
    buf: Bytes,
    pos: usize,
}

impl MetaScanner {
    /// Creates a scanner over `buf`.
    pub fn new(buf: Bytes) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl Iterator for MetaScanner {
    type Item = Result<(RecordMeta, std::ops::Range<usize>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        // One pass over the borrowed frame: no per-record `Bytes` slicing
        // (each `slice()` is an atomic refcount round-trip, paid once per
        // record on the dispatch hot path before this was offset-based).
        match meta_at(self.buf.as_ref(), self.pos) {
            Ok((meta, consumed)) => {
                let range = self.pos..self.pos + consumed;
                self.pos += consumed;
                Some(Ok((meta, range)))
            }
            Err(e) => {
                self.pos = self.buf.len(); // stop iteration after an error
                Some(Err(e))
            }
        }
    }
}

/// Decodes the full record stored at `range` of `buf` (a range previously
/// produced by [`MetaScanner`]).
pub fn decode_at(buf: &Bytes, range: std::ops::Range<usize>) -> Result<LogRecord> {
    let mut slice = buf.slice(range);
    decode_record(&mut slice)
}

/// Encodes a batch of records into one buffer.
pub fn encode_batch(records: &[LogRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(records.len() * 64);
    for r in records {
        encode_record(&mut buf, r);
    }
    buf.freeze()
}

/// Decodes a whole buffer into records.
pub fn decode_batch(buf: Bytes) -> Result<Vec<LogRecord>> {
    let mut out = Vec::new();
    decode_batch_into(&buf, &mut out)?;
    Ok(out)
}

/// Decodes a whole epoch frame in one pass, appending records to `out`.
///
/// The batched twin of [`decode_batch`]: the caller owns the output
/// vector, so a replay loop reuses one scratch allocation across epochs,
/// and the frame is walked with a single cursor — each record's CRC is
/// verified against the original buffer by offset instead of cloning a
/// `Bytes` snapshot per record the way [`decode_record`] must.
pub fn decode_batch_into(buf: &Bytes, out: &mut Vec<LogRecord>) -> Result<()> {
    let total = buf.len();
    let mut cursor = buf.clone();
    while cursor.has_remaining() {
        let start = total - cursor.remaining();
        let rec = decode_body(&mut cursor)?;
        let body_end = total - cursor.remaining();
        need(&cursor, 4)?;
        if cursor.get_u32_le() != crc32(&buf[start..body_end]) {
            return Err(Error::CodecChecksum);
        }
        out.push(rec);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_dml() -> LogRecord {
        LogRecord::Dml(DmlEntry {
            lsn: Lsn::new(42),
            txn_id: TxnId::new(7),
            ts: Timestamp::from_micros(123456),
            table: TableId::new(3),
            op: DmlOp::Update,
            key: RowKey::new(99),
            row_version: 7,
            cols: vec![
                (ColumnId::new(0), Value::Int(-5)),
                (ColumnId::new(2), Value::Text("hello".into())),
                (ColumnId::new(4), Value::Null),
                (ColumnId::new(5), Value::Float(2.25)),
                (ColumnId::new(6), Value::from(vec![1u8, 2, 3])),
            ],
            before: Some(vec![(ColumnId::new(0), Value::Int(4))]),
        })
    }

    #[test]
    fn round_trip_all_record_kinds() {
        let records = vec![
            LogRecord::Begin {
                lsn: Lsn::new(1),
                txn_id: TxnId::new(7),
                ts: Timestamp::from_micros(5),
            },
            sample_dml(),
            LogRecord::Commit {
                lsn: Lsn::new(43),
                txn_id: TxnId::new(7),
                ts: Timestamp::from_micros(123460),
            },
        ];
        let buf = encode_batch(&records);
        let decoded = decode_batch(buf).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn meta_decode_skips_payload_and_consumes_record() {
        let records = vec![sample_dml(), sample_dml()];
        let mut buf = encode_batch(&records);
        let m1 = decode_meta(&mut buf).unwrap();
        assert_eq!(m1.lsn, Lsn::new(42));
        assert_eq!(m1.table, Some(TableId::new(3)));
        // Second record must decode cleanly from the same position.
        let m2 = decode_meta(&mut buf).unwrap();
        assert_eq!(m2.txn_id, TxnId::new(7));
        assert!(!buf.has_remaining());
    }

    #[test]
    fn batched_decode_matches_per_record_decode_and_reuses_scratch() {
        let records = vec![
            LogRecord::Begin {
                lsn: Lsn::new(1),
                txn_id: TxnId::new(7),
                ts: Timestamp::from_micros(5),
            },
            sample_dml(),
            LogRecord::Commit {
                lsn: Lsn::new(43),
                txn_id: TxnId::new(7),
                ts: Timestamp::from_micros(123460),
            },
        ];
        let buf = encode_batch(&records);
        let mut scratch = vec![sample_dml()]; // stale content must be dropped
        decode_batch_into(&buf, &mut scratch).unwrap();
        // decode_batch_into appends; callers clear. Compare against the
        // per-record path on the tail it appended.
        assert_eq!(&scratch[1..], records.as_slice());
        assert_eq!(decode_batch(buf).unwrap(), records);

        // A corrupted record inside the batch fails the same way.
        let full = encode_batch(&records);
        let pos = full.as_slice().windows(5).position(|w| w == b"hello").unwrap();
        let mut tampered = full.to_vec();
        tampered[pos] ^= 0x20;
        let mut out = Vec::new();
        assert!(matches!(
            decode_batch_into(&Bytes::from(tampered), &mut out),
            Err(Error::CodecChecksum)
        ));
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        let full = encode_batch(&[sample_dml()]);
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_record(&mut b).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn payload_corruption_fails_record_checksum() {
        let full = encode_batch(&[sample_dml()]);
        // Flip one bit inside the text payload "hello": full decode must
        // fail the CRC, while the metadata-only path (which skips data
        // images and the CRC trailer by design) still succeeds.
        let pos =
            full.as_slice().windows(5).position(|w| w == b"hello").expect("text payload present");
        let mut tampered = full.to_vec();
        tampered[pos] ^= 0x20;
        let mut b = Bytes::from(tampered.clone());
        assert!(matches!(decode_record(&mut b), Err(Error::CodecChecksum)));
        let mut b2 = Bytes::from(tampered);
        let meta = decode_meta(&mut b2).unwrap();
        assert_eq!(meta.lsn, Lsn::new(42));
        assert!(!b2.has_remaining());
    }

    #[test]
    fn crc_trailer_corruption_fails_record_checksum() {
        let full = encode_batch(&[sample_dml()]);
        let mut tampered = full.to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let mut b = Bytes::from(tampered);
        assert!(matches!(decode_record(&mut b), Err(Error::CodecChecksum)));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut b = Bytes::from_static(&[0xFFu8; 32][..]);
        assert!(matches!(decode_record(&mut b), Err(Error::CodecBadTag)));
        let mut b2 = Bytes::from_static(&[0xFFu8; 32][..]);
        assert!(decode_meta(&mut b2).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::Float),
            "[a-zA-Z0-9]{0,40}".prop_map(Value::from),
            prop::collection::vec(any::<u8>(), 0..64).prop_map(Value::from),
        ]
    }

    fn arb_row() -> impl Strategy<Value = Row> {
        prop::collection::vec((any::<u16>().prop_map(ColumnId::new), arb_value()), 0..8)
    }

    proptest! {
        #[test]
        fn dml_round_trips(
            lsn in any::<u64>(),
            txn in any::<u64>(),
            ts in any::<u64>(),
            table in any::<u32>(),
            op in prop_oneof![Just(DmlOp::Insert), Just(DmlOp::Update), Just(DmlOp::Delete)],
            key in any::<u64>(),
            row_version in any::<u64>(),
            cols in arb_row(),
            before in prop::option::of(arb_row()),
        ) {
            let rec = LogRecord::Dml(DmlEntry {
                lsn: Lsn::new(lsn),
                txn_id: TxnId::new(txn),
                ts: Timestamp::from_micros(ts),
                table: TableId::new(table),
                op,
                key: RowKey::new(key),
                row_version,
                cols,
                before,
            });
            let mut buf = BytesMut::new();
            encode_record(&mut buf, &rec);
            let mut bytes = buf.freeze();
            let back = decode_record(&mut bytes).unwrap();
            prop_assert_eq!(back, rec);
            prop_assert!(!bytes.has_remaining());
        }

        #[test]
        fn meta_and_full_decode_agree(
            cols in arb_row(),
            before in prop::option::of(arb_row()),
        ) {
            let rec = LogRecord::Dml(DmlEntry {
                lsn: Lsn::new(1), txn_id: TxnId::new(2), ts: Timestamp::from_micros(3),
                table: TableId::new(4), op: DmlOp::Insert, key: RowKey::new(5),
                row_version: 1, cols, before,
            });
            let mut buf = BytesMut::new();
            encode_record(&mut buf, &rec);
            let mut b1 = buf.clone().freeze();
            let mut b2 = buf.freeze();
            let meta = decode_meta(&mut b1).unwrap();
            let full = decode_record(&mut b2).unwrap();
            prop_assert_eq!(meta.lsn, full.lsn());
            prop_assert_eq!(meta.txn_id, full.txn_id());
            prop_assert_eq!(b1.remaining(), b2.remaining());
        }
    }
}
