//! The primary replication timeline.
//!
//! The paper's testbed has a real MySQL primary streaming committed logs to
//! backups over 10 GbE. Here the primary is simulated: a generated log
//! already carries primary commit timestamps, and [`ReplicationTimeline`]
//! computes when each epoch *arrives* at the backup — the last commit of
//! the epoch plus a replication latency. Visibility-delay experiments feed
//! epochs to the replay engine according to this timeline, so a query can
//! never observe data "before the network delivered it".

use crate::entry::TxnLog;
use crate::epoch::{heartbeat_txn, Epoch};
use aets_common::{Timestamp, TxnId};

/// Maps epochs to backup arrival times.
#[derive(Debug, Clone)]
pub struct ReplicationTimeline {
    /// One-way replication latency applied to every epoch, in microseconds.
    pub replication_latency_us: u64,
}

impl Default for ReplicationTimeline {
    fn default() -> Self {
        // 10 GbE LAN shipping of a ~2048-txn batch: sub-millisecond.
        Self { replication_latency_us: 500 }
    }
}

impl ReplicationTimeline {
    /// When `epoch` becomes available for replay on the backup.
    ///
    /// Epochs ship once their last transaction commits; an empty epoch
    /// arrives immediately.
    pub fn arrival(&self, epoch: &Epoch) -> Timestamp {
        epoch.max_commit_ts().saturating_add(self.replication_latency_us)
    }

    /// Arrival times for a whole stream, enforcing monotonicity (a later
    /// epoch can never arrive before an earlier one).
    pub fn arrivals(&self, epochs: &[Epoch]) -> Vec<Timestamp> {
        self.arrivals_with_delays(epochs, &[])
    }

    /// Arrival times when individual epochs suffer extra delivery delays
    /// (microseconds, e.g. from an injected stall; missing entries mean
    /// zero delay).
    ///
    /// The clamp is the load-bearing part: the channel is FIFO, so an
    /// epoch delivered late pushes every later epoch's delivery at least
    /// as late. Without it, a heartbeat-only epoch batched *after* a
    /// stalled epoch would be computed as arriving — and replaying —
    /// first, advancing `global_cmt_ts` to the heartbeat's commit
    /// timestamp before the stalled epoch's earlier transactions were
    /// installed: a query admitted at the heartbeat watermark would miss
    /// them, an effective `global_cmt_ts` regression.
    pub fn arrivals_with_delays(&self, epochs: &[Epoch], delays_us: &[u64]) -> Vec<Timestamp> {
        let mut out = Vec::with_capacity(epochs.len());
        let mut hwm = Timestamp::ZERO;
        for (i, e) in epochs.iter().enumerate() {
            let delay = delays_us.get(i).copied().unwrap_or(0);
            let a = self.arrival(e).saturating_add(delay).max(hwm);
            hwm = a;
            out.push(a);
        }
        out
    }
}

/// Inserts heartbeat transactions into idle gaps of a committed-transaction
/// stream (Section V-B): whenever consecutive commits are more than
/// `idle_threshold_us` apart, dummy transactions with fresh ids are emitted
/// every `idle_threshold_us` so `global_cmt_ts` keeps advancing.
///
/// `next_txn_id` is the first id to use for dummy transactions; dummies get
/// ids beyond every real transaction so they sort last in commit order.
pub fn insert_heartbeats(
    txns: &[TxnLog],
    idle_threshold_us: u64,
    mut next_txn_id: TxnId,
) -> Vec<TxnLog> {
    assert!(idle_threshold_us > 0, "idle threshold must be positive");
    let mut out = Vec::with_capacity(txns.len());
    let mut prev_ts: Option<Timestamp> = None;
    let mut pending: Vec<TxnLog> = Vec::new();
    for t in txns {
        if let Some(p) = prev_ts {
            let mut hb_ts = p.saturating_add(idle_threshold_us);
            while hb_ts < t.commit_ts {
                pending.push(heartbeat_txn(next_txn_id, hb_ts));
                next_txn_id = TxnId::new(next_txn_id.raw() + 1);
                hb_ts = hb_ts.saturating_add(idle_threshold_us);
            }
        }
        out.append(&mut pending);
        out.push(t.clone());
        prev_ts = Some(t.commit_ts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::EpochId;

    fn txn(id: u64, ts_us: u64) -> TxnLog {
        TxnLog {
            txn_id: TxnId::new(id),
            commit_ts: Timestamp::from_micros(ts_us),
            entries: Vec::new(),
        }
    }

    #[test]
    fn arrival_is_last_commit_plus_latency() {
        let e = Epoch { id: EpochId::new(0), txns: vec![txn(1, 100), txn(2, 250)] };
        let tl = ReplicationTimeline { replication_latency_us: 50 };
        assert_eq!(tl.arrival(&e), Timestamp::from_micros(300));
    }

    #[test]
    fn arrivals_are_monotone() {
        // Second epoch's max commit is (artificially) earlier; arrival must
        // still be monotone.
        let e1 = Epoch { id: EpochId::new(0), txns: vec![txn(1, 500)] };
        let e2 = Epoch { id: EpochId::new(1), txns: vec![txn(2, 400)] };
        let tl = ReplicationTimeline { replication_latency_us: 10 };
        let a = tl.arrivals(&[e1, e2]);
        assert!(a[1] >= a[0]);
    }

    #[test]
    fn heartbeats_fill_idle_gaps() {
        let txns = vec![txn(1, 0), txn(2, 200_000)]; // 200ms gap
        let out = insert_heartbeats(&txns, 50_000, TxnId::new(100));
        // Heartbeats at 50ms, 100ms, 150ms.
        assert_eq!(out.len(), 5);
        assert!(out[1].is_heartbeat());
        assert_eq!(out[1].commit_ts, Timestamp::from_micros(50_000));
        assert_eq!(out[3].commit_ts, Timestamp::from_micros(150_000));
        // Real order preserved.
        assert_eq!(out[0].txn_id, TxnId::new(1));
        assert_eq!(out[4].txn_id, TxnId::new(2));
    }

    /// Regression: a stalled epoch followed by heartbeat-only epochs must
    /// not let the heartbeats "overtake" the stall. With naive per-epoch
    /// delay shifting, epoch 1 (heartbeats) would arrive before epoch 0
    /// (real txns, stalled); replaying in that arrival order would bump
    /// `global_cmt_ts` to the heartbeat timestamps before epoch 0's
    /// earlier commits were installed — a non-monotone watermark from the
    /// queries' point of view. `arrivals_with_delays` clamps delivery to
    /// FIFO order so the feed (and therefore `global_cmt_ts`) stays
    /// monotone.
    #[test]
    fn stalled_epoch_cannot_be_overtaken_by_heartbeats() {
        // Real txns at 0 and 10ms, then a 200ms idle gap filled by
        // heartbeats (50ms apart).
        let real = vec![txn(1, 0), txn(2, 10_000), txn(3, 210_000)];
        let with_hb = insert_heartbeats(&real, 50_000, TxnId::new(100));
        assert!(with_hb.len() > real.len(), "gap must be heartbeat-filled");
        // Epoch 0 holds the first two real txns; epoch 1 starts with
        // heartbeats.
        let epochs = crate::epoch::batch_into_epochs(with_hb, 2).unwrap();
        let tl = ReplicationTimeline { replication_latency_us: 500 };

        // Epoch 0 stalls for 300ms.
        let mut delays = vec![0u64; epochs.len()];
        delays[0] = 300_000;

        // The naive (unclamped) schedule is non-monotone: epoch 1 would
        // be computed as arriving before the stalled epoch 0.
        let naive: Vec<Timestamp> = epochs
            .iter()
            .enumerate()
            .map(|(i, e)| tl.arrival(e).saturating_add(delays[i]))
            .collect();
        assert!(naive[1] < naive[0], "precondition: stall creates an overtake hazard");

        // The fixed schedule is monotone...
        let fixed = tl.arrivals_with_delays(&epochs, &delays);
        assert!(fixed.windows(2).all(|w| w[0] <= w[1]), "arrivals must be monotone");
        assert!(fixed[0] >= tl.arrival(&epochs[0]).saturating_add(300_000));

        // ...so feeding epochs in arrival order keeps global_cmt_ts
        // monotone: each epoch's high-water mark is published when it
        // arrives, in index order.
        let mut order: Vec<usize> = (0..epochs.len()).collect();
        order.sort_by_key(|&i| (fixed[i], i));
        let mut global = Timestamp::ZERO;
        for i in order {
            let hwm = epochs[i].max_commit_ts();
            assert!(hwm >= global, "global_cmt_ts would regress at epoch {i}");
            global = hwm;
        }
    }

    #[test]
    fn no_heartbeats_when_busy() {
        let txns = vec![txn(1, 0), txn(2, 10_000), txn(3, 20_000)];
        let out = insert_heartbeats(&txns, 50_000, TxnId::new(100));
        assert_eq!(out.len(), 3);
    }
}
