//! Deterministic fault injection for the replicated epoch feed.
//!
//! The paper's testbed assumes a clean SiloR-style value-log stream; a
//! production backup must survive torn epochs, bit flips,
//! duplicated/reordered/dropped deliveries, and stalls without taking
//! analytical queries offline. This module provides the feed abstraction
//! the replay side ingests from ([`EpochSource`]) plus a seeded, fully
//! deterministic wrapper ([`FaultInjector`]) that perturbs deliveries
//! according to a [`FaultPlan`]. The same seed always yields the same
//! fault schedule, so every recovery test and CI matrix entry is exactly
//! reproducible.
//!
//! The feed is *pull-based*: the backup requests epoch `seq` and may
//! re-request it (`attempt > 0`) after a checksum failure, sequence gap,
//! or stall. Transient faults heal after [`FaultPlan::heal_after`] failed
//! attempts — modelling a replication channel that redelivers correctly on
//! retry — while persistent plans never heal and exercise the
//! quarantine/degraded-mode paths downstream.

use crate::codec::MetaScanner;
use crate::crc::crc32;
use crate::epoch::EncodedEpoch;
use aets_common::Timestamp;
use bytes::Bytes;

/// A pull-based source of encoded epochs (the backup's view of the
/// replication channel).
pub trait EpochSource: Send {
    /// Total number of epochs this source will eventually deliver.
    fn num_epochs(&self) -> usize;

    /// Sequence number of the first epoch this source delivers; fetches
    /// use absolute sequence numbers in
    /// `first_seq()..first_seq() + num_epochs()`. Defaults to 0 (a source
    /// covering the stream from its start).
    fn first_seq(&self) -> u64 {
        0
    }

    /// Attempts delivery of epoch `seq` (0-based). `attempt` counts
    /// re-requests of the same epoch by the resync loop. `None` means the
    /// epoch is not available yet (a stall); the caller should back off
    /// and re-request.
    fn fetch(&mut self, seq: u64, attempt: u32) -> Option<EncodedEpoch>;
}

/// The trivial in-memory source: a slice of already-encoded epochs,
/// delivered faithfully. Re-requests return the same delivery.
#[derive(Debug)]
pub struct SliceSource<'a> {
    epochs: &'a [EncodedEpoch],
}

impl<'a> SliceSource<'a> {
    /// Wraps `epochs`.
    pub fn new(epochs: &'a [EncodedEpoch]) -> Self {
        Self { epochs }
    }
}

impl EpochSource for SliceSource<'_> {
    fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    fn first_seq(&self) -> u64 {
        // A slice may start mid-stream (e.g. the realtime runner replays
        // one arrived epoch at a time); its epochs keep their stream ids.
        self.epochs.first().map_or(0, |e| e.id.raw())
    }

    fn fetch(&mut self, seq: u64, _attempt: u32) -> Option<EncodedEpoch> {
        let idx = seq.checked_sub(self.first_seq())?;
        self.epochs.get(idx as usize).cloned()
    }
}

/// The classes of fault the injector can apply to one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The epoch frame loses its tail (torn write / truncated ship).
    /// Caught by the epoch CRC at ingest.
    TornTail,
    /// One bit of the epoch frame flips in flight. Caught by the epoch
    /// CRC at ingest.
    BitFlip,
    /// The previous epoch is delivered again instead of the requested
    /// one. Caught by the sequence check at ingest.
    Duplicate,
    /// A later epoch is delivered in place of the requested one
    /// (reordered channel). Caught by the sequence check at ingest.
    Reorder,
    /// The requested epoch is dropped; in a pull-based feed the channel
    /// answers with the next epoch it has. Caught by the sequence check.
    Drop,
    /// The epoch is not available yet: delivery stalls and the backup
    /// must back off and re-request.
    Stall,
    /// One record's CRC trailer is corrupted *and the epoch frame CRC is
    /// recomputed* — modelling corruption introduced before framing (e.g.
    /// in the primary's log buffer). This passes the ingest frame check
    /// and only surfaces when a replay worker fully decodes the record,
    /// so it cannot be healed by re-requesting: it exercises the
    /// per-group quarantine path.
    RecordCorruption,
}

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the schedule; the same seed always faults the same epochs
    /// in the same way.
    pub seed: u64,
    /// Probability that a given epoch's delivery is faulted.
    pub rate: f64,
    /// Fault kinds to draw from (uniformly) for a faulted epoch.
    pub kinds: Vec<FaultKind>,
    /// Number of failed delivery attempts before the channel heals and
    /// delivers the epoch cleanly. `u32::MAX` never heals (persistent
    /// fault). Note [`FaultKind::RecordCorruption`] is undetectable at
    /// ingest, so healing never gets a chance to apply to it.
    pub heal_after: u32,
    /// Total stall budget in primary-clock microseconds: once the
    /// cumulative delay charged by [`FaultKind::Stall`] faults reaches
    /// it, further stalls are suppressed and deliver cleanly. `None` is
    /// unbounded (the pre-budget behaviour). A persistent plan heavy on
    /// stalls can otherwise wedge a schedule indefinitely; the budget
    /// bounds the worst case so CI watchdogs fire on real hangs, not on
    /// injected ones.
    pub stall_budget_us: Option<u64>,
}

impl FaultPlan {
    /// A transient plan (heals after one failed attempt).
    pub fn new(seed: u64, rate: f64, kinds: Vec<FaultKind>) -> Self {
        Self { seed, rate, kinds, heal_after: 1, stall_budget_us: None }
    }

    /// Makes the plan persistent: faulted epochs never deliver cleanly.
    pub fn persistent(mut self) -> Self {
        self.heal_after = u32::MAX;
        self
    }

    /// Bounds the total injected stall delay at `us` microseconds.
    pub fn stall_budget(mut self, us: u64) -> Self {
        self.stall_budget_us = Some(us);
        self
    }
}

/// Deterministic 64-bit mixer (splitmix64 finalizer): the fault
/// harnesses' only source of "randomness", so schedules are reproducible
/// by construction. Re-exported from `aets_common` (where the fleet- and
/// network-level fault plans also key their schedules) so existing
/// `aets_wal::splitmix64` callers keep working.
pub use aets_common::splitmix64;

/// A fault-injecting wrapper around an in-memory epoch stream.
#[derive(Debug)]
pub struct FaultInjector {
    epochs: Vec<EncodedEpoch>,
    plan: FaultPlan,
    /// Cumulative stall delay charged so far against
    /// [`FaultPlan::stall_budget_us`].
    stall_spent_us: u64,
}

impl FaultInjector {
    /// Wraps `epochs` under `plan`.
    pub fn new(epochs: Vec<EncodedEpoch>, plan: FaultPlan) -> Self {
        Self { epochs, plan, stall_spent_us: 0 }
    }

    fn draw(&self, seq: u64) -> u64 {
        splitmix64(self.plan.seed ^ splitmix64(seq.wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// The fault (if any) scheduled for epoch `seq`, independent of the
    /// delivery attempt.
    pub fn fault_for(&self, seq: u64) -> Option<FaultKind> {
        if self.plan.kinds.is_empty() {
            return None;
        }
        let h = self.draw(seq);
        // 53 high bits -> uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.plan.rate {
            return None;
        }
        Some(self.plan.kinds[(h % self.plan.kinds.len() as u64) as usize])
    }

    /// Extra delivery delay (primary-clock microseconds) a stalled epoch
    /// suffers; zero for epochs without a scheduled stall.
    pub fn stall_delay_us(&self, seq: u64) -> u64 {
        match self.fault_for(seq) {
            Some(FaultKind::Stall) => 1_000 + self.draw(seq ^ 0x5741) % 5_000,
            _ => 0,
        }
    }

    /// Arrival times of the wrapped stream after stall delays, clamped
    /// monotone: an epoch delivered late pushes every later epoch's
    /// delivery later, because the feed is FIFO. Feeding a runner with
    /// these (rather than naively per-epoch shifted times) is what keeps
    /// `global_cmt_ts` monotone when an epoch stalls — see
    /// `ReplicationTimeline::arrivals_with_delays`. Stalls past the
    /// plan's total budget are suppressed, charging the budget in stream
    /// order — the same accounting [`FaultInjector::fetch`] applies on an
    /// in-order fetch sequence.
    pub fn delayed_arrivals(&self, base: &[Timestamp]) -> Vec<Timestamp> {
        let mut hwm = Timestamp::ZERO;
        let mut spent = 0u64;
        let mut out = Vec::with_capacity(base.len());
        for (seq, b) in base.iter().enumerate() {
            let mut delay = self.stall_delay_us(seq as u64);
            match self.plan.stall_budget_us {
                Some(budget) if spent + delay > budget => delay = 0,
                _ => spent += delay,
            }
            let a = b.saturating_add(delay).max(hwm);
            hwm = a;
            out.push(a);
        }
        out
    }

    /// Cumulative stall delay fetches have charged against the plan's
    /// budget so far.
    pub fn stall_spent_us(&self) -> u64 {
        self.stall_spent_us
    }

    fn apply(&self, kind: FaultKind, seq: u64, clean: EncodedEpoch) -> Option<EncodedEpoch> {
        let h = self.draw(seq ^ 0x00FA_17ED);
        match kind {
            FaultKind::Stall => None,
            FaultKind::Duplicate => {
                let neighbor = seq.checked_sub(1).unwrap_or(seq + 1);
                self.epochs.get(neighbor as usize).cloned()
            }
            FaultKind::Reorder | FaultKind::Drop => self
                .epochs
                .get(seq as usize + 1)
                .or_else(|| self.epochs.get((seq as usize).checked_sub(1)?))
                .cloned(),
            FaultKind::TornTail => {
                let n = clean.bytes.len();
                if n <= 1 {
                    return Some(clean);
                }
                let cut = 1 + (h as usize % (n - 1).min(64));
                Some(EncodedEpoch { bytes: clean.bytes.slice(..n - cut), ..clean })
            }
            FaultKind::BitFlip => {
                if clean.bytes.is_empty() {
                    return Some(clean);
                }
                let mut v = clean.bytes.to_vec();
                let bit = h as usize % (v.len() * 8);
                v[bit / 8] ^= 1 << (bit % 8);
                Some(EncodedEpoch { bytes: Bytes::from(v), ..clean })
            }
            FaultKind::RecordCorruption => Some(corrupt_one_record(&clean, h)),
        }
    }
}

/// Flips a bit in the CRC trailer of one DML record and restamps the
/// epoch frame CRC, so the corruption passes ingest and is only caught
/// when the record is fully decoded. Falls back to the clean epoch when
/// it holds no DML records.
fn corrupt_one_record(clean: &EncodedEpoch, h: u64) -> EncodedEpoch {
    let mut dml_ranges = Vec::new();
    for item in MetaScanner::new(clean.bytes.clone()) {
        match item {
            Ok((meta, range)) if meta.table.is_some() => dml_ranges.push(range),
            Ok(_) => {}
            Err(_) => return clean.clone(),
        }
    }
    if dml_ranges.is_empty() {
        return clean.clone();
    }
    let range = &dml_ranges[(h % dml_ranges.len() as u64) as usize];
    let mut v = clean.bytes.to_vec();
    v[range.end - 1] ^= 0x01;
    let bytes = Bytes::from(v);
    EncodedEpoch { crc32: crc32(&bytes), bytes, ..clean.clone() }
}

impl EpochSource for FaultInjector {
    fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    fn fetch(&mut self, seq: u64, attempt: u32) -> Option<EncodedEpoch> {
        let clean = self.epochs.get(seq as usize)?.clone();
        let Some(kind) = self.fault_for(seq) else {
            return Some(clean);
        };
        if attempt >= self.plan.heal_after {
            return Some(clean);
        }
        if kind == FaultKind::Stall {
            // The budget bounds the *total* injected stall time: a stall
            // whose delay would overrun it delivers cleanly instead. Each
            // stalled epoch is charged once (on its first attempt); the
            // re-requests until heal_after share that one delay.
            let delay = self.stall_delay_us(seq);
            if let Some(budget) = self.plan.stall_budget_us {
                if self.stall_spent_us + delay > budget {
                    return Some(clean);
                }
            }
            if attempt == 0 {
                self.stall_spent_us += delay;
            }
        }
        self.apply(kind, seq, clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::TxnLog;
    use crate::epoch::{batch_into_epochs, encode_epoch};
    use aets_common::TxnId;

    fn encoded(n_txns: u64, per_epoch: usize) -> Vec<EncodedEpoch> {
        let txns: Vec<TxnLog> = (1..=n_txns)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: Vec::new(),
            })
            .collect();
        batch_into_epochs(txns, per_epoch).unwrap().iter().map(encode_epoch).collect()
    }

    fn all_kinds() -> Vec<FaultKind> {
        vec![
            FaultKind::TornTail,
            FaultKind::BitFlip,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Drop,
            FaultKind::Stall,
        ]
    }

    #[test]
    fn schedule_is_deterministic() {
        let epochs = encoded(64, 4);
        let a = FaultInjector::new(epochs.clone(), FaultPlan::new(7, 0.5, all_kinds()));
        let b = FaultInjector::new(epochs, FaultPlan::new(7, 0.5, all_kinds()));
        for seq in 0..16 {
            assert_eq!(a.fault_for(seq), b.fault_for(seq));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let epochs = encoded(64, 4);
        let a = FaultInjector::new(epochs.clone(), FaultPlan::new(1, 0.5, all_kinds()));
        let b = FaultInjector::new(epochs, FaultPlan::new(2, 0.5, all_kinds()));
        let sa: Vec<_> = (0..16).map(|s| a.fault_for(s)).collect();
        let sb: Vec<_> = (0..16).map(|s| b.fault_for(s)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn faulted_deliveries_fail_verification_and_heal_on_retry() {
        let epochs = encoded(64, 4);
        let mut inj = FaultInjector::new(epochs.clone(), FaultPlan::new(3, 1.0, all_kinds()));
        let mut saw_fault = false;
        for seq in 0..epochs.len() as u64 {
            // Attempt 0 is faulted in some observable way...
            match inj.fetch(seq, 0) {
                None => saw_fault = true, // stall
                Some(e) => {
                    if e.verify().is_err() || e.id.raw() != seq {
                        saw_fault = true;
                    }
                }
            }
            // ...and attempt 1 (past heal_after) is always clean.
            let healed = inj.fetch(seq, 1).expect("healed delivery");
            healed.verify().unwrap();
            assert_eq!(healed.id.raw(), seq);
        }
        assert!(saw_fault, "rate 1.0 must fault at least one epoch");
    }

    #[test]
    fn persistent_plans_never_heal() {
        let epochs = encoded(16, 4);
        let plan = FaultPlan::new(9, 1.0, vec![FaultKind::TornTail]).persistent();
        let mut inj = FaultInjector::new(epochs, plan);
        for attempt in 0..8 {
            let e = inj.fetch(0, attempt).unwrap();
            assert!(e.verify().is_err(), "attempt {attempt} unexpectedly clean");
        }
    }

    #[test]
    fn record_corruption_passes_frame_check_but_fails_record_decode() {
        let txns: Vec<TxnLog> = {
            use crate::entry::DmlEntry;
            use aets_common::{ColumnId, DmlOp, Lsn, RowKey, TableId, Value};
            (1..=8u64)
                .map(|i| TxnLog {
                    txn_id: TxnId::new(i),
                    commit_ts: Timestamp::from_micros(i * 10),
                    entries: vec![DmlEntry {
                        lsn: Lsn::new(i),
                        txn_id: TxnId::new(i),
                        ts: Timestamp::from_micros(i * 10),
                        table: TableId::new(0),
                        op: DmlOp::Insert,
                        key: RowKey::new(i),
                        row_version: 1,
                        cols: vec![(ColumnId::new(0), Value::Int(i as i64))],
                        before: None,
                    }],
                })
                .collect()
        };
        let epochs: Vec<_> = batch_into_epochs(txns, 4).unwrap().iter().map(encode_epoch).collect();
        let plan = FaultPlan::new(5, 1.0, vec![FaultKind::RecordCorruption]).persistent();
        let mut inj = FaultInjector::new(epochs, plan);
        let e = inj.fetch(0, 0).unwrap();
        // Frame CRC restamped: ingest cannot tell.
        e.verify().unwrap();
        // Full decode of the batch hits the corrupted record CRC.
        let err = crate::codec::decode_batch(e.bytes.clone()).unwrap_err();
        assert!(matches!(err, aets_common::Error::CodecChecksum));
    }

    #[test]
    fn stall_budget_bounds_total_injected_delay() {
        let epochs = encoded(128, 4);
        // Persistent all-stall plan: unbounded, every fetch of a faulted
        // epoch stalls forever; with a budget, stalls stop once spent.
        let plan = FaultPlan::new(11, 1.0, vec![FaultKind::Stall]).persistent();
        let budget = 8_000u64;
        let mut bounded = FaultInjector::new(epochs.clone(), plan.clone().stall_budget(budget));
        let mut suppressed_after_exhaustion = false;
        for seq in 0..epochs.len() as u64 {
            match bounded.fetch(seq, 0) {
                None => {} // stall within budget
                Some(e) => {
                    e.verify().unwrap();
                    assert_eq!(e.id.raw(), seq, "suppressed stall must deliver cleanly");
                    suppressed_after_exhaustion = true;
                }
            }
            assert!(bounded.stall_spent_us() <= budget, "budget overrun at epoch {seq}");
        }
        assert!(suppressed_after_exhaustion, "an 8ms budget cannot absorb 32 stalls of >=1ms each");

        // The arrival timeline respects the same bound: total added delay
        // across the stream never exceeds the budget.
        let base: Vec<Timestamp> =
            (0..epochs.len() as u64).map(|i| Timestamp::from_micros(i * 10_000)).collect();
        let unbounded = FaultInjector::new(epochs.clone(), plan.clone());
        let free = unbounded.delayed_arrivals(&base);
        let capped = FaultInjector::new(epochs, plan.stall_budget(budget)).delayed_arrivals(&base);
        let total_free: u64 =
            free.iter().zip(&base).map(|(d, b)| d.as_micros() - b.as_micros()).sum();
        let total_capped: u64 =
            capped.iter().zip(&base).map(|(d, b)| d.as_micros() - b.as_micros()).sum();
        assert!(total_capped <= budget, "capped timeline added {total_capped}us");
        assert!(total_free > budget, "rate-1.0 stalls must exceed the budget unbounded");
    }

    #[test]
    fn stalls_shift_arrivals_monotonically() {
        let epochs = encoded(64, 4);
        let inj = FaultInjector::new(epochs, FaultPlan::new(11, 0.5, vec![FaultKind::Stall]));
        let base: Vec<Timestamp> = (0..16).map(|i| Timestamp::from_micros(i * 100)).collect();
        let delayed = inj.delayed_arrivals(&base);
        assert!(delayed.windows(2).all(|w| w[0] <= w[1]), "delayed arrivals not monotone");
        assert!(
            delayed.iter().zip(&base).any(|(d, b)| d > b),
            "rate 0.5 over 16 epochs should stall at least one"
        );
    }
}
