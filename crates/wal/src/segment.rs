//! Durable, epoch-aligned WAL segment store.
//!
//! The replicated value log is persisted as a directory of *segment
//! files*, each holding a fixed number of consecutive encoded epochs.
//! Epoch alignment keeps the recovery contract trivial: a segment's name
//! carries its first epoch sequence number, frames inside it are
//! consecutive, and truncation past the checkpoint watermark only ever
//! removes whole segments — the retained suffix is always a contiguous,
//! replayable epoch range.
//!
//! ## On-disk format
//!
//! Segment file `seg-<first_seq>.wal`:
//!
//! ```text
//! +------------+-----------+----------------+------------+
//! | magic u32  | version   | first_seq u64  | header_crc |   20-byte header
//! +------------+-----------+----------------+------------+
//! | frame 0 | frame 1 | ...                               |
//! +----------------------------------------------------- +
//! ```
//!
//! Frame (one epoch):
//!
//! ```text
//! +-----------+---------+---------------+------------------+
//! | magic u32 | seq u64 | txn_count u32 | max_commit_ts u64|
//! +-----------+---------+---------------+------------------+
//! | payload_len u32 | payload_crc u32 | header_crc u32     |   36-byte header
//! +----------------------------------------------------+---+
//! | payload: the epoch's encoded records (payload_len) |
//! +----------------------------------------------------+
//! ```
//!
//! `payload_crc` is exactly the epoch frame CRC stamped by the primary
//! ([`EncodedEpoch::crc32`]), so a frame read back from disk re-enters the
//! ingest path with end-to-end integrity intact. `header_crc` covers the
//! preceding header bytes, so a torn header is as detectable as a torn
//! payload.
//!
//! ## Fsync cadence
//!
//! [`FsyncPolicy`] decides when the append path takes an fsync point.
//! The default ([`FsyncPolicy::EveryEpoch`]) syncs after every appended
//! frame, so an acknowledged append is durable. Group commit
//! ([`FsyncPolicy::Coalesced`]) batches appends under one fsync, trading
//! a bounded window of acknowledged-but-volatile frames (tracked by
//! [`SegmentStore::synced_seq`]) for far fewer fsync calls on the ingest
//! hot path.
//!
//! ## Torn-tail reopen
//!
//! [`SegmentStore::open`] scans every segment front-to-back and truncates
//! the file at the last fully-valid frame: a crash mid-append leaves a
//! torn tail, which simply disappears on reopen (those epochs were never
//! acknowledged as durable past an fsync point anyway, and re-arrive from
//! the primary's feed on resync). Files whose *header* is torn, and
//! segments left non-contiguous by a gap (orphans from an interrupted
//! retention pass), are deleted outright. Both the reopen scan and
//! [`SegmentStore::read_suffix`] stream files in fixed 128 KiB
//! (`READ_CHUNK`) reads through a reused buffer rather than slurping
//! whole segments, so
//! recovery's transient memory stays flat as segments grow.
//!
//! All filesystem traffic is metered through an optional
//! [`CrashClock`], which is how the crash-matrix
//! tests kill the store mid-segment-write and mid-recovery
//! deterministically.

use crate::crash::{charge, durable_write, CrashClock};
use crate::crc::crc32;
use crate::epoch::EncodedEpoch;
use crate::faults::EpochSource;
use aets_common::{EpochId, Error, Result, Timestamp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEG_MAGIC: u32 = 0x4153_4547; // "ASEG"
const SEG_VERSION: u32 = 1;
const HEADER_LEN: usize = 20;

const FRAME_MAGIC: u32 = 0x4146_524D; // "AFRM"
const FRAME_HEADER_LEN: usize = 36;

/// Chunk size of streaming segment reads on the recovery path: large
/// enough to amortize read syscalls, small enough that recovery's
/// resident footprint stays flat no matter how big a segment grows.
const READ_CHUNK: usize = 128 * 1024;

/// When the store takes an fsync point on the active segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FsyncPolicy {
    /// One fsync point after every appended epoch: an `Ok` from
    /// [`SegmentStore::append`] implies the frame is durable. The
    /// default, and what the crash matrix assumes unless a schedule
    /// opts into coalescing.
    EveryEpoch,
    /// No implicit fsync; durability happens only at explicit
    /// [`SegmentStore::sync`] calls.
    Manual,
    /// Group commit: appended frames accumulate and one fsync covers
    /// the whole batch, taken when `max_frames` frames are pending or
    /// the oldest pending frame has waited `max_wait`, whichever comes
    /// first. An `Ok` append no longer implies durability — only
    /// [`SegmentStore::synced_seq`] bounds what a crash can lose — and
    /// reopen truncates the tail to the last fully-written frame, so a
    /// torn batch never replays a half-written frame.
    Coalesced {
        /// Pending-frame count that forces an fsync.
        max_frames: u32,
        /// Age of the oldest pending frame that forces an fsync.
        max_wait: Duration,
    },
}

/// Configuration of the segment store.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Epochs per segment file; retention works at this granularity.
    pub epochs_per_segment: u64,
    /// Fsync cadence of the append path.
    pub fsync: FsyncPolicy,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self { epochs_per_segment: 16, fsync: FsyncPolicy::EveryEpoch }
    }
}

#[derive(Debug)]
struct SegmentMeta {
    first_seq: u64,
    /// Valid frames currently in the file.
    count: u64,
    path: PathBuf,
}

impl SegmentMeta {
    /// One-past-the-last epoch sequence in this segment.
    fn end_seq(&self) -> u64 {
        self.first_seq + self.count
    }
}

/// A durable store of encoded epochs as epoch-aligned segment files.
pub struct SegmentStore {
    dir: PathBuf,
    cfg: SegmentConfig,
    clock: Option<Arc<CrashClock>>,
    /// Retained segments in ascending, contiguous sequence order.
    segments: Vec<SegmentMeta>,
    /// Append handle for the last segment.
    current: Option<File>,
    /// Sequence the next append must carry; `None` until the first epoch
    /// (or after opening an empty directory), when any start is accepted.
    expect_seq: Option<u64>,
    /// Frames appended since the last fsync point.
    pending_frames: u32,
    /// When the oldest pending frame was appended (coalesced policy).
    oldest_pending: Option<Instant>,
    /// Highest sequence known durable (covered by an fsync point).
    synced_seq: Option<u64>,
    /// Called at each fsync point with the number of frames the sync
    /// made durable — how group-commit observability (the
    /// `wal_fsync_coalesced_frames` histogram) is wired without the WAL
    /// crate depending on the telemetry crate.
    sync_observer: Option<Box<dyn Fn(u64) + Send>>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .field("segments", &self.segments)
            .field("expect_seq", &self.expect_seq)
            .field("pending_frames", &self.pending_frames)
            .field("synced_seq", &self.synced_seq)
            .finish_non_exhaustive()
    }
}

impl SegmentStore {
    /// Opens (creating if needed) the store rooted at `dir`, recovering
    /// from torn tails and interrupted retention as described in the
    /// module docs. `clock` meters every filesystem operation for crash
    /// injection; pass `None` in production.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: SegmentConfig,
        clock: Option<Arc<CrashClock>>,
    ) -> Result<Self> {
        if cfg.epochs_per_segment == 0 {
            return Err(Error::Config("epochs_per_segment must be positive".into()));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        charge(&clock, "scan segment dir")?;

        let mut named: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if let Some(seq) = parse_segment_name(&path) {
                named.push((seq, path));
            }
        }
        named.sort_by_key(|(seq, _)| *seq);

        let mut segments = Vec::with_capacity(named.len());
        let mut broken_chain = false;
        for (named_seq, path) in named {
            // Past a gap (or an invalid segment) every later file is an
            // orphan from an interrupted retention or roll: delete it.
            if broken_chain {
                charge(&clock, "remove orphan segment")?;
                fs::remove_file(&path)?;
                continue;
            }
            match recover_segment(&path, named_seq, &clock)? {
                Some(count) => {
                    let contiguous =
                        segments.last().is_none_or(|m: &SegmentMeta| m.end_seq() == named_seq);
                    // A short or empty segment mid-chain also breaks
                    // contiguity for everything after it.
                    if !contiguous {
                        broken_chain = true;
                        charge(&clock, "remove orphan segment")?;
                        fs::remove_file(&path)?;
                        continue;
                    }
                    if count < cfg.epochs_per_segment {
                        broken_chain = true; // only valid as the last segment
                    }
                    segments.push(SegmentMeta { first_seq: named_seq, count, path });
                }
                None => {
                    broken_chain = true;
                    charge(&clock, "remove invalid segment")?;
                    fs::remove_file(&path)?;
                }
            }
        }

        let expect_seq = segments.last().map(SegmentMeta::end_seq);
        let current = match segments.last() {
            Some(m) => {
                charge(&clock, "reopen segment for append")?;
                Some(OpenOptions::new().append(true).open(&m.path)?)
            }
            None => None,
        };
        // Everything that survived recovery sits durably on disk.
        let synced_seq = segments.iter().rev().find(|m| m.count > 0).map(|m| m.end_seq() - 1);
        Ok(Self {
            dir,
            cfg,
            clock,
            segments,
            current,
            expect_seq,
            pending_frames: 0,
            oldest_pending: None,
            synced_seq,
            sync_observer: None,
        })
    }

    /// Installs the fsync observer: called at every fsync point with the
    /// number of frames the sync made durable. The durable backup hooks
    /// its telemetry histogram here.
    pub fn set_sync_observer(&mut self, observer: Box<dyn Fn(u64) + Send>) {
        self.sync_observer = Some(observer);
    }

    /// Highest epoch sequence known durable (covered by an fsync point),
    /// or `None` when nothing is. Under [`FsyncPolicy::Coalesced`] this
    /// is the crash-loss bound: epochs past it may vanish on a crash.
    pub fn synced_seq(&self) -> Option<u64> {
        self.synced_seq
    }

    /// Frames appended since the last fsync point.
    pub fn pending_frames(&self) -> u32 {
        self.pending_frames
    }

    /// The sequence number the next [`SegmentStore::append`] must carry,
    /// or `None` when the store is empty (any start accepted).
    pub fn next_seq(&self) -> Option<u64> {
        self.expect_seq
    }

    /// Lowest retained epoch sequence, or `None` when empty.
    pub fn first_retained_seq(&self) -> Option<u64> {
        self.segments.first().map(|m| m.first_seq)
    }

    /// Total retained epochs across segments.
    pub fn epoch_count(&self) -> u64 {
        self.segments.iter().map(|m| m.count).sum()
    }

    /// Number of retained segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one verified epoch. The epoch must carry the next
    /// sequence number; out-of-order appends return [`Error::EpochGap`]
    /// and corrupt frames are rejected before touching disk.
    pub fn append(&mut self, e: &EncodedEpoch) -> Result<()> {
        e.verify()?;
        let seq = e.id.raw();
        if let Some(expected) = self.expect_seq {
            if seq != expected {
                return Err(Error::EpochGap { expected, got: seq });
            }
        }
        let roll = match self.segments.last() {
            None => true,
            Some(m) => m.count >= self.cfg.epochs_per_segment,
        };
        if roll {
            self.roll(seq)?;
        }
        let frame = encode_frame(e);
        let file = self
            .current
            .as_mut()
            .ok_or_else(|| Error::Io("segment store has no open segment".into()))?;
        durable_write(file, &frame, &self.clock, "wal frame")?;
        if let Some(m) = self.segments.last_mut() {
            m.count += 1;
        }
        self.expect_seq = Some(seq + 1);
        self.pending_frames += 1;
        match self.cfg.fsync {
            FsyncPolicy::EveryEpoch => self.sync()?,
            FsyncPolicy::Manual => {}
            FsyncPolicy::Coalesced { max_frames, max_wait } => {
                let oldest = *self.oldest_pending.get_or_insert_with(Instant::now);
                if self.pending_frames >= max_frames.max(1) || oldest.elapsed() >= max_wait {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Starts a new segment whose first epoch is `first_seq`.
    fn roll(&mut self, first_seq: u64) -> Result<()> {
        // Make the previous segment's tail durable before moving on.
        self.sync()?;
        let path = self.dir.join(segment_file_name(first_seq));
        charge(&self.clock, "create segment")?;
        let mut file = OpenOptions::new().create(true).truncate(true).write(true).open(&path)?;
        let header = encode_header(first_seq);
        durable_write(&mut file, &header, &self.clock, "segment header")?;
        self.segments.push(SegmentMeta { first_seq, count: 0, path });
        self.current = Some(file);
        Ok(())
    }

    /// An explicit fsync point on the active segment. Under a coalescing
    /// policy this flushes the whole pending batch and reports its size
    /// to the sync observer.
    pub fn sync(&mut self) -> Result<()> {
        if self.current.is_none() {
            return Ok(());
        }
        charge(&self.clock, "fsync segment")?;
        if let Some(f) = self.current.as_mut() {
            f.flush()?;
            f.sync_data()?;
        }
        if self.pending_frames > 0 {
            if let Some(obs) = &self.sync_observer {
                obs(self.pending_frames as u64);
            }
        }
        self.pending_frames = 0;
        self.oldest_pending = None;
        if self.epoch_count() > 0 {
            self.synced_seq = self.expect_seq.map(|s| s - 1);
        }
        Ok(())
    }

    /// Drops whole segments entirely below `seq` (exclusive watermark —
    /// typically the first epoch *not* covered by the newest checkpoint).
    /// The last segment is always retained so the store never forgets its
    /// position in the stream. Returns the number of segments removed.
    pub fn truncate_before(&mut self, seq: u64) -> Result<usize> {
        let mut removed = 0;
        while self.segments.len() > 1 && self.segments[0].end_seq() <= seq {
            charge(&self.clock, "retire segment")?;
            fs::remove_file(&self.segments[0].path)?;
            self.segments.remove(0);
            removed += 1;
        }
        Ok(removed)
    }

    /// Reads back every retained epoch with sequence ≥ `from_seq`, fully
    /// re-validating frame headers and payload CRCs. Segment files are
    /// streamed in fixed-size chunks through one scratch buffer shared
    /// across segments, so the read path's transient footprint stays flat
    /// regardless of segment size.
    pub fn read_suffix(&self, from_seq: u64) -> Result<Vec<EncodedEpoch>> {
        let mut out = Vec::new();
        let mut scratch = Vec::with_capacity(READ_CHUNK);
        for m in &self.segments {
            if m.end_seq() <= from_seq {
                continue;
            }
            charge(&self.clock, "read segment")?;
            let mut epochs = Vec::new();
            let (count, valid_off, file_len) =
                decode_frames_file(&m.path, m.first_seq, &mut scratch, Some(&mut epochs))?
                    .unwrap_or((0, 0, 0));
            if count < m.count || valid_off < file_len {
                return Err(Error::Io(format!(
                    "segment {} lost frames on disk ({} of {} readable)",
                    m.path.display(),
                    count,
                    m.count
                )));
            }
            out.extend(epochs.into_iter().filter(|e| e.id.raw() >= from_seq));
        }
        Ok(out)
    }

    /// An [`EpochSource`] over the retained suffix starting at `from_seq`,
    /// for feeding recovery replay through the normal ingest path.
    pub fn suffix_source(&self, from_seq: u64) -> Result<SegmentSuffixSource> {
        let epochs = self.read_suffix(from_seq)?;
        let first_seq = epochs.first().map_or(from_seq, |e| e.id.raw());
        Ok(SegmentSuffixSource { epochs, first_seq })
    }
}

/// The durable suffix of the log as a pull-based epoch feed: recovery
/// replays it through the same two-stage path as live ingest.
#[derive(Debug)]
pub struct SegmentSuffixSource {
    epochs: Vec<EncodedEpoch>,
    first_seq: u64,
}

impl SegmentSuffixSource {
    /// Epochs in the suffix.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the suffix is empty.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }
}

impl EpochSource for SegmentSuffixSource {
    fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    fn first_seq(&self) -> u64 {
        self.first_seq
    }

    fn fetch(&mut self, seq: u64, _attempt: u32) -> Option<EncodedEpoch> {
        let idx = seq.checked_sub(self.first_seq)?;
        self.epochs.get(idx as usize).cloned()
    }
}

fn segment_file_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.wal")
}

fn parse_segment_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?.strip_suffix(".wal")?.parse().ok()
}

fn encode_header(first_seq: u64) -> BytesMut {
    let mut buf = BytesMut::with_capacity(HEADER_LEN);
    buf.put_u32_le(SEG_MAGIC);
    buf.put_u32_le(SEG_VERSION);
    buf.put_u64_le(first_seq);
    let crc = crc32(&buf[..]);
    buf.put_u32_le(crc);
    buf
}

fn encode_frame(e: &EncodedEpoch) -> BytesMut {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + e.bytes.len());
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u64_le(e.id.raw());
    buf.put_u32_le(e.txn_count as u32);
    buf.put_u64_le(e.max_commit_ts.as_micros());
    buf.put_u32_le(e.bytes.len() as u32);
    buf.put_u32_le(e.crc32);
    let hcrc = crc32(&buf[..]);
    buf.put_u32_le(hcrc);
    buf.put_slice(&e.bytes);
    buf
}

/// Validates the 20-byte segment header against the sequence encoded in
/// the file name.
fn valid_header(bytes: &[u8], named_seq: u64) -> bool {
    if bytes.len() < HEADER_LEN {
        return false;
    }
    let mut b = &bytes[..HEADER_LEN];
    let magic = b.get_u32_le();
    let version = b.get_u32_le();
    let first_seq = b.get_u64_le();
    let stored_crc = b.get_u32_le();
    magic == SEG_MAGIC
        && version == SEG_VERSION
        && first_seq == named_seq
        && stored_crc == crc32(&bytes[..HEADER_LEN - 4])
}

/// Ensures at least `need` unparsed bytes sit in `scratch` past
/// `*consumed`, compacting the parsed prefix and pulling
/// [`READ_CHUNK`]-sized reads from `file` as required. Returns `false`
/// when EOF arrives first; whatever tail bytes exist stay buffered.
fn fill(
    file: &mut File,
    scratch: &mut Vec<u8>,
    consumed: &mut usize,
    eof: &mut bool,
    need: usize,
) -> Result<bool> {
    if scratch.len() - *consumed >= need {
        return Ok(true);
    }
    scratch.drain(..*consumed);
    *consumed = 0;
    while scratch.len() < need && !*eof {
        let old = scratch.len();
        scratch.resize(old + READ_CHUNK, 0);
        let n = file.read(&mut scratch[old..])?;
        scratch.truncate(old + n);
        if n == 0 {
            *eof = true;
        }
    }
    Ok(scratch.len() >= need)
}

/// Streams one segment file through `scratch` in [`READ_CHUNK`]-sized
/// reads, validating the header and decoding the valid frame prefix.
/// Decoded epochs are pushed to `out` when provided; passing `None`
/// validates and counts frames without retaining payloads (the open-time
/// recovery scan needs only the count). Returns `None` when the segment
/// header itself is invalid, otherwise `(frame_count, valid_off,
/// file_len)` where `valid_off` is the byte offset up to which the file
/// is a clean frame prefix.
fn decode_frames_file(
    path: &Path,
    named_seq: u64,
    scratch: &mut Vec<u8>,
    mut out: Option<&mut Vec<EncodedEpoch>>,
) -> Result<Option<(u64, u64, u64)>> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    scratch.clear();
    let mut consumed = 0usize;
    let mut eof = false;

    if !fill(&mut file, scratch, &mut consumed, &mut eof, HEADER_LEN)?
        || !valid_header(&scratch[..HEADER_LEN], named_seq)
    {
        return Ok(None);
    }
    consumed = HEADER_LEN;

    let mut count = 0u64;
    let mut valid_off = HEADER_LEN as u64;
    loop {
        if !fill(&mut file, scratch, &mut consumed, &mut eof, FRAME_HEADER_LEN)? {
            break;
        }
        // Parse the header into locals before the payload fill: filling
        // compacts the buffer, which moves the header bytes.
        let mut h = &scratch[consumed..consumed + FRAME_HEADER_LEN];
        let magic = h.get_u32_le();
        let seq = h.get_u64_le();
        let txn_count = h.get_u32_le();
        let max_commit_ts = h.get_u64_le();
        let payload_len = h.get_u32_le() as usize;
        let payload_crc = h.get_u32_le();
        let header_crc = h.get_u32_le();
        if magic != FRAME_MAGIC
            || seq != named_seq + count
            || header_crc != crc32(&scratch[consumed..consumed + FRAME_HEADER_LEN - 4])
        {
            break;
        }
        if !fill(&mut file, scratch, &mut consumed, &mut eof, FRAME_HEADER_LEN + payload_len)? {
            break;
        }
        let payload_start = consumed + FRAME_HEADER_LEN;
        let payload = &scratch[payload_start..payload_start + payload_len];
        if crc32(payload) != payload_crc {
            break;
        }
        if let Some(out) = out.as_deref_mut() {
            out.push(EncodedEpoch {
                id: EpochId::new(seq),
                bytes: Bytes::copy_from_slice(payload),
                txn_count: txn_count as usize,
                max_commit_ts: Timestamp::from_micros(max_commit_ts),
                crc32: payload_crc,
            });
        }
        count += 1;
        consumed = payload_start + payload_len;
        valid_off += (FRAME_HEADER_LEN + payload_len) as u64;
    }
    Ok(Some((count, valid_off, file_len)))
}

/// Validates one segment file on open. Returns `Some(frame_count)` after
/// truncating any torn tail, or `None` when the header itself is invalid
/// (the file should be deleted). Frames are streamed, validated, and
/// counted without keeping their payloads resident.
fn recover_segment(
    path: &Path,
    named_seq: u64,
    clock: &Option<Arc<CrashClock>>,
) -> Result<Option<u64>> {
    charge(clock, "recover segment")?;
    let mut scratch = Vec::new();
    let Some((count, valid_off, file_len)) =
        decode_frames_file(path, named_seq, &mut scratch, None)?
    else {
        return Ok(None);
    };
    if valid_off < file_len {
        charge(clock, "truncate torn tail")?;
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(valid_off)?;
        f.sync_data()?;
    }
    Ok(Some(count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::TxnLog;
    use crate::epoch::{batch_into_epochs, encode_epoch};
    use aets_common::TxnId;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Fresh scratch directory per test (no tempfile crate offline).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "aets-seg-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn encoded(n_txns: u64, per_epoch: usize) -> Vec<EncodedEpoch> {
        let txns: Vec<TxnLog> = (1..=n_txns)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: Vec::new(),
            })
            .collect();
        batch_into_epochs(txns, per_epoch).unwrap().iter().map(encode_epoch).collect()
    }

    fn store(dir: &Path, eps: u64) -> SegmentStore {
        SegmentStore::open(
            dir,
            SegmentConfig { epochs_per_segment: eps, ..Default::default() },
            None,
        )
        .unwrap()
    }

    #[test]
    fn append_reopen_round_trips() {
        let dir = scratch("round");
        let epochs = encoded(40, 4); // 10 epochs
        {
            let mut s = store(&dir, 4);
            for e in &epochs {
                s.append(e).unwrap();
            }
            assert_eq!(s.segment_count(), 3); // 4 + 4 + 2
            assert_eq!(s.epoch_count(), 10);
        }
        let s = store(&dir, 4);
        assert_eq!(s.next_seq(), Some(10));
        assert_eq!(s.first_retained_seq(), Some(0));
        let back = s.read_suffix(0).unwrap();
        assert_eq!(back.len(), epochs.len());
        for (a, b) in back.iter().zip(&epochs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.txn_count, b.txn_count);
            assert_eq!(a.max_commit_ts, b.max_commit_ts);
            a.verify().unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_gaps_and_corrupt_frames() {
        let dir = scratch("gap");
        let epochs = encoded(16, 4);
        let mut s = store(&dir, 4);
        s.append(&epochs[0]).unwrap();
        let err = s.append(&epochs[2]).unwrap_err();
        assert!(matches!(err, Error::EpochGap { expected: 1, got: 2 }));
        let torn = EncodedEpoch {
            bytes: epochs[1].bytes.slice(..epochs[1].bytes.len() - 1),
            ..epochs[1].clone()
        };
        assert!(matches!(s.append(&torn), Err(Error::CodecChecksum)));
        assert_eq!(s.epoch_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = scratch("torn");
        let epochs = encoded(24, 4); // 6 epochs
        {
            let mut s = store(&dir, 8);
            for e in &epochs {
                s.append(e).unwrap();
            }
        }
        // Tear the tail of the (only) segment mid-frame.
        let path = dir.join(segment_file_name(0));
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);

        let s = store(&dir, 8);
        assert_eq!(s.epoch_count(), 5, "torn last frame dropped");
        assert_eq!(s.next_seq(), Some(5));
        let back = s.read_suffix(0).unwrap();
        assert_eq!(back.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_continues_after_torn_tail_recovery() {
        let dir = scratch("resume");
        let epochs = encoded(24, 4);
        {
            let mut s = store(&dir, 8);
            for e in &epochs[..4] {
                s.append(e).unwrap();
            }
        }
        let path = dir.join(segment_file_name(0));
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let mut s = store(&dir, 8);
        assert_eq!(s.next_seq(), Some(3));
        for e in &epochs[3..] {
            s.append(e).unwrap();
        }
        assert_eq!(s.read_suffix(0).unwrap().len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphans_past_a_gap_are_deleted() {
        let dir = scratch("orphan");
        let epochs = encoded(48, 4); // 12 epochs -> 3 segments of 4
        {
            let mut s = store(&dir, 4);
            for e in &epochs {
                s.append(e).unwrap();
            }
            assert_eq!(s.segment_count(), 3);
        }
        // Simulate an interrupted retention pass that removed the middle
        // segment: seg 8.. is now unreachable from seg 0...
        fs::remove_file(dir.join(segment_file_name(4))).unwrap();
        let s = store(&dir, 4);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.next_seq(), Some(4));
        assert!(!dir.join(segment_file_name(8)).exists(), "orphan not deleted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_header_file_is_deleted() {
        let dir = scratch("badhdr");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(segment_file_name(0)), b"not a segment").unwrap();
        let s = store(&dir, 4);
        assert_eq!(s.segment_count(), 0);
        assert_eq!(s.next_seq(), None);
        assert!(!dir.join(segment_file_name(0)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_before_removes_whole_segments_keeps_last() {
        let dir = scratch("retire");
        let epochs = encoded(48, 4); // 12 epochs
        let mut s = store(&dir, 4);
        for e in &epochs {
            s.append(e).unwrap();
        }
        // Watermark 6 sits inside segment 4..8: only segment 0..4 retires.
        assert_eq!(s.truncate_before(6).unwrap(), 1);
        assert_eq!(s.first_retained_seq(), Some(4));
        // Watermark past the end: every segment but the last retires.
        assert_eq!(s.truncate_before(100).unwrap(), 1);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.first_retained_seq(), Some(8));
        assert_eq!(s.next_seq(), Some(12));
        // Reopen agrees.
        drop(s);
        let s = store(&dir, 4);
        assert_eq!(s.first_retained_seq(), Some(8));
        assert_eq!(s.next_seq(), Some(12));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suffix_source_feeds_from_requested_seq() {
        let dir = scratch("suffix");
        let epochs = encoded(40, 4); // 10 epochs
        let mut s = store(&dir, 4);
        for e in &epochs {
            s.append(e).unwrap();
        }
        let mut src = s.suffix_source(7).unwrap();
        assert_eq!(src.num_epochs(), 3);
        assert_eq!(src.first_seq(), 7);
        for seq in 7..10 {
            let e = src.fetch(seq, 0).unwrap();
            assert_eq!(e.id.raw(), seq);
            e.verify().unwrap();
        }
        assert!(src.fetch(10, 0).is_none());
        assert!(src.fetch(6, 0).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_accepts_mid_stream_start() {
        let dir = scratch("midstart");
        let epochs = encoded(40, 4);
        let mut s = store(&dir, 4);
        // A store bootstrapped after a checkpoint starts mid-stream.
        s.append(&epochs[5]).unwrap();
        s.append(&epochs[6]).unwrap();
        assert_eq!(s.first_retained_seq(), Some(5));
        drop(s);
        let s = store(&dir, 4);
        assert_eq!(s.next_seq(), Some(7));
        assert_eq!(s.read_suffix(0).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Collects sync-observer batch sizes into a shared vector.
    fn observed(s: &mut SegmentStore) -> Arc<std::sync::Mutex<Vec<u64>>> {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = log.clone();
        s.set_sync_observer(Box::new(move |n| sink.lock().unwrap().push(n)));
        log
    }

    #[test]
    fn coalesced_policy_batches_fsyncs_by_frame_count() {
        let dir = scratch("coalesce");
        let epochs = encoded(40, 4); // 10 epochs
        let mut s = SegmentStore::open(
            &dir,
            SegmentConfig {
                epochs_per_segment: 100,
                fsync: FsyncPolicy::Coalesced {
                    max_frames: 4,
                    max_wait: Duration::from_secs(3600),
                },
            },
            None,
        )
        .unwrap();
        let log = observed(&mut s);
        for e in &epochs {
            s.append(e).unwrap();
        }
        // 10 appends under max_frames=4: two full batches, two left over.
        assert_eq!(*log.lock().unwrap(), vec![4, 4]);
        assert_eq!(s.pending_frames(), 2);
        assert_eq!(s.synced_seq(), Some(7));
        s.sync().unwrap();
        assert_eq!(*log.lock().unwrap(), vec![4, 4, 2]);
        assert_eq!(s.pending_frames(), 0);
        assert_eq!(s.synced_seq(), Some(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesced_max_wait_forces_the_sync() {
        let dir = scratch("coalesce-wait");
        let epochs = encoded(12, 4); // 3 epochs
        let mut s = SegmentStore::open(
            &dir,
            SegmentConfig {
                epochs_per_segment: 100,
                fsync: FsyncPolicy::Coalesced { max_frames: u32::MAX, max_wait: Duration::ZERO },
            },
            None,
        )
        .unwrap();
        let log = observed(&mut s);
        for e in &epochs {
            s.append(e).unwrap();
        }
        // A zero wait budget degenerates to per-append syncs.
        assert_eq!(*log.lock().unwrap(), vec![1, 1, 1]);
        assert_eq!(s.synced_seq(), Some(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manual_policy_syncs_only_on_rolls_and_explicit_calls() {
        let dir = scratch("manual");
        let epochs = encoded(40, 4); // 10 epochs -> segments of 4
        let mut s = SegmentStore::open(
            &dir,
            SegmentConfig { epochs_per_segment: 4, fsync: FsyncPolicy::Manual },
            None,
        )
        .unwrap();
        let log = observed(&mut s);
        for e in &epochs {
            s.append(e).unwrap();
        }
        // Rolling to a new segment makes the previous one's tail durable.
        assert_eq!(*log.lock().unwrap(), vec![4, 4]);
        assert_eq!(s.pending_frames(), 2);
        assert_eq!(s.synced_seq(), Some(7));
        s.sync().unwrap();
        assert_eq!(s.synced_seq(), Some(9));
        // Reopen: everything on disk counts as durable again.
        drop(s);
        let s = store(&dir, 4);
        assert_eq!(s.synced_seq(), Some(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_write_leaves_recoverable_prefix() {
        let dir = scratch("crash");
        let epochs = encoded(40, 4); // 10 epochs
                                     // Probe: count ops for a full clean run.
        let probe = CrashClock::unlimited();
        {
            let mut s = SegmentStore::open(
                &dir,
                SegmentConfig { epochs_per_segment: 4, ..Default::default() },
                Some(probe.clone()),
            )
            .unwrap();
            for e in &epochs {
                s.append(e).unwrap();
            }
        }
        let total = probe.used();
        assert!(total > 10);
        fs::remove_dir_all(&dir).unwrap();

        // Crash at every possible op index; reopen must always yield a
        // clean prefix of the stream, extendable to the full stream.
        for budget in 1..=total {
            let dir = scratch("crash-pt");
            let clock = CrashClock::with_budget(budget);
            let mut written = 0usize;
            {
                let mut s = match SegmentStore::open(
                    &dir,
                    SegmentConfig { epochs_per_segment: 4, ..Default::default() },
                    Some(clock.clone()),
                ) {
                    Ok(s) => s,
                    Err(e) => {
                        assert!(e.is_crash());
                        continue;
                    }
                };
                for e in &epochs {
                    match s.append(e) {
                        Ok(()) => written += 1,
                        Err(err) => {
                            assert!(err.is_crash(), "unexpected error: {err}");
                            break;
                        }
                    }
                }
            }
            // Restart without a clock: durable state must be a prefix.
            let mut s = store(&dir, 4);
            let back = s.read_suffix(0).unwrap();
            // Every acked append is durable (ack implies the OS write
            // completed); unacked torn tails may add at most garbage that
            // reopen discards.
            assert!(
                back.len() >= written,
                "budget {budget}: {written} acked but only {} recovered",
                back.len()
            );
            for (i, e) in back.iter().enumerate() {
                assert_eq!(e.id.raw(), i as u64);
                assert_eq!(e.bytes, epochs[i].bytes);
            }
            // The store keeps working after recovery.
            for e in &epochs[back.len()..] {
                s.append(e).unwrap();
            }
            assert_eq!(s.read_suffix(0).unwrap().len(), epochs.len());
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
