//! CRC-32 (ISO-HDLC, the zlib polynomial) for log integrity checking.
//!
//! The codec appends a CRC32 to every record and [`crate::EncodedEpoch`]
//! carries one over its whole byte frame. The implementation is the
//! classic table-driven byte-at-a-time variant — a few GB/s, far faster
//! than record decoding, so verification never dominates ingest cost.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (init `!0`, final xor `!0` — matches zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the replicated value log".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
