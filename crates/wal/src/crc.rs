//! CRC-32 (ISO-HDLC, the zlib polynomial) for log integrity checking.
//!
//! The codec appends a CRC32 to every record and [`crate::EncodedEpoch`]
//! carries one over its whole byte frame — so on the ingest hot path the
//! checksum runs over every byte *twice* (once at encode, once at
//! verify). [`crc32`] is therefore the slice-by-8 variant: eight
//! interleaved 256-entry tables let one iteration fold eight message
//! bytes, turning the byte-at-a-time loop's serial 8-bit dependency chain
//! into eight independent table loads per step. The classic one-table
//! loop survives as [`crc32_scalar`], the differential-test oracle.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// `TABLES[k][b]` advances a CRC whose low byte is `b` past `k` further
/// zero bytes: `TABLES[0]` is the classic table, and each higher slice is
/// the previous one pushed through one more byte of zeros. Folding eight
/// bytes then sums one lookup from each slice.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = build_table();
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC32 of `data` (init `!0`, final xor `!0` — matches zlib's `crc32`).
///
/// Slice-by-8: the main loop folds 8 bytes per iteration — the running
/// CRC is xored into the first 4 and all 8 are looked up in parallel
/// tables — then a byte-at-a-time tail handles the remainder. Identical
/// output to [`crc32_scalar`] on every input (proptest-enforced).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // One 8-byte load per block; the xor folds the running CRC into
        // the low word before the eight independent table lookups.
        let v = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)")) ^ crc as u64;
        crc = TABLES[7][(v & 0xFF) as usize]
            ^ TABLES[6][((v >> 8) & 0xFF) as usize]
            ^ TABLES[5][((v >> 16) & 0xFF) as usize]
            ^ TABLES[4][((v >> 24) & 0xFF) as usize]
            ^ TABLES[3][((v >> 32) & 0xFF) as usize]
            ^ TABLES[2][((v >> 40) & 0xFF) as usize]
            ^ TABLES[1][((v >> 48) & 0xFF) as usize]
            ^ TABLES[0][(v >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The byte-at-a-time reference loop. Kept as the oracle for the
/// differential tests below and in `tests/`; not used on the hot path.
pub fn crc32_scalar(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_reference_vectors() {
        // The CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_scalar(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_scalar(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the replicated value log".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn sliced_matches_scalar_on_every_length_through_two_blocks() {
        // Exhaustive over the lengths where stride handling can go wrong:
        // empty, sub-stride, exactly one/two strides, and every tail size.
        let data: Vec<u8> = (0..17u8).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), crc32_scalar(&data[..len]), "len {len}");
        }
    }

    proptest! {
        /// Differential: the slice-by-8 kernel is byte-for-byte equivalent
        /// to the scalar loop on arbitrary inputs, including lengths not
        /// divisible by 8 and arbitrary (unaligned) slice starts.
        #[test]
        fn sliced_equals_scalar(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                skew in 0usize..8) {
            let view = &data[skew.min(data.len())..];
            prop_assert_eq!(crc32(view), crc32_scalar(view));
        }
    }
}
