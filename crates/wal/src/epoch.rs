//! Assembling flat log records into transactions and epochs.
//!
//! The replicated stream is partitioned into fixed-size, non-overlapping
//! epochs measured in *transactions* (Section III-B). Epochs cut on
//! transaction boundaries: a committed transaction's entries never span two
//! epochs, and epochs replay strictly in order.

use crate::entry::{LogRecord, TxnLog};
use aets_common::{EpochId, Error, Result, Timestamp, TxnId};

/// A batch of committed transactions replayed as one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    /// Sequential epoch id (consecutive from 0).
    pub id: EpochId,
    /// Transactions in primary commit order.
    pub txns: Vec<TxnLog>,
}

impl Epoch {
    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the epoch holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Total DML entries across transactions.
    pub fn entry_count(&self) -> usize {
        self.txns.iter().map(|t| t.entries.len()).sum()
    }

    /// Total wire bytes across transactions.
    pub fn wire_size(&self) -> usize {
        self.txns.iter().map(TxnLog::wire_size).sum()
    }

    /// Commit timestamp of the last transaction (the epoch's high-water
    /// mark), or `ZERO` when empty.
    pub fn max_commit_ts(&self) -> Timestamp {
        self.txns.last().map_or(Timestamp::ZERO, |t| t.commit_ts)
    }
}

/// Assembles a flat record stream into [`TxnLog`]s, validating the
/// BEGIN/DML*/COMMIT bracketing and primary commit order.
pub fn assemble_txns(records: &[LogRecord]) -> Result<Vec<TxnLog>> {
    let mut out: Vec<TxnLog> = Vec::new();
    let mut open: Option<TxnLog> = None;
    for rec in records {
        match rec {
            LogRecord::Begin { txn_id, .. } => {
                if open.is_some() {
                    return Err(Error::Protocol(format!(
                        "BEGIN {txn_id} while a transaction is open"
                    )));
                }
                open = Some(TxnLog {
                    txn_id: *txn_id,
                    commit_ts: Timestamp::ZERO,
                    entries: Vec::new(),
                });
            }
            LogRecord::Dml(d) => match &mut open {
                Some(t) if t.txn_id == d.txn_id => t.entries.push(d.clone()),
                Some(t) => {
                    return Err(Error::Protocol(format!(
                        "DML of {} inside transaction {}",
                        d.txn_id, t.txn_id
                    )))
                }
                None => {
                    return Err(Error::Protocol(format!(
                        "DML of {} outside BEGIN/COMMIT",
                        d.txn_id
                    )))
                }
            },
            LogRecord::Commit { txn_id, ts, .. } => {
                let mut t = open
                    .take()
                    .ok_or_else(|| Error::Protocol(format!("COMMIT {txn_id} without BEGIN")))?;
                if t.txn_id != *txn_id {
                    return Err(Error::Protocol(format!(
                        "COMMIT {} does not match open transaction {}",
                        txn_id, t.txn_id
                    )));
                }
                t.commit_ts = *ts;
                if let Some(prev) = out.last() {
                    if prev.txn_id >= t.txn_id {
                        return Err(Error::Protocol(format!(
                            "transaction {} committed after {} violates commit order",
                            t.txn_id, prev.txn_id
                        )));
                    }
                }
                out.push(t);
            }
        }
    }
    if let Some(t) = open {
        return Err(Error::Protocol(format!("transaction {} never committed", t.txn_id)));
    }
    Ok(out)
}

/// Splits committed transactions into fixed-size epochs.
///
/// `epoch_size` is the number of transactions per epoch (default 2048 in
/// the paper); the final epoch may be short.
pub fn batch_into_epochs(txns: Vec<TxnLog>, epoch_size: usize) -> Result<Vec<Epoch>> {
    if epoch_size == 0 {
        return Err(Error::Config("epoch_size must be positive".into()));
    }
    let mut epochs = Vec::with_capacity(txns.len() / epoch_size + 1);
    let mut current: Vec<TxnLog> = Vec::with_capacity(epoch_size.min(txns.len()));
    for t in txns {
        current.push(t);
        if current.len() == epoch_size {
            epochs.push(Epoch {
                id: EpochId::new(epochs.len() as u64),
                txns: std::mem::take(&mut current),
            });
        }
    }
    if !current.is_empty() {
        epochs.push(Epoch { id: EpochId::new(epochs.len() as u64), txns: current });
    }
    Ok(epochs)
}

/// An epoch in wire form: what the backup actually receives from the
/// replication channel before its log parser runs.
///
/// Equality is byte equality of the whole wire form (id, payload,
/// metadata, CRC) — what the transport's frame round-trip tests compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedEpoch {
    /// Epoch id.
    pub id: EpochId,
    /// Encoded BEGIN/DML*/COMMIT records of every transaction, in commit
    /// order.
    pub bytes: bytes::Bytes,
    /// Number of transactions.
    pub txn_count: usize,
    /// Commit timestamp of the last transaction.
    pub max_commit_ts: Timestamp,
    /// CRC32 over `bytes` — the epoch frame checksum, stamped by the
    /// primary at encode time and verified by the backup at ingest.
    pub crc32: u32,
}

impl EncodedEpoch {
    /// Verifies the epoch frame checksum. Catches torn tails, bit flips,
    /// and any other in-flight corruption of the epoch buffer; a failure
    /// means the whole delivery must be re-requested.
    pub fn verify(&self) -> Result<()> {
        if crate::crc::crc32(&self.bytes) == self.crc32 {
            Ok(())
        } else {
            Err(Error::CodecChecksum)
        }
    }

    /// Decodes the frame's records in one pass into `scratch` (cleared
    /// first). A replay loop that calls this per epoch amortizes one
    /// record-vector allocation across the whole stream instead of
    /// growing a fresh `Vec` for every frame.
    pub fn decode_records_into(&self, scratch: &mut Vec<LogRecord>) -> Result<()> {
        scratch.clear();
        crate::codec::decode_batch_into(&self.bytes, scratch)
    }
}

/// Encodes an epoch into its wire form: each transaction becomes
/// `BEGIN, DML..., COMMIT` with LSNs taken from the entries (markers reuse
/// adjacent LSNs since the generators assign LSNs to DML entries only).
pub fn encode_epoch(epoch: &Epoch) -> EncodedEpoch {
    use crate::codec::encode_record;
    let mut buf = bytes::BytesMut::with_capacity(epoch.wire_size() + epoch.len() * 64);
    for t in &epoch.txns {
        let first_lsn = t.entries.first().map_or(aets_common::Lsn::new(0), |e| e.lsn);
        let last_lsn = t.entries.last().map_or(first_lsn, |e| e.lsn);
        encode_record(
            &mut buf,
            &LogRecord::Begin { lsn: first_lsn, txn_id: t.txn_id, ts: t.commit_ts },
        );
        for e in &t.entries {
            encode_record(&mut buf, &LogRecord::Dml(e.clone()));
        }
        encode_record(
            &mut buf,
            &LogRecord::Commit { lsn: last_lsn, txn_id: t.txn_id, ts: t.commit_ts },
        );
    }
    let bytes = buf.freeze();
    EncodedEpoch {
        id: epoch.id,
        crc32: crate::crc::crc32(&bytes),
        bytes,
        txn_count: epoch.len(),
        max_commit_ts: epoch.max_commit_ts(),
    }
}

/// Builds a synthetic heartbeat transaction with a dummy transaction id,
/// carrying no DML (Section V-B): replaying it only bumps commit
/// timestamps so `global_cmt_ts` keeps advancing while the primary idles.
pub fn heartbeat_txn(txn_id: TxnId, commit_ts: Timestamp) -> TxnLog {
    TxnLog { txn_id, commit_ts, entries: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::DmlEntry;
    use aets_common::{ColumnId, DmlOp, Lsn, RowKey, TableId, Value};

    fn txn_records(txn: u64, base_lsn: u64, n_dml: usize) -> Vec<LogRecord> {
        let mut recs = vec![LogRecord::Begin {
            lsn: Lsn::new(base_lsn),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(base_lsn),
        }];
        for i in 0..n_dml {
            recs.push(LogRecord::Dml(DmlEntry {
                lsn: Lsn::new(base_lsn + 1 + i as u64),
                txn_id: TxnId::new(txn),
                ts: Timestamp::from_micros(base_lsn + 1 + i as u64),
                table: TableId::new(0),
                op: DmlOp::Insert,
                key: RowKey::new(i as u64),
                row_version: 1,
                cols: vec![(ColumnId::new(0), Value::Int(i as i64))],
                before: None,
            }));
        }
        recs.push(LogRecord::Commit {
            lsn: Lsn::new(base_lsn + 1 + n_dml as u64),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(base_lsn + 1 + n_dml as u64),
        });
        recs
    }

    #[test]
    fn assembles_bracketed_txns() {
        let mut recs = txn_records(1, 0, 3);
        recs.extend(txn_records(2, 10, 2));
        let txns = assemble_txns(&recs).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].entries.len(), 3);
        assert_eq!(txns[1].txn_id, TxnId::new(2));
        assert_eq!(txns[1].commit_ts, Timestamp::from_micros(13));
    }

    #[test]
    fn rejects_dml_outside_txn() {
        let recs = txn_records(1, 0, 1);
        let dml_only = vec![recs[1].clone()];
        assert!(assemble_txns(&dml_only).is_err());
    }

    #[test]
    fn rejects_unterminated_txn() {
        let mut recs = txn_records(1, 0, 1);
        recs.pop(); // drop COMMIT
        assert!(assemble_txns(&recs).is_err());
    }

    #[test]
    fn rejects_nested_begin_and_mismatched_commit() {
        let a = txn_records(1, 0, 0);
        let b = txn_records(2, 10, 0);
        // BEGIN 1, BEGIN 2 ...
        let nested = vec![a[0].clone(), b[0].clone()];
        assert!(assemble_txns(&nested).is_err());
        // BEGIN 1, COMMIT 2
        let mismatch = vec![a[0].clone(), b[1].clone()];
        assert!(assemble_txns(&mismatch).is_err());
    }

    #[test]
    fn rejects_commit_order_violation() {
        let mut recs = txn_records(5, 0, 0);
        recs.extend(txn_records(4, 10, 0));
        assert!(assemble_txns(&recs).is_err());
    }

    #[test]
    fn epochs_cut_on_txn_boundaries() {
        let txns: Vec<TxnLog> = (1..=10)
            .map(|i| TxnLog {
                txn_id: TxnId::new(i),
                commit_ts: Timestamp::from_micros(i * 10),
                entries: Vec::new(),
            })
            .collect();
        let epochs = batch_into_epochs(txns, 4).unwrap();
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].len(), 4);
        assert_eq!(epochs[2].len(), 2);
        assert_eq!(epochs[1].id, EpochId::new(1));
        assert_eq!(epochs[2].max_commit_ts(), Timestamp::from_micros(100));
    }

    #[test]
    fn zero_epoch_size_is_config_error() {
        assert!(batch_into_epochs(Vec::new(), 0).is_err());
    }

    #[test]
    fn epoch_frame_checksum_round_trips_and_catches_corruption() {
        let recs = txn_records(1, 0, 3);
        let txns = assemble_txns(&recs).unwrap();
        let encoded = encode_epoch(&Epoch { id: EpochId::new(0), txns });
        encoded.verify().unwrap();

        // Torn tail: missing bytes at the end of the frame.
        let torn = EncodedEpoch {
            bytes: encoded.bytes.slice(..encoded.bytes.len() - 2),
            ..encoded.clone()
        };
        assert!(matches!(torn.verify(), Err(aets_common::Error::CodecChecksum)));

        // Bit flip anywhere in the frame.
        let mut flipped = encoded.bytes.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        let flipped = EncodedEpoch { bytes: bytes::Bytes::from(flipped), ..encoded };
        assert!(matches!(flipped.verify(), Err(aets_common::Error::CodecChecksum)));
    }

    #[test]
    fn heartbeat_is_empty() {
        let hb = heartbeat_txn(TxnId::new(9), Timestamp::from_micros(1));
        assert!(hb.is_heartbeat());
    }
}
