//! Deterministic crash injection for the durability path.
//!
//! The crash-consistency tests need to "kill the process" at arbitrary
//! points — mid-segment-write, mid-checkpoint, mid-recovery — and then
//! restart from whatever actually reached disk. A real `kill -9` is not
//! reproducible (and not unit-testable), so the durability stores instead
//! charge every filesystem operation against a shared [`CrashClock`]. When
//! the clock's budget runs out, the in-flight *write* is torn — only a
//! deterministic prefix of its bytes is persisted — and the operation
//! returns [`Error::Crash`]. From that point every further operation on
//! the clock also crashes: the process state is dead, and the harness
//! drops the store and re-opens it, exactly like a restart after a crash.
//!
//! A store opened without a clock ([`CrashClock::unlimited`] or `None`)
//! never crashes; production configurations install no clock.

use aets_common::{Error, Result};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, depleting budget of filesystem operations.
///
/// Each durable write or read charges one tick. The budget crossing zero
/// is "the crash instant": the charging write is torn after a
/// deterministic prefix and every subsequent charge fails immediately.
#[derive(Debug)]
pub struct CrashClock {
    /// Remaining operations before the crash; negative once crashed.
    /// `i64::MAX` means unlimited.
    budget: AtomicI64,
    /// Operations charged so far (monotone, survives the crash instant).
    used: AtomicU64,
}

impl CrashClock {
    /// A clock that crashes after `ops` charged operations.
    pub fn with_budget(ops: u64) -> Arc<Self> {
        Arc::new(Self {
            budget: AtomicI64::new(ops.min(i64::MAX as u64) as i64),
            used: AtomicU64::new(0),
        })
    }

    /// A clock that never crashes (but still counts operations, so a
    /// probe run can measure where later budgets should cut).
    pub fn unlimited() -> Arc<Self> {
        Arc::new(Self { budget: AtomicI64::new(i64::MAX), used: AtomicU64::new(0) })
    }

    /// Operations charged so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Whether the crash instant has passed.
    pub fn crashed(&self) -> bool {
        self.budget.load(Ordering::Relaxed) <= 0
    }

    /// Charges one operation. `Ok(())` while budget remains; once the
    /// budget is exhausted, returns the crash error every time.
    pub fn charge(&self, what: &str) -> Result<()> {
        self.used.fetch_add(1, Ordering::Relaxed);
        let left = self.budget.fetch_sub(1, Ordering::Relaxed);
        if left == 1 {
            return Err(Error::Crash(format!("{what} at crash instant")));
        }
        if left <= 0 {
            return Err(Error::Crash(format!("{what} after crash instant")));
        }
        Ok(())
    }

    /// Charges one *write* of `len` bytes. `Ok(len)` while budget remains.
    /// The charge that crosses zero tears the write: `Err` carries no
    /// length, and `CrashClock::torn_len` says how many bytes of this
    /// exact write became durable (a deterministic function of the
    /// operation index, so the same budget always tears the same way).
    pub fn charge_write(
        &self,
        what: &str,
        len: usize,
    ) -> std::result::Result<usize, (usize, Error)> {
        let op = self.used.fetch_add(1, Ordering::Relaxed);
        let left = self.budget.fetch_sub(1, Ordering::Relaxed);
        if left == 1 {
            // This is the crash instant: the write itself is torn.
            let torn = Self::torn_len(op, len);
            return Err((torn, Error::Crash(format!("torn {what} ({torn}/{len} bytes durable)"))));
        }
        if left <= 0 {
            return Err((0, Error::Crash(format!("{what} after crash instant"))));
        }
        Ok(len)
    }

    /// Deterministic torn-write length in `0..len`: derived from the
    /// operation index with a splitmix64 finalizer so the same crash
    /// schedule always leaves the same bytes on disk.
    fn torn_len(op: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut z = op.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % len
    }
}

/// Charges `clock` (if any) for one non-write operation.
pub fn charge(clock: &Option<Arc<CrashClock>>, what: &str) -> Result<()> {
    match clock {
        Some(c) => c.charge(what),
        None => Ok(()),
    }
}

/// Writes `buf` to `file`, metering the write on `clock`: at the crash
/// instant only a deterministic prefix reaches the file (a torn write),
/// and the prefix is flushed so a reopen observes exactly what a real
/// crash would have left on disk. Shared by every durability store (WAL
/// segments, checkpoints).
pub fn durable_write(
    file: &mut std::fs::File,
    buf: &[u8],
    clock: &Option<Arc<CrashClock>>,
    what: &str,
) -> Result<()> {
    use std::io::Write as _;
    match clock {
        None => {
            file.write_all(buf)?;
            Ok(())
        }
        Some(c) => match c.charge_write(what, buf.len()) {
            Ok(_) => {
                file.write_all(buf)?;
                Ok(())
            }
            Err((torn, e)) => {
                let _ = file.write_all(&buf[..torn]);
                let _ = file.flush();
                Err(e)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_crashes_but_counts() {
        let c = CrashClock::unlimited();
        for _ in 0..100 {
            c.charge("op").unwrap();
        }
        assert_eq!(c.used(), 100);
        assert!(!c.crashed());
    }

    #[test]
    fn budget_exhaustion_crashes_and_stays_crashed() {
        let c = CrashClock::with_budget(3);
        c.charge("a").unwrap();
        c.charge("b").unwrap();
        let err = c.charge("c").unwrap_err();
        assert!(err.is_crash());
        assert!(c.crashed());
        assert!(c.charge("d").unwrap_err().is_crash());
        assert_eq!(c.used(), 4);
    }

    #[test]
    fn torn_write_length_is_deterministic_and_partial() {
        let a = CrashClock::with_budget(1);
        let b = CrashClock::with_budget(1);
        let (ta, ea) = a.charge_write("seg", 100).unwrap_err();
        let (tb, eb) = b.charge_write("seg", 100).unwrap_err();
        assert_eq!(ta, tb, "same schedule must tear the same way");
        assert!(ta < 100);
        assert!(ea.is_crash() && eb.is_crash());
        // Post-crash writes persist nothing.
        let (t2, _) = a.charge_write("seg", 100).unwrap_err();
        assert_eq!(t2, 0);
    }

    #[test]
    fn charge_write_passes_through_before_the_crash() {
        let c = CrashClock::with_budget(10);
        assert_eq!(c.charge_write("seg", 42).unwrap(), 42);
        assert!(!c.crashed());
    }
}
