//! The replicated value log of the AETS pipeline.
//!
//! Implements the SiloR-style value-log of Section III-A: the record format
//! ([`entry`]), a binary codec with both full-record and metadata-only
//! decoding ([`codec`]), transaction assembly and epoch batching
//! ([`epoch`]), and the primary replication timeline with heartbeat
//! insertion ([`stream`]). Integrity is end-to-end checksummed ([`crc`]):
//! every record carries a CRC32 trailer and every encoded epoch a frame
//! CRC32, and [`faults`] provides the deterministic fault-injection
//! harness that exercises the recovery paths built on them.

pub mod codec;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod crash;
pub mod crc;
pub mod entry;
pub mod epoch;
pub mod faults;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod segment;
pub mod stream;

pub use codec::{
    decode_at, decode_batch, decode_batch_into, decode_meta, decode_record, decode_row,
    encode_batch, encode_record, encode_row, MetaScanner, RecordMeta,
};
pub use crash::CrashClock;
pub use crc::{crc32, crc32_scalar};
pub use entry::{DmlEntry, LogRecord, TxnLog};
pub use epoch::{
    assemble_txns, batch_into_epochs, encode_epoch, heartbeat_txn, EncodedEpoch, Epoch,
};
pub use faults::{splitmix64, EpochSource, FaultInjector, FaultKind, FaultPlan, SliceSource};
pub use segment::{FsyncPolicy, SegmentConfig, SegmentStore, SegmentSuffixSource};
pub use stream::{insert_heartbeats, ReplicationTimeline};
