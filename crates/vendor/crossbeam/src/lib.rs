//! Minimal reimplementation of the `crossbeam::channel` API surface used
//! by this workspace: a bounded MPMC channel built on a mutex-guarded ring
//! with two condition variables.
//!
//! Performance note: the AETS pipeline pushes one `DispatchedEpoch` per
//! epoch (thousands of entries amortized per send), so a lock-based
//! channel is nowhere near the hot path; what matters is the bounded
//! capacity providing dispatcher back-pressure.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates a bounded channel with room for `cap` in-flight messages.
    /// `cap` must be positive (rendezvous channels are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `msg`. Errors if every
        /// receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Errors once the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Iterates until the channel is closed and drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_across_threads() {
            let (tx, rx) = bounded::<usize>(2);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<usize> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_capacity_applies_backpressure() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            // The second send must block until a recv frees the slot.
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap();
                tx.send(3).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            t.join().unwrap();
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(9).is_err());
        }
    }
}
